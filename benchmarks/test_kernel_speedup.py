"""The native kernel tier vs the Python admit loop, head to head.

The columnar engine (``BENCH_scale.json``) made seeding vectorized, but
every admission still executes Python bytecode: heap sift, freshness
check, batched rescore dispatch, constraint gate.  The kernel tier
(:mod:`repro.core.kernels`) compiles that whole loop with numba, operating
directly on the compiled CSR tensors.  This suite runs the two tiers on
the same instance and gates the win:

* **with numba installed** the head-to-head runs at production size
  (400k users / 4M candidate pairs at the default benchmark scale) and
  asserts the native loop is **>= 5x** faster on a single core while
  admitting **bit-identical** triples, growth-curve floats and model
  counters (``REPRO_KERNEL_SPEEDUP_GATE`` overrides the factor);
* **without numba** the gate relaxes to record-only: the identical kernel
  source runs *interpreted* (it is plain Python in the nopython subset) on
  a smaller instance, proving bit-identity end to end and recording honest
  timings with ``record_only: true`` -- a box that cannot JIT cannot
  certify a JIT speedup.

Results go to ``BENCH_kernel.json`` (atomically; the writer stamps the
active kernel tier, numba version and core count).
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import bench_scale, run_once, write_bench_json
from repro.core import kernels
from repro.core.constraints import ConstraintChecker
from repro.core.kernels import impl
from repro.core.revenue import RevenueModel
from repro.core.selection import SEED_ISOLATED, LazyGreedySelector
from repro.core.strategy import Strategy
from repro.datasets.synthetic import SyntheticConfig, generate_synthetic_columnar

_RECORD_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_kernel.json",
)


def _settings():
    """(users, admissions, gate, record_only) for the scale / machine.

    The 5x gate is certified only where a JIT actually runs: without numba
    the same kernel source executes interpreted, which proves bit-identity
    but measures CPython against CPython, so the numbers are telemetry.
    The interpreted head-to-head also drops to a smaller instance -- the
    in-loop Floyd heapify over millions of seeded candidates is exactly
    the bytecode cost the JIT exists to remove.
    """
    tiny = bench_scale() == "tiny"
    if tiny:
        users, admissions = 2_000, 200
    elif kernels.NUMBA_AVAILABLE:
        users, admissions = 400_000, 20_000
    else:
        users, admissions = 8_000, 2_000
    record_only = tiny or not kernels.NUMBA_AVAILABLE
    gate = 0.0 if record_only else 5.0
    gate = float(os.environ.get("REPRO_KERNEL_SPEEDUP_GATE", gate))
    return users, admissions, gate, record_only


def _config(num_users: int) -> SyntheticConfig:
    # Same family as the sharded-scale suite: ~10 candidate pairs per user,
    # T = 5 (the paper's horizon), so 400k users is 4M pairs / 20M triples.
    return SyntheticConfig(
        num_users=num_users, num_items=2_000, num_classes=100,
        candidates_per_user=10, horizon=5, display_limit=2,
        capacity_fraction=0.25, beta=0.5, seed=7,
    )


def _timed_python(instance, admissions):
    """The reference serial columnar path, kernel tier forced to numpy.

    Forcing the tier matters: under ``REPRO_KERNEL=numba`` the selector
    would otherwise dispatch this very solve to the native loop and the
    head-to-head would time the kernel against itself.
    """
    instance.compiled()._isolated = None
    strategy = Strategy(instance.catalog)
    model = RevenueModel(instance, backend="numpy")
    selector = LazyGreedySelector(
        instance, model, ConstraintChecker(instance),
        seed_priorities=SEED_ISOLATED, max_selections=admissions,
    )
    growth_curve = []
    with kernels.forced_kernel("numpy"):
        start = time.perf_counter()
        selector.select(strategy, None, growth_curve=growth_curve)
        seconds = time.perf_counter() - start
    return {
        "seconds": seconds,
        "growth_curve": growth_curve,
        "revenue": growth_curve[-1][1] if growth_curve else 0.0,
        "triples": sorted(strategy.triples()),
        "counters": (model.evaluations, model.cache_hits, model.lookups),
    }


def _native_module():
    """The JIT twin when numba is importable, the interpreted source if not."""
    return kernels.jit_module() if kernels.NUMBA_AVAILABLE else impl


def _timed_native(instance, admissions):
    """The kernel-tier admit loop on the compiled tensors, end to end.

    The admissions are replayed into a real :class:`Strategy` *outside*
    the timed region: the replay is identical bookkeeping either tier
    pays, while the timed region isolates the loop the tier replaces.
    """
    module = _native_module()
    compiled = instance.compiled()
    compiled._isolated = None
    start = time.perf_counter()
    rows, ts, gains, counters = kernels.native_select(
        compiled, max_selections=admissions, module=module
    )
    seconds = time.perf_counter() - start
    strategy = Strategy(instance.catalog)
    revenue = 0.0
    growth_curve = []
    for row, t, gain in zip(rows.tolist(), ts.tolist(), gains.tolist()):
        from repro.core.entities import Triple

        strategy.add(Triple(int(compiled.pair_user[row]),
                            int(compiled.pair_item[row]), int(t)))
        revenue += gain
        growth_curve.append((len(strategy), revenue))
    return {
        "seconds": seconds,
        "growth_curve": growth_curve,
        "revenue": revenue,
        "triples": sorted(strategy.triples()),
        "counters": (counters["evaluations"], counters["cache_hits"],
                     counters["lookups"]),
    }


def _run_head_to_head():
    users, admissions, gate, record_only = _settings()
    instance = generate_synthetic_columnar(_config(users))
    compiled = instance.compiled()
    if kernels.NUMBA_AVAILABLE:
        # Compile outside the timed region: the JIT cost is paid once per
        # process (and cached on disk), not once per solve.
        _timed_native(instance, 1)

    # Best of two per tier: one cold run's allocator / page-cache jitter
    # must not decide a 5x gate either way.
    python_result = _timed_python(instance, admissions)
    second = _timed_python(instance, admissions)
    if second["seconds"] < python_result["seconds"]:
        python_result = second
    native_result = _timed_native(instance, admissions)
    second = _timed_native(instance, admissions)
    if second["seconds"] < native_result["seconds"]:
        native_result = second

    return {
        "users": users,
        "pairs": compiled.num_pairs,
        "triples_total": compiled.num_candidate_triples(),
        "admissions": admissions,
        "gate": gate,
        "record_only": record_only,
        "python": python_result,
        "native": native_result,
        "speedup": python_result["seconds"] / native_result["seconds"],
    }


def test_kernel_admit_loop_speedup(benchmark):
    stats = run_once(benchmark, _run_head_to_head)
    python_result = stats["python"]
    native_result = stats["native"]
    native_backend = "numba" if kernels.NUMBA_AVAILABLE else "interpreted"

    print(
        f"\nkernel-tier head-to-head at {stats['users']:,} users / "
        f"{stats['pairs']:,} pairs ({stats['admissions']:,} admissions):"
    )
    print(
        f"  python loop   {python_result['seconds']:8.2f}s\n"
        f"  {native_backend:<12} {native_result['seconds']:8.2f}s  "
        f"-> {stats['speedup']:.2f}x "
        f"(gate >= {stats['gate']}x"
        f"{', record-only' if stats['record_only'] else ''})"
    )

    bit_identical = (
        python_result["triples"] == native_result["triples"]
        and python_result["growth_curve"] == native_result["growth_curve"]
        and python_result["counters"] == native_result["counters"]
    )
    write_bench_json(_RECORD_PATH, {
        "scale": bench_scale(),
        "native_backend": native_backend,
        "record_only": stats["record_only"],
        "users": stats["users"],
        "pairs": stats["pairs"],
        "candidate_triples": stats["triples_total"],
        "admissions": stats["admissions"],
        "python_seconds": python_result["seconds"],
        "native_seconds": native_result["seconds"],
        "speedup": stats["speedup"],
        "gate": stats["gate"],
        "revenue": native_result["revenue"],
        "bit_identical": bit_identical,
    })

    # Acceptance gates: the two tiers make the same decisions, bit for bit
    # (triples, every growth-curve float, every model counter) ...
    assert python_result["triples"] == native_result["triples"]
    assert python_result["growth_curve"] == native_result["growth_curve"]
    assert python_result["counters"] == native_result["counters"]
    assert native_result["revenue"] > 0.0
    # ... the gated run reaches production size ...
    if not stats["record_only"]:
        assert stats["users"] >= 400_000
        assert stats["pairs"] >= 4_000_000
    # ... and the native loop clears the factor (record-only: gate 0).
    assert stats["speedup"] >= stats["gate"]
