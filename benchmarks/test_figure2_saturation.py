"""Figure 2 -- revenue at fixed saturation factors, class size > 1.

Paper reference (Figure 2): for beta in {0.1, 0.5, 0.9} under Gaussian and
exponential capacities, the algorithm hierarchy of Figure 1 is preserved, and
the gap between G-Greedy and the rest widens as beta shrinks (stronger
saturation punishes saturation-oblivious choices more).
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.figures import figure2_revenue_by_saturation


def test_figure2_saturation_strength(benchmark, sweep_pipelines):
    result = run_once(
        benchmark,
        figure2_revenue_by_saturation,
        sweep_pipelines,
        betas=(0.1, 0.5, 0.9),
        capacity_distributions=("normal", "exponential"),
        rl_permutations=6,
    )
    print("\n" + str(result))

    for setting, per_beta in result.data.items():
        for beta_label, revenues in per_beta.items():
            context = f"{setting}/{beta_label}"
            assert revenues["G-Greedy"] >= revenues["SL-Greedy"] * 0.95, context
            assert revenues["G-Greedy"] > revenues["TopRA"], context
            assert revenues["G-Greedy"] >= revenues["GlobalNo"] * 0.99, context
        # The advantage of saturation-aware selection over GlobalNo should not
        # shrink as saturation gets stronger (beta smaller).
        def relative_gap(revenues):
            return (revenues["G-Greedy"] - revenues["GlobalNo"]) / revenues["G-Greedy"]

        assert relative_gap(per_beta["beta=0.1"]) >= relative_gap(per_beta["beta=0.9"]) - 0.05
