"""Ablation -- exact Poisson-binomial versus Monte-Carlo capacity oracle.

R-REVMAX's effective adoption probability needs ``B_S(i, t)``; DESIGN.md lists
the oracle choice as an ablation.  The exact dynamic program and the
Monte-Carlo estimator must agree closely on the resulting objective values,
with the Monte-Carlo variant trading exactness for a tunable sample budget.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.core.effective import EffectiveRevenueModel
from repro.core.strategy import Strategy
from repro.simulation.capacity_oracle import (
    MonteCarloCapacityOracle,
    PoissonBinomialCapacityOracle,
)
from tests.conftest import build_random_instance


def _evaluate_with_oracles(instance, strategy_triples):
    strategy = Strategy(instance.catalog, strategy_triples)
    exact = EffectiveRevenueModel(instance, PoissonBinomialCapacityOracle())
    sampled = EffectiveRevenueModel(
        instance, MonteCarloCapacityOracle(num_samples=4000, seed=0)
    )
    return exact.revenue(strategy), sampled.revenue(strategy)


def test_ablation_capacity_oracle(benchmark):
    instance = build_random_instance(
        num_users=8, num_items=3, num_classes=2, horizon=3,
        display_limit=2, capacity=2, density=1.0, seed=21,
    )
    # An intentionally over-subscribed strategy so the capacity factor matters.
    triples = [z for z in instance.candidate_triples() if z.t <= 1][:16]
    exact_value, sampled_value = run_once(
        benchmark, _evaluate_with_oracles, instance, triples
    )
    print(
        f"\nexact Poisson-binomial objective: {exact_value:,.3f}\n"
        f"Monte-Carlo (4000 samples):        {sampled_value:,.3f}"
    )
    assert exact_value > 0
    assert sampled_value == pytest.approx(exact_value, rel=0.05)
