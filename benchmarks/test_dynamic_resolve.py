"""Dynamic re-solve benchmark -- warm incremental G-Greedy vs cold solve.

The dynamic recommendation setting re-solves every cycle after a small
drift: prices move on a few items, adoption estimates refresh for recently
active users, stock is adjusted.  This suite drives the incremental engine
(:mod:`repro.dynamic`) at production scale -- **100k users / 1M candidate
pairs** at the default benchmark scale -- and gates the tentpole's win:

* an instance is solved cold once (the warm state is recorded), then a
  **1%-of-pairs delta** is applied (every candidate pair of 1% of users
  gets a fresh probability vector, plus a few price cells);
* the **incremental re-solve** (stream merge over the recorded per-user
  pop sequences) must be **>= 5x** faster than a cold solve of the
  identically mutated instance, with **bit-identical** strategies and
  revenue growth curves.

Results are recorded to ``BENCH_dynamic.json`` (uploaded by the nightly
scale workflow).  In CI smoke mode (``REPRO_BENCH_SCALE=tiny``) the
instance shrinks and the gate relaxes -- machine variance matters more
than the trajectory there.
"""

from __future__ import annotations

import os
import time

import numpy as np

from benchmarks.conftest import bench_scale, run_once, write_bench_json
from repro.algorithms.global_greedy import GlobalGreedy
from repro.core.compiled import CompiledInstance
from repro.datasets.synthetic import SyntheticConfig, generate_synthetic_columnar
from repro.dynamic import InstanceDelta, IncrementalSolver, apply_delta

_RECORD_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_dynamic.json",
)

#: Fraction of candidate pairs whose probability vectors the delta rewrites
#: (all pairs of a 1% user sample -- the "recently active users" shape).
DELTA_PAIR_FRACTION = 0.01

#: Price cells rewritten by the delta (each dirties one item's audience).
DELTA_PRICE_CELLS = 3


def _settings():
    """(user count, speedup gate) for the current scale."""
    if bench_scale() == "tiny":
        return 4_000, 1.5
    return 100_000, 5.0


def _config(num_users: int) -> SyntheticConfig:
    return SyntheticConfig(
        num_users=num_users, num_items=2_000, num_classes=100,
        candidates_per_user=10, horizon=3, display_limit=2,
        capacity_fraction=0.25, beta=0.5, seed=7,
    )


def _build_delta(instance) -> InstanceDelta:
    """The 1%-of-pairs drift: fresh vectors for 1% of users + price moves."""
    compiled = instance.compiled()
    rng = np.random.default_rng(3)
    refreshed_users = rng.choice(
        compiled.num_users,
        size=max(1, int(compiled.num_users * DELTA_PAIR_FRACTION)),
        replace=False,
    )
    probability_updates = {}
    for user in refreshed_users:
        start, stop = compiled.user_ptr[user], compiled.user_ptr[user + 1]
        for row in range(int(start), int(stop)):
            probability_updates[(int(user), int(compiled.pair_item[row]))] = (
                rng.uniform(0.0, 1.0, size=compiled.horizon)
            )
    price_updates = {
        (int(item), int(rng.integers(0, compiled.horizon))):
            float(rng.uniform(10.0, 1000.0))
        for item in rng.choice(compiled.num_items, size=DELTA_PRICE_CELLS,
                               replace=False)
    }
    return InstanceDelta(price_updates=price_updates,
                         probability_updates=probability_updates,
                         name="bench-1pct-drift")


def _bare_copy(instance):
    """The mutated instance with every cache dropped (a true cold start)."""
    compiled = instance.compiled()
    return CompiledInstance(
        num_users=compiled.num_users,
        horizon=compiled.horizon,
        display_limit=compiled.display_limit,
        user_ptr=compiled.user_ptr,
        pair_item=compiled.pair_item,
        pair_probs=compiled.pair_probs,
        prices=compiled.prices,
        capacities=compiled.capacities,
        betas=compiled.betas,
        item_class=compiled.item_class,
        name=compiled.name,
        validate=False,
    ).as_instance()


def _copy_delta(delta: InstanceDelta) -> InstanceDelta:
    return InstanceDelta.from_dict(delta.to_dict())


def _run():
    num_users, gate = _settings()
    config = _config(num_users)
    instance = generate_synthetic_columnar(config)
    compiled = instance.compiled()
    delta = _build_delta(instance)

    solver = IncrementalSolver(instance)
    start = time.perf_counter()
    solver.solve()
    initial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    warm_strategy = solver.resolve(_copy_delta(delta))
    resolve_seconds = time.perf_counter() - start
    stats = dict(solver.last_stats)

    # Cold baseline: the identically mutated instance, every cache dropped.
    mutated = generate_synthetic_columnar(config)
    apply_delta(mutated, _copy_delta(delta))
    cold = GlobalGreedy(backend="numpy")
    start = time.perf_counter()
    cold_strategy = cold.build_strategy(_bare_copy(mutated))
    cold_seconds = time.perf_counter() - start

    return {
        "users": num_users,
        "gate": gate,
        "pairs": compiled.num_pairs,
        "delta_pairs": len(delta.probability_updates),
        "delta_price_cells": len(delta.price_updates),
        "initial_seconds": initial_seconds,
        "resolve_seconds": resolve_seconds,
        "cold_seconds": cold_seconds,
        "speedup": cold_seconds / resolve_seconds,
        "stats": stats,
        "warm_triples": sorted(warm_strategy.triples()),
        "cold_triples": sorted(cold_strategy.triples()),
        "warm_curve": solver.growth_curve,
        "cold_curve": cold.last_growth_curve,
        "revenue": solver.revenue,
    }


def test_dynamic_resolve_speedup(benchmark):
    result = run_once(benchmark, _run)

    print(
        f"\ndynamic re-solve at {result['users']:,} users "
        f"({result['pairs']:,} pairs, "
        f"{result['delta_pairs']:,} pair vectors + "
        f"{result['delta_price_cells']} price cells changed):"
    )
    print(
        f"  initial cold solve: {result['initial_seconds']:7.2f}s"
    )
    print(
        f"  incremental resolve: {result['resolve_seconds']:6.2f}s "
        f"(mode={result['stats']['mode']}, "
        f"dirty_users={result['stats'].get('dirty_users', 'n/a')})"
    )
    print(
        f"  cold re-solve:      {result['cold_seconds']:7.2f}s "
        f"-> {result['speedup']:.1f}x (gate >= {result['gate']}x)"
    )

    write_bench_json(_RECORD_PATH, {
        "scale": bench_scale(),
        "users": result["users"],
        "pairs": result["pairs"],
        "delta_pairs": result["delta_pairs"],
        "delta_price_cells": result["delta_price_cells"],
        "initial_seconds": result["initial_seconds"],
        "resolve_seconds": result["resolve_seconds"],
        "cold_seconds": result["cold_seconds"],
        "speedup": result["speedup"],
        "mode": result["stats"]["mode"],
        "dirty_users": result["stats"].get("dirty_users"),
        "reused_events": result["stats"].get("reused_events"),
        "revenue": result["revenue"],
        "bit_identical": (
            result["warm_triples"] == result["cold_triples"]
            and result["warm_curve"] == result["cold_curve"]
        ),
    })

    # The acceptance gates: production size at the default scale ...
    if bench_scale() != "tiny":
        assert result["users"] >= 100_000
        assert result["pairs"] >= 1_000_000
    # ... a ~1%-of-pairs delta ...
    assert result["delta_pairs"] >= DELTA_PAIR_FRACTION * result["pairs"] * 0.5
    # ... the fast merge path actually ran ...
    assert result["stats"]["mode"] == "merge"
    # ... warm and cold agree bit for bit (set, order and gains) ...
    assert result["warm_triples"] == result["cold_triples"]
    assert result["warm_curve"] == result["cold_curve"]
    assert result["revenue"] > 0.0
    # ... and the incremental path pays at least the gated factor.
    assert result["speedup"] >= result["gate"]
