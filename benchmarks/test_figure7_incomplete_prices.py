"""Figure 7 -- revenue when prices become available sub-horizon by sub-horizon.

Paper reference (Figure 7, beta = 0.5, Gaussian and power-law capacities):
G-Greedy with cut-offs at 2, 4, 5 (GG_2, GG_4, GG_5) still beats RL-Greedy and
SL-Greedy, but earns less than G-Greedy with the whole horizon visible; the
loss is largest at the most even split (cut-off 4).  SL-Greedy is unaffected
by the protocol.  The reproduction checks the same relationships.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.figures import figure7_incomplete_prices


def test_figure7_incomplete_prices(benchmark, sweep_pipelines):
    result = run_once(
        benchmark,
        figure7_incomplete_prices,
        sweep_pipelines,
        cutoffs=(2, 4, 5),
        capacity_distributions=("normal", "power"),
        beta_value=0.5,
        rl_permutations=6,
    )
    print("\n" + str(result))

    for setting, revenues in result.data.items():
        full = revenues["GG"]
        for cutoff in (2, 4, 5):
            staged = revenues[f"GG_{cutoff}"]
            # Staged planning never meaningfully beats full-horizon planning.
            assert staged <= full * 1.02, (setting, cutoff)
            # And it still beats the purely chronological SL-Greedy baseline
            # within a small tolerance.
            assert staged >= revenues["SLG"] * 0.95, (setting, cutoff)
        # RL-Greedy keeps its edge over SL-Greedy under the protocol too.
        for cutoff in (2, 4, 5):
            assert revenues[f"RLG_{cutoff}"] >= revenues["SLG"] * 0.9, (setting, cutoff)
