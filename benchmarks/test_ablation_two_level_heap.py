"""Ablation -- two-level heap versus a single flat addressable heap.

§5.1 motivates the two-level heap by the cost of Decrease-Key operations on
one giant heap.  The ablation verifies that the data structure choice does not
change the algorithm's output (identical strategies) and reports the timing
difference; at reproduction scale the gap is modest, so only output equality
and sane timings are asserted.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.algorithms.global_greedy import GlobalGreedy


def _run_both(instance):
    two_level = GlobalGreedy(use_two_level_heap=True).run(instance)
    flat = GlobalGreedy(use_two_level_heap=False).run(instance)
    return two_level, flat


def test_ablation_two_level_heap(benchmark, bench_pipelines):
    instance = bench_pipelines["amazon"].instance
    two_level, flat = run_once(benchmark, _run_both, instance)

    print(
        f"\ntwo-level heap: revenue={two_level.revenue:,.2f} "
        f"size={two_level.strategy_size} time={two_level.runtime_seconds:.3f}s"
    )
    print(
        f"flat heap:      revenue={flat.revenue:,.2f} "
        f"size={flat.strategy_size} time={flat.runtime_seconds:.3f}s"
    )

    # The heap layout is an implementation detail: identical decisions.
    assert two_level.strategy.triples() == flat.strategy.triples()
    assert two_level.revenue == pytest.approx(flat.revenue, rel=1e-9)
    assert two_level.runtime_seconds > 0
    assert flat.runtime_seconds > 0
