"""Columnar scalability sweep -- Figure-6-style seeding at production scale.

The paper's Figure 6 demonstrates G-Greedy scaling to 100K-500K users (50M+
candidate triples).  This suite drives the columnar instance core
(:mod:`repro.core.compiled`) at the lower end of that range -- **>= 100k
users and >= 1M candidate (user, item) pairs** at the default benchmark
scale -- and gates the refactor's win:

* the **sweep** generates columnar synthetic instances of growing user
  count (the pair dict is never materialized) and runs G-Greedy seeding
  plus a fixed number of admissions on each, recording wall-clock per
  candidate triple;
* the **head-to-head** at the largest size runs the identical selection on
  the object path (dict-backed adoption table, per-triple seeding loop --
  the PR-2 engine) and asserts the compiled path is **>= 3x** faster with
  **bit-identical** revenue growth curves.

Results are recorded to ``BENCH_scale.json`` so the roadmap's BENCH
trajectory can track the columnar core over time.  In CI smoke mode
(``REPRO_BENCH_SCALE=tiny``) the sweep shrinks and the gate relaxes --
machine variance matters more than the trajectory there.
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import bench_scale, run_once, write_bench_json
from repro.core.constraints import ConstraintChecker
from repro.core.revenue import RevenueModel
from repro.core.selection import SEED_ISOLATED, LazyGreedySelector
from repro.core.strategy import Strategy
from repro.datasets.synthetic import SyntheticConfig, generate_synthetic_columnar

#: Admissions after seeding; keeps the timed region dominated by the seeding
#: sweep (the quantity under test) while proving the full loop end to end.
ADMISSIONS = 100

_RECORD_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_scale.json",
)


def _sweep_settings():
    """User counts and the acceptance gate for the current scale."""
    if bench_scale() == "tiny":
        return (1_000, 2_000, 4_000), 1.5
    return (25_000, 50_000, 100_000), 3.0


def _config(num_users: int) -> SyntheticConfig:
    return SyntheticConfig(
        num_users=num_users, num_items=2_000, num_classes=100,
        candidates_per_user=10, horizon=3, display_limit=2,
        capacity_fraction=0.25, beta=0.5, seed=7,
    )


def _timed_selection(instance, use_compiled: bool):
    """Seed the G-Greedy frontier and admit ``ADMISSIONS`` triples."""
    strategy = Strategy(instance.catalog)
    model = RevenueModel(instance, backend="numpy", compiled=use_compiled)
    selector = LazyGreedySelector(
        instance, model, ConstraintChecker(instance),
        seed_priorities=SEED_ISOLATED, max_selections=ADMISSIONS,
        use_compiled=use_compiled,
    )
    growth_curve = []
    start = time.perf_counter()
    selector.select(strategy, None, growth_curve=growth_curve)
    seconds = time.perf_counter() - start
    return {
        "seconds": seconds,
        "growth_curve": growth_curve,
        "revenue": growth_curve[-1][1] if growth_curve else 0.0,
        "admitted": len(strategy),
        "lookups": model.lookups,
    }


def _run_sweep():
    user_counts, gate = _sweep_settings()
    points = []
    largest = None
    for num_users in user_counts:
        instance = generate_synthetic_columnar(_config(num_users))
        compiled = instance.compiled()
        result = _timed_selection(instance, use_compiled=True)
        points.append({
            "users": num_users,
            "pairs": compiled.num_pairs,
            "triples": compiled.num_candidate_triples(),
            "seconds": result["seconds"],
            "revenue": result["revenue"],
            "tensor_bytes": compiled.memory_footprint()["total"],
        })
        largest = (instance, result)
    instance, compiled_result = largest

    # Head-to-head against the object path: identical data materialized as a
    # dict-backed adoption table, selection run on the per-triple engine.
    object_instance = instance.compiled().to_instance(catalog=instance.catalog)
    object_result = _timed_selection(object_instance, use_compiled=False)
    return {
        "points": points,
        "gate": gate,
        "compiled": compiled_result,
        "object": object_result,
        "speedup": object_result["seconds"] / compiled_result["seconds"],
    }


def test_columnar_scalability_sweep(benchmark):
    stats = run_once(benchmark, _run_sweep)
    points = stats["points"]

    print(f"\ncolumnar G-Greedy seeding sweep (+{ADMISSIONS} admissions):")
    for point in points:
        per_triple = point["seconds"] / point["triples"] * 1e9
        print(
            f"  {point['users']:>8,} users  {point['pairs']:>10,} pairs  "
            f"{point['triples']:>10,} triples  {point['seconds']:7.2f}s  "
            f"({per_triple:6.1f} ns/triple, "
            f"{point['tensor_bytes'] / 1e6:6.1f} MB tensors)"
        )
    print(
        f"head-to-head at {points[-1]['users']:,} users: "
        f"object {stats['object']['seconds']:.2f}s vs "
        f"compiled {stats['compiled']['seconds']:.2f}s "
        f"-> {stats['speedup']:.1f}x (gate >= {stats['gate']}x)"
    )

    write_bench_json(_RECORD_PATH, {
        "scale": bench_scale(),
        "admissions": ADMISSIONS,
        "sweep": points,
        "head_to_head": {
            "users": points[-1]["users"],
            "pairs": points[-1]["pairs"],
            "object_seconds": stats["object"]["seconds"],
            "compiled_seconds": stats["compiled"]["seconds"],
            "speedup": stats["speedup"],
            "revenue": stats["compiled"]["revenue"],
            "bit_identical": (
                stats["compiled"]["growth_curve"]
                == stats["object"]["growth_curve"]
            ),
        },
    })

    # Acceptance gates: the default-scale sweep reaches production size ...
    if bench_scale() != "tiny":
        assert points[-1]["users"] >= 100_000
        assert points[-1]["pairs"] >= 1_000_000
    # ... the sweep grows monotonically and the revenue is real ...
    assert all(b["pairs"] > a["pairs"] for a, b in zip(points, points[1:]))
    assert stats["compiled"]["revenue"] > 0.0
    assert stats["compiled"]["admitted"] == ADMISSIONS
    # ... both engines make the same decisions, bit for bit ...
    assert stats["compiled"]["growth_curve"] == stats["object"]["growth_curve"]
    assert stats["compiled"]["lookups"] == stats["object"]["lookups"]
    # ... and compilation pays at least the gated factor.
    assert stats["speedup"] >= stats["gate"]
