"""§7 extension -- expected revenue under random prices.

The paper proposes (without an empirical evaluation of its own) handling
probabilistic price predictions by a second-order Taylor expansion of the
revenue around the mean price vector, arguing it should beat the naive
"plug in the expected price" heuristic.  This benchmark quantifies exactly
that comparison on a synthetic random-price market: the Taylor estimate must
land closer to the Monte-Carlo ground truth than the mean-price estimate.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.figures import extension_random_prices


def test_extension_random_prices(benchmark):
    result = run_once(
        benchmark,
        extension_random_prices,
        num_users=15,
        num_items=8,
        horizon=4,
        price_std_fraction=0.2,
        num_mc_samples=1500,
        seed=0,
    )
    print("\n" + str(result))

    data = result.data
    assert data["strategy_size"] > 0
    assert data["monte_carlo_ground_truth"] > 0
    # The second-order correction improves on the mean-price heuristic.
    assert data["taylor_abs_error"] <= data["mean_abs_error"]
    # And the Taylor estimate is within a few percent of the ground truth.
    relative_error = data["taylor_abs_error"] / data["monte_carlo_ground_truth"]
    assert relative_error < 0.05
