"""§3.2 / §4 -- exact and approximation algorithms on small instances.

The paper proves that REVMAX with T = 1 is solvable exactly via Max-DCS and
that the relaxed R-REVMAX admits a 1/(4+eps) local-search approximation, but
reports no measurements for either (the local search is dismissed as
impractical).  This benchmark anchors the implementations against each other
on instances small enough for exact reasoning:

* the greedy heuristic cannot beat the exact T = 1 optimum and should land
  close to it;
* the local-search solution value (under the effective R-REVMAX objective)
  must respect its approximation guarantee relative to the greedy solution.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.figures import theory_small_instances


def test_theory_small_instances(benchmark):
    result = run_once(benchmark, theory_small_instances, seed=0)
    print("\n" + str(result))

    data = result.data
    exact = data["t1_exact_revenue"]
    greedy = data["t1_greedy_revenue"]
    assert greedy <= exact + 1e-9
    assert greedy >= 0.8 * exact  # greedy is near-optimal on tiny instances

    # Local search on the relaxed problem produces a strategy whose exact
    # revenue is in the same ballpark as greedy's (both positive; local search
    # is allowed to trade capacity feasibility for objective value).
    assert data["t3_local_search_revenue"] > 0
    assert data["t3_greedy_revenue"] > 0
