"""Table 2 -- running time of the six algorithms on both datasets.

Paper reference (Table 2, minutes on a 2.93 GHz Xeon, Java): Amazon --
GG 4.67, RLG 6.81, SLG 7.95, TopRE 0.78, TopRA 0.45; Epinions -- GG 2.35,
RLG 3.00, SLG 2.71, TopRE 0.68, TopRA 0.16.  Absolute numbers are not
comparable (pure Python, scaled-down instances); the shape to check is that
the greedy algorithms cost more than the baselines while all stay tractable,
and that RL-Greedy costs roughly its permutation count times SL-Greedy.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.figures import table2_running_times


def test_table2_running_times(benchmark, bench_pipelines):
    result = run_once(benchmark, table2_running_times, bench_pipelines,
                      rl_permutations=6)
    print("\n" + str(result))

    for dataset, times in result.data.items():
        # Baselines are at least as fast as the cheapest greedy algorithm.
        cheapest_greedy = min(times["G-Greedy"], times["SL-Greedy"], times["RL-Greedy"])
        assert times["TopRE"] <= cheapest_greedy * 1.5
        assert times["TopRA"] <= cheapest_greedy * 1.5
        # RL-Greedy repeats the per-step greedy, so it is the most expensive of
        # the local algorithms.
        assert times["RL-Greedy"] >= times["SL-Greedy"]
