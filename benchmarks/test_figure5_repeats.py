"""Figure 5 -- histogram of repeat recommendations made by G-Greedy.

Paper reference (Figure 5): with beta = 0.1 almost every user-item pair is
recommended only once or twice (the dynamic adoption probability collapses on
repetition); as beta grows to 0.9 the histogram spreads right, i.e. G-Greedy
exploits the lack of saturation to repeat recommendations and boost revenue.
The reproduction checks that the mean number of repeats is non-decreasing in
beta and that strong saturation concentrates mass on a single recommendation.
"""

from __future__ import annotations


from benchmarks.conftest import run_once
from repro.experiments.figures import figure5_repeat_histograms


def _mean_repeats(counts):
    total_pairs = sum(counts.values())
    total_recommendations = sum(k * v for k, v in counts.items())
    return total_recommendations / total_pairs


def test_figure5_repeat_histograms(benchmark, bench_pipelines):
    result = run_once(
        benchmark,
        figure5_repeat_histograms,
        bench_pipelines["amazon"],
        betas=(0.1, 0.5, 0.9),
    )
    print("\n" + str(result))

    histograms = result.data["histograms"]
    assert set(histograms) == {0.1, 0.5, 0.9}
    for counts in histograms.values():
        assert sum(counts.values()) > 0

    # Repeats increase with beta (weaker saturation).
    assert _mean_repeats(histograms[0.9]) >= _mean_repeats(histograms[0.5]) - 1e-9
    assert _mean_repeats(histograms[0.5]) >= _mean_repeats(histograms[0.1]) - 1e-9

    # The histogram is far more concentrated on one-or-two repeats under strong
    # saturation than under weak saturation (the paper's skew-shift).
    def low_repeat_share(counts):
        return (counts.get(1, 0) + counts.get(2, 0)) / sum(counts.values())

    assert low_repeat_share(histograms[0.1]) >= low_repeat_share(histograms[0.9]) + 0.1
    # And under strong saturation long repeat chains are rare.
    strong = histograms[0.1]
    high_repeat_share = sum(v for k, v in strong.items() if k >= 4) / sum(strong.values())
    assert high_repeat_share <= 0.1
