"""Figure 4 -- expected revenue versus strategy size for GG / SLG / RLG.

Paper reference (Figure 4): G-Greedy's revenue-vs-|S| curve shows classic
diminishing marginal returns (concave growth); SL-Greedy and RL-Greedy show
the same overall trend but with visible "segments" corresponding to switches
between time steps.  The reproduction checks that all curves are
non-decreasing, that G-Greedy's early increments dominate its late increments
(concavity in aggregate), and that G-Greedy ends highest.
"""

from __future__ import annotations


from benchmarks.conftest import run_once
from repro.experiments.figures import figure4_revenue_growth_curves


def test_figure4_growth_curves(benchmark, bench_pipelines):
    result = run_once(
        benchmark,
        figure4_revenue_growth_curves,
        bench_pipelines["amazon"],
        rl_permutations=6,
    )
    print("\n" + str(result))

    curves = result.data["curves"]
    assert set(curves) == {"G-Greedy", "SL-Greedy", "RL-Greedy"}
    for name, curve in curves.items():
        revenues = [revenue for _, revenue in curve]
        assert all(later >= earlier - 1e-9
                   for earlier, later in zip(revenues, revenues[1:])), name

    # Aggregate concavity of the G-Greedy curve: the first half of the
    # selections contributes more revenue than the second half.
    gg = [revenue for _, revenue in curves["G-Greedy"]]
    midpoint = len(gg) // 2
    first_half_gain = gg[midpoint - 1] - 0.0
    second_half_gain = gg[-1] - gg[midpoint - 1]
    assert first_half_gain >= second_half_gain

    # G-Greedy finishes at least as high as the local greedy algorithms.
    assert gg[-1] >= [revenue for _, revenue in curves["SL-Greedy"]][-1] * 0.98
