"""Shared fixtures and helpers for the reproduction benchmarks.

Every benchmark regenerates one exhibit (table or figure) of the paper's
evaluation at *reproduction scale* and prints the resulting numbers, so that
``pytest benchmarks/ --benchmark-only`` both measures running time and leaves
a textual record of the reproduced data (collected into EXPERIMENTS.md).

The dataset scale is controlled by the ``REPRO_BENCH_SCALE`` environment
variable (``tiny`` / ``small`` / ``medium``; default ``small``).  Figures that
sweep many configurations drop to the next-smaller scale automatically so the
whole suite stays laptop-friendly.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.experiments.harness import prepare_dataset  # noqa: E402

_SWEEP_FALLBACK = {"medium": "small", "small": "tiny", "tiny": "tiny"}


def bench_scale() -> str:
    """Scale used by single-configuration benchmarks.

    Read lazily (at fixture time, not import time) so that the root
    conftest's ``--run-benchmarks`` smoke mode -- which pins the scale env
    variables in ``pytest_configure``, *after* this module is imported as an
    initial conftest -- takes effect.
    """
    return os.environ.get("REPRO_BENCH_SCALE", "small")


def sweep_scale() -> str:
    """Scale used by benchmarks that sweep many configurations (lazy)."""
    return os.environ.get("REPRO_BENCH_SWEEP_SCALE", _SWEEP_FALLBACK[bench_scale()])


def write_bench_json(path: str, document: dict) -> None:
    """Atomically write a ``BENCH_*.json`` record (temp file + rename).

    The benchmark records double as roadmap telemetry, so a crashed or
    concurrent run (the smoke job and a local sweep racing, say) must never
    leave a truncated or half-updated file: the document is serialized to a
    sibling temp file and atomically renamed over the target.  Keys are
    sorted so reruns produce byte-stable, diffable records.

    Every record is stamped with the execution environment that decides
    which engine tier ran -- the active kernel tier (``REPRO_KERNEL``), the
    numba version (``null`` when not installed) and the core count -- so
    numbers from the native, fallback and parallel configurations are never
    compared without their context.
    """
    from repro.core import kernels

    document = dict(document)
    document.setdefault("kernel", kernels.active_kernel())
    document.setdefault("numba_version", kernels.numba_version())
    document.setdefault("cpu_count", os.cpu_count() or 1)
    path = os.path.abspath(path)
    descriptor, staging = tempfile.mkstemp(
        dir=os.path.dirname(path), prefix=os.path.basename(path) + ".",
        suffix=".tmp",
    )
    try:
        with os.fdopen(descriptor, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(staging, path)
    except BaseException:
        try:
            os.unlink(staging)
        except OSError:  # pragma: no cover - best-effort cleanup
            pass
        raise


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark timing.

    The experiment functions are deterministic and relatively expensive, so a
    single round gives a representative timing without multiplying the cost of
    the suite.
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture(scope="session")
def bench_pipelines():
    """Amazon-like and Epinions-like pipelines at the single-figure scale."""
    scale = bench_scale()
    return {
        "amazon": prepare_dataset("amazon", scale=scale, seed=0),
        "epinions": prepare_dataset("epinions", scale=scale, seed=0),
    }


@pytest.fixture(scope="session")
def sweep_pipelines():
    """Pipelines at the (smaller) sweep scale for multi-configuration figures."""
    scale = sweep_scale()
    return {
        "amazon": prepare_dataset("amazon", scale=scale, seed=0),
        "epinions": prepare_dataset("epinions", scale=scale, seed=0),
    }
