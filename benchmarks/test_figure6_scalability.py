"""Figure 6 -- running time of G-Greedy on synthetic data of growing size.

Paper reference (Figure 6): on synthetic instances with 100K-500K users (50M
to 250M candidate triples) G-Greedy's running time grows almost linearly in
the number of candidate triples, finishing the largest instance (2.5x the
Netflix dataset) in about 13 minutes.  The reproduction sweeps growing user
counts at laptop scale and checks near-linear growth: the time per candidate
triple should stay within a small factor across the sweep.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro.datasets.synthetic import SyntheticConfig
from repro.experiments.figures import figure6_scalability


def test_figure6_scalability(benchmark):
    config = SyntheticConfig(
        num_items=200, num_classes=40, candidates_per_user=15, horizon=5,
        display_limit=2, beta=0.5, seed=0,
    )
    result = run_once(
        benchmark,
        figure6_scalability,
        user_counts=(250, 500, 1000, 2000),
        base_config=config,
    )
    print("\n" + str(result))

    points = result.data["points"]
    assert len(points) == 4
    triples = np.array([p[0] for p in points], dtype=float)
    seconds = np.array([p[1] for p in points], dtype=float)
    assert np.all(np.diff(triples) > 0)

    # Near-linear scalability: fit the log-log growth exponent over the larger
    # instances (the smallest point is dominated by fixed overheads) and check
    # it stays close to 1 -- the paper's Figure 6 shows almost-linear growth.
    slope = np.polyfit(np.log(triples[1:]), np.log(seconds[1:]), 1)[0]
    print(f"log-log growth exponent (larger instances): {slope:.2f}")
    assert slope <= 1.4

    # Revenue grows with the number of users (more candidates to serve).
    revenues = result.data["revenues"]
    assert revenues[-1] > revenues[0]
