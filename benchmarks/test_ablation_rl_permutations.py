"""Ablation -- number of sampled permutations N in RL-Greedy.

The paper fixes N = 20 without studying the trade-off.  This ablation sweeps
N and checks the expected behaviour: revenue is non-decreasing in N (more
permutations can only help, since the best one is kept and the chronological
order is always included) while running time grows roughly linearly.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.algorithms.local_greedy import RandomizedLocalGreedy


def _sweep(instance, permutation_counts):
    rows = []
    for count in permutation_counts:
        result = RandomizedLocalGreedy(num_permutations=count, seed=0).run(instance)
        rows.append((count, result.revenue, result.runtime_seconds))
    return rows


def test_ablation_rl_permutations(benchmark, sweep_pipelines):
    instance = sweep_pipelines["amazon"].instance
    rows = run_once(benchmark, _sweep, instance, (1, 4, 8, 16))

    print("\nN    revenue          seconds")
    for count, revenue, seconds in rows:
        print(f"{count:<4d} {revenue:>14,.2f}  {seconds:>8.3f}")

    revenues = [revenue for _, revenue, _ in rows]
    times = [seconds for _, _, seconds in rows]
    # More permutations never hurt revenue (best-of-N with a fixed seed path).
    assert all(later >= earlier - 1e-9
               for earlier, later in zip(revenues, revenues[1:]))
    # Cost grows with N (the largest sweep is the slowest of the set).
    assert times[-1] >= max(times[:-1]) * 0.8
