"""Table 1 -- dataset statistics of the reproduction datasets.

Paper reference (Table 1): Amazon has 23.0K users / 4.2K items / 681K ratings
/ 16.1M positive-q triples / 94 classes; Epinions has 21.3K users / 1.1K items
/ 32.9K ratings / 14.9M triples / 43 classes; the synthetic datasets have
100K-500K users, 20K items, 500 classes and 50M-250M triples.  The
reproduction regenerates the same statistics at reproduction scale; the shape
to check is users >> items, Amazon denser than Epinions, skewed Amazon class
sizes vs balanced Epinions class sizes.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.datasets.synthetic import SyntheticConfig
from repro.experiments.figures import table1_dataset_statistics


def test_table1_dataset_statistics(benchmark, bench_pipelines):
    result = run_once(
        benchmark,
        table1_dataset_statistics,
        bench_pipelines,
        synthetic_config=SyntheticConfig(seed=0),
    )
    print("\n" + str(result))

    rows = {row.name: row for row in result.data["rows"]}
    amazon, epinions = rows["amazon"], rows["epinions"]
    # Shape checks mirroring the paper's Table 1.
    assert amazon.num_users > amazon.num_items
    assert epinions.num_users > epinions.num_items
    assert amazon.num_positive_triples > 0
    assert epinions.num_positive_triples > 0
    # Amazon's class sizes are skewed; Epinions' are comparatively balanced.
    assert amazon.largest_class > 2 * amazon.median_class
    assert epinions.largest_class <= 3 * epinions.median_class
    # Synthetic input size equals users * candidates * horizon by construction.
    synthetic = rows["synthetic"]
    assert synthetic.num_ratings is None
    assert synthetic.num_positive_triples > amazon.num_positive_triples
