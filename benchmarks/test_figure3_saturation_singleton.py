"""Figure 3 -- revenue at fixed saturation factors with singleton item classes.

Paper reference (Figure 3): with every item in its own class the hierarchy of
Figure 2 persists; SL-Greedy remains behind RL-Greedy but the difference
shrinks as beta grows (weaker saturation makes repeat decisions easier).
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.figures import figure3_revenue_by_saturation_singleton


def test_figure3_singleton_classes(benchmark, sweep_pipelines):
    result = run_once(
        benchmark,
        figure3_revenue_by_saturation_singleton,
        sweep_pipelines,
        betas=(0.1, 0.5, 0.9),
        capacity_distributions=("normal", "exponential"),
        rl_permutations=6,
    )
    print("\n" + str(result))

    for setting, per_beta in result.data.items():
        for beta_label, revenues in per_beta.items():
            context = f"{setting}/{beta_label}"
            assert revenues["G-Greedy"] >= revenues["SL-Greedy"] * 0.95, context
            assert revenues["RL-Greedy"] >= revenues["SL-Greedy"] * 0.98, context
            assert revenues["G-Greedy"] > revenues["TopRA"], context
        # Revenue should not decrease as saturation weakens (larger beta allows
        # profitable repeats).
        assert per_beta["beta=0.9"]["G-Greedy"] >= per_beta["beta=0.1"]["G-Greedy"] * 0.95
