"""Sharded G-Greedy at scale -- user-partitioned selection across processes.

The columnar core (PR 3, ``BENCH_scale.json``) made one core fast; the
sharded solver (:mod:`repro.shard`) spreads the same selection across
worker processes attached zero-copy to the compiled tensors.  This suite
drives it at production size -- **well past 250k users / 2.5M candidate
pairs, topping out at 400k users / 4M pairs / 20M triples** at the default
benchmark scale (T = 5, the paper's horizon) -- and gates the win:

* the **sweep** generates columnar synthetic instances of growing user
  count and runs the sharded solve (seeding + a fixed number of
  admissions) at 4 workers on each, recording wall-clock;
* the **head-to-head** at the largest size runs the identical selection on
  the serial columnar path and asserts the sharded run is **bit-identical**
  (revenue growth curve and admitted triples) and **>= 2x** faster at 4
  workers -- the speedup gate applies when the machine actually has >= 4
  cores and the scale is not the CI smoke tier; otherwise the numbers are
  recorded as telemetry with a sanity bound only (a single-core box pays
  pure process overhead and cannot certify parallel speedups);
* the **auto head-to-head** reruns the same selection with
  ``shards="auto"`` and asserts the measured cost model
  (:mod:`repro.autotune`) never loses to the fixed 4-worker configuration:
  on a single-core box auto degrades to the serial path and beats
  always-parallel outright, on a many-core box it picks sharding and
  matches it.  The decision and its calibrated cost model are recorded in
  the bench JSON.

Results are recorded to ``BENCH_shard.json`` (atomically; see
``write_bench_json``) so the roadmap's BENCH trajectory and the nightly
scale workflow can track the sharded solver over time.
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import bench_scale, run_once, write_bench_json
from repro.core.constraints import ConstraintChecker
from repro.core.revenue import RevenueModel
from repro.core.selection import SEED_ISOLATED, LazyGreedySelector
from repro.core.strategy import Strategy
from repro.datasets.synthetic import SyntheticConfig, generate_synthetic_columnar

#: Worker processes of the gated head-to-head (the ISSUE's acceptance point).
WORKERS = 4

#: Admissions after seeding; keeps the timed region dominated by the
#: parallelizable seeding sweep while proving the full coordinator protocol
#: (proposals, capacity drops, admissions) end to end.
ADMISSIONS = 100

_RECORD_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_shard.json",
)


def _sweep_settings():
    """User counts and the speedup gate for the current scale / machine.

    The head-to-head instance is sized so the parallelizable seeding sweep
    dominates the sharded path's fixed costs (worker spawn, shared-memory
    publication, coordinator round trips); the 2x gate applies wherever the
    hardware can actually run 4 workers concurrently.  Boxes with fewer
    cores than workers cannot certify a parallel speedup at all -- 4
    processes time-slicing one core measure pure overhead -- so the gate
    drops to a sanity bound there and the numbers (plus ``cpu_count``) are
    recorded as telemetry.  ``REPRO_SHARD_SPEEDUP_GATE`` overrides the gate
    either way (e.g. tightening it on dedicated many-core hardware).
    """
    cores = os.cpu_count() or 1
    if bench_scale() == "tiny":
        # The tiny head-to-head solves in tens of milliseconds -- less than
        # the fixed worker-spawn + publish cost -- so no core count makes a
        # speedup attainable; smoke mode only sanity-checks the protocol.
        users, gate = (2_000, 4_000, 8_000), 0.02
    else:
        users, gate = ((100_000, 250_000, 400_000),
                       (2.0 if cores >= WORKERS else 0.1))
    return users, float(os.environ.get("REPRO_SHARD_SPEEDUP_GATE", gate))


def _config(num_users: int) -> SyntheticConfig:
    return SyntheticConfig(
        num_users=num_users, num_items=2_000, num_classes=100,
        candidates_per_user=10, horizon=5, display_limit=2,
        capacity_fraction=0.25, beta=0.5, seed=7,
    )


def _timed_selection(instance, shards, jobs):
    """Seed the G-Greedy frontier and admit ``ADMISSIONS`` triples.

    ``shards=None`` is the serial columnar path; otherwise the sharded
    solver runs with worker startup, shared-memory publication and shutdown
    all inside the timed region (that overhead is part of the honest cost).
    Each timed run recomputes the isolated-revenue matrix -- worker
    processes always do, so the serial path must not keep a warm cache
    across repeats.
    """
    instance.compiled()._isolated = None
    strategy = Strategy(instance.catalog)
    model = RevenueModel(instance, backend="numpy")
    selector = LazyGreedySelector(
        instance, model, ConstraintChecker(instance),
        seed_priorities=SEED_ISOLATED, max_selections=ADMISSIONS,
        shards=shards, jobs=jobs,
    )
    growth_curve = []
    start = time.perf_counter()
    selector.select(strategy, None, growth_curve=growth_curve)
    seconds = time.perf_counter() - start
    decision = selector.last_parallel_decision
    return {
        "seconds": seconds,
        "growth_curve": growth_curve,
        "revenue": growth_curve[-1][1] if growth_curve else 0.0,
        "admitted": len(strategy),
        "triples": sorted(strategy.triples()),
        "decision": None if decision is None else decision.as_dict(),
    }


def _run_sweep():
    user_counts, gate = _sweep_settings()
    points = []
    largest = None
    for num_users in user_counts:
        instance = generate_synthetic_columnar(_config(num_users))
        compiled = instance.compiled()
        result = _timed_selection(instance, shards=WORKERS, jobs=WORKERS)
        points.append({
            "users": num_users,
            "pairs": compiled.num_pairs,
            "triples": compiled.num_candidate_triples(),
            "workers": WORKERS,
            "seconds": result["seconds"],
            "revenue": result["revenue"],
        })
        largest = (instance, result)
    instance, sharded_result = largest

    # Best of two at the gate point, both paths: one cold run's allocator /
    # page-cache jitter must not decide a 2x gate either way.
    second_sharded = _timed_selection(instance, shards=WORKERS, jobs=WORKERS)
    if second_sharded["seconds"] < sharded_result["seconds"]:
        sharded_result = second_sharded
    serial_result = _timed_selection(instance, shards=None, jobs=None)
    second_serial = _timed_selection(instance, shards=None, jobs=None)
    if second_serial["seconds"] < serial_result["seconds"]:
        serial_result = second_serial

    # Auto head-to-head: same selection, shards picked by the measured cost
    # model.  Judged against the fixed 4-worker configuration it replaces --
    # a single-core box degrades to serial and beats always-parallel
    # outright, a many-core box picks sharding and matches it.
    auto_result = _timed_selection(instance, shards="auto", jobs="auto")
    second_auto = _timed_selection(instance, shards="auto", jobs="auto")
    if second_auto["seconds"] < auto_result["seconds"]:
        auto_result = second_auto
    return {
        "points": points,
        "gate": gate,
        "sharded": sharded_result,
        "serial": serial_result,
        "auto": auto_result,
        "speedup": serial_result["seconds"] / sharded_result["seconds"],
        "auto_speedup": sharded_result["seconds"] / auto_result["seconds"],
        "auto_speedup_vs_serial":
            serial_result["seconds"] / auto_result["seconds"],
    }


def test_sharded_scalability_sweep(benchmark):
    stats = run_once(benchmark, _run_sweep)
    points = stats["points"]
    cores = os.cpu_count() or 1

    print(f"\nsharded G-Greedy sweep at {WORKERS} workers "
          f"(+{ADMISSIONS} admissions, {cores} cores):")
    for point in points:
        per_triple = point["seconds"] / point["triples"] * 1e9
        print(
            f"  {point['users']:>8,} users  {point['pairs']:>10,} pairs  "
            f"{point['triples']:>10,} triples  {point['seconds']:7.2f}s  "
            f"({per_triple:6.1f} ns/triple)"
        )
    print(
        f"head-to-head at {points[-1]['users']:,} users: "
        f"serial {stats['serial']['seconds']:.2f}s vs "
        f"sharded({WORKERS}) {stats['sharded']['seconds']:.2f}s "
        f"-> {stats['speedup']:.2f}x (gate >= {stats['gate']}x)"
    )
    auto_decision = stats["auto"]["decision"]
    auto_gate = float(os.environ.get(
        "REPRO_AUTO_SPEEDUP_GATE", 1.0 if cores < WORKERS else 0.9
    ))
    print(
        f"auto head-to-head: shards='auto' resolved to "
        f"{'sharded' if auto_decision and auto_decision['parallel'] else 'serial'} "
        f"in {stats['auto']['seconds']:.2f}s -> {stats['auto_speedup']:.2f}x "
        f"vs fixed sharded({WORKERS}), "
        f"{stats['auto_speedup_vs_serial']:.2f}x vs serial "
        f"(gate >= {auto_gate}x)"
    )

    bit_identical = (
        stats["sharded"]["growth_curve"] == stats["serial"]["growth_curve"]
        and stats["sharded"]["triples"] == stats["serial"]["triples"]
    )
    write_bench_json(_RECORD_PATH, {
        "scale": bench_scale(),
        "admissions": ADMISSIONS,
        "workers": WORKERS,
        "cpu_count": cores,
        "sweep": points,
        "head_to_head": {
            "users": points[-1]["users"],
            "pairs": points[-1]["pairs"],
            "serial_seconds": stats["serial"]["seconds"],
            "sharded_seconds": stats["sharded"]["seconds"],
            "speedup": stats["speedup"],
            "gate": stats["gate"],
            "revenue": stats["sharded"]["revenue"],
            "bit_identical": bit_identical,
            "auto": {
                "seconds": stats["auto"]["seconds"],
                "speedup": stats["auto_speedup"],
                "speedup_vs_serial": stats["auto_speedup_vs_serial"],
                "gate": auto_gate,
                "decision": auto_decision,
                "bit_identical": (
                    stats["auto"]["growth_curve"]
                    == stats["serial"]["growth_curve"]
                    and stats["auto"]["triples"] == stats["serial"]["triples"]
                ),
            },
        },
    })

    # Acceptance gates: the default-scale sweep reaches production size ...
    if bench_scale() != "tiny":
        assert points[-1]["users"] >= 250_000
        assert points[-1]["pairs"] >= 2_500_000
    # ... the sweep grows monotonically and the selection is real ...
    assert all(b["pairs"] > a["pairs"] for a, b in zip(points, points[1:]))
    assert stats["sharded"]["revenue"] > 0.0
    assert stats["sharded"]["admitted"] == ADMISSIONS
    # ... sharded and serial make the same decisions, bit for bit ...
    assert stats["sharded"]["growth_curve"] == stats["serial"]["growth_curve"]
    assert stats["sharded"]["triples"] == stats["serial"]["triples"]
    # ... and partitioning pays at least the gated factor (>= 2x at 4
    # workers wherever >= 4 cores exist; telemetry-only below that).
    assert stats["speedup"] >= stats["gate"]
    # The auto configuration never loses to always-parallel: on a
    # single-core box the cost model must degrade to serial (and the
    # avoided process overhead is the speedup), on a many-core box it may
    # shard and merely has to match the fixed configuration.
    assert stats["auto"]["growth_curve"] == stats["serial"]["growth_curve"]
    assert stats["auto"]["triples"] == stats["serial"]["triples"]
    if cores < WORKERS:
        assert auto_decision is None or not auto_decision["parallel"]
    assert stats["auto_speedup"] >= auto_gate
