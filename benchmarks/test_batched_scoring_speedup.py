"""Batched candidate scoring and the parallel RL-Greedy runner.

Two measurements, recorded to ``BENCH_selection.json`` so the roadmap's BENCH
trajectory can track the selection engine over time:

* **batched seeding** -- the exact workload heap seeding performs in the
  selection engine (score every remaining candidate against the strategy
  built so far), run once as the pre-refactor scalar loop (one
  ``marginal_revenue`` call per candidate) and once as a single
  ``marginal_revenue_batch`` call.  Both paths use the numpy backend and a
  fresh group cache; the batch wins by bucketing candidates per
  (user, class) group -- one shared "before" revenue and one broadcasted
  kernel launch per bucket instead of one launch per candidate.  Gate: >=3x
  at the default (small) benchmark scale.
* **serial vs parallel RL-Greedy** -- the same permutation set evaluated
  with ``jobs=1`` and ``jobs>1``, asserting identical outputs and recording
  both wall-clocks.  No speed gate: the win scales with the machine's core
  count, which CI runners do not guarantee (a single-core box pays pure
  process overhead).
"""

from __future__ import annotations

import json
import os
import time

import pytest

from benchmarks.conftest import bench_scale, run_once, write_bench_json
from repro.algorithms.global_greedy import GlobalGreedy
from repro.algorithms.local_greedy import RandomizedLocalGreedy
from repro.core.problem import AdoptionTable, RevMaxInstance
from repro.core.revenue import RevenueModel
from repro.datasets.synthetic import SyntheticConfig, generate_synthetic_instance

#: Figure-6 generator knobs, biased towards dense same-class competition
#: (same shape as ``test_vectorized_speedup``; scale-independent on purpose,
#: so the recorded trajectory stays comparable across runs).
FIGURE6_CONFIG = SyntheticConfig(
    num_users=40, num_items=60, num_classes=4, candidates_per_user=30,
    horizon=10, display_limit=6, beta=0.6, seed=0,
)

#: Factor applied to the generator's adoption probabilities so the greedy
#: builds dense (user, class) groups before marginals turn negative.
ADOPTION_SCALE = 0.15

_RECORD_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_selection.json",
)


def _record(section: str, payload: dict) -> None:
    """Merge one section into ``BENCH_selection.json`` (atomic write)."""
    document = {}
    if os.path.exists(_RECORD_PATH):
        with open(_RECORD_PATH) as handle:
            document = json.load(handle)
    document[section] = payload
    document["scale"] = bench_scale()
    write_bench_json(_RECORD_PATH, document)


def _dense_instance() -> RevMaxInstance:
    instance = generate_synthetic_instance(FIGURE6_CONFIG)
    table = AdoptionTable(instance.horizon)
    for user, item in instance.adoption.pairs():
        table.set(user, item, instance.adoption.get(user, item) * ADOPTION_SCALE)
    return RevMaxInstance(
        num_users=instance.num_users,
        catalog=instance.catalog,
        horizon=instance.horizon,
        display_limit=instance.display_limit,
        prices=instance.prices,
        capacities=instance.capacities,
        betas=instance.betas,
        adoption=table,
        name=f"{instance.name}-sparse-adoption",
    )


def _seeding_comparison(instance):
    """Time the scalar and batched seeding sweeps over the same frontier."""
    strategy = GlobalGreedy().build_strategy(instance)
    candidates = [z for z in instance.candidate_triples() if z not in strategy]

    def scalar_sweep():
        model = RevenueModel(instance, backend="numpy")
        start = time.perf_counter()
        values = [model.marginal_revenue(strategy, z) for z in candidates]
        return time.perf_counter() - start, values

    def batched_sweep():
        model = RevenueModel(instance, backend="numpy")
        start = time.perf_counter()
        values = model.marginal_revenue_batch(strategy, candidates)
        return time.perf_counter() - start, values

    # Warm both paths once (array allocators, code paths), then measure.
    scalar_sweep()
    batched_sweep()
    scalar_seconds, scalar_values = scalar_sweep()
    batched_seconds, batched_values = batched_sweep()
    return {
        "strategy_size": len(strategy),
        "candidates": len(candidates),
        "scalar_seconds": scalar_seconds,
        "batched_seconds": batched_seconds,
        "speedup": scalar_seconds / batched_seconds,
        "scalar_values": scalar_values,
        "batched_values": batched_values,
    }


def test_batched_seeding_speedup(benchmark):
    instance = _dense_instance()
    stats = run_once(benchmark, _seeding_comparison, instance)

    print(
        f"\nseeding sweep on {instance.name}: {stats['candidates']:,} candidates "
        f"against a {stats['strategy_size']:,}-triple strategy"
    )
    print(
        f"scalar:  {stats['scalar_seconds'] * 1e3:8.1f}ms   "
        f"batched: {stats['batched_seconds'] * 1e3:8.1f}ms   "
        f"speedup: {stats['speedup']:.1f}x"
    )
    _record("batched_seeding", {
        key: stats[key]
        for key in ("strategy_size", "candidates", "scalar_seconds",
                    "batched_seconds", "speedup")
    })

    # Same numbers, candidate for candidate.
    assert stats["batched_values"] == pytest.approx(
        stats["scalar_values"], rel=1e-9, abs=1e-12
    )
    # The ISSUE acceptance gate (relaxed to a sanity bound in smoke mode,
    # where CI machine variance matters more than the trajectory).
    gate = 3.0 if bench_scale() != "tiny" else 1.2
    assert stats["speedup"] >= gate


def _rl_greedy_comparison(instance, permutations, jobs):
    serial = RandomizedLocalGreedy(num_permutations=permutations, seed=0)
    parallel = RandomizedLocalGreedy(num_permutations=permutations, seed=0,
                                     jobs=jobs)
    start = time.perf_counter()
    serial_strategy = serial.build_strategy(instance)
    serial_seconds = time.perf_counter() - start
    start = time.perf_counter()
    parallel_strategy = parallel.build_strategy(instance)
    parallel_seconds = time.perf_counter() - start
    return {
        "permutations": permutations,
        "jobs": jobs,
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": serial_seconds / parallel_seconds,
        "identical": serial_strategy.triples() == parallel_strategy.triples(),
        "best_order_match": (
            serial.last_extras["best_order"] == parallel.last_extras["best_order"]
        ),
    }


def test_parallel_rl_greedy_wall_clock(benchmark, bench_pipelines):
    instance = bench_pipelines["amazon"].instance
    jobs = min(4, os.cpu_count() or 1)
    stats = run_once(benchmark, _rl_greedy_comparison, instance, 6, max(2, jobs))

    print(
        f"\nRL-Greedy ({stats['permutations']} permutations) on {instance.name}: "
        f"serial {stats['serial_seconds']:.3f}s, "
        f"jobs={stats['jobs']} {stats['parallel_seconds']:.3f}s "
        f"({stats['speedup']:.2f}x, {os.cpu_count()} cores)"
    )
    _record("parallel_rl_greedy", {
        key: stats[key]
        for key in ("permutations", "jobs", "serial_seconds",
                    "parallel_seconds", "speedup", "identical")
    })

    # Correctness is the gate; the speedup is hardware-dependent telemetry.
    assert stats["identical"]
    assert stats["best_order_match"]
