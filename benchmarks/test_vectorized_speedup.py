"""Speedup of the NumPy revenue engine over the pure-Python seed engine.

Two measurements, both recorded as the ``speedup`` trajectory the roadmap's
BENCH records track over time:

* **engine workload** -- a greedy-shaped access pattern on a Figure-6
  synthetic instance: eager marginal-revenue sweeps over a candidate pool
  while the strategy is built, followed by re-evaluation rounds over the
  finished strategy (the pattern RL-Greedy's permutation scoring, the
  lazy-forward refreshes and the experiment harness all exhibit).  The
  workload runs once with the seed engine (``backend="python",
  cache=False``) and once with the default engine (``backend="numpy"`` +
  incremental group cache), makes the identical sequence of ``RevenueModel``
  calls, must select the identical triples, and the wall-clock ratio is the
  recorded speedup.  The ISSUE gate is >= 5x: the incremental cache turns
  repeated "before" evaluations into dictionary hits and the vectorized
  kernel accelerates the dense-group recomputations.
* **kernel microbenchmark** -- a single large (user, class) group evaluated
  by both kernels directly, isolating the pure vectorization win (the O(n^2)
  pairwise matrices dominate and NumPy wins by an order of magnitude).

The engine instance uses the Figure-6 synthetic generator with the adoption
probabilities scaled down to recommender-realistic magnitudes (a top-N
recommender rarely predicts 50% adoption); lower per-triple probabilities
keep marginal revenues positive for longer, so the greedy builds the dense
(user, class) groups -- up to ``display_limit * horizon`` triples -- where
group evaluation is genuinely expensive.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.core.constraints import ConstraintChecker
from repro.core.entities import Triple
from repro.core.problem import AdoptionTable, RevMaxInstance
from repro.core.revenue import RevenueModel, group_revenue
from repro.core.strategy import Strategy
from repro.core.vectorized import vectorized_group_revenue
from repro.datasets.synthetic import SyntheticConfig, generate_synthetic_instance

#: Figure-6 generator knobs, biased towards dense same-class competition.
FIGURE6_CONFIG = SyntheticConfig(
    num_users=40, num_items=60, num_classes=4, candidates_per_user=30,
    horizon=10, display_limit=6, beta=0.6, seed=0,
)

#: Factor applied to the generator's adoption probabilities (see module doc).
ADOPTION_SCALE = 0.15

#: Workload shape: candidate-pool size, greedy additions, re-evaluation rounds.
SWEEP_CANDIDATES = 300
SWEEP_STEPS = 40
AUDIT_ROUNDS = 30


def _dense_figure6_instance() -> RevMaxInstance:
    """Figure-6 synthetic instance with recommender-scale adoption rates."""
    instance = generate_synthetic_instance(FIGURE6_CONFIG)
    table = AdoptionTable(instance.horizon)
    for user, item in instance.adoption.pairs():
        table.set(user, item, instance.adoption.get(user, item) * ADOPTION_SCALE)
    return RevMaxInstance(
        num_users=instance.num_users,
        catalog=instance.catalog,
        horizon=instance.horizon,
        display_limit=instance.display_limit,
        prices=instance.prices,
        capacities=instance.capacities,
        betas=instance.betas,
        adoption=table,
        name=f"{instance.name}-sparse-adoption",
    )


def _sweep_workload(instance, model):
    """Greedy build + re-evaluation rounds; returns (triples, checksum, time).

    The checksum accumulates every revenue and marginal revenue the workload
    computes, so the two engines can be checked for numerical agreement call
    by call, not just on the end state.
    """
    candidates = sorted(instance.candidate_triples())[:SWEEP_CANDIDATES]
    checker = ConstraintChecker(instance)
    strategy = Strategy(instance.catalog)
    checksum = 0.0
    start = time.perf_counter()
    for _ in range(SWEEP_STEPS):
        best, best_value = None, 0.0
        for triple in candidates:
            if triple in strategy:
                continue
            value = model.marginal_revenue(strategy, triple)
            checksum += value
            if value > best_value and checker.can_add(strategy, triple):
                best, best_value = triple, value
        if best is None:
            break
        strategy.add(best)
    for _ in range(AUDIT_ROUNDS):
        checksum += model.revenue(strategy)
        for triple in candidates:
            if triple not in strategy:
                checksum += model.marginal_revenue(strategy, triple)
    elapsed = time.perf_counter() - start
    return strategy.triples(), checksum, elapsed


def _run_engine_comparison(instance):
    python_model = RevenueModel(instance, backend="python", cache=False)
    numpy_model = RevenueModel(instance, backend="numpy")
    python_triples, python_checksum, python_seconds = _sweep_workload(
        instance, python_model
    )
    numpy_triples, numpy_checksum, numpy_seconds = _sweep_workload(
        instance, numpy_model
    )
    return {
        "python_seconds": python_seconds,
        "numpy_seconds": numpy_seconds,
        "speedup": python_seconds / numpy_seconds,
        "python_triples": python_triples,
        "numpy_triples": numpy_triples,
        "python_checksum": python_checksum,
        "numpy_checksum": numpy_checksum,
        "python_evaluations": python_model.evaluations,
        "numpy_evaluations": numpy_model.evaluations,
        "numpy_cache_hits": numpy_model.cache_hits,
    }


def test_vectorized_engine_speedup(benchmark):
    instance = _dense_figure6_instance()
    stats = run_once(benchmark, _run_engine_comparison, instance)

    print(
        f"\nengine workload on {instance.name} "
        f"({instance.num_candidate_triples():,} candidate triples)"
    )
    print(
        f"python engine:  {stats['python_seconds']:.3f}s "
        f"({stats['python_evaluations']:,} kernel evaluations)"
    )
    print(
        f"numpy engine:   {stats['numpy_seconds']:.3f}s "
        f"({stats['numpy_evaluations']:,} kernel evaluations, "
        f"{stats['numpy_cache_hits']:,} cache hits)"
    )
    print(f"speedup: {stats['speedup']:.1f}x")

    # Identical behaviour: same selected triples, same numbers call by call.
    assert stats["numpy_triples"] == stats["python_triples"]
    assert stats["numpy_checksum"] == pytest.approx(
        stats["python_checksum"], rel=1e-9
    )
    # The cache did real work and the counter only counted kernel work.
    assert stats["numpy_cache_hits"] > stats["numpy_evaluations"]
    assert stats["numpy_evaluations"] < stats["python_evaluations"]
    # The ISSUE acceptance gate.
    assert stats["speedup"] >= 5.0


def test_vectorized_kernel_speedup(benchmark):
    """Pure kernel ratio on one large (user, class) group (no cache at play)."""
    num_items, horizon = 24, 16
    rng = np.random.default_rng(0)
    instance = RevMaxInstance.from_dense_adoption(
        prices=rng.uniform(10.0, 100.0, size=(num_items, horizon)),
        adoption={
            (0, item): rng.uniform(0.01, 0.4, size=horizon)
            for item in range(num_items)
        },
        item_class=[0] * num_items,
        capacities=num_items,
        betas=0.6,
        display_limit=num_items,
        num_users=1,
    )
    group = [Triple(0, item, t) for item in range(num_items) for t in range(horizon)]
    rng.shuffle(group)
    group = group[: len(group) // 2]

    def _time_kernels():
        repeats = 50
        start = time.perf_counter()
        for _ in range(repeats):
            python_value = group_revenue(instance, group)
        python_seconds = time.perf_counter() - start
        start = time.perf_counter()
        for _ in range(repeats):
            numpy_value = vectorized_group_revenue(instance, group)
        numpy_seconds = time.perf_counter() - start
        return python_seconds, numpy_seconds, python_value, numpy_value

    python_seconds, numpy_seconds, python_value, numpy_value = run_once(
        benchmark, _time_kernels
    )
    speedup = python_seconds / numpy_seconds
    print(
        f"\nkernel on a {len(group)}-triple group: "
        f"python {python_seconds * 1e3 / 50:.2f}ms/call, "
        f"numpy {numpy_seconds * 1e3 / 50:.2f}ms/call, speedup {speedup:.1f}x"
    )
    assert numpy_value == pytest.approx(python_value, abs=1e-9)
    assert speedup >= 5.0
