"""Ablation -- lazy forward (Minoux acceleration) in G-Greedy.

DESIGN.md lists lazy forward as a design choice worth ablating: disabling it
must leave the selected strategy essentially unchanged (the revenue function
is close enough to submodular on pipeline instances that stale bounds rarely
mislead the selection) while performing strictly more marginal-revenue
evaluations.  The paper cites a ~700x evaluation saving on viral-marketing
workloads; at reproduction scale we only assert a meaningful reduction.

The ablation compares ``last_lookups`` -- the group evaluations each variant
*requested* -- not ``last_evaluations``, which since the incremental group
cache counts only the evaluations the engine actually computed.  Lazy
forward reduces requests; the cache reduces the cost of a request; measuring
requests keeps the two effects separate (and keeps this ablation's verdict
independent of the engine configuration).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_scale, run_once
from repro.algorithms.global_greedy import GlobalGreedy


def _run_both(instance):
    lazy = GlobalGreedy(use_lazy_forward=True)
    eager = GlobalGreedy(use_lazy_forward=False)
    lazy_result = lazy.run(instance)
    eager_result = eager.run(instance)
    return (lazy, lazy_result), (eager, eager_result)


def test_ablation_lazy_forward(benchmark, bench_pipelines):
    instance = bench_pipelines["amazon"].instance
    (lazy, lazy_result), (eager, eager_result) = run_once(benchmark, _run_both, instance)

    print(
        f"\nlazy forward:   revenue={lazy_result.revenue:,.2f} "
        f"lookups={lazy.last_lookups:,} computed={lazy.last_evaluations:,} "
        f"time={lazy_result.runtime_seconds:.3f}s"
    )
    print(
        f"eager updates:  revenue={eager_result.revenue:,.2f} "
        f"lookups={eager.last_lookups:,} computed={eager.last_evaluations:,} "
        f"time={eager_result.runtime_seconds:.3f}s"
    )

    # Same quality...
    assert lazy_result.revenue == pytest.approx(eager_result.revenue, rel=0.02)
    # ...for a fraction of the requested marginal-revenue evaluations.
    assert lazy.last_lookups < eager.last_lookups
    saving = eager.last_lookups / max(1, lazy.last_lookups)
    print(f"evaluation saving factor (requested lookups): {saving:.1f}x")
    # The saving factor grows with candidate-pool size: eager refreshes
    # re-score whole (user, class) neighbourhoods per admission, lazy
    # forward touches only what surfaces.  At the tiny smoke scale the
    # neighbourhoods are so small (measured ~1.3x) that the full gate
    # would assert machine-independent noise, so the smoke tier only pins
    # the direction; the default (small) scale keeps the real gate.
    gate = 1.1 if bench_scale() == "tiny" else 1.5
    assert saving >= gate
