"""Figure 1 -- expected revenue with beta ~ U[0,1] under three capacity laws.

Paper reference (Figure 1): on both Amazon and Epinions, for normal /
power-law / uniform capacity distributions, G-Greedy earns the most revenue,
leading RL-Greedy by roughly 10-20%; GlobalNo trails G-Greedy by 10-30%;
SL-Greedy sits 1-6% behind RL-Greedy; TopRE and TopRA are clearly last (GG is
typically 30-50% above TopRE).  Panels (c) and (d) repeat the comparison with
every item in its own class.  The reproduction checks the same ordering.
"""

from __future__ import annotations


from benchmarks.conftest import run_once
from repro.experiments.figures import figure1_revenue_by_capacity_distribution


def _check_hierarchy(revenues, context):
    assert revenues["G-Greedy"] >= revenues["RL-Greedy"] * 0.98, context
    assert revenues["RL-Greedy"] >= revenues["SL-Greedy"] * 0.95, context
    assert revenues["G-Greedy"] >= revenues["GlobalNo"] * 0.99, context
    assert revenues["G-Greedy"] > revenues["TopRE"], context
    assert revenues["G-Greedy"] > revenues["TopRA"], context
    assert revenues["TopRE"] >= revenues["TopRA"] * 0.9, context


def test_figure1_multi_item_classes(benchmark, sweep_pipelines):
    result = run_once(
        benchmark,
        figure1_revenue_by_capacity_distribution,
        sweep_pipelines,
        capacity_distributions=("normal", "power", "uniform"),
        singleton_classes=False,
        rl_permutations=6,
    )
    print("\n" + str(result))
    for dataset, per_distribution in result.data.items():
        for distribution, revenues in per_distribution.items():
            _check_hierarchy(revenues, f"{dataset}/{distribution}")


def test_figure1_singleton_classes(benchmark, sweep_pipelines):
    result = run_once(
        benchmark,
        figure1_revenue_by_capacity_distribution,
        sweep_pipelines,
        capacity_distributions=("normal", "power", "uniform"),
        singleton_classes=True,
        rl_permutations=6,
    )
    print("\n" + str(result))
    for dataset, per_distribution in result.data.items():
        for distribution, revenues in per_distribution.items():
            assert revenues["G-Greedy"] >= revenues["TopRE"]
            assert revenues["G-Greedy"] >= revenues["TopRA"]
            assert revenues["G-Greedy"] >= revenues["SL-Greedy"] * 0.95
