"""Tests for the Strategy container."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.entities import ItemCatalog, Triple
from repro.core.strategy import Strategy


@pytest.fixture
def catalog():
    # items 0,1 share class 0; item 2 is class 1.
    return ItemCatalog(item_class=[0, 0, 1])


class TestStrategyBasics:
    def test_empty(self, catalog):
        strategy = Strategy(catalog)
        assert len(strategy) == 0
        assert Triple(0, 0, 0) not in strategy
        assert strategy.triples() == set()

    def test_add_and_contains(self, catalog):
        strategy = Strategy(catalog)
        strategy.add(Triple(0, 1, 2))
        assert Triple(0, 1, 2) in strategy
        assert (0, 1, 2) in strategy
        assert len(strategy) == 1

    def test_add_duplicate_raises(self, catalog):
        strategy = Strategy(catalog)
        strategy.add(Triple(0, 0, 0))
        with pytest.raises(ValueError):
            strategy.add(Triple(0, 0, 0))

    def test_remove(self, catalog):
        strategy = Strategy(catalog, [Triple(0, 0, 0), Triple(0, 1, 1)])
        strategy.remove(Triple(0, 0, 0))
        assert Triple(0, 0, 0) not in strategy
        assert len(strategy) == 1

    def test_remove_missing_raises(self, catalog):
        with pytest.raises(KeyError):
            Strategy(catalog).remove(Triple(0, 0, 0))

    def test_copy_is_independent(self, catalog):
        strategy = Strategy(catalog, [Triple(0, 0, 0)])
        clone = strategy.copy()
        clone.add(Triple(1, 2, 0))
        assert len(strategy) == 1
        assert len(clone) == 2

    def test_sorted_triples_chronological(self, catalog):
        strategy = Strategy(catalog, [Triple(1, 0, 2), Triple(0, 2, 0), Triple(0, 0, 1)])
        assert strategy.sorted_triples() == [
            Triple(0, 2, 0), Triple(0, 0, 1), Triple(1, 0, 2),
        ]

    def test_clear(self, catalog):
        strategy = Strategy(catalog, [Triple(0, 0, 0)])
        strategy.clear()
        assert len(strategy) == 0
        assert strategy.display_count(0, 0) == 0


class TestStrategyGrouping:
    def test_group_by_user_and_class(self, catalog):
        strategy = Strategy(catalog, [
            Triple(0, 0, 0), Triple(0, 1, 1), Triple(0, 2, 0), Triple(1, 0, 0),
        ])
        group = strategy.group(0, 0)
        assert set(group) == {Triple(0, 0, 0), Triple(0, 1, 1)}
        assert strategy.group(0, 1) == [Triple(0, 2, 0)]
        assert strategy.group(1, 0) == [Triple(1, 0, 0)]
        assert strategy.group(5, 5) == []

    def test_group_of_triple(self, catalog):
        strategy = Strategy(catalog, [Triple(0, 0, 0), Triple(0, 1, 1)])
        group = strategy.group_of_triple(Triple(0, 1, 1))
        assert set(group) == {Triple(0, 0, 0), Triple(0, 1, 1)}

    def test_group_size(self, catalog):
        strategy = Strategy(catalog, [Triple(0, 0, 0), Triple(0, 1, 1)])
        assert strategy.group_size(0, 0) == 2
        assert strategy.group_size(0, 1) == 0

    def test_groups_iteration(self, catalog):
        strategy = Strategy(catalog, [Triple(0, 0, 0), Triple(1, 2, 1)])
        groups = dict(strategy.groups())
        assert set(groups) == {(0, 0), (1, 1)}


class TestStrategyConstraintsBookkeeping:
    def test_display_count(self, catalog):
        strategy = Strategy(catalog, [Triple(0, 0, 1), Triple(0, 2, 1), Triple(0, 0, 0)])
        assert strategy.display_count(0, 1) == 2
        assert strategy.display_count(0, 0) == 1
        assert strategy.display_count(1, 0) == 0

    def test_item_audience(self, catalog):
        strategy = Strategy(catalog, [Triple(0, 0, 0), Triple(1, 0, 1), Triple(0, 0, 2)])
        assert strategy.item_audience(0) == {0, 1}
        assert strategy.item_audience_size(0) == 2
        assert strategy.item_audience_size(1) == 0

    def test_user_has_item(self, catalog):
        strategy = Strategy(catalog, [Triple(0, 0, 0)])
        assert strategy.user_has_item(0, 0)
        assert not strategy.user_has_item(1, 0)

    def test_remove_keeps_audience_when_repeated(self, catalog):
        strategy = Strategy(catalog, [Triple(0, 0, 0), Triple(0, 0, 1)])
        strategy.remove(Triple(0, 0, 0))
        assert strategy.user_has_item(0, 0)
        strategy.remove(Triple(0, 0, 1))
        assert not strategy.user_has_item(0, 0)

    def test_repeat_counts(self, catalog):
        strategy = Strategy(catalog, [Triple(0, 0, 0), Triple(0, 0, 1), Triple(0, 1, 0)])
        counts = strategy.repeat_counts()
        assert counts[(0, 0)] == 2
        assert counts[(0, 1)] == 1

    def test_per_time_counts(self, catalog):
        strategy = Strategy(catalog, [Triple(0, 0, 0), Triple(1, 0, 0), Triple(0, 1, 2)])
        assert strategy.per_time_counts() == {0: 2, 2: 1}


class TestStrategyProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 2), st.integers(0, 4)),
            min_size=0, max_size=30, unique=True,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_add_then_remove_restores_empty_state(self, raw_triples):
        catalog = ItemCatalog(item_class=[0, 0, 1])
        strategy = Strategy(catalog)
        triples = [Triple(*t) for t in raw_triples]
        for triple in triples:
            strategy.add(triple)
        assert len(strategy) == len(triples)
        # Bookkeeping must agree with a from-scratch rebuild.
        rebuilt = Strategy(catalog, triples)
        assert rebuilt.triples() == strategy.triples()
        for triple in triples:
            strategy.remove(triple)
        assert len(strategy) == 0
        assert strategy.per_time_counts() == {}
        assert strategy.repeat_counts() == {}
        for item in range(3):
            assert strategy.item_audience_size(item) == 0
