"""Regenerate the golden regression fixtures.

Run from the repository root after an *intentional* behaviour change::

    PYTHONPATH=src python tests/golden/regenerate.py

Three canonical instances are frozen as JSON (so the fixtures do not
depend on the generators staying bit-stable) together with the expected
strategy, revenue and growth curve of every solver under test.  Commit
the regenerated files alongside the change that moved them, and explain
the move in the commit message -- ``tests/test_golden.py`` exists to make
silent drift loud.
"""

from __future__ import annotations

import json
import os
import sys

sys.path.insert(0, os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", ".."
))

import numpy as np  # noqa: E402

from repro import io as repro_io  # noqa: E402
from repro.core.problem import RevMaxInstance  # noqa: E402
from tests.conftest import build_random_instance  # noqa: E402
from tests.test_golden import (  # noqa: E402
    GOLDEN_DIR,
    expected_path,
    instance_path,
    solver_signatures,
)


def canonical_instances():
    """The three frozen instances: tiny exact, dense saturating, tight."""
    paper = RevMaxInstance.from_dense_adoption(
        prices=np.array([[1.0, 0.95], [0.8, 1.1]]),
        adoption={(0, 0): [0.5, 0.6], (0, 1): [0.3, 0.4],
                  (1, 0): [0.7, 0.2]},
        item_class=[0, 0],
        capacities=2,
        betas=0.1,
        display_limit=1,
        num_users=2,
        name="golden-paper-like",
    )
    dense = build_random_instance(
        num_users=8, num_items=6, num_classes=3, horizon=3, display_limit=2,
        capacity=8, beta=0.95, density=1.0, seed=1042,
    )
    dense.name = "golden-dense"
    tight = build_random_instance(
        num_users=7, num_items=5, num_classes=2, horizon=3, display_limit=2,
        capacity=2, beta=0.3, density=0.7, seed=77,
    )
    tight.name = "golden-tight-capacity"
    return [paper, dense, tight]


def main() -> None:
    os.makedirs(GOLDEN_DIR, exist_ok=True)
    for instance in canonical_instances():
        repro_io.save_instance(instance, instance_path(instance.name))
        document = {
            "instance": instance.name,
            "solvers": solver_signatures(instance),
        }
        with open(expected_path(instance.name), "w", encoding="utf-8") as fh:
            json.dump(document, fh, indent=2, sort_keys=True)
        print(f"wrote {instance.name}: "
              f"{', '.join(sorted(document['solvers']))}")


if __name__ == "__main__":
    main()
