"""Differential fuzzing: every G-Greedy engine must agree, triple for triple.

The repo now carries four independent executions of Algorithm 1:

* the **object path** (dict-backed adoption table, per-triple seeding --
  the pre-compilation engine, kept as the executable specification);
* the **columnar path** (compiled tensors, bulk-seeded lazy frontier);
* the **sharded path** (user-partitioned workers, ``shards=2, jobs=2`` --
  real subprocesses plus the coordinator protocol);
* the **incremental path** (cold solve, then a re-solve after an *empty*
  delta, which must replay to the identical strategy);
* the **kernel tier** (``REPRO_KERNEL`` axis): the columnar solve under
  the forced ``numpy`` tier and under the native dispatch
  (:mod:`repro.core.kernels` -- JIT-compiled where numba is installed,
  the interpreted twin of the same source everywhere else).

Each optimisation layer was introduced with its own equivalence tests;
this suite closes the loop with property-based fuzzing over adversarial
tiny instances -- degenerate capacities (including zero), beta at the
0/1 extremes, probability vectors with exact zeros and ones, single-user
and single-item corners, duplicate prices that force tie-breaking -- and
asserts all four engines admit **the same triples with the same revenue
growth curves**.

A second property fuzzes the *dynamic* layer: a random
:class:`~repro.dynamic.InstanceDelta` is applied through
``IncrementalSolver.resolve`` and through a from-scratch build of the
mutated instance; both must agree bit for bit whichever re-solve mode
(stream merge or cold fallback) the guard rails pick.

Reproducing a failure: Hypothesis prints a ``reproduce_failure`` blurb
and stores the example in ``.hypothesis/examples``; see
``docs/testing.md``.  CI runs the seeded ``ci`` profile (registered in
``tests/conftest.py``) so runs are deterministic.
"""

from __future__ import annotations

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings, strategies as st  # noqa: E402

from repro.algorithms.global_greedy import GlobalGreedy  # noqa: E402
from repro.core import kernels  # noqa: E402
from repro.core.kernels import impl  # noqa: E402
from repro.core.problem import RevMaxInstance  # noqa: E402
from repro.dynamic import (  # noqa: E402
    IncrementalSolver,
    InstanceDelta,
    apply_delta,
)
from test_kernels import interpreted_native  # noqa: E402

_probability = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
_price = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)


@st.composite
def instance_data(draw):
    """Plain-data description of a tiny REVMAX instance.

    Returned as a dict so a test can *rebuild the identical instance
    twice* (the delta differential needs an untouched twin).  Sizes stay
    tiny: the value of this suite is adversarial shapes, not scale.
    """
    num_users = draw(st.integers(1, 6))
    num_items = draw(st.integers(1, 5))
    horizon = draw(st.integers(1, 3))
    vector = st.lists(_probability, min_size=horizon, max_size=horizon)
    adoption = draw(
        st.dictionaries(
            st.tuples(st.integers(0, num_users - 1),
                      st.integers(0, num_items - 1)),
            vector,
            max_size=num_users * num_items,
        )
    )
    return {
        "num_users": num_users,
        "horizon": horizon,
        "display_limit": draw(st.integers(1, 2)),
        "item_class": draw(st.lists(st.integers(0, max(0, num_items - 1)),
                                    min_size=num_items, max_size=num_items)),
        "prices": draw(st.lists(
            st.lists(_price, min_size=horizon, max_size=horizon),
            min_size=num_items, max_size=num_items,
        )),
        "capacities": draw(st.lists(st.integers(0, num_users),
                                    min_size=num_items, max_size=num_items)),
        "betas": draw(st.lists(_probability, min_size=num_items,
                               max_size=num_items)),
        "adoption": adoption,
    }


def build(data) -> RevMaxInstance:
    """Materialize an instance from :func:`instance_data` output."""
    return RevMaxInstance.from_dense_adoption(
        prices=np.asarray(data["prices"], dtype=float),
        adoption=data["adoption"],
        item_class=data["item_class"],
        capacities=np.asarray(data["capacities"], dtype=int),
        betas=np.asarray(data["betas"], dtype=float),
        display_limit=data["display_limit"],
        num_users=data["num_users"],
        name="fuzz-instance",
    )


@st.composite
def delta_data(draw, data):
    """A random delta valid for an instance built from ``data``."""
    num_items = len(data["item_class"])
    horizon = data["horizon"]
    num_users = data["num_users"]
    vector = st.lists(_probability, min_size=horizon, max_size=horizon)
    pairs = sorted(data["adoption"])
    probability_updates = {}
    if pairs:
        for index in draw(st.lists(st.integers(0, len(pairs) - 1),
                                   max_size=3, unique=True)):
            probability_updates[pairs[index]] = draw(vector)
    new_users = {}
    for offset in range(draw(st.integers(0, 2))):
        new_users[num_users + offset] = draw(
            st.dictionaries(st.integers(0, num_items - 1), vector, max_size=3)
        )
    return {
        "price_updates": draw(st.dictionaries(
            st.tuples(st.integers(0, num_items - 1),
                      st.integers(0, horizon - 1)),
            _price, max_size=3,
        )),
        "probability_updates": probability_updates,
        "capacity_updates": draw(st.dictionaries(
            st.integers(0, num_items - 1), st.integers(0, num_users + 2),
            max_size=2,
        )),
        "new_users": new_users,
    }


def build_delta(data) -> InstanceDelta:
    return InstanceDelta(
        price_updates=dict(data["price_updates"]),
        probability_updates={k: list(v) for k, v in
                             data["probability_updates"].items()},
        capacity_updates=dict(data["capacity_updates"]),
        new_users={u: {i: list(v) for i, v in pairs.items()}
                   for u, pairs in data["new_users"].items()},
        name="fuzz-delta",
    )


def solve_signature(instance, **kwargs):
    """(sorted triples, growth curve) of one G-Greedy configuration."""
    algorithm = GlobalGreedy(backend="numpy", **kwargs)
    strategy = algorithm.build_strategy(instance)
    return sorted(strategy.triples()), algorithm.last_growth_curve


@settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
@given(data=instance_data())
def test_all_engines_agree(data):
    """Object, columnar, sharded (jobs=2) and incremental-after-empty-delta
    G-Greedy admit identical triples with identical growth curves."""
    instance = build(data)
    object_path = solve_signature(instance, use_compiled=False)
    columnar = solve_signature(instance)
    sharded = solve_signature(instance, shards=2, jobs=2)

    solver = IncrementalSolver(build(data))
    solver.solve()
    incremental = solver.resolve()  # empty delta: must replay identically
    incremental_signature = (sorted(incremental.triples()),
                             solver.growth_curve)

    assert columnar == object_path
    assert sharded == object_path
    assert incremental_signature == object_path


@settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
@given(payload=st.data())
def test_incremental_resolve_agrees_with_cold(payload):
    """resolve(delta) == a cold columnar solve of the mutated instance,
    bit for bit, whichever re-solve mode the guards pick."""
    data = payload.draw(instance_data(), label="instance")
    delta = payload.draw(delta_data(data), label="delta")

    solver = IncrementalSolver(build(data))
    solver.solve()
    repaired = solver.resolve(build_delta(delta))

    mutated = build(data)
    apply_delta(mutated, build_delta(delta))
    reference, curve = solve_signature(mutated)
    assert sorted(repaired.triples()) == reference
    assert solver.growth_curve == curve


@settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
@given(data=instance_data())
def test_kernel_tiers_agree(data):
    """The columnar solve admits identical triples and growth curves under
    the forced ``numpy`` tier and under the native kernel dispatch (the JIT
    twin where numba is installed, the interpreted twin elsewhere)."""
    instance = build(data)
    with kernels.forced_kernel("numpy"):
        numpy_tier = solve_signature(instance)
    if kernels.NUMBA_AVAILABLE:
        with kernels.forced_kernel("numba"):
            native_tier = solve_signature(instance)
    else:
        with interpreted_native():
            native_tier = solve_signature(instance)
    assert native_tier == numpy_tier


def _native_modules():
    """The kernel modules under test: interpreted always, JIT when present."""
    modules = [("interpreted", impl)]
    if kernels.NUMBA_AVAILABLE:
        modules.append(("numba", kernels.jit_module()))
    return modules


@settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
@given(
    entries=st.lists(
        st.tuples(
            st.sampled_from([0.0, 0.5, 1.0, 2.0, 2.5, 1e-9, 1e9]),
            st.integers(0, 63),
        ),
        max_size=40,
    )
)
def test_frontier_pop_order_matches_reference(entries):
    """Every kernel backend pops fuzzed frontiers in exact ``(-priority,
    CSR row)`` order -- the tie-break that makes admissions reproducible.

    Duplicate priorities are the adversarial case (synthetic instances
    produce them through shared prices), and duplicate rows model a row
    re-pushed after a lazy refresh: observationally identical entries, so
    the reference order is the stable sort of the multiset.
    """
    reference = sorted(entries, key=lambda entry: (-entry[0], entry[1]))
    for label, module in _native_modules():
        heap_pri = np.empty(4, dtype=np.float64)
        heap_row = np.empty(4, dtype=np.int64)
        size = 0
        for priority, row in entries:
            heap_pri, heap_row, size = module.heap_push(
                heap_pri, heap_row, size, priority, row
            )
        popped = []
        while size > 0:
            popped.append((float(heap_pri[0]), int(heap_row[0])))
            size = module.heap_pop(heap_pri, heap_row, size)
        assert popped == reference, label
