"""Tests for the pricing substrate: KDE, valuations, price series, adoption."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.problem import AdoptionTable
from repro.pricing.adoption import AdoptionEstimator
from repro.pricing.kde import GaussianKDE, silverman_bandwidth
from repro.pricing.price_series import (
    ExactPriceModel,
    generate_price_matrix,
    generate_price_series,
    prices_from_kde,
)
from repro.pricing.valuation import EmpiricalValuation, GaussianValuation
from repro.recsys.topk import Candidate


class TestSilvermanBandwidth:
    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            silverman_bandwidth([])

    def test_matches_formula(self):
        samples = [10.0, 12.0, 9.0, 15.0, 11.0]
        sigma = np.std(samples, ddof=1)
        expected = (4.0 * sigma ** 5 / (3.0 * len(samples))) ** 0.2
        assert silverman_bandwidth(samples) == pytest.approx(expected)

    def test_degenerate_sample_gets_positive_bandwidth(self):
        assert silverman_bandwidth([5.0, 5.0, 5.0]) > 0.0
        assert silverman_bandwidth([7.0]) > 0.0


class TestGaussianKDE:
    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            GaussianKDE([])

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            GaussianKDE([1.0, 2.0], bandwidth=0.0)

    def test_pdf_integrates_to_one(self):
        kde = GaussianKDE([10.0, 20.0, 30.0, 12.0, 25.0])
        grid = np.linspace(-50, 100, 4000)
        density = kde.pdf(grid)
        integral = np.trapezoid(density, grid)
        assert integral == pytest.approx(1.0, abs=1e-3)

    def test_cdf_monotone_and_bounded(self):
        kde = GaussianKDE([5.0, 7.0, 9.0])
        grid = np.linspace(-10, 30, 200)
        cdf = kde.cdf(grid)
        assert np.all(np.diff(cdf) >= -1e-12)
        assert cdf[0] >= 0.0
        assert cdf[-1] <= 1.0 + 1e-9
        assert kde.cdf([kde.mean])[0] == pytest.approx(0.5, abs=0.1)

    def test_survival_complements_cdf(self):
        kde = GaussianKDE([3.0, 4.0, 5.0])
        x = np.array([2.0, 4.0, 6.0])
        assert np.allclose(kde.cdf(x) + kde.survival(x), 1.0)

    def test_mean_and_variance(self):
        samples = [10.0, 20.0, 30.0]
        kde = GaussianKDE(samples, bandwidth=2.0)
        assert kde.mean == pytest.approx(20.0)
        assert kde.variance == pytest.approx(np.var(samples) + 4.0)

    def test_sampling_statistics(self):
        kde = GaussianKDE([50.0, 60.0, 55.0, 52.0], bandwidth=1.0)
        rng = np.random.default_rng(0)
        draws = kde.sample(5000, rng=rng)
        assert draws.min() >= 0.0
        assert np.mean(draws) == pytest.approx(kde.mean, abs=1.0)

    def test_sample_size_must_be_positive(self):
        with pytest.raises(ValueError):
            GaussianKDE([1.0]).sample(0)

    @given(st.lists(st.floats(min_value=1.0, max_value=1000.0),
                    min_size=2, max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_property_cdf_in_unit_interval(self, samples):
        kde = GaussianKDE(samples)
        probe = np.linspace(min(samples) - 10, max(samples) + 10, 15)
        cdf = kde.cdf(probe)
        assert np.all((cdf >= -1e-9) & (cdf <= 1.0 + 1e-9))


class TestValuations:
    def test_gaussian_valuation_survival(self):
        valuation = GaussianValuation(mean=100.0, std=10.0)
        assert valuation.acceptance_probability(100.0) == pytest.approx(0.5)
        assert valuation.acceptance_probability(80.0) > 0.95
        assert valuation.acceptance_probability(120.0) < 0.05

    def test_gaussian_valuation_monotone_in_price(self):
        valuation = GaussianValuation(mean=50.0, std=5.0)
        prices = np.linspace(30, 70, 20)
        probabilities = valuation.acceptance_probabilities(prices)
        assert np.all(np.diff(probabilities) <= 1e-12)

    def test_invalid_std_rejected(self):
        with pytest.raises(ValueError):
            GaussianValuation(mean=10.0, std=0.0)

    def test_from_reported_prices_matches_kde_summary(self):
        reports = [90.0, 110.0, 95.0, 105.0, 100.0]
        valuation = GaussianValuation.from_reported_prices(reports)
        kde = GaussianKDE(reports)
        assert valuation.mean == pytest.approx(kde.mean)
        assert valuation.std == pytest.approx(np.sqrt(kde.variance))

    def test_empirical_valuation_clamped(self):
        kde = GaussianKDE([10.0, 12.0, 11.0])
        valuation = EmpiricalValuation(kde)
        assert 0.0 <= valuation.acceptance_probability(0.0) <= 1.0
        assert valuation.acceptance_probability(100.0) == pytest.approx(0.0, abs=1e-6)
        assert valuation.acceptance_probability(0.0) == pytest.approx(1.0, abs=1e-6)


class TestPriceSeries:
    def test_exact_price_model_accessors(self):
        prices = np.array([[10.0, 12.0, 8.0], [20.0, 22.0, 25.0]])
        model = ExactPriceModel(prices)
        assert model.num_items == 2
        assert model.horizon == 3
        assert model.price(0, 2) == 8.0
        assert model.min_price_time(0) == 2
        assert model.max_price_time(1) == 2
        assert np.array_equal(model.series(1), prices[1])

    def test_exact_price_model_validation(self):
        with pytest.raises(ValueError):
            ExactPriceModel(np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            ExactPriceModel(np.array([[-1.0, 2.0]]))

    def test_generate_price_series_properties(self):
        rng = np.random.default_rng(0)
        series = generate_price_series(100.0, horizon=7, rng=rng)
        assert series.shape == (7,)
        assert np.all(series > 0)
        with pytest.raises(ValueError):
            generate_price_series(0.0, 7, rng)
        with pytest.raises(ValueError):
            generate_price_series(10.0, 0, rng)

    def test_generate_price_matrix_shape(self):
        matrix = generate_price_matrix([10.0, 200.0, 50.0], horizon=5,
                                       rng=np.random.default_rng(1))
        assert matrix.shape == (3, 5)
        assert np.all(matrix > 0)

    def test_sales_lower_prices_sometimes(self):
        rng = np.random.default_rng(3)
        saw_discount = False
        for _ in range(50):
            series = generate_price_series(
                100.0, 7, rng, fluctuation=0.0, sale_probability=1.0, sale_depth=0.5
            )
            if series.min() < 60.0:
                saw_discount = True
                break
        assert saw_discount

    def test_prices_from_kde(self):
        reported = {0: [10.0, 12.0, 11.0], 2: [100.0, 90.0, 95.0]}
        prices = prices_from_kde(reported, num_items=3, horizon=4,
                                 rng=np.random.default_rng(0), fallback_price=42.0)
        assert prices.shape == (3, 4)
        assert np.all(prices[1] == 42.0)           # no reports -> fallback
        assert abs(prices[0].mean() - 11.0) < 5.0
        assert abs(prices[2].mean() - 95.0) < 20.0


class TestAdoptionEstimator:
    def _estimator(self):
        valuations = {
            0: GaussianValuation(mean=100.0, std=10.0),
            1: GaussianValuation(mean=50.0, std=5.0),
        }
        return AdoptionEstimator(valuations=valuations, max_rating=5.0)

    def test_probability_combines_interest_and_affordability(self):
        estimator = self._estimator()
        # Rating 5/5 and price at the valuation mean: probability ~ 0.5.
        assert estimator.probability(5.0, 0, 100.0) == pytest.approx(0.5, abs=1e-6)
        # Rating 2.5/5 halves it.
        assert estimator.probability(2.5, 0, 100.0) == pytest.approx(0.25, abs=1e-6)

    def test_unknown_item_has_zero_probability(self):
        estimator = self._estimator()
        assert estimator.probability(5.0, 99, 10.0) == 0.0

    def test_probability_decreases_with_price(self):
        estimator = self._estimator()
        cheap = estimator.probability(4.0, 1, 40.0)
        pricey = estimator.probability(4.0, 1, 60.0)
        assert cheap > pricey

    def test_min_probability_clamped_to_zero(self):
        estimator = AdoptionEstimator(
            valuations={0: GaussianValuation(100.0, 1.0)}, max_rating=5.0,
            min_probability=0.01,
        )
        assert estimator.probability(5.0, 0, 130.0) == 0.0

    def test_invalid_max_rating(self):
        estimator = AdoptionEstimator(valuations={}, max_rating=0.0)
        with pytest.raises(ValueError):
            estimator.probability(3.0, 0, 10.0)

    def test_build_table(self):
        estimator = self._estimator()
        candidates = {
            0: [Candidate(user=0, item=0, predicted_rating=4.5),
                Candidate(user=0, item=1, predicted_rating=3.0)],
            1: [Candidate(user=1, item=1, predicted_rating=5.0)],
        }
        prices = np.array([[90.0, 95.0], [45.0, 55.0]])
        table = estimator.build_table(candidates, prices)
        assert isinstance(table, AdoptionTable)
        assert table.horizon == 2
        assert (0, 0) in table
        assert (1, 1) in table
        assert 0.0 <= table.probability(0, 0, 1) <= 1.0
        # Lower price at t=0 for item 1 means higher probability than at t=1.
        assert table.probability(1, 1, 0) > table.probability(1, 1, 1)
