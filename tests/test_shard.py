"""Tests for the sharded shared-memory solver (:mod:`repro.shard`).

Three layers of guarantees:

* **partitioning properties** -- :func:`repro.shard.shard_user_ranges`
  always tiles the user space with exactly K contiguous ranges, whatever
  the shape of the CSR (one user per shard, more shards than users, runs of
  candidate-less users, empty tables);
* **equivalence** -- sharded selection admits the *same triples in the same
  order with the same gains* as the serial columnar path, across shard /
  worker counts, both tensor backings (shared memory and memory-mapped
  ``.npz``), the in-process ``jobs=1`` mode, the GlobalNo true-model shape,
  and the sub-horizon (``allowed_times`` + initial strategy) setting;
* **failure surfacing** -- a worker that raises reports its traceback and a
  worker that dies reports its exit, both as :class:`ShardWorkerError`.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

import repro.shard as shard_module
from repro import io as repro_io
from repro.algorithms.global_greedy import GlobalGreedy, GlobalGreedyNoSaturation
from repro.core.constraints import ConstraintChecker
from repro.core.problem import RevMaxInstance
from repro.core.revenue import RevenueModel
from repro.core.selection import SEED_ISOLATED, LazyGreedySelector
from repro.core.strategy import Strategy
from repro.datasets.synthetic import SyntheticConfig, generate_synthetic_columnar
from repro.shard import (
    ShardedGreedySolver,
    ShardWorkerError,
    shard_user_ranges,
    sharding_compatible,
)


def _synthetic(num_users: int = 120, seed: int = 3) -> RevMaxInstance:
    """A columnar instance small enough for many solves, with capacities
    tight enough that the coordinator's capacity-drop path is exercised."""
    return generate_synthetic_columnar(SyntheticConfig(
        num_users=num_users, num_items=40, num_classes=6,
        candidates_per_user=5, horizon=3, display_limit=2,
        capacity_fraction=0.05, beta=0.5, seed=seed,
    ))


def _gapped_instance() -> RevMaxInstance:
    """An instance where whole runs of users have no candidates at all."""
    adoption = {}
    for user in (0, 1, 7, 8, 9, 15):  # users 2-6 and 10-14 are empty
        for item in range(3):
            adoption[(user, (user + item) % 5)] = [0.3, 0.5]
    return RevMaxInstance.from_dense_adoption(
        prices=np.linspace(1.0, 2.0, 10).reshape(5, 2),
        adoption=adoption,
        item_class=[0, 0, 1, 1, 2],
        capacities=2,
        betas=0.4,
        display_limit=1,
        num_users=16,
        name="gapped",
    )


# ----------------------------------------------------------------------
# partitioning properties
# ----------------------------------------------------------------------
@pytest.mark.parametrize("counts", [
    [],
    [0],
    [5],
    [0, 0, 0],
    [1, 1, 1, 1, 1],
    [10, 0, 0, 3, 0, 7],
    [2, 9, 1, 1, 4, 4, 4, 0, 30],
])
@pytest.mark.parametrize("shards", [1, 2, 3, 5, 8, 50])
def test_shard_user_ranges_tile_the_user_space(counts, shards):
    user_ptr = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
    ranges = shard_user_ranges(user_ptr, shards)
    assert len(ranges) == shards
    cursor = 0
    for start, stop in ranges:
        assert start == cursor, "ranges must be contiguous and ordered"
        assert stop >= start, "ranges must be non-negative"
        cursor = stop
    assert cursor == len(counts), "ranges must cover every user exactly once"


def test_shard_user_ranges_balance_by_pairs():
    # One heavy user amid light ones: the heavy user gets a shard roughly to
    # itself instead of splitting the *user* count evenly.
    counts = [1, 1, 1, 97, 1, 1, 1]
    user_ptr = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
    ranges = shard_user_ranges(user_ptr, 3)
    pair_loads = [int(user_ptr[stop] - user_ptr[start])
                  for start, stop in ranges]
    assert max(pair_loads) <= 100  # the heavy user is never split
    assert any(load >= 97 for load in pair_loads)


def test_shard_user_ranges_rejects_non_positive_counts():
    user_ptr = np.array([0, 2, 4], dtype=np.int64)
    with pytest.raises(ValueError, match="shards must be positive"):
        shard_user_ranges(user_ptr, 0)


def test_compiled_shard_views_are_global_id_slices():
    instance = _synthetic(num_users=30)
    compiled = instance.compiled()
    shard = compiled.shard(10, 20)
    assert shard.num_users == compiled.num_users
    row_offset = int(compiled.user_ptr[10])
    # Users inside the range resolve to offset rows; outside, to nothing.
    for user in range(30):
        for item in instance.candidate_items(user):
            full_row = compiled.pair_row(user, item)
            local_row = shard.pair_row(user, item)
            if 10 <= user < 20:
                assert local_row == full_row - row_offset
                assert np.array_equal(shard.pair_probs[local_row],
                                      compiled.pair_probs[full_row])
            else:
                assert local_row == -1
    with pytest.raises(ValueError, match="invalid shard range"):
        compiled.shard(5, 50)


def test_attach_instance_shard_matches_in_memory_shard(tmp_path):
    instance = _synthetic(num_users=25)
    path = tmp_path / "instance.npz"
    repro_io.save_instance_npz(instance, path)
    attached = repro_io.attach_instance_shard(path, 5, 15)
    expected = instance.compiled().shard(5, 15)
    assert attached.num_pairs == expected.num_pairs
    assert np.array_equal(attached.user_ptr, expected.user_ptr)
    assert np.array_equal(np.asarray(attached.pair_probs),
                          np.asarray(expected.pair_probs))


# ----------------------------------------------------------------------
# serial vs sharded equivalence
# ----------------------------------------------------------------------
def _assert_identical(serial_algo, sharded_algo, instance, **run_kwargs):
    serial_strategy = serial_algo.build_strategy(instance, **run_kwargs)
    sharded_strategy = sharded_algo.build_strategy(instance, **run_kwargs)
    assert sharded_strategy.triples() == serial_strategy.triples()
    assert sharded_algo.last_growth_curve == serial_algo.last_growth_curve


@pytest.mark.parametrize("shards,jobs", [
    (2, 1),   # in-process protocol
    (3, 2),   # more shards than workers
    (4, 4),   # one worker per shard
])
def test_sharded_matches_serial_shared_memory(shards, jobs):
    instance = _synthetic()
    sharded = GlobalGreedy(shards=shards, jobs=jobs)
    _assert_identical(GlobalGreedy(), sharded, instance)
    # The coordinator folds the workers' scoring counters back into the
    # caller's model, so the profiling story survives sharding.
    assert sharded.last_lookups > 0


def test_sharded_matches_serial_npz_backing(tmp_path):
    instance = _synthetic(seed=11)
    path = tmp_path / "instance.npz"
    repro_io.save_instance_npz(instance, path)
    loaded = repro_io.load_instance_npz(path)
    assert loaded.compiled().source_path == str(path)
    _assert_identical(GlobalGreedy(), GlobalGreedy(shards=3, jobs=2), loaded)


def test_sharded_matches_serial_on_pipeline_instance(tiny_amazon_pipeline):
    instance = tiny_amazon_pipeline.instance
    _assert_identical(GlobalGreedy(), GlobalGreedy(shards=3, jobs=2), instance)


def test_sharded_globalno_reports_true_gains():
    instance = _synthetic(seed=21)
    _assert_identical(GlobalGreedyNoSaturation(),
                      GlobalGreedyNoSaturation(shards=3, jobs=2), instance)


def test_one_user_per_shard_and_more_shards_than_users():
    instance = _synthetic(num_users=9, seed=5)
    _assert_identical(GlobalGreedy(),
                      GlobalGreedy(shards=9, jobs=2), instance)
    _assert_identical(GlobalGreedy(),
                      GlobalGreedy(shards=40, jobs=2), instance)


def test_empty_shards_from_candidate_less_users():
    instance = _gapped_instance()
    for shards in (4, 16, 25):
        _assert_identical(GlobalGreedy(),
                          GlobalGreedy(shards=shards, jobs=2), instance)


def test_sharded_sub_horizon_with_initial_strategy():
    instance = _synthetic(seed=8)
    serial = GlobalGreedy()
    sharded = GlobalGreedy(shards=3, jobs=2)
    serial_first = serial.build_strategy(instance, allowed_times=[0])
    sharded_first = sharded.build_strategy(instance, allowed_times=[0])
    assert sharded_first.triples() == serial_first.triples()
    serial_rest = serial.build_strategy(
        instance, allowed_times=[1, 2], initial_strategy=serial_first)
    sharded_rest = sharded.build_strategy(
        instance, allowed_times=[1, 2], initial_strategy=sharded_first)
    assert sharded_rest.triples() == serial_rest.triples()
    assert sharded.last_growth_curve == serial.last_growth_curve


def test_sharded_respects_max_selections():
    instance = _synthetic(seed=13)
    results = {}
    for label, selector_kwargs in (
        ("serial", {}),
        ("sharded", {"shards": 3, "jobs": 2}),
    ):
        model = RevenueModel(instance, backend="numpy")
        selector = LazyGreedySelector(
            instance, model, ConstraintChecker(instance),
            seed_priorities=SEED_ISOLATED, max_selections=10,
            **selector_kwargs,
        )
        strategy = Strategy(instance.catalog)
        curve = []
        admitted = selector.select(strategy, None, growth_curve=curve)
        results[label] = (admitted, strategy.triples(), curve)
    assert results["serial"][0] == results["sharded"][0] == 10
    assert results["serial"][1] == results["sharded"][1]
    assert results["serial"][2] == results["sharded"][2]


def test_sharded_solve_produces_valid_strategies():
    instance = _synthetic(seed=34)
    algorithm = GlobalGreedy(shards=4, jobs=2)
    strategy = algorithm.build_strategy(instance)
    ConstraintChecker(instance).check(strategy)
    assert len(strategy) > 0


# ----------------------------------------------------------------------
# configuration edges and failure surfacing
# ----------------------------------------------------------------------
def test_non_columnar_configurations_stay_serial():
    instance = _synthetic(seed=2)
    # The flat-heap ablation is not columnar-eligible: shards must be
    # silently ignored and the result must still match the reference.
    serial = GlobalGreedy(use_two_level_heap=False)
    sharded = GlobalGreedy(use_two_level_heap=False, shards=3, jobs=2)
    assert (sharded.build_strategy(instance).triples()
            == serial.build_strategy(instance).triples())


def test_solver_rejects_incompatible_true_model():
    instance = _synthetic(seed=4)
    other = _synthetic(seed=40)
    model = RevenueModel(instance, backend="numpy")
    with pytest.raises(ValueError, match="true_model"):
        ShardedGreedySolver(
            instance, model, ConstraintChecker(instance), shards=2, jobs=1,
            true_model=RevenueModel(other, backend="numpy"),
        ).select(Strategy(instance.catalog))


def test_nested_shard_offsets_accumulate_to_the_original_row_space():
    instance = _synthetic(num_users=30)
    compiled = instance.compiled()
    outer = compiled.shard(10, 30)
    inner = outer.shard(20, 30)
    assert inner.shard_row_offset == int(compiled.user_ptr[20])
    for user in range(20, 30):
        for item in instance.candidate_items(user):
            local = inner.pair_row(user, item)
            assert (inner.shard_row_offset + local
                    == compiled.pair_row(user, item))


class _ScaledRevenueModel(RevenueModel):
    """A subclass with different scoring semantics (must never shard)."""

    def marginal_revenue(self, strategy, triple):
        return 2.0 * super().marginal_revenue(strategy, triple)


def test_subclassed_models_never_take_the_sharded_path():
    instance = _synthetic(seed=12)
    model = _ScaledRevenueModel(instance, backend="numpy")
    assert not sharding_compatible(instance, model)
    # Solver misuse raises; the selector silently stays serial and the
    # subclass's semantics survive.
    with pytest.raises(ValueError, match="plain RevenueModel"):
        ShardedGreedySolver(instance, model, ConstraintChecker(instance),
                            shards=2, jobs=1).select(Strategy(instance.catalog))
    results = {}
    for label, kwargs in (("serial", {}), ("sharded", {"shards": 3, "jobs": 2})):
        selector = LazyGreedySelector(
            instance, _ScaledRevenueModel(instance, backend="numpy"),
            ConstraintChecker(instance), seed_priorities=SEED_ISOLATED,
            **kwargs,
        )
        strategy = Strategy(instance.catalog)
        selector.select(strategy, None)
        results[label] = strategy.triples()
    assert results["serial"] == results["sharded"]


def test_solver_rejects_incompatible_selection_model():
    instance = _synthetic(seed=4)
    other = _synthetic(seed=41)
    with pytest.raises(ValueError, match="selection model"):
        ShardedGreedySolver(
            instance, RevenueModel(other, backend="numpy"),
            ConstraintChecker(instance), shards=2, jobs=1,
        ).select(Strategy(instance.catalog))


def test_package_exports_resolve_lazily():
    import repro

    assert repro.shard_user_ranges is shard_user_ranges
    assert repro.ShardedGreedySolver is ShardedGreedySolver
    with pytest.raises(AttributeError, match="no attribute"):
        repro.does_not_exist


def test_solver_rejects_unknown_backing_and_missing_npz_path():
    instance = _synthetic(seed=6)
    model = RevenueModel(instance, backend="numpy")
    checker = ConstraintChecker(instance)
    with pytest.raises(ValueError, match="unknown shard backing"):
        ShardedGreedySolver(instance, model, checker, shards=2,
                            backing="carrier-pigeon")
    # The misconfiguration must fail identically at every job count,
    # including the in-process mode that never publishes tensors.
    for jobs in (1, 2):
        solver = ShardedGreedySolver(instance, model, checker, shards=2,
                                     jobs=jobs, backing="npz")
        with pytest.raises(ValueError, match="needs an archive"):
            solver.select(Strategy(instance.catalog))


def test_worker_exception_surfaces_with_traceback(monkeypatch):
    instance = _synthetic(seed=9)
    model = RevenueModel(instance, backend="numpy")

    def explode(self, *args, **kwargs):
        raise RuntimeError("synthetic shard failure for the test")

    monkeypatch.setattr(shard_module._ShardState, "__init__", explode)
    solver = ShardedGreedySolver(instance, model, ConstraintChecker(instance),
                                 shards=2, jobs=2)
    with pytest.raises(ShardWorkerError,
                       match="synthetic shard failure for the test"):
        solver.select(Strategy(instance.catalog))


def test_worker_death_surfaces_exit(monkeypatch):
    instance = _synthetic(seed=10)
    model = RevenueModel(instance, backend="numpy")

    def die(self, *args, **kwargs):
        os._exit(17)

    monkeypatch.setattr(shard_module._ShardState, "__init__", die)
    solver = ShardedGreedySolver(instance, model, ConstraintChecker(instance),
                                 shards=2, jobs=2)
    with pytest.raises(ShardWorkerError, match="died unexpectedly"):
        solver.select(Strategy(instance.catalog))
