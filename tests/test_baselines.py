"""Tests for the TopRA and TopRE baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.baselines import TopRatingBaseline, TopRevenueBaseline
from repro.algorithms.global_greedy import GlobalGreedy
from repro.core.constraints import ConstraintChecker
from repro.core.problem import RevMaxInstance

from tests.conftest import build_random_instance


@pytest.fixture
def preference_instance():
    """Two items where ratings and revenue disagree.

    Item 0: loved (high adoption proxy) but cheap.
    Item 1: liked less but expensive, so higher expected revenue.
    """
    return RevMaxInstance.from_dense_adoption(
        prices=np.array([[5.0, 5.0], [100.0, 100.0]]),
        adoption={
            (0, 0): [0.9, 0.9],
            (0, 1): [0.4, 0.4],
            (1, 0): [0.8, 0.8],
            (1, 1): [0.3, 0.3],
        },
        item_class=[0, 1],
        capacities=5,
        betas=1.0,
        display_limit=1,
        num_users=2,
    )


class TestTopRevenueBaseline:
    def test_output_is_valid(self, small_instance):
        result = TopRevenueBaseline().run(small_instance)
        ConstraintChecker(small_instance).check(result.strategy)
        assert result.revenue > 0

    def test_picks_highest_expected_revenue_items(self, preference_instance):
        result = TopRevenueBaseline().run(preference_instance)
        chosen_items = {triple.item for triple in result.strategy}
        # 100 * 0.4 = 40 beats 5 * 0.9 = 4.5 for both users.
        assert chosen_items == {1}

    def test_repeats_items_over_horizon(self, preference_instance):
        result = TopRevenueBaseline().run(preference_instance)
        repeats = result.strategy.repeat_counts()
        assert all(count == preference_instance.horizon for count in repeats.values())

    def test_respects_capacity(self):
        instance = build_random_instance(
            num_users=6, num_items=2, num_classes=2, horizon=2,
            display_limit=1, capacity=2, density=1.0, seed=1,
        )
        result = TopRevenueBaseline().run(instance)
        for item in range(instance.num_items):
            assert result.strategy.item_audience_size(item) <= instance.capacity(item)


class TestTopRatingBaseline:
    def test_output_is_valid(self, small_instance):
        result = TopRatingBaseline().run(small_instance)
        ConstraintChecker(small_instance).check(result.strategy)

    def test_uses_predicted_ratings_when_available(self, preference_instance):
        ratings = {(0, 0): 5.0, (0, 1): 2.0, (1, 0): 5.0, (1, 1): 2.0}
        result = TopRatingBaseline(predicted_ratings=ratings).run(preference_instance)
        chosen_items = {triple.item for triple in result.strategy}
        # Ratings favour item 0 even though it earns less.
        assert chosen_items == {0}
        assert result.extras["uses_predicted_ratings"] is True

    def test_falls_back_to_adoption_proxy(self, preference_instance):
        result = TopRatingBaseline().run(preference_instance)
        chosen_items = {triple.item for triple in result.strategy}
        # Mean adoption probability also favours item 0.
        assert chosen_items == {0}
        assert result.extras["uses_predicted_ratings"] is False


class TestBaselinesVsGreedy:
    def test_greedy_beats_baselines(self, tiny_amazon_pipeline):
        """The paper's headline: greedy algorithms outperform TopRE and TopRA."""
        instance = tiny_amazon_pipeline.instance
        greedy = GlobalGreedy().run(instance).revenue
        top_revenue = TopRevenueBaseline().run(instance).revenue
        top_rating = TopRatingBaseline().run(instance).revenue
        assert greedy > top_revenue
        assert greedy > top_rating

    def test_revenue_aware_baseline_beats_rating_baseline(self, tiny_amazon_pipeline):
        instance = tiny_amazon_pipeline.instance
        top_revenue = TopRevenueBaseline().run(instance).revenue
        top_rating = TopRatingBaseline().run(instance).revenue
        assert top_revenue >= top_rating
