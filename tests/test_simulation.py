"""Tests for the capacity oracle and the Monte-Carlo adoption simulator."""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.revenue import RevenueModel
from repro.core.strategy import Strategy
from repro.simulation.adoption_sim import AdoptionSimulator
from repro.simulation.capacity_oracle import (
    MonteCarloCapacityOracle,
    PoissonBinomialCapacityOracle,
    poisson_binomial_at_most,
)

from tests.conftest import build_random_instance


def _brute_force_at_most(probabilities, threshold):
    """Exact tail probability by enumerating all outcome vectors."""
    total = 0.0
    n = len(probabilities)
    for outcome in itertools.product([0, 1], repeat=n):
        if sum(outcome) <= threshold:
            weight = 1.0
            for p, success in zip(probabilities, outcome):
                weight *= p if success else (1.0 - p)
            total += weight
    return total


class TestPoissonBinomial:
    def test_empty_trials(self):
        assert poisson_binomial_at_most([], 0) == 1.0
        assert poisson_binomial_at_most([], -1) == 0.0

    def test_threshold_above_count(self):
        assert poisson_binomial_at_most([0.5, 0.5], 5) == 1.0

    def test_negative_threshold(self):
        assert poisson_binomial_at_most([0.5], -1) == 0.0

    def test_single_trial(self):
        assert poisson_binomial_at_most([0.3], 0) == pytest.approx(0.7)

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            poisson_binomial_at_most([1.5], 0)

    def test_matches_brute_force_small_cases(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            n = int(rng.integers(1, 7))
            probabilities = rng.uniform(0, 1, size=n).tolist()
            threshold = int(rng.integers(0, n))
            assert poisson_binomial_at_most(probabilities, threshold) == pytest.approx(
                _brute_force_at_most(probabilities, threshold), abs=1e-10
            )

    @given(
        st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=8),
        st.integers(min_value=0, max_value=8),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_matches_brute_force(self, probabilities, threshold):
        assert poisson_binomial_at_most(probabilities, threshold) == pytest.approx(
            _brute_force_at_most(probabilities, threshold), abs=1e-9
        )

    def test_oracle_wrapper(self):
        oracle = PoissonBinomialCapacityOracle()
        assert oracle.at_most([0.2, 0.4], 1) == pytest.approx(
            _brute_force_at_most([0.2, 0.4], 1)
        )


class TestMonteCarloOracle:
    def test_requires_positive_samples(self):
        with pytest.raises(ValueError):
            MonteCarloCapacityOracle(num_samples=0)

    def test_edge_cases(self):
        oracle = MonteCarloCapacityOracle(num_samples=100, seed=0)
        assert oracle.at_most([], 0) == 1.0
        assert oracle.at_most([0.5], -1) == 0.0
        assert oracle.at_most([0.5, 0.5], 3) == 1.0

    def test_close_to_exact(self):
        oracle = MonteCarloCapacityOracle(num_samples=30000, seed=1)
        probabilities = [0.2, 0.5, 0.7, 0.1]
        for threshold in range(4):
            exact = _brute_force_at_most(probabilities, threshold)
            assert oracle.at_most(probabilities, threshold) == pytest.approx(
                exact, abs=0.02
            )

    def test_same_seed_is_deterministic(self):
        probabilities = [0.3, 0.6, 0.2]
        first = MonteCarloCapacityOracle(num_samples=500, seed=7)
        second = MonteCarloCapacityOracle(num_samples=500, seed=7)
        assert first.at_most(probabilities, 1) == second.at_most(
            probabilities, 1
        )

    def test_num_samples_property(self):
        assert MonteCarloCapacityOracle(num_samples=123).num_samples == 123

    def test_degenerate_probabilities(self):
        """Certain and impossible adopters collapse the distribution."""
        oracle = MonteCarloCapacityOracle(num_samples=200, seed=0)
        assert oracle.at_most([1.0, 1.0], 1) == 0.0
        assert oracle.at_most([0.0, 0.0], 0) == 1.0


class TestPoissonBinomialEdges:
    """Direct edge coverage of the exact DP (Definition 4's oracle)."""

    def test_certain_adopters_saturate_the_absorbing_state(self):
        assert poisson_binomial_at_most([1.0, 1.0, 1.0], 1) == 0.0
        assert poisson_binomial_at_most([1.0, 1.0, 1.0], 2) == 0.0

    def test_impossible_adopters_contribute_nothing(self):
        assert poisson_binomial_at_most([0.0, 0.0, 0.4], 0) == pytest.approx(
            0.6
        )

    def test_threshold_exactly_count_minus_one(self):
        # Pr[X <= n-1] = 1 - Pr[all adopt].
        probabilities = [0.5, 0.25, 0.8]
        assert poisson_binomial_at_most(probabilities, 2) == pytest.approx(
            1.0 - 0.5 * 0.25 * 0.8
        )

    def test_monotone_in_threshold(self):
        probabilities = [0.1, 0.9, 0.5, 0.3]
        values = [poisson_binomial_at_most(probabilities, threshold)
                  for threshold in range(-1, 6)]
        assert values == sorted(values)
        assert values[0] == 0.0 and values[-1] == 1.0

    def test_negative_probability_rejected(self):
        with pytest.raises(ValueError):
            poisson_binomial_at_most([-0.1], 0)


class TestAdoptionSimulator:
    def test_zero_runs_rejected(self, small_instance):
        simulator = AdoptionSimulator(small_instance)
        with pytest.raises(ValueError):
            simulator.run(Strategy(small_instance.catalog), num_runs=0)

    def test_empty_strategy_earns_nothing(self, small_instance):
        simulator = AdoptionSimulator(small_instance)
        result = simulator.run(Strategy(small_instance.catalog), num_runs=10)
        assert result.mean_revenue == 0.0
        assert result.mean_adoptions == 0.0

    def test_simulated_revenue_matches_expected_revenue(self, small_instance):
        """The sample mean of simulated revenue must approach Rev(S)."""
        model = RevenueModel(small_instance)
        candidates = list(small_instance.candidate_triples())
        strategy = Strategy(small_instance.catalog, candidates[:10])
        expected = model.revenue(strategy)
        simulator = AdoptionSimulator(small_instance, seed=123)
        result = simulator.run(strategy, num_runs=4000)
        halfwidth = result.revenue_confidence_halfwidth()
        assert abs(result.mean_revenue - expected) <= max(3 * halfwidth, 1e-6)

    def test_single_triple_adoption_rate(self):
        instance = build_random_instance(num_users=1, num_items=1, num_classes=1,
                                         horizon=1, density=1.0, seed=0)
        triple = next(iter(instance.candidate_triples()))
        probability = instance.probability(*triple)
        strategy = Strategy(instance.catalog, [triple])
        simulator = AdoptionSimulator(instance, seed=7)
        result = simulator.run(strategy, num_runs=5000)
        observed_rate = result.mean_adoptions
        assert observed_rate == pytest.approx(probability, abs=0.03)

    def test_item_adoption_counts_recorded(self, small_instance):
        candidates = list(small_instance.candidate_triples())
        strategy = Strategy(small_instance.catalog, candidates[:6])
        simulator = AdoptionSimulator(small_instance, seed=5)
        result = simulator.run(strategy, num_runs=200)
        assert all(count > 0 for count in result.item_adoption_counts.values())
        strategy_items = {z.item for z in candidates[:6]}
        assert set(result.item_adoption_counts) <= strategy_items
