"""Tests for core entities: triples and item catalogs."""

from __future__ import annotations

import pytest

from repro.core.entities import ItemCatalog, ItemMeta, Triple, UserMeta, as_triples


class TestTriple:
    def test_fields(self):
        triple = Triple(user=3, item=7, t=1)
        assert triple.user == 3
        assert triple.item == 7
        assert triple.t == 1

    def test_is_tuple_like(self):
        triple = Triple(1, 2, 3)
        user, item, t = triple
        assert (user, item, t) == (1, 2, 3)

    def test_equality_and_hashing(self):
        assert Triple(1, 2, 3) == Triple(1, 2, 3)
        assert len({Triple(1, 2, 3), Triple(1, 2, 3)}) == 1

    def test_str(self):
        assert str(Triple(1, 2, 3)) == "(u1, i2, t3)"

    def test_as_triples_coerces(self):
        triples = as_triples([(0, 1, 2), [3, 4, 5]])
        assert triples == [Triple(0, 1, 2), Triple(3, 4, 5)]


class TestItemCatalog:
    def test_basic_class_lookup(self):
        catalog = ItemCatalog(item_class=[0, 0, 1, 2])
        assert catalog.num_items == 4
        assert catalog.num_classes == 3
        assert catalog.class_of(1) == 0
        assert catalog.class_of(3) == 2

    def test_negative_class_rejected(self):
        with pytest.raises(ValueError):
            ItemCatalog(item_class=[0, -1])

    def test_members(self):
        catalog = ItemCatalog(item_class=[0, 1, 0, 1, 1])
        assert catalog.members(0) == [0, 2]
        assert catalog.members(1) == [1, 3, 4]

    def test_class_sizes(self):
        catalog = ItemCatalog(item_class=[0, 1, 0, 1, 1])
        assert catalog.class_sizes() == {0: 2, 1: 3}

    def test_same_class(self):
        catalog = ItemCatalog(item_class=[0, 1, 0])
        assert catalog.same_class(0, 2)
        assert not catalog.same_class(0, 1)

    def test_singleton(self):
        catalog = ItemCatalog.singleton(4)
        assert catalog.num_classes == 4
        assert all(catalog.class_of(i) == i for i in range(4))
        assert all(size == 1 for size in catalog.class_sizes().values())

    def test_from_assignment_with_names(self):
        catalog = ItemCatalog.from_assignment([0, 1], {0: "tablets", 1: "phones"})
        assert catalog.class_names[0] == "tablets"
        assert catalog.class_of(1) == 1


class TestMetadata:
    def test_item_meta_defaults(self):
        meta = ItemMeta(item_id=3, item_class=1)
        assert meta.name == ""
        assert meta.base_price == 0.0

    def test_user_meta(self):
        meta = UserMeta(user_id=2, name="alice")
        assert meta.user_id == 2
        assert meta.name == "alice"

    def test_item_meta_frozen(self):
        meta = ItemMeta(item_id=1, item_class=0)
        with pytest.raises(AttributeError):
            meta.item_id = 5  # type: ignore[misc]
