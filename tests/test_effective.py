"""Tests for the R-REVMAX effective dynamic adoption probability (Definition 4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.effective import EffectiveRevenueModel
from repro.core.entities import Triple
from repro.core.problem import RevMaxInstance
from repro.core.revenue import RevenueModel
from repro.core.strategy import Strategy
from repro.simulation.capacity_oracle import MonteCarloCapacityOracle


def _example3_instance(q_u=0.4, q_v=0.3, q_w1=0.2, q_w2=0.6):
    """One item, three users u=0, v=1, w=2; k=1, capacity 1, beta=0.5."""
    return RevMaxInstance.from_dense_adoption(
        prices=np.full((1, 2), 10.0),
        adoption={
            (0, 0): [q_u, q_u],
            (1, 0): [q_v, q_v],
            (2, 0): [q_w1, q_w2],
        },
        item_class=[0],
        capacities=1,
        betas=0.5,
        display_limit=1,
        num_users=3,
    )


class TestCapacityFactor:
    def test_below_capacity_factor_is_one(self):
        instance = _example3_instance()
        model = EffectiveRevenueModel(instance)
        strategy = Strategy(instance.catalog, [Triple(0, 0, 0)])
        assert model.capacity_factor(strategy, Triple(0, 0, 0)) == 1.0

    def test_example_3_from_paper(self):
        """Example 3: S = {(u,i,1), (v,i,2), (w,i,1), (w,i,2)}, q_i = 1.

        The effective probability of (w, i, 2) multiplies its dynamic
        probability (competition with (w,i,1) and saturation 0.5^1) by the
        probability that neither u nor v adopted the item.
        """
        q_u, q_v, q_w1, q_w2 = 0.4, 0.3, 0.2, 0.6
        instance = _example3_instance(q_u, q_v, q_w1, q_w2)
        # 0-based times: t=0 and t=1.
        strategy = Strategy(instance.catalog, [
            Triple(0, 0, 0), Triple(1, 0, 1), Triple(2, 0, 0), Triple(2, 0, 1),
        ])
        model = EffectiveRevenueModel(instance)
        target = Triple(2, 0, 1)
        expected_dynamic = q_w2 * (1 - q_w1) * 0.5 ** 1.0
        # Competing users: u adopts at time 0 with prob q_u; v's triple is at
        # time 1 <= t and adopts with prob q_v (its dynamic prob = primitive).
        expected_capacity = (1 - q_u) * (1 - q_v)
        effective = model.effective_probability(strategy, target)
        assert effective == pytest.approx(expected_dynamic * expected_capacity)

    def test_capacity_factor_uses_dynamic_probabilities_of_competitors(self):
        """A competitor whose own dynamic probability is discounted blocks less."""
        instance = _example3_instance()
        model = EffectiveRevenueModel(instance)
        # Competitor u has two recommendations; the later one is discounted, so
        # the total adoption probability of u is below the naive 2 * q_u.
        strategy = Strategy(instance.catalog, [
            Triple(0, 0, 0), Triple(0, 0, 1), Triple(2, 0, 1),
        ])
        factor = model.capacity_factor(strategy, Triple(2, 0, 1))
        q_u = 0.4
        p_first = q_u
        p_second = q_u * (1 - q_u) * 0.5  # competition with itself + saturation
        assert factor == pytest.approx(1.0 - min(1.0, p_first + p_second))

    def test_monte_carlo_oracle_close_to_exact(self):
        instance = _example3_instance()
        exact_model = EffectiveRevenueModel(instance)
        mc_model = EffectiveRevenueModel(
            instance, MonteCarloCapacityOracle(num_samples=20000, seed=3)
        )
        strategy = Strategy(instance.catalog, [
            Triple(0, 0, 0), Triple(1, 0, 1), Triple(2, 0, 1),
        ])
        target = Triple(2, 0, 1)
        assert mc_model.capacity_factor(strategy, target) == pytest.approx(
            exact_model.capacity_factor(strategy, target), abs=0.02
        )


class TestEffectiveRevenue:
    def test_reduces_to_exact_model_when_capacity_not_binding(self):
        instance = _example3_instance().with_capacities(10)
        effective = EffectiveRevenueModel(instance)
        exact = RevenueModel(instance)
        strategy = Strategy(instance.catalog, [
            Triple(0, 0, 0), Triple(1, 0, 1), Triple(2, 0, 0),
        ])
        assert effective.revenue(strategy) == pytest.approx(exact.revenue(strategy))

    def test_revenue_below_exact_when_capacity_binds(self):
        instance = _example3_instance()
        effective = EffectiveRevenueModel(instance)
        exact = RevenueModel(instance)
        strategy = Strategy(instance.catalog, [
            Triple(0, 0, 0), Triple(1, 0, 1), Triple(2, 0, 1),
        ])
        assert effective.revenue(strategy) < exact.revenue(strategy)

    def test_absent_triple_effective_probability_zero(self):
        instance = _example3_instance()
        model = EffectiveRevenueModel(instance)
        strategy = Strategy(instance.catalog, [Triple(0, 0, 0)])
        assert model.effective_probability(strategy, Triple(1, 0, 1)) == 0.0

    def test_marginal_revenue_matches_difference(self):
        instance = _example3_instance()
        model = EffectiveRevenueModel(instance)
        base = [Triple(0, 0, 0), Triple(1, 0, 1)]
        strategy = Strategy(instance.catalog, base)
        addition = Triple(2, 0, 1)
        expected = (
            model.revenue(Strategy(instance.catalog, base + [addition]))
            - model.revenue(strategy)
        )
        assert model.marginal_revenue(strategy, addition) == pytest.approx(expected)

    def test_marginal_of_member_is_zero(self):
        instance = _example3_instance()
        model = EffectiveRevenueModel(instance)
        strategy = Strategy(instance.catalog, [Triple(0, 0, 0)])
        assert model.marginal_revenue(strategy, Triple(0, 0, 0)) == 0.0
