"""Tests for Global Greedy (Algorithm 1) and its GlobalNo / ablation variants."""

from __future__ import annotations

import itertools

import pytest

from repro.algorithms.global_greedy import GlobalGreedy, GlobalGreedyNoSaturation
from repro.core.constraints import ConstraintChecker
from repro.core.entities import Triple
from repro.core.revenue import RevenueModel
from repro.core.strategy import Strategy

from tests.conftest import build_random_instance


def _brute_force_optimum(instance, max_size=4):
    """Best valid strategy among all subsets up to ``max_size`` (tiny instances)."""
    model = RevenueModel(instance)
    checker = ConstraintChecker(instance)
    candidates = list(instance.candidate_triples())
    best = 0.0
    for size in range(max_size + 1):
        for combo in itertools.combinations(candidates, size):
            strategy = Strategy(instance.catalog, combo)
            if not checker.is_valid(strategy):
                continue
            best = max(best, model.revenue(strategy))
    return best


class TestGlobalGreedyCorrectness:
    def test_output_is_valid(self, small_instance):
        result = GlobalGreedy().run(small_instance)
        ConstraintChecker(small_instance).check(result.strategy)
        assert result.revenue > 0.0

    def test_reported_revenue_matches_model(self, small_instance):
        result = GlobalGreedy().run(small_instance)
        model = RevenueModel(small_instance)
        assert result.revenue == pytest.approx(model.revenue(result.strategy))

    def test_handles_paper_example_optimally(self, paper_example_instance):
        """On the Theorem-2 example the greedy must pick only (u, i, 2)."""
        result = GlobalGreedy().run(paper_example_instance)
        assert result.strategy.triples() == {Triple(0, 0, 1)}
        assert result.revenue == pytest.approx(0.57)

    def test_no_negative_marginal_additions(self, small_instance):
        """Removing any single selected triple must not increase revenue
        beyond numerical noise larger than its own contribution (i.e., every
        selection was made with positive marginal revenue at the time)."""
        result = GlobalGreedy().run(small_instance)
        curve = result.growth_curve
        revenues = [revenue for _, revenue in curve]
        assert all(later >= earlier - 1e-9
                   for earlier, later in zip(revenues, revenues[1:]))

    def test_growth_curve_consistency(self, small_instance):
        result = GlobalGreedy().run(small_instance)
        assert result.growth_curve[-1][0] == len(result.strategy)
        assert result.growth_curve[-1][1] == pytest.approx(result.revenue, rel=1e-6)
        sizes = [size for size, _ in result.growth_curve]
        assert sizes == sorted(sizes)

    def test_close_to_optimum_on_tiny_instances(self):
        for seed in range(4):
            instance = build_random_instance(
                num_users=2, num_items=2, num_classes=1, horizon=2,
                display_limit=1, capacity=1, beta=0.5, seed=seed,
            )
            greedy = GlobalGreedy().run(instance).revenue
            optimum = _brute_force_optimum(instance, max_size=4)
            assert greedy >= 0.5 * optimum
            assert greedy <= optimum + 1e-9

    def test_respects_capacity_exactly(self):
        instance = build_random_instance(
            num_users=6, num_items=2, num_classes=2, horizon=2,
            display_limit=2, capacity=2, density=1.0, seed=3,
        )
        result = GlobalGreedy().run(instance)
        for item in range(instance.num_items):
            assert result.strategy.item_audience_size(item) <= instance.capacity(item)

    def test_respects_display_limit_exactly(self, small_instance):
        result = GlobalGreedy().run(small_instance)
        for user in range(small_instance.num_users):
            for t in range(small_instance.horizon):
                assert result.strategy.display_count(user, t) <= (
                    small_instance.display_limit
                )

    def test_empty_instance_yields_empty_strategy(self):
        instance = build_random_instance(num_users=1, num_items=1, horizon=1,
                                         density=0.0, seed=0)
        # density 0 keeps one forced pair; zero out its probability by making
        # the instance trivially empty through beta/probability filtering is
        # not possible, so instead restrict allowed_times to an empty set.
        strategy = GlobalGreedy().build_strategy(instance, allowed_times=[])
        assert len(strategy) == 0


class TestGlobalGreedyVariants:
    def test_lazy_forward_and_eager_agree(self, small_instance):
        lazy = GlobalGreedy(use_lazy_forward=True).run(small_instance)
        eager = GlobalGreedy(use_lazy_forward=False).run(small_instance)
        # Lazy forward relies on diminishing returns which can be violated in
        # rare configurations (see test_submodularity); revenues must still be
        # essentially identical on typical instances.
        assert lazy.revenue == pytest.approx(eager.revenue, rel=0.02)

    def test_two_level_and_flat_heap_agree(self, small_instance):
        two_level = GlobalGreedy(use_two_level_heap=True).run(small_instance)
        flat = GlobalGreedy(use_two_level_heap=False).run(small_instance)
        assert two_level.revenue == pytest.approx(flat.revenue, rel=1e-9)
        assert two_level.strategy.triples() == flat.strategy.triples()

    def test_lazy_forward_does_less_work(self):
        instance = build_random_instance(
            num_users=10, num_items=8, num_classes=2, horizon=4,
            display_limit=2, capacity=5, seed=7,
        )
        lazy = GlobalGreedy(use_lazy_forward=True)
        eager = GlobalGreedy(use_lazy_forward=False)
        lazy.run(instance)
        eager.run(instance)
        assert lazy.last_evaluations <= eager.last_evaluations

    def test_global_no_ignores_saturation_for_selection(self):
        """GlobalNo must repeat recommendations more aggressively than GG when
        saturation is strong, and earn no more true revenue than GG."""
        instance = build_random_instance(
            num_users=5, num_items=4, num_classes=1, horizon=4,
            display_limit=2, capacity=5, beta=0.05, density=1.0, seed=11,
        )
        with_saturation = GlobalGreedy().run(instance)
        without = GlobalGreedyNoSaturation().run(instance)
        assert without.algorithm == "GlobalNo"
        assert without.revenue <= with_saturation.revenue + 1e-9
        ConstraintChecker(instance).check(without.strategy)

    def test_extras_record_configuration(self, small_instance):
        algorithm = GlobalGreedy(use_lazy_forward=False, use_two_level_heap=False)
        algorithm.run(small_instance)
        assert algorithm.last_extras == {
            "lazy_forward": False,
            "two_level_heap": False,
            "ignore_saturation": False,
        }


class TestGlobalGreedySubHorizons:
    def test_allowed_times_restricts_selection(self, small_instance):
        strategy = GlobalGreedy().build_strategy(small_instance, allowed_times=[0])
        assert all(triple.t == 0 for triple in strategy)

    def test_initial_strategy_is_preserved_and_respected(self, small_instance):
        first = GlobalGreedy().build_strategy(small_instance, allowed_times=[0])
        combined = GlobalGreedy().build_strategy(
            small_instance, allowed_times=[1, 2], initial_strategy=first
        )
        assert first.triples() <= combined.triples()
        new_triples = combined.triples() - first.triples()
        assert all(triple.t in (1, 2) for triple in new_triples)
        ConstraintChecker(small_instance).check(combined)

    def test_sub_horizon_rarely_beats_full_horizon(self, small_instance):
        """Planning the horizon in two stages should not beat holistic planning
        by any meaningful margin (both are heuristics, so allow slack)."""
        model = RevenueModel(small_instance)
        full = GlobalGreedy().run(small_instance).revenue
        first = GlobalGreedy().build_strategy(small_instance, allowed_times=[0, 1])
        combined = GlobalGreedy().build_strategy(
            small_instance, allowed_times=[2], initial_strategy=first
        )
        staged = model.revenue(combined)
        assert staged <= full * 1.05 + 1e-6
