"""Tests for the §6.1 dataset -> REVMAX instance pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.constraints import ConstraintChecker
from repro.datasets.amazon_like import AmazonLikeConfig, generate_amazon_like
from repro.datasets.epinions_like import EpinionsLikeConfig, generate_epinions_like
from repro.datasets.pipeline import PipelineConfig, build_instance, run_pipeline
from repro.recsys.mf import MFConfig


@pytest.fixture(scope="module")
def amazon_dataset():
    return generate_amazon_like(AmazonLikeConfig(num_users=60, num_items=30, seed=5))


@pytest.fixture(scope="module")
def epinions_dataset():
    return generate_epinions_like(EpinionsLikeConfig(num_users=50, num_items=24, seed=5))


@pytest.fixture(scope="module")
def fast_config():
    return PipelineConfig(
        num_candidates=8,
        mf_config=MFConfig(num_factors=4, num_epochs=4, seed=0),
        seed=0,
    )


class TestPipelineOnAmazon:
    def test_produces_consistent_instance(self, amazon_dataset, fast_config):
        result = run_pipeline(amazon_dataset, fast_config)
        instance = result.instance
        assert instance.num_users == amazon_dataset.num_users
        assert instance.num_items == amazon_dataset.num_items
        assert instance.horizon == amazon_dataset.horizon
        assert instance.display_limit == fast_config.display_limit
        assert instance.num_candidate_triples() > 0
        # Exact prices flow through untouched.
        assert np.allclose(instance.prices, amazon_dataset.prices)

    def test_probabilities_are_valid(self, amazon_dataset, fast_config):
        instance = build_instance(amazon_dataset, fast_config)
        for (user, item) in list(instance.adoption.pairs())[:50]:
            vector = instance.adoption.get(user, item)
            assert np.all((vector >= 0.0) & (vector <= 1.0))

    def test_candidates_respect_top_n(self, amazon_dataset, fast_config):
        result = run_pipeline(amazon_dataset, fast_config)
        assert all(
            len(candidates) <= fast_config.num_candidates
            for candidates in result.candidates.values()
        )

    def test_every_candidate_pair_has_valuation(self, amazon_dataset, fast_config):
        result = run_pipeline(amazon_dataset, fast_config)
        assert set(result.valuations) == set(range(amazon_dataset.num_items))

    def test_capacity_and_beta_settings_applied(self, amazon_dataset):
        config = PipelineConfig(
            num_candidates=6,
            mf_config=MFConfig(num_factors=4, num_epochs=3, seed=0),
            beta_mode="fixed",
            beta_value=0.25,
            capacity_distribution="uniform",
            seed=3,
        )
        instance = build_instance(amazon_dataset, config)
        assert np.all(instance.betas == 0.25)
        assert np.all(instance.capacities >= 1)


class TestPipelineOnEpinions:
    def test_kde_prices_are_generated(self, epinions_dataset, fast_config):
        result = run_pipeline(epinions_dataset, fast_config)
        assert result.prices.shape == (epinions_dataset.num_items,
                                       epinions_dataset.horizon)
        assert np.all(result.prices > 0)

    def test_kde_prices_track_reported_prices(self, epinions_dataset, fast_config):
        result = run_pipeline(epinions_dataset, fast_config)
        for item, reports in list(epinions_dataset.reported_prices.items())[:10]:
            sampled_mean = result.prices[item].mean()
            reported_mean = np.mean(reports)
            assert sampled_mean == pytest.approx(reported_mean, rel=0.5)

    def test_instance_usable_by_algorithms(self, epinions_dataset, fast_config):
        from repro.algorithms.global_greedy import GlobalGreedy

        instance = build_instance(epinions_dataset, fast_config)
        result = GlobalGreedy().run(instance)
        assert result.revenue > 0
        ConstraintChecker(instance).check(result.strategy)

    def test_price_affects_adoption_probability(self, epinions_dataset, fast_config):
        """Within a candidate pair, the cheapest day has the highest q."""
        result = run_pipeline(epinions_dataset, fast_config)
        instance = result.instance
        monotone_checks = 0
        for (user, item) in list(instance.adoption.pairs())[:40]:
            vector = instance.adoption.get(user, item)
            prices = instance.prices[item]
            if np.ptp(prices) < 1e-9 or np.ptp(vector) < 1e-12:
                continue
            cheapest = int(np.argmin(prices))
            assert vector[cheapest] == pytest.approx(np.max(vector), rel=1e-9)
            monotone_checks += 1
        assert monotone_checks > 0
