"""Tests for the columnar instance core (``repro.core.compiled``).

Four layers of guarantees:

* **round trips** -- ``CompiledInstance`` reproduces the object layout
  exactly: compiling, materializing back (``to_instance``) and re-compiling
  are lossless, bit for bit;
* **view parity** -- a columnar-backed instance answers every
  ``AdoptionTable`` query identically to the dict-backed original;
* **engine equivalence** -- ``RevenueModel`` revenues and marginal revenues
  on the compiled tensors match the object path bit-identically (and the
  python reference to 1e-9), and G-Greedy selects identical strategies
  through the columnar frontier;
* **serialization** -- the ``.npz`` format round-trips losslessly and
  memory-maps its tensors on load.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms.global_greedy import GlobalGreedy
from repro.core.compiled import ColumnarAdoptionTable, CompiledInstance
from repro.core.entities import Triple
from repro.core.problem import AdoptionTable
from repro.core.revenue import RevenueModel
from repro.core.strategy import Strategy
from repro.heaps.columnar import ColumnarFrontier
from repro import io as repro_io

from tests.conftest import build_random_instance


def _random_strategy(instance, size, seed):
    candidates = list(instance.candidate_triples())
    rng = np.random.default_rng(seed)
    rng.shuffle(candidates)
    return candidates[:size], candidates[size:]


class TestCompilation:
    def test_csr_layout(self, small_instance):
        compiled = small_instance.compiled()
        assert compiled.user_ptr.shape == (small_instance.num_users + 1,)
        assert compiled.user_ptr[0] == 0
        assert compiled.user_ptr[-1] == compiled.num_pairs
        assert compiled.pair_probs.shape == (
            compiled.num_pairs, small_instance.horizon
        )
        # Pairs sorted by (user, item); items strictly increasing per user.
        for user in range(small_instance.num_users):
            start, stop = compiled.user_ptr[user], compiled.user_ptr[user + 1]
            items = compiled.pair_item[start:stop]
            assert np.all(np.diff(items) > 0)
            assert np.all(compiled.pair_user[start:stop] == user)

    def test_compilation_is_cached(self, small_instance):
        assert small_instance.compiled_or_none() is None
        compiled = small_instance.compiled()
        assert small_instance.compiled_or_none() is compiled
        assert small_instance.compiled() is compiled

    def test_cache_invalidated_on_table_mutation(self, small_instance):
        compiled = small_instance.compiled()
        small_instance.adoption.set(0, 0, [0.5] * small_instance.horizon)
        recompiled = small_instance.compiled()
        assert recompiled is not compiled
        assert recompiled.pair_probs[recompiled.pair_row(0, 0), 0] == 0.5

    def test_pair_row_lookups(self, small_instance):
        compiled = small_instance.compiled()
        for user, item in small_instance.adoption.pairs():
            row = compiled.pair_row(user, item)
            assert compiled.pair_user[row] == user
            assert compiled.pair_item[row] == item
            assert np.array_equal(
                compiled.pair_probs[row], small_instance.adoption.get(user, item)
            )
        assert compiled.pair_row(10**6, 0) == -1
        assert compiled.pair_row(0, 10**6) == -1
        assert compiled.pair_row(-1, 0) == -1
        # Vectorized lookups apply the same bounds checks: out-of-range ids
        # must not alias other pairs' keys.
        rows = compiled.pair_rows(
            np.array([0, -1, 10**6, 0, 1]),
            np.array([compiled.num_items, 0, 0, -1, 10**6]),
        )
        assert np.all(rows == -1)

    def test_isolated_revenues_match_scalar(self, small_instance):
        compiled = small_instance.compiled()
        isolated = compiled.isolated_revenues()
        for triple in small_instance.candidate_triples():
            row = compiled.pair_row(triple.user, triple.item)
            assert isolated[row, triple.t] == (
                small_instance.expected_isolated_revenue(triple)
            )

    def test_group_index_covers_every_pair(self, small_instance):
        compiled = small_instance.compiled()
        assert compiled.pair_group.shape == (compiled.num_pairs,)
        assert compiled.num_groups == len(
            {(int(u), small_instance.class_of(int(i)))
             for u, i in zip(compiled.pair_user, compiled.pair_item)}
        )
        for row in range(compiled.num_pairs):
            group = compiled.pair_group[row]
            assert compiled.group_user[group] == compiled.pair_user[row]
            assert compiled.group_class[group] == small_instance.class_of(
                int(compiled.pair_item[row])
            )

    def test_memory_footprint_totals(self, small_instance):
        footprint = small_instance.compiled().memory_footprint()
        total = footprint.pop("total")
        assert total == sum(footprint.values())
        assert footprint["pair_probs"] > 0

    @settings(deadline=None, max_examples=15)
    @given(seed=st.integers(0, 10**6))
    def test_round_trip_is_lossless(self, seed):
        instance = build_random_instance(seed=seed)
        compiled = instance.compiled()
        materialized = compiled.to_instance(catalog=instance.catalog)
        assert set(materialized.adoption.pairs()) == set(
            instance.adoption.pairs()
        )
        for user, item in instance.adoption.pairs():
            assert np.array_equal(
                materialized.adoption.get(user, item),
                instance.adoption.get(user, item),
            )
        recompiled = CompiledInstance.from_instance(materialized)
        assert np.array_equal(recompiled.user_ptr, compiled.user_ptr)
        assert np.array_equal(recompiled.pair_item, compiled.pair_item)
        assert np.array_equal(recompiled.pair_probs, compiled.pair_probs)

    def test_validation_rejects_bad_tensors(self, small_instance):
        compiled = small_instance.compiled()
        bad_probs = compiled.pair_probs.copy()
        bad_probs[0, 0] = np.nan
        with pytest.raises(ValueError, match="NaN"):
            CompiledInstance(
                num_users=compiled.num_users, horizon=compiled.horizon,
                display_limit=compiled.display_limit,
                user_ptr=compiled.user_ptr, pair_item=compiled.pair_item,
                pair_probs=bad_probs, prices=compiled.prices,
                capacities=compiled.capacities, betas=compiled.betas,
                item_class=compiled.item_class,
            )
        with pytest.raises(ValueError, match="user_ptr"):
            CompiledInstance(
                num_users=compiled.num_users + 1, horizon=compiled.horizon,
                display_limit=compiled.display_limit,
                user_ptr=compiled.user_ptr, pair_item=compiled.pair_item,
                pair_probs=compiled.pair_probs, prices=compiled.prices,
                capacities=compiled.capacities, betas=compiled.betas,
                item_class=compiled.item_class,
            )


class TestColumnarAdoptionTable:
    def _views(self, seed=3):
        instance = build_random_instance(seed=seed)
        columnar = instance.compiled().as_instance(catalog=instance.catalog)
        return instance, columnar

    def test_query_parity_with_dict_table(self):
        instance, columnar = self._views()
        dict_table, view = instance.adoption, columnar.adoption
        assert isinstance(view, ColumnarAdoptionTable)
        assert len(view) == len(dict_table)
        assert set(view.pairs()) == set(dict_table.pairs())
        assert sorted(view.users()) == sorted(dict_table.users())
        assert view.num_positive_triples() == dict_table.num_positive_triples()
        assert set(view.positive_triples()) == set(dict_table.positive_triples())
        for user in dict_table.users():
            assert sorted(view.items_for_user(user)) == sorted(
                dict_table.items_for_user(user)
            )
            for item in dict_table.items_for_user(user):
                assert (user, item) in view
                assert np.array_equal(
                    view.get(user, item), dict_table.get(user, item)
                )
                for t in range(instance.horizon):
                    assert view.probability(user, item, t) == (
                        dict_table.probability(user, item, t)
                    )
        assert view.get(10**6, 0) is None
        assert view.probability(10**6, 0, 0) == 0.0
        assert (10**6, 0) not in view

    def test_view_is_read_only(self):
        _, columnar = self._views()
        with pytest.raises(TypeError, match="read-only"):
            columnar.adoption.set(0, 0, [0.1] * columnar.horizon)

    def test_columnar_instance_compiles_for_free(self):
        _, columnar = self._views()
        compiled = columnar.compiled()
        assert compiled is columnar.compiled_or_none()
        assert CompiledInstance.from_instance(columnar).pair_probs is (
            compiled.pair_probs
        )


class TestEngineEquivalence:
    @settings(deadline=None, max_examples=10)
    @given(seed=st.integers(0, 10**6))
    def test_revenues_bit_identical_to_object_path(self, seed):
        instance = build_random_instance(
            num_users=6, num_items=6, num_classes=2, horizon=4, seed=seed
        )
        selected, remaining = _random_strategy(instance, 12, seed)
        strategy = Strategy(instance.catalog, selected)
        compiled_model = RevenueModel(instance, backend="numpy", compiled=True)
        object_model = RevenueModel(instance, backend="numpy", compiled=False)
        python_model = RevenueModel(instance, backend="python")
        assert compiled_model.revenue(strategy) == object_model.revenue(strategy)
        assert compiled_model.revenue(strategy) == pytest.approx(
            python_model.revenue(strategy), rel=1e-9, abs=1e-12
        )
        for triple in remaining[:8]:
            compiled_marginal = compiled_model.marginal_revenue(strategy, triple)
            assert compiled_marginal == object_model.marginal_revenue(
                strategy, triple
            )
            assert compiled_marginal == pytest.approx(
                python_model.marginal_revenue(strategy, triple),
                rel=1e-9, abs=1e-12,
            )

    @settings(deadline=None, max_examples=10)
    @given(seed=st.integers(0, 10**6))
    def test_batched_scoring_bit_identical(self, seed):
        instance = build_random_instance(
            num_users=6, num_items=8, num_classes=2, horizon=4, seed=seed
        )
        selected, remaining = _random_strategy(instance, 10, seed)
        strategy = Strategy(instance.catalog, selected)
        compiled_model = RevenueModel(instance, backend="numpy", compiled=True)
        object_model = RevenueModel(instance, backend="numpy", compiled=False)
        assert compiled_model.marginal_revenue_batch(strategy, remaining) == (
            object_model.marginal_revenue_batch(strategy, remaining)
        )

    @settings(deadline=None, max_examples=6)
    @given(seed=st.integers(0, 10**6))
    def test_global_greedy_identical_through_columnar_frontier(self, seed):
        instance = build_random_instance(
            num_users=8, num_items=6, num_classes=3, horizon=3, seed=seed
        )
        compiled_result = GlobalGreedy().run(instance)
        legacy_result = GlobalGreedy(use_compiled=False).run(instance)
        assert compiled_result.strategy.triples() == (
            legacy_result.strategy.triples()
        )
        assert compiled_result.revenue == legacy_result.revenue
        assert compiled_result.growth_curve == legacy_result.growth_curve

    def test_model_tracks_table_mutations_like_object_path(self):
        # A model built before an adoption mutation must evaluate the live
        # table (the compiled view is version-checked per evaluation), also
        # for groups large enough to hit the vectorized gather path.
        instance = build_random_instance(
            num_users=4, num_items=3, num_classes=1, horizon=12,
            density=1.0, seed=1,
        )
        group = [z for z in instance.candidate_triples() if z.user == 0][:35]
        strategy = Strategy(instance.catalog, group)
        model = RevenueModel(instance, backend="numpy", cache=False)
        model.revenue(strategy)  # compiles the pre-mutation tensors
        instance.adoption.set(0, 0, np.full(12, 0.9))
        after = model.revenue(strategy)
        assert after == RevenueModel(
            instance, backend="numpy", cache=False
        ).revenue(strategy)
        assert after == pytest.approx(
            RevenueModel(instance, backend="python", cache=False).revenue(
                strategy
            ),
            rel=1e-9,
        )

    def test_tied_priorities_identical_across_all_paths(self):
        # Exact priority ties must break identically whichever path seeds
        # the frontier: candidate iteration follows the canonical
        # (user, item, t) order even when the adoption dict was populated
        # in a different order.
        from repro.core.problem import RevMaxInstance

        prices = np.full((3, 2), 2.0)
        adoption = {}
        for pair in [(1, 2), (0, 1), (1, 0), (0, 0)]:  # scrambled insertion
            adoption[pair] = [0.6, 0.6]
        instance = RevMaxInstance.from_dense_adoption(
            prices=prices, adoption=adoption, item_class=[0, 0, 1],
            capacities=1, betas=0.3, display_limit=1, num_users=2,
        )
        variants = [
            GlobalGreedy(),
            GlobalGreedy(use_compiled=False),
            GlobalGreedy(use_two_level_heap=False),
            GlobalGreedy(use_lazy_forward=False),
            GlobalGreedy(backend="python"),
        ]
        results = [algorithm.run(instance) for algorithm in variants]
        for result in results[1:]:
            assert result.strategy.triples() == results[0].strategy.triples()
            assert result.revenue == results[0].revenue

    def test_unsorted_pairs_rejected(self, small_instance):
        compiled = small_instance.compiled()
        order = np.arange(compiled.num_pairs)[::-1]
        with pytest.raises(ValueError, match="sorted"):
            CompiledInstance(
                num_users=compiled.num_users, horizon=compiled.horizon,
                display_limit=compiled.display_limit,
                user_ptr=compiled.user_ptr,
                pair_item=compiled.pair_item[order],
                pair_probs=compiled.pair_probs[order],
                prices=compiled.prices, capacities=compiled.capacities,
                betas=compiled.betas, item_class=compiled.item_class,
            )

    def test_columnar_backed_instance_solves_identically(self, small_instance):
        columnar = small_instance.compiled().as_instance(
            catalog=small_instance.catalog
        )
        a = GlobalGreedy().run(small_instance)
        b = GlobalGreedy().run(columnar)
        assert a.strategy.triples() == b.strategy.triples()
        assert a.revenue == b.revenue

    def test_out_of_range_allowed_times_match_legacy(self, small_instance):
        from repro.core.constraints import ConstraintChecker
        from repro.core.selection import SEED_ISOLATED, LazyGreedySelector

        # Negative or past-horizon times must simply match nothing -- in
        # particular -1 must not wrap around to the last time step.
        for times in ([-1], [small_instance.horizon], [-1, 0, 99]):
            results = {}
            for use_compiled in (True, False):
                strategy = Strategy(small_instance.catalog)
                model = RevenueModel(small_instance, compiled=use_compiled)
                LazyGreedySelector(
                    small_instance, model, ConstraintChecker(small_instance),
                    seed_priorities=SEED_ISOLATED, use_compiled=use_compiled,
                ).select(strategy, None, allowed_times=times)
                results[use_compiled] = strategy.triples()
            assert results[True] == results[False]
            assert all(z.t in times for z in results[True])

    def test_allowed_times_matches_legacy_filtering(self, small_instance):
        from repro.algorithms.incomplete_prices import SubHorizonWrapper

        compiled = SubHorizonWrapper(GlobalGreedy(), cutoffs=[1, 2]).run(
            small_instance
        )
        legacy = SubHorizonWrapper(
            GlobalGreedy(use_compiled=False), cutoffs=[1, 2]
        ).run(small_instance)
        assert compiled.strategy.triples() == legacy.strategy.triples()
        assert compiled.revenue == legacy.revenue


class TestColumnarFrontier:
    def _frontier(self):
        pair_user = np.array([0, 0, 1])
        pair_item = np.array([0, 1, 0])
        priorities = np.array([[5.0, 7.0], [6.0, 0.0], [4.0, 9.0]])
        seeded = priorities > 0.0
        rows = {(0, 0): 0, (0, 1): 1, (1, 0): 2}

        def lookup(user, item):
            return rows.get((user, item), -1)

        return ColumnarFrontier(pair_user, pair_item, priorities,
                                seeded.copy(), lookup)

    def test_peek_orders_globally(self):
        frontier = self._frontier()
        assert frontier.peek() == (Triple(1, 0, 1), 9.0)
        assert len(frontier) == 5
        assert Triple(0, 0, 1) in frontier
        assert Triple(0, 1, 1) not in frontier  # masked out (priority 0)

    def test_pop_discard_and_update(self):
        frontier = self._frontier()
        assert frontier.pop() == (Triple(1, 0, 1), 9.0)
        assert frontier.peek() == (Triple(0, 0, 1), 7.0)
        frontier.update(Triple(0, 0, 1), 1.0)
        assert frontier.peek() == (Triple(0, 1, 0), 6.0)
        frontier.discard(Triple(0, 1, 0))
        assert frontier.peek() == (Triple(0, 0, 0), 5.0)
        # Draining every entry empties the frontier.
        for _ in range(3):
            frontier.pop()
        assert not frontier
        with pytest.raises(IndexError):
            frontier.peek()

    def test_priority_accessor(self):
        frontier = self._frontier()
        # Before materialization the seeded matrix answers directly ...
        assert frontier.priority(Triple(0, 0, 1)) == 7.0
        # ... and after an update the lower heap does.
        frontier.update(Triple(0, 0, 1), 2.5)
        assert frontier.priority(Triple(0, 0, 1)) == 2.5
        with pytest.raises(KeyError):
            frontier.priority(Triple(0, 1, 1))  # masked out (priority 0)
        with pytest.raises(KeyError):
            frontier.priority(Triple(9, 9, 0))  # unknown pair

    def test_group_members_and_drop_group(self):
        frontier = self._frontier()
        assert frontier.group_members((0, 0)) == {
            Triple(0, 0, 0), Triple(0, 0, 1)
        }
        frontier.drop_group((0, 0))
        assert frontier.group_members((0, 0)) == set()
        assert Triple(0, 0, 1) not in frontier
        assert frontier.peek() == (Triple(1, 0, 1), 9.0)
        frontier.drop_group((5, 5))  # unknown group: no-op

    def test_tie_breaks_by_row_then_time(self):
        pair_user = np.array([0, 0])
        pair_item = np.array([0, 1])
        priorities = np.array([[3.0, 3.0], [3.0, 3.0]])
        rows = {(0, 0): 0, (0, 1): 1}
        frontier = ColumnarFrontier(
            pair_user, pair_item, priorities, priorities > 0,
            lambda u, i: rows.get((u, i), -1),
        )
        assert frontier.pop() == (Triple(0, 0, 0), 3.0)
        assert frontier.pop() == (Triple(0, 0, 1), 3.0)
        assert frontier.pop() == (Triple(0, 1, 0), 3.0)


class TestAdoptionValidation:
    def test_rejects_nan_naming_the_pair(self):
        table = AdoptionTable(3)
        with pytest.raises(ValueError, match=r"NaN"):
            table.set(4, 7, [0.1, float("nan"), 0.2])
        with pytest.raises(ValueError, match=r"user=4.*item=7"):
            table.set(4, 7, [0.1, float("nan"), 0.2])

    def test_rejects_out_of_range_naming_the_pair(self):
        table = AdoptionTable(2)
        with pytest.raises(ValueError, match=r"user=1.*item=2"):
            table.set(1, 2, [0.5, 1.5])
        with pytest.raises(ValueError, match=r"-0\.1"):
            table.set(0, 0, [-0.1, 0.5])

    def test_rejects_wrong_length_naming_the_pair(self):
        table = AdoptionTable(3)
        with pytest.raises(ValueError, match=r"user=2.*item=3"):
            table.set(2, 3, [0.5, 0.5])

    def test_valid_vectors_still_accepted(self):
        table = AdoptionTable(2)
        table.set(0, 0, [0.0, 1.0])
        assert table.probability(0, 0, 1) == 1.0


class TestNpzSerialization:
    def test_round_trip_and_memory_mapping(self, small_instance, tmp_path):
        path = tmp_path / "instance.npz"
        repro_io.save_instance_npz(small_instance, path)
        loaded = repro_io.load_instance_npz(path)
        compiled = loaded.compiled()
        original = small_instance.compiled()
        # Tensors are memory-mapped straight out of the archive.
        assert isinstance(compiled.pair_probs.base, np.memmap)
        assert np.array_equal(compiled.pair_probs, original.pair_probs)
        assert np.array_equal(compiled.user_ptr, original.user_ptr)
        assert np.array_equal(compiled.pair_item, original.pair_item)
        assert np.array_equal(compiled.prices, original.prices)
        assert loaded.name == small_instance.name
        assert loaded.num_users == small_instance.num_users
        assert loaded.display_limit == small_instance.display_limit

    def test_loaded_instance_solves_identically(self, small_instance, tmp_path):
        path = tmp_path / "instance.npz"
        repro_io.save_instance_npz(small_instance, path)
        a = GlobalGreedy().run(small_instance)
        for mmap in (True, False):
            loaded = repro_io.load_instance_npz(path, mmap=mmap)
            b = GlobalGreedy().run(loaded)
            assert a.revenue == b.revenue
            assert a.strategy.triples() == b.strategy.triples()

    def test_class_names_round_trip(self, small_instance, tmp_path):
        from repro.core.entities import ItemCatalog
        from repro.core.problem import RevMaxInstance

        named = RevMaxInstance(
            num_users=small_instance.num_users,
            catalog=ItemCatalog.from_assignment(
                small_instance.catalog.item_class, {0: "tablets", 1: "phones"}
            ),
            horizon=small_instance.horizon,
            display_limit=small_instance.display_limit,
            prices=small_instance.prices,
            capacities=small_instance.capacities,
            betas=small_instance.betas,
            adoption=small_instance.adoption,
        )
        path = tmp_path / "named.npz"
        repro_io.save_instance_npz(named, path)
        loaded = repro_io.load_instance_npz(path)
        assert loaded.catalog.class_names == {0: "tablets", 1: "phones"}

    def test_archive_is_a_plain_npz(self, small_instance, tmp_path):
        path = tmp_path / "instance.npz"
        repro_io.save_instance_npz(small_instance, path)
        with np.load(path, allow_pickle=False) as archive:
            assert str(archive["kind"]) == "revmax-instance-columnar"
            assert archive["pair_probs"].shape[1] == small_instance.horizon

    def test_wrong_kind_rejected(self, tmp_path):
        path = tmp_path / "bogus.npz"
        with open(path, "wb") as handle:
            np.savez(handle, kind=np.str_("something-else"),
                     format_version=np.int64(1))
        with pytest.raises(ValueError, match="revmax-instance-columnar"):
            repro_io.load_instance_npz(path)


class TestColumnarGenerators:
    def test_synthetic_columnar_is_valid_and_dictless(self):
        from repro.datasets.synthetic import (
            SyntheticConfig, generate_synthetic_columnar,
        )

        config = SyntheticConfig(num_users=300, num_items=50, num_classes=10,
                                 candidates_per_user=8, horizon=4, seed=5)
        instance = generate_synthetic_columnar(config)
        assert isinstance(instance.adoption, ColumnarAdoptionTable)
        compiled = instance.compiled()
        assert compiled.num_pairs == 300 * 8
        assert compiled.num_candidate_triples() == 300 * 8 * 4
        # Every user has exactly 8 distinct, sorted candidate items.
        for user in range(300):
            items = instance.candidate_items(user)
            assert len(items) == 8
            assert len(set(items)) == 8
            assert items == sorted(items)
        # Anti-monotone matching within every pair: the cheapest price
        # carries the highest probability.
        rng = np.random.default_rng(0)
        for row in rng.integers(0, compiled.num_pairs, size=20):
            item = int(compiled.pair_item[row])
            order = np.argsort(instance.prices[item])
            probs = compiled.pair_probs[row][order]
            assert np.all(np.diff(probs) <= 0)
        result = GlobalGreedy().run(instance)
        assert result.revenue > 0

    def test_build_csr_deduplicates_like_build_table(self):
        from repro.pricing.adoption import AdoptionEstimator
        from repro.pricing.valuation import GaussianValuation
        from repro.recsys.topk import Candidate

        estimator = AdoptionEstimator(
            valuations={0: GaussianValuation(50.0, 10.0),
                        1: GaussianValuation(40.0, 5.0)},
            max_rating=5.0,
        )
        prices = np.array([[45.0, 50.0], [30.0, 35.0]])
        # Duplicate (user, item) candidate: build_table's last write wins.
        candidates = {0: [Candidate(0, 0, 4.0), Candidate(0, 0, 2.0),
                          Candidate(0, 1, 3.0)]}
        table = estimator.build_table(candidates, prices)
        user_ptr, pair_item, pair_probs = estimator.build_csr(
            candidates, prices, num_users=1
        )
        assert pair_item.tolist() == [0, 1]
        assert user_ptr.tolist() == [0, 2]
        for row, item in enumerate(pair_item.tolist()):
            assert np.array_equal(pair_probs[row], table.get(0, item))

    def test_pipeline_columnar_bit_identical(self):
        from repro.datasets.amazon_like import (
            AmazonLikeConfig, generate_amazon_like,
        )
        from repro.datasets.pipeline import PipelineConfig, run_pipeline
        from repro.recsys.mf import MFConfig

        dataset = generate_amazon_like(
            AmazonLikeConfig(num_users=40, num_items=20, seed=11)
        )
        config = PipelineConfig(
            num_candidates=6,
            mf_config=MFConfig(num_factors=4, num_epochs=3, seed=1),
            seed=1,
        )
        object_instance = run_pipeline(dataset, config).instance
        columnar_instance = run_pipeline(dataset, config, columnar=True).instance
        assert isinstance(columnar_instance.adoption, ColumnarAdoptionTable)
        a = object_instance.compiled()
        b = columnar_instance.compiled()
        assert np.array_equal(a.user_ptr, b.user_ptr)
        assert np.array_equal(a.pair_item, b.pair_item)
        assert np.array_equal(a.pair_probs, b.pair_probs)
        ra = GlobalGreedy().run(object_instance)
        rb = GlobalGreedy().run(columnar_instance)
        assert ra.revenue == rb.revenue
        assert ra.strategy.triples() == rb.strategy.triples()
