"""Tests for the random-price extension (§7): Taylor revenue approximation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.entities import ItemCatalog, Triple
from repro.core.random_prices import PriceDistribution, TaylorRevenueModel


class TestPriceDistribution:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            PriceDistribution(np.ones((2, 3)), np.ones((3, 2)))

    def test_negative_variance_rejected(self):
        with pytest.raises(ValueError):
            PriceDistribution(np.ones((1, 2)), -np.ones((1, 2)))

    def test_covariance_lookup_independent_items(self):
        distribution = PriceDistribution(np.ones((2, 2)) * 10, np.ones((2, 2)) * 4)
        assert distribution.covariance(0, 0, 1, 0) == 0.0
        assert distribution.covariance(0, 1, 0, 1) == 4.0
        assert distribution.covariance(0, 0, 0, 1) == 0.0

    def test_item_covariance_matrix(self):
        cov = np.array([[4.0, 1.0], [1.0, 9.0]])
        distribution = PriceDistribution(
            np.ones((1, 2)) * 10, np.ones((1, 2)), item_covariances={0: cov}
        )
        assert distribution.covariance(0, 0, 0, 1) == 1.0
        assert distribution.covariance(0, 1, 0, 1) == 9.0

    def test_bad_covariance_shape_rejected(self):
        with pytest.raises(ValueError):
            PriceDistribution(np.ones((1, 2)), np.ones((1, 2)),
                              item_covariances={0: np.ones((3, 3))})

    def test_sampling_statistics(self):
        means = np.array([[100.0, 50.0]])
        variances = np.array([[25.0, 4.0]])
        distribution = PriceDistribution(means, variances)
        rng = np.random.default_rng(0)
        samples = np.stack([distribution.sample(rng) for _ in range(3000)])
        assert samples.min() >= 0.0
        assert samples[:, 0, 0].mean() == pytest.approx(100.0, abs=1.0)
        assert samples[:, 0, 0].std() == pytest.approx(5.0, abs=0.5)


def _build_model(price_std=10.0, horizon=2):
    catalog = ItemCatalog.from_assignment([0, 0])
    means = np.array([[100.0] * horizon, [80.0] * horizon])
    variances = np.full((2, horizon), price_std ** 2)
    distribution = PriceDistribution(means, variances)

    def adoption_given_price(user, item, t, price):
        # Affordability falls off linearly with price (kept in [0, 1]); this is
        # intentionally non-linear *in revenue* (revenue = p * q is quadratic),
        # so the second-order Taylor term matters.
        return float(np.clip(1.5 - price / 100.0, 0.0, 1.0))

    pairs = [(0, 0), (0, 1), (1, 0), (1, 1)]
    return TaylorRevenueModel(
        num_users=2,
        catalog=catalog,
        display_limit=1,
        capacities=5,
        betas=0.5,
        price_distribution=distribution,
        adoption_given_price=adoption_given_price,
        candidate_pairs=pairs,
    )


class TestTaylorRevenueModel:
    def test_mean_price_instance_structure(self):
        model = _build_model()
        instance = model.mean_price_instance()
        assert instance.num_items == 2
        assert instance.horizon == 2
        assert instance.probability(0, 0, 0) == pytest.approx(0.5)

    def test_revenue_at_mean_prices_matches_expected_price_estimate(self):
        model = _build_model()
        triples = [Triple(0, 0, 0), Triple(1, 1, 1)]
        assert model.expected_price_revenue(triples) == pytest.approx(
            model.revenue_at_prices(triples, np.array([[100.0, 100.0], [80.0, 80.0]]))
        )

    def test_monte_carlo_requires_positive_samples(self):
        model = _build_model()
        with pytest.raises(ValueError):
            model.monte_carlo_revenue([Triple(0, 0, 0)], num_samples=0)

    def test_taylor_correction_moves_toward_monte_carlo(self):
        """With q linear in price, revenue p*q is quadratic, so the exact
        expectation differs from the mean-price value by a variance term that
        the second-order Taylor expansion captures."""
        model = _build_model(price_std=15.0)
        triples = [Triple(0, 0, 0), Triple(1, 0, 0)]
        mean_estimate = model.expected_price_revenue(triples)
        taylor_estimate = model.taylor_revenue(triples)
        monte_carlo = model.monte_carlo_revenue(triples, num_samples=4000, seed=1)
        assert abs(taylor_estimate - monte_carlo) < abs(mean_estimate - monte_carlo)

    def test_taylor_equals_mean_estimate_when_variance_zero(self):
        model = _build_model(price_std=0.0)
        triples = [Triple(0, 0, 0), Triple(0, 1, 1)]
        assert model.taylor_revenue(triples) == pytest.approx(
            model.expected_price_revenue(triples)
        )

    def test_quadratic_revenue_taylor_is_nearly_exact(self):
        """For a single triple, revenue(p) = p * q(p) is exactly quadratic in p,
        so the second-order expansion should match the analytic expectation
        E[p*q(p)] = mean*q(mean) - slope*var (up to the clipping tails)."""
        std = 5.0
        model = _build_model(price_std=std)
        triples = [Triple(0, 0, 0)]
        taylor = model.taylor_revenue(triples)
        mean_estimate = model.expected_price_revenue(triples)
        analytic = mean_estimate - (1.0 / 100.0) * std ** 2
        assert taylor == pytest.approx(analytic, rel=0.02)

    def test_strategy_planned_on_mean_instance_is_evaluable(self):
        from repro.algorithms.global_greedy import GlobalGreedy

        model = _build_model()
        instance = model.mean_price_instance()
        strategy = GlobalGreedy().build_strategy(instance)
        triples = strategy.sorted_triples()
        assert model.taylor_revenue(triples) > 0
        assert model.monte_carlo_revenue(triples, num_samples=50, seed=0) > 0
