"""Tests for the exact T=1 solver and the R-REVMAX local-search approximation."""

from __future__ import annotations

import itertools

import pytest

from repro.algorithms.exact_single_step import SingleStepExactSolver, solve_single_step
from repro.algorithms.global_greedy import GlobalGreedy
from repro.algorithms.local_search import LocalSearchApproximation
from repro.core.constraints import ConstraintChecker
from repro.core.effective import EffectiveRevenueModel
from repro.core.revenue import RevenueModel
from repro.core.strategy import Strategy

from tests.conftest import build_random_instance


def _brute_force_single_step(instance):
    """Optimal single-step revenue by exhaustive enumeration (tiny instances)."""
    model = RevenueModel(instance)
    checker = ConstraintChecker(instance)
    candidates = [z for z in instance.candidate_triples() if z.t == 0]
    best = 0.0
    for size in range(len(candidates) + 1):
        for combo in itertools.combinations(candidates, size):
            strategy = Strategy(instance.catalog, combo)
            if checker.is_valid(strategy):
                best = max(best, model.revenue(strategy))
    return best


class TestSingleStepExactSolver:
    def test_rejects_multi_step_instances(self, small_instance):
        with pytest.raises(ValueError):
            SingleStepExactSolver().run(small_instance)

    def test_invalid_time_step_rejected(self, small_instance):
        with pytest.raises(ValueError):
            solve_single_step(small_instance, time_step=99)

    def test_matches_brute_force_on_tiny_instances(self):
        for seed in range(5):
            instance = build_random_instance(
                num_users=3, num_items=3, num_classes=3, horizon=1,
                display_limit=1, capacity=2, density=0.8, seed=seed,
            )
            exact = SingleStepExactSolver().run(instance)
            assert exact.revenue == pytest.approx(
                _brute_force_single_step(instance), rel=1e-9
            )

    def test_output_is_valid(self):
        instance = build_random_instance(
            num_users=4, num_items=3, num_classes=3, horizon=1,
            display_limit=2, capacity=2, seed=1,
        )
        result = SingleStepExactSolver().run(instance)
        ConstraintChecker(instance).check(result.strategy)

    def test_greedy_never_beats_exact_on_single_step(self):
        """With singleton classes and T = 1 the greedy cannot exceed the exact
        optimum (sanity anchor for both implementations)."""
        for seed in range(5):
            instance = build_random_instance(
                num_users=4, num_items=4, num_classes=4, horizon=1,
                display_limit=1, capacity=2, seed=seed,
            )
            exact = SingleStepExactSolver().run(instance).revenue
            greedy = GlobalGreedy().run(instance).revenue
            assert greedy <= exact + 1e-9

    def test_solve_specific_time_step_of_longer_horizon(self, small_instance):
        strategy = solve_single_step(small_instance, time_step=2)
        assert all(triple.t == 2 for triple in strategy)
        ConstraintChecker(small_instance).check(strategy)


class TestLocalSearchApproximation:
    def _tiny_instance(self, seed=0):
        return build_random_instance(
            num_users=3, num_items=3, num_classes=2, horizon=2,
            display_limit=1, capacity=1, density=0.7, seed=seed,
        )

    def test_output_satisfies_display_constraint(self):
        instance = self._tiny_instance()
        result = LocalSearchApproximation(epsilon=0.5).run(instance)
        for user in range(instance.num_users):
            for t in range(instance.horizon):
                assert result.strategy.display_count(user, t) <= instance.display_limit

    def test_capacity_may_be_exceeded_but_objective_accounts_for_it(self):
        """R-REVMAX drops the hard capacity constraint; the effective model
        must value the returned strategy at the reported objective."""
        instance = self._tiny_instance(seed=3)
        algorithm = LocalSearchApproximation(epsilon=0.5)
        result = algorithm.run(instance)
        model = EffectiveRevenueModel(instance)
        assert model.revenue(result.strategy) == pytest.approx(
            algorithm.last_extras["objective_value"], rel=1e-9
        )

    def test_reaches_good_fraction_of_brute_force_relaxed_optimum(self):
        instance = self._tiny_instance(seed=5)
        model = EffectiveRevenueModel(instance)
        candidates = list(instance.candidate_triples())
        best = 0.0
        from repro.matroid.partition import display_constraint_matroid
        matroid = display_constraint_matroid(instance)
        for size in range(min(4, len(candidates)) + 1):
            for combo in itertools.combinations(candidates, size):
                if not matroid.is_independent(combo):
                    continue
                best = max(best, model.revenue(Strategy(instance.catalog, combo)))
        result = LocalSearchApproximation(epsilon=0.3).run(instance)
        # Guarantee is 1/(4+eps); local search usually does much better.
        assert result.revenue >= best / 4.5 - 1e-9

    def test_moves_and_evaluations_reported(self):
        instance = self._tiny_instance(seed=1)
        algorithm = LocalSearchApproximation(epsilon=0.5)
        algorithm.run(instance)
        assert algorithm.last_extras["moves"] >= 0
        assert algorithm.last_evaluations > 0
