"""Tests for the dynamic re-solve layer (deltas + incremental G-Greedy).

Three layers, mirroring the module structure:

* delta validation and JSON round-trips (:mod:`repro.dynamic.delta`);
* in-place application to compiled tensors and live instances, asserting
  that a patched instance is value-identical to a freshly built mutated
  instance (:meth:`CompiledInstance.apply_delta`,
  :func:`repro.dynamic.apply_delta`);
* the incremental solver's core contract: across every delta kind and both
  re-solve modes (stream merge and cold fallback), ``resolve`` produces
  **bit-identical** strategies, admission orders and growth curves to a
  cold columnar G-Greedy on the mutated instance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.global_greedy import GlobalGreedy
from repro.dynamic import (
    IncrementalSolver,
    InstanceDelta,
    apply_delta,
    load_delta,
    save_delta,
)
from repro import io as repro_io
from tests.conftest import build_random_instance


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
#: Instance parameters whose solves usually drain the frontier (display
#: saturation), which is what makes the fast merge path eligible.
MERGE_FRIENDLY = dict(num_users=8, num_items=6, num_classes=3, horizon=3,
                      display_limit=2, capacity=8, beta=0.95, density=1.0)

#: Parameters that usually end at the non-positive break (fallback path).
BREAK_FRIENDLY = dict(num_users=7, num_items=5, num_classes=2, horizon=3,
                      display_limit=2, capacity=2, beta=0.3, density=0.7)


def random_delta(instance, seed: int, *, with_new_users: bool = True,
                 horizon: int = 3) -> InstanceDelta:
    """A delta touching every mutation kind, deterministic per seed."""
    rng = np.random.default_rng(seed)
    pairs = sorted(instance.adoption.pairs())
    picked = [pairs[i] for i in rng.choice(len(pairs), size=min(3, len(pairs)),
                                           replace=False)]
    new_users = {}
    if with_new_users:
        new_users = {
            instance.num_users: {
                0: rng.uniform(0.0, 1.0, size=horizon),
                2: rng.uniform(0.0, 1.0, size=horizon),
            },
            instance.num_users + 1: {
                1: rng.uniform(0.0, 1.0, size=horizon),
            },
        }
    return InstanceDelta(
        price_updates={
            (int(rng.integers(0, instance.num_items)),
             int(rng.integers(0, horizon))): float(rng.uniform(1.0, 80.0)),
        },
        probability_updates={
            pair: rng.uniform(0.0, 1.0, size=horizon) for pair in picked
        },
        capacity_updates={
            int(rng.integers(0, instance.num_items)): int(rng.integers(1, 10)),
        },
        new_users=new_users,
        name=f"test-delta-{seed}",
    )


def copy_delta(delta: InstanceDelta) -> InstanceDelta:
    """A deep copy (application consumes nothing, but keeps tests honest)."""
    return InstanceDelta.from_dict(delta.to_dict())


def cold_reference(instance):
    """Cold G-Greedy on ``instance``: (sorted triples, growth curve)."""
    algorithm = GlobalGreedy(backend="numpy")
    strategy = algorithm.build_strategy(instance)
    return sorted(strategy.triples()), algorithm.last_growth_curve


# ----------------------------------------------------------------------
# InstanceDelta: validation and serialization
# ----------------------------------------------------------------------
class TestInstanceDelta:
    def test_empty(self):
        assert InstanceDelta().is_empty()
        assert not InstanceDelta(price_updates={(0, 0): 1.0}).is_empty()

    def test_negative_price_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            InstanceDelta(price_updates={(0, 0): -1.0})

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            InstanceDelta(capacity_updates={3: -2})

    def test_nan_probability_rejected(self):
        with pytest.raises(ValueError, match="NaN"):
            InstanceDelta(probability_updates={(0, 1): [0.2, float("nan")]})

    def test_out_of_range_probability_rejected(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            InstanceDelta(new_users={5: {0: [0.2, 1.5]}})

    def test_touched_sets(self):
        delta = InstanceDelta(
            price_updates={(2, 1): 5.0},
            probability_updates={(0, 3): [0.5, 0.5]},
            new_users={7: {1: [0.1, 0.2]}},
        )
        assert delta.touched_pairs() == {(0, 3), (7, 1)}
        assert delta.touched_price_cells() == {(2, 1)}

    def test_json_round_trip(self, tmp_path):
        instance = build_random_instance(seed=5)
        delta = random_delta(instance, seed=5)
        path = tmp_path / "delta.json"
        save_delta(delta, path)
        loaded = load_delta(path)
        assert loaded.name == delta.name
        assert loaded.price_updates == delta.price_updates
        assert loaded.capacity_updates == delta.capacity_updates
        assert set(loaded.probability_updates) == set(delta.probability_updates)
        for pair, vector in delta.probability_updates.items():
            np.testing.assert_array_equal(loaded.probability_updates[pair],
                                          vector)
        assert set(loaded.new_users) == set(delta.new_users)

    def test_wrong_kind_rejected(self):
        with pytest.raises(ValueError, match="revmax-delta"):
            InstanceDelta.from_dict({"kind": "revmax-strategy",
                                     "format_version": 1})


# ----------------------------------------------------------------------
# applying deltas
# ----------------------------------------------------------------------
class TestApplyDelta:
    def test_columnar_patch_matches_fresh_build(self):
        """A patched compilation is value-identical to a fresh mutated one."""
        base = build_random_instance(seed=11)
        columnar = base.compiled().as_instance()
        columnar.compiled().isolated_revenues()  # materialize the cache
        delta = random_delta(columnar, seed=11)
        apply_delta(columnar, copy_delta(delta))

        mutated = build_random_instance(seed=11)
        apply_delta(mutated, copy_delta(delta))
        fresh = mutated.compiled()
        patched = columnar.compiled()
        np.testing.assert_array_equal(patched.user_ptr, fresh.user_ptr)
        np.testing.assert_array_equal(patched.pair_item, fresh.pair_item)
        np.testing.assert_array_equal(patched.pair_probs, fresh.pair_probs)
        np.testing.assert_array_equal(patched.prices, fresh.prices)
        np.testing.assert_array_equal(patched.capacities, fresh.capacities)
        np.testing.assert_array_equal(patched.isolated_revenues(),
                                      fresh.isolated_revenues())
        assert columnar.num_users == mutated.num_users

    def test_dict_backed_patch_keeps_table_and_compiled_in_sync(self):
        instance = build_random_instance(seed=3)
        compiled_before = instance.compiled()
        delta = random_delta(instance, seed=3)
        apply_delta(instance, copy_delta(delta))
        # The cached compilation was patched in place and stays fresh.
        assert instance.compiled() is compiled_before
        for (user, item), vector in delta.probability_updates.items():
            np.testing.assert_array_equal(instance.adoption.get(user, item),
                                          vector)
            row = compiled_before.pair_row(user, item)
            np.testing.assert_array_equal(compiled_before.pair_probs[row],
                                          vector)
        for (item, t), price in delta.price_updates.items():
            assert instance.prices[item, t] == price
        for item, capacity in delta.capacity_updates.items():
            assert instance.capacities[item] == capacity
        for user, pairs in delta.new_users.items():
            assert set(instance.adoption.items_for_user(user)) == set(pairs)

    def test_probability_update_for_unknown_pair_rejected(self):
        instance = build_random_instance(seed=1).compiled().as_instance()
        absent = (0, 0)
        while absent in instance.adoption:
            absent = (absent[0], absent[1] + 1)
        delta = InstanceDelta(probability_updates={
            absent: np.full(instance.horizon, 0.5)
        })
        with pytest.raises(ValueError, match="absent from the candidate table"):
            apply_delta(instance, delta)

    def test_non_contiguous_new_users_rejected(self):
        instance = build_random_instance(seed=1).compiled().as_instance()
        delta = InstanceDelta(new_users={
            instance.num_users + 1: {0: np.full(instance.horizon, 0.5)}
        })
        with pytest.raises(ValueError, match="contiguous"):
            apply_delta(instance, delta)

    def test_out_of_range_price_cell_rejected(self):
        instance = build_random_instance(seed=1).compiled().as_instance()
        delta = InstanceDelta(price_updates={
            (instance.num_items, 0): 3.0
        })
        with pytest.raises(ValueError, match="price matrix"):
            apply_delta(instance, delta)

    def test_rejected_delta_changes_nothing(self):
        """Validation happens before the first write (atomicity)."""
        instance = build_random_instance(seed=9).compiled().as_instance()
        compiled = instance.compiled()
        probs_before = compiled.pair_probs.copy()
        prices_before = compiled.prices.copy()
        pair = next(iter(instance.adoption.pairs()))
        delta = InstanceDelta(
            price_updates={(0, 0): 123.0},
            probability_updates={pair: np.full(instance.horizon, 0.25)},
            new_users={instance.num_users + 5: {}},  # non-contiguous: rejected
        )
        with pytest.raises(ValueError, match="contiguous"):
            apply_delta(instance, delta)
        np.testing.assert_array_equal(compiled.pair_probs, probs_before)
        np.testing.assert_array_equal(compiled.prices, prices_before)

    def test_shard_view_rejected(self):
        compiled = build_random_instance(seed=2).compiled()
        shard = compiled.shard(0, 2)
        with pytest.raises(ValueError, match="shard view"):
            shard.apply_delta(InstanceDelta(price_updates={(0, 0): 1.0}))

    def test_npz_memory_mapped_instance_copy_on_write(self, tmp_path):
        """Deltas work on read-only memory-mapped tensors (copy-on-write)."""
        source = build_random_instance(seed=21)
        path = tmp_path / "instance.npz"
        repro_io.save_instance_npz(source, path)
        loaded = repro_io.load_instance_npz(path)
        assert not loaded.compiled().pair_probs.flags.writeable
        delta = random_delta(loaded, seed=21)
        apply_delta(loaded, copy_delta(delta))

        mutated = build_random_instance(seed=21)
        apply_delta(mutated, copy_delta(delta))
        np.testing.assert_array_equal(loaded.compiled().pair_probs,
                                      mutated.compiled().pair_probs)
        np.testing.assert_array_equal(loaded.prices, mutated.prices)
        # The original archive on disk is untouched.
        reloaded = repro_io.load_instance_npz(path)
        np.testing.assert_array_equal(reloaded.prices, source.prices)

    def test_rows_of_item(self):
        compiled = build_random_instance(seed=7).compiled()
        for item in range(compiled.num_items):
            rows = compiled.rows_of_item(item)
            np.testing.assert_array_equal(
                rows, np.flatnonzero(compiled.pair_item == item)
            )
        with pytest.raises(ValueError, match="outside"):
            compiled.rows_of_item(compiled.num_items)


# ----------------------------------------------------------------------
# the incremental solver
# ----------------------------------------------------------------------
class TestIncrementalSolver:
    def test_requires_numpy_backend(self, small_instance):
        with pytest.raises(ValueError, match="numpy backend"):
            IncrementalSolver(small_instance, backend="python")

    def test_cold_solve_matches_global_greedy(self, small_instance):
        solver = IncrementalSolver(small_instance)
        strategy = solver.solve()
        reference, curve = cold_reference(build_random_instance(seed=42))
        assert sorted(strategy.triples()) == reference
        assert solver.growth_curve == curve
        assert solver.last_stats["mode"] == "cold"

    @pytest.mark.parametrize("params,seeds", [
        (MERGE_FRIENDLY, range(8)),
        (BREAK_FRIENDLY, range(8)),
    ])
    def test_resolve_bit_identical_to_cold(self, params, seeds):
        """The core contract, across delta kinds and both re-solve modes."""
        modes = set()
        for seed in seeds:
            instance = build_random_instance(seed=seed, **params)
            solver = IncrementalSolver(instance)
            solver.solve()
            delta = random_delta(instance, seed=seed)
            strategy = solver.resolve(copy_delta(delta))
            modes.add(solver.last_stats["mode"])

            mutated = build_random_instance(seed=seed, **params)
            apply_delta(mutated, copy_delta(delta))
            reference, curve = cold_reference(mutated)
            assert sorted(strategy.triples()) == reference
            assert solver.growth_curve == curve
        # Both parametrizations must at least exercise their expected path.
        assert modes <= {"merge", "replay"}

    def test_merge_mode_reached(self):
        """The fast path actually runs on saturating instances."""
        merges = 0
        for seed in range(10):
            instance = build_random_instance(seed=seed, **MERGE_FRIENDLY)
            solver = IncrementalSolver(instance)
            solver.solve()
            pair = sorted(instance.adoption.pairs())[0]
            rng = np.random.default_rng(seed)
            solver.resolve(InstanceDelta(probability_updates={
                pair: rng.uniform(0.5, 1.0, size=instance.horizon)
            }))
            if solver.last_stats["mode"] == "merge":
                merges += 1
                assert solver.last_stats["dirty_users"] == 1
        assert merges > 0

    def test_empty_delta_is_identity(self):
        for seed in range(4):
            instance = build_random_instance(seed=seed, **MERGE_FRIENDLY)
            solver = IncrementalSolver(instance)
            first = sorted(solver.solve().triples())
            curve = list(solver.growth_curve)
            again = solver.resolve()
            assert sorted(again.triples()) == first
            assert solver.growth_curve == curve

    def test_chained_deltas(self):
        """Warm state survives across resolves (delta after delta)."""
        seed = 4
        instance = build_random_instance(seed=seed, **MERGE_FRIENDLY)
        solver = IncrementalSolver(instance)
        solver.solve()
        deltas = [random_delta(instance, seed=100 + step,
                               with_new_users=False) for step in range(3)]
        for delta in deltas:
            solver.resolve(copy_delta(delta))

        mutated = build_random_instance(seed=seed, **MERGE_FRIENDLY)
        for delta in deltas:
            apply_delta(mutated, copy_delta(delta))
        reference, curve = cold_reference(mutated)
        assert sorted(solver.strategy.triples()) == reference
        assert solver.growth_curve == curve

    def test_resolve_without_solve_runs_cold(self):
        instance = build_random_instance(seed=2, **MERGE_FRIENDLY)
        solver = IncrementalSolver(instance)
        delta = random_delta(instance, seed=2)
        strategy = solver.resolve(copy_delta(delta))
        assert solver.last_stats["fallback_reason"] == "no warm state"

        mutated = build_random_instance(seed=2, **MERGE_FRIENDLY)
        apply_delta(mutated, copy_delta(delta))
        reference, _ = cold_reference(mutated)
        assert sorted(strategy.triples()) == reference

    def test_state_round_trip(self, tmp_path):
        """Persisted warm state warm-starts a fresh process bit-identically."""
        seed = 6
        instance = build_random_instance(seed=seed, **MERGE_FRIENDLY)
        solver = IncrementalSolver(instance)
        solver.solve()
        path = tmp_path / "state.json"
        repro_io.save_solver_state(solver.state(), path)

        loaded_state = repro_io.load_solver_state(path)
        assert loaded_state.growth_curve() == solver.growth_curve
        assert sorted(loaded_state.triples()) == sorted(
            solver.strategy.triples()
        )
        twin_instance = build_random_instance(seed=seed, **MERGE_FRIENDLY)
        twin = IncrementalSolver.from_state(twin_instance, loaded_state)
        assert sorted(twin.strategy.triples()) == sorted(
            solver.strategy.triples()
        )
        assert twin.growth_curve == solver.growth_curve

        delta = random_delta(instance, seed=seed)
        solver.resolve(copy_delta(delta))
        twin.resolve(copy_delta(delta))
        assert sorted(twin.strategy.triples()) == sorted(
            solver.strategy.triples()
        )
        assert twin.growth_curve == solver.growth_curve
        assert twin.last_stats["mode"] == solver.last_stats["mode"]

    def test_state_requires_a_solve(self, small_instance):
        with pytest.raises(ValueError, match="solve"):
            IncrementalSolver(small_instance).state()

    def test_state_rejected_against_different_instance(self, tmp_path):
        """A warm state is digest-bound to the tensors it came from."""
        seed = 6
        instance = build_random_instance(seed=seed, **MERGE_FRIENDLY)
        solver = IncrementalSolver(instance)
        solver.solve()
        solver.resolve(random_delta(instance, seed=seed,
                                    with_new_users=False))
        path = tmp_path / "state.json"
        repro_io.save_solver_state(solver.state(), path)
        # The pre-delta twin is NOT the instance the state was computed on.
        stale_twin = build_random_instance(seed=seed, **MERGE_FRIENDLY)
        with pytest.raises(ValueError, match="does not match"):
            IncrementalSolver.from_state(stale_twin,
                                         repro_io.load_solver_state(path))

    def test_external_mutation_invalidates_warm_state(self):
        """Deltas applied around the solver force a cold re-solve."""
        seed = 3
        instance = build_random_instance(seed=seed, **MERGE_FRIENDLY)
        solver = IncrementalSolver(instance)
        solver.solve()
        sneaky = random_delta(instance, seed=seed, with_new_users=False)
        apply_delta(instance, copy_delta(sneaky))  # behind the solver's back
        strategy = solver.resolve()
        assert solver.last_stats["fallback_reason"] == (
            "instance mutated outside the solver"
        )
        mutated = build_random_instance(seed=seed, **MERGE_FRIENDLY)
        apply_delta(mutated, copy_delta(sneaky))
        reference, curve = cold_reference(mutated)
        assert sorted(strategy.triples()) == reference
        assert solver.growth_curve == curve


# ----------------------------------------------------------------------
# GlobalGreedy.resolve wiring
# ----------------------------------------------------------------------
class TestGlobalGreedyResolve:
    def test_warm_resolve_matches_build_strategy(self):
        seed = 1
        instance = build_random_instance(seed=seed, **MERGE_FRIENDLY)
        algorithm = GlobalGreedy(backend="numpy")
        algorithm.resolve(instance)  # cold, primes the warm state
        delta = random_delta(instance, seed=seed)
        strategy = algorithm.resolve(instance, copy_delta(delta))
        assert algorithm.last_extras["resolve"]["mode"] in ("merge", "replay")

        mutated = build_random_instance(seed=seed, **MERGE_FRIENDLY)
        apply_delta(mutated, copy_delta(delta))
        reference, curve = cold_reference(mutated)
        assert sorted(strategy.triples()) == reference
        assert algorithm.last_growth_curve == curve

    def test_incompatible_configuration_resolves_cold(self):
        seed = 8
        instance = build_random_instance(seed=seed, **MERGE_FRIENDLY)
        algorithm = GlobalGreedy(backend="numpy", ignore_saturation=True)
        delta = random_delta(instance, seed=seed)
        strategy = algorithm.resolve(instance, copy_delta(delta))
        assert algorithm.last_extras["resolve"]["mode"] == "cold"

        mutated = build_random_instance(seed=seed, **MERGE_FRIENDLY)
        apply_delta(mutated, copy_delta(delta))
        reference = GlobalGreedy(backend="numpy",
                                 ignore_saturation=True).build_strategy(mutated)
        assert sorted(strategy.triples()) == sorted(reference.triples())
