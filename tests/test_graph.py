"""Tests for the min-cost flow solver and the Max-DCS reduction."""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.dcs import max_weight_degree_constrained_subgraph
from repro.graph.flow import MinCostFlow


def _brute_force_dcs(edges, left_degrees, right_degrees):
    """Exhaustive maximum-weight degree-constrained subgraph (tiny graphs)."""
    edge_list = list(edges.items())
    best = 0.0
    for size in range(len(edge_list) + 1):
        for combo in itertools.combinations(edge_list, size):
            left_count, right_count = {}, {}
            valid = True
            total = 0.0
            for (left, right), weight in combo:
                left_count[left] = left_count.get(left, 0) + 1
                right_count[right] = right_count.get(right, 0) + 1
                if (left_count[left] > left_degrees.get(left, 0)
                        or right_count[right] > right_degrees.get(right, 0)):
                    valid = False
                    break
                total += weight
            if valid:
                best = max(best, total)
    return best


def _brute_force_min_cost(edges, flow):
    """Cheapest way to ship exactly ``flow`` units (tiny integral graphs)."""
    target = int(round(flow))
    best = None
    for assignment in itertools.product(
        *[range(capacity + 1) for (_, _, capacity, _) in edges]
    ):
        balance = {}
        cost = 0.0
        for (u, v, _, edge_cost), f in zip(edges, assignment):
            balance[u] = balance.get(u, 0) + f
            balance[v] = balance.get(v, 0) - f
            cost += edge_cost * f
        if balance.get("s", 0) != target or balance.get("t", 0) != -target:
            continue
        if any(b != 0 for node, b in balance.items()
               if node not in ("s", "t")):
            continue
        if best is None or cost < best:
            best = cost
    return best


class TestMinCostFlow:
    def test_simple_shortest_path_flow(self):
        network = MinCostFlow()
        network.add_edge("s", "a", capacity=2, cost=1.0)
        network.add_edge("a", "t", capacity=2, cost=1.0)
        network.add_edge("s", "b", capacity=1, cost=5.0)
        network.add_edge("b", "t", capacity=1, cost=5.0)
        result = network.solve("s", "t")
        assert result.flow_value == pytest.approx(3.0)
        assert result.total_cost == pytest.approx(2 * 2 + 10)

    def test_max_flow_cap(self):
        network = MinCostFlow()
        network.add_edge("s", "a", 5, 1.0)
        network.add_edge("a", "t", 5, 1.0)
        result = network.solve("s", "t", max_flow=2)
        assert result.flow_value == pytest.approx(2.0)

    def test_negative_costs_with_early_stop(self):
        """Profitable (negative-cost) paths are taken; unprofitable ones are not."""
        network = MinCostFlow()
        network.add_edge("s", "a", 1, 0.0)
        network.add_edge("a", "t", 1, -5.0)
        network.add_edge("s", "b", 1, 0.0)
        network.add_edge("b", "t", 1, 2.0)
        result = network.solve("s", "t", stop_when_nonnegative=True)
        assert result.flow_value == pytest.approx(1.0)
        assert result.total_cost == pytest.approx(-5.0)

    def test_unknown_node_raises(self):
        network = MinCostFlow()
        network.add_edge("s", "t", 1, 1.0)
        with pytest.raises(KeyError):
            network.solve("s", "missing")

    def test_negative_capacity_rejected(self):
        network = MinCostFlow()
        with pytest.raises(ValueError):
            network.add_edge("a", "b", -1, 0.0)

    def test_disconnected_sink(self):
        network = MinCostFlow()
        network.add_node("t")
        network.add_edge("s", "a", 1, 1.0)
        result = network.solve("s", "t")
        assert result.flow_value == 0.0

    def test_edge_flow_reporting(self):
        network = MinCostFlow()
        cheap = network.add_edge("s", "t", 1, 1.0)
        pricey = network.add_edge("s", "t", 1, 10.0)
        result = network.solve("s", "t", max_flow=1)
        assert result.edge_flows[cheap] == pytest.approx(1.0)
        assert result.edge_flows[pricey] == pytest.approx(0.0)

    def test_add_node_is_idempotent(self):
        network = MinCostFlow()
        first = network.add_node("a")
        assert network.add_node("a") == first
        assert network.num_nodes == 1
        network.add_edge("a", "b", 1, 0.0)
        assert network.num_nodes == 2

    def test_rerouting_through_backward_arcs(self):
        """Min-cost flow must undo a greedy path via residual (backward) arcs.

        The classic diamond: the cheapest single path uses the middle arc,
        but shipping two units requires rerouting that unit -- the second
        augmentation travels the middle arc *backwards*.  A solver without
        working residual arcs ships only one unit or overpays.
        """
        network = MinCostFlow()
        network.add_edge("s", "a", 1, 1.0)
        network.add_edge("s", "b", 1, 4.0)
        middle = network.add_edge("a", "b", 1, 0.0)
        network.add_edge("a", "t", 1, 4.0)
        network.add_edge("b", "t", 2, 1.0)
        result = network.solve("s", "t")
        assert result.flow_value == pytest.approx(2.0)
        # s-a-b-t (2) plus s-b-t (5): the a->b unit stays; the expensive
        # a->t arc is never used.
        assert result.total_cost == pytest.approx(7.0)
        assert result.edge_flows[middle] == pytest.approx(1.0)

    def test_negative_cost_cycle_free_graph_with_bellman_ford_start(self):
        """Negative arcs force the Bellman-Ford potential initialisation."""
        network = MinCostFlow()
        network.add_edge("s", "a", 2, -3.0)
        network.add_edge("a", "b", 2, -2.0)
        network.add_edge("b", "t", 2, 4.0)
        result = network.solve("s", "t")
        assert result.flow_value == pytest.approx(2.0)
        assert result.total_cost == pytest.approx(2 * (-3.0 - 2.0 + 4.0))

    def test_early_stop_skips_breakeven_paths(self):
        """stop_when_nonnegative stops at cost 0 paths, not only positive."""
        network = MinCostFlow()
        network.add_edge("s", "a", 1, -1.0)
        network.add_edge("a", "t", 1, 1.0)
        result = network.solve("s", "t", stop_when_nonnegative=True)
        assert result.flow_value == pytest.approx(0.0)
        assert result.total_cost == pytest.approx(0.0)

    def test_zero_max_flow(self):
        network = MinCostFlow()
        network.add_edge("s", "t", 3, 1.0)
        result = network.solve("s", "t", max_flow=0)
        assert result.flow_value == 0.0
        assert result.total_cost == 0.0

    def test_source_equals_sink(self):
        network = MinCostFlow()
        network.add_edge("s", "t", 1, 1.0)
        result = network.solve("s", "s")
        assert result.flow_value == 0.0

    def test_matches_brute_force_min_cost_on_random_graphs(self):
        """Successive-shortest-paths equals exhaustive search (tiny DAGs)."""
        rng = np.random.default_rng(7)
        for trial in range(15):
            nodes = ["s", "a", "b", "c", "t"]
            edges = []
            for i, u in enumerate(nodes):
                for v in nodes[i + 1:]:
                    if rng.random() < 0.7:
                        edges.append((u, v, int(rng.integers(1, 3)),
                                      float(rng.integers(-4, 6))))
            network = MinCostFlow()
            for u, v, capacity, cost in edges:
                network.add_edge(u, v, capacity, cost)
            if "s" not in network._index or "t" not in network._index:
                continue
            want = network.solve("s", "t", max_flow=2)
            best = _brute_force_min_cost(edges, flow=want.flow_value)
            assert want.total_cost == pytest.approx(best, abs=1e-9), (
                f"trial {trial}: solver cost {want.total_cost} vs "
                f"brute force {best}"
            )


class TestMaxDCS:
    def test_empty_graph(self):
        result = max_weight_degree_constrained_subgraph({}, {}, {})
        assert result.edges == []
        assert result.total_weight == 0.0

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            max_weight_degree_constrained_subgraph(
                {("u", "i"): -1.0}, {"u": 1}, {"i": 1}
            )

    def test_simple_assignment(self):
        edges = {("u1", "a"): 5.0, ("u1", "b"): 3.0, ("u2", "a"): 4.0}
        result = max_weight_degree_constrained_subgraph(
            edges, {"u1": 1, "u2": 1}, {"a": 1, "b": 1}
        )
        # u1 should take a (5) forcing u2 onto nothing? No: a has degree 1, so
        # the optimum is u1->a (5) + u2 gets nothing vs u1->b (3) + u2->a (4) = 7.
        assert result.total_weight == pytest.approx(7.0)
        assert set(result.edges) == {("u1", "b"), ("u2", "a")}

    def test_degree_bounds_respected(self):
        edges = {(f"u{i}", "item"): 10.0 - i for i in range(4)}
        result = max_weight_degree_constrained_subgraph(
            edges, {f"u{i}": 1 for i in range(4)}, {"item": 2}
        )
        assert len(result.edges) == 2
        assert result.total_weight == pytest.approx(10.0 + 9.0)

    def test_zero_capacity_nodes_excluded(self):
        edges = {("u", "a"): 5.0}
        result = max_weight_degree_constrained_subgraph(edges, {"u": 0}, {"a": 1})
        assert result.edges == []

    def test_zero_weight_edges_never_selected(self):
        edges = {("u", "a"): 0.0, ("u", "b"): 1.0}
        result = max_weight_degree_constrained_subgraph(
            edges, {"u": 2}, {"a": 1, "b": 1}
        )
        assert result.edges == [("u", "b")]

    def test_matches_brute_force_on_random_graphs(self):
        rng = np.random.default_rng(0)
        for trial in range(15):
            num_left, num_right = 3, 3
            edges = {}
            for left in range(num_left):
                for right in range(num_right):
                    if rng.random() < 0.7:
                        edges[(f"u{left}", f"i{right}")] = float(rng.uniform(0.1, 10))
            left_degrees = {f"u{left}": int(rng.integers(1, 3)) for left in range(num_left)}
            right_degrees = {f"i{right}": int(rng.integers(1, 3)) for right in range(num_right)}
            result = max_weight_degree_constrained_subgraph(
                edges, left_degrees, right_degrees
            )
            expected = _brute_force_dcs(edges, left_degrees, right_degrees)
            assert result.total_weight == pytest.approx(expected, rel=1e-9)

    @given(seed=st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_property_optimality_against_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        edges = {}
        for left in range(3):
            for right in range(2):
                if rng.random() < 0.8:
                    edges[(left, f"r{right}")] = float(rng.uniform(0.0, 5.0))
        left_degrees = {left: int(rng.integers(0, 3)) for left in range(3)}
        right_degrees = {f"r{right}": int(rng.integers(0, 3)) for right in range(2)}
        result = max_weight_degree_constrained_subgraph(edges, left_degrees, right_degrees)
        expected = _brute_force_dcs(edges, left_degrees, right_degrees)
        assert result.total_weight == pytest.approx(expected, abs=1e-9)
