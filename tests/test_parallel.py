"""Tests for the parallel experiment layer and the bounded dataset cache.

The acceptance bar for every parallel path is *determinism*: any job count
must reproduce the serial results exactly (strategies triple for triple,
revenues bit for bit), because the random choices are made before fan-out
and the per-run arithmetic is deterministic.
"""

from __future__ import annotations

import os

import pytest

from repro.algorithms.local_greedy import RandomizedLocalGreedy
from repro.experiments import harness
from repro.experiments.harness import (
    experiment_records,
    prepare_dataset,
    run_algorithms,
    set_dataset_cache_limit,
    standard_algorithms,
)
from repro.experiments.parallel import run_permutations_parallel
from repro.parallel import (
    PersistentPool,
    parallel_map,
    shutdown_persistent_pools,
)
from repro import parallel as parallel_module


def _square(value):
    return value * value


_STATE = {}


def _setup(offset):
    _STATE["offset"] = offset


def _offset_square(value):
    return value * value + _STATE["offset"]


def _boom(value):
    if value == 3:
        raise ValueError(f"boom on {value}")
    return value * value


def _die(value):
    if value == 2:
        os._exit(9)
    return value * value


class TestParallelMap:
    def test_preserves_item_order(self):
        items = list(range(20))
        assert parallel_map(_square, items, jobs=3) == [i * i for i in items]

    def test_serial_fallback_matches(self):
        items = list(range(5))
        assert parallel_map(_square, items, jobs=1) == [i * i for i in items]
        assert parallel_map(_square, items, jobs=None) == [i * i for i in items]

    def test_jobs_zero_uses_all_cores(self):
        assert parallel_map(_square, [1, 2, 3], jobs=0) == [1, 4, 9]

    def test_initializer_runs_in_workers_and_serially(self):
        items = [1, 2, 3]
        expected = [i * i + 10 for i in items]
        assert parallel_map(_offset_square, items, jobs=2,
                            initializer=_setup, initargs=(10,)) == expected
        assert parallel_map(_offset_square, items, jobs=1,
                            initializer=_setup, initargs=(10,)) == expected

    def test_empty_items(self):
        assert parallel_map(_square, [], jobs=4) == []


class TestPersistentPool:
    """The reuse=True pool: one spawn amortized across many fan-outs."""

    def teardown_method(self):
        shutdown_persistent_pools()

    def test_reuse_matches_fresh_pool_and_caches_workers(self):
        items = list(range(10))
        expected = [i * i for i in items]
        assert parallel_map(_square, items, jobs=2, reuse=True) == expected
        pool = parallel_module._persistent_pools[2]
        assert pool.alive() and len(pool) == 2
        # The second call reuses the very same worker processes.
        assert parallel_map(_square, items, jobs=2, reuse=True) == expected
        assert parallel_module._persistent_pools[2] is pool

    def test_initializer_rebroadcast_each_call(self):
        items = [1, 2, 3, 4]
        first = parallel_map(_offset_square, items, jobs=2, reuse=True,
                             initializer=_setup, initargs=(10,))
        assert first == [i * i + 10 for i in items]
        # Same pool, new per-call state: the old offset must not leak.
        second = parallel_map(_offset_square, items, jobs=2, reuse=True,
                              initializer=_setup, initargs=(-5,))
        assert second == [i * i - 5 for i in items]

    def test_task_error_propagates_but_pool_survives(self):
        with pytest.raises(ValueError, match="boom on 3"):
            parallel_map(_boom, [1, 2, 3, 4], jobs=2, reuse=True)
        pool = parallel_module._persistent_pools[2]
        assert pool.alive()
        assert parallel_map(_square, [5, 6], jobs=2, reuse=True) == [25, 36]
        assert parallel_module._persistent_pools[2] is pool

    def test_dead_worker_discards_pool_and_next_call_rebuilds(self):
        assert parallel_map(_square, [1, 2], jobs=2, reuse=True) == [1, 4]
        doomed = parallel_module._persistent_pools[2]
        with pytest.raises(RuntimeError, match="worker died mid-map"):
            parallel_map(_die, [1, 2], jobs=2, reuse=True)
        assert not doomed.alive()
        # The poisoned pool was torn down; reuse transparently rebuilds.
        assert parallel_map(_square, [7, 8], jobs=2, reuse=True) == [49, 64]
        assert parallel_module._persistent_pools[2] is not doomed

    def test_more_workers_than_items(self):
        pool = PersistentPool(4)
        try:
            assert pool.map(_square, [3]) == [9]
            assert pool.map(_square, list(range(9))) == [
                i * i for i in range(9)
            ]
        finally:
            pool.shutdown()
        assert not pool.alive()

    def test_shutdown_is_idempotent(self):
        parallel_map(_square, [1, 2], jobs=2, reuse=True)
        shutdown_persistent_pools()
        assert parallel_module._persistent_pools == {}
        shutdown_persistent_pools()  # second call is a no-op

    def test_permutation_runs_identical_across_pool_reuse(
            self, tiny_amazon_pipeline):
        # run_permutations_parallel routes through the persistent pool;
        # back-to-back calls (pool cold, then warm) must agree exactly.
        instance = tiny_amazon_pipeline.instance
        algorithm = RandomizedLocalGreedy(num_permutations=3, seed=5)
        orders = algorithm._sample_permutations(instance.horizon)
        cold = run_permutations_parallel(instance, orders, jobs=2)
        warm = run_permutations_parallel(instance, orders, jobs=2)
        serial = run_permutations_parallel(instance, orders, jobs=1)
        for cold_run, warm_run, serial_run in zip(cold, warm, serial):
            assert cold_run.revenue == warm_run.revenue == serial_run.revenue
            assert cold_run.triples == warm_run.triples == serial_run.triples


class TestParallelPermutations:
    def test_rl_greedy_identical_for_any_job_count(self, tiny_amazon_pipeline):
        instance = tiny_amazon_pipeline.instance
        serial = RandomizedLocalGreedy(num_permutations=4, seed=0)
        parallel = RandomizedLocalGreedy(num_permutations=4, seed=0, jobs=2)
        serial_strategy = serial.build_strategy(instance)
        parallel_strategy = parallel.build_strategy(instance)
        assert parallel_strategy.triples() == serial_strategy.triples()
        assert parallel.last_extras["best_order"] == serial.last_extras["best_order"]
        assert parallel.last_growth_curve == serial.last_growth_curve
        assert parallel.last_extras["jobs"] == 2

    def test_rl_greedy_jobs_zero_means_one_per_core(self, tiny_amazon_pipeline):
        instance = tiny_amazon_pipeline.instance
        per_core = RandomizedLocalGreedy(num_permutations=2, seed=0, jobs=0)
        serial = RandomizedLocalGreedy(num_permutations=2, seed=0)
        assert (per_core.build_strategy(instance).triples()
                == serial.build_strategy(instance).triples())
        assert per_core.last_extras["jobs"] == (os.cpu_count() or 1)

    def test_permutation_runs_carry_exact_revenues(self, tiny_amazon_pipeline):
        instance = tiny_amazon_pipeline.instance
        algorithm = RandomizedLocalGreedy(num_permutations=3, seed=1)
        orders = algorithm._sample_permutations(instance.horizon)
        runs = run_permutations_parallel(instance, orders, jobs=2)
        assert [run.order for run in runs] == [tuple(o) for o in orders]
        serial_runs = run_permutations_parallel(instance, orders, jobs=1)
        for parallel_run, serial_run in zip(runs, serial_runs):
            assert parallel_run.revenue == serial_run.revenue
            assert parallel_run.triples == serial_run.triples
            assert parallel_run.lookups == serial_run.lookups


class TestParallelSuite:
    def test_run_algorithms_identical_for_any_job_count(self, tiny_amazon_pipeline):
        instance = tiny_amazon_pipeline.instance

        def suite():
            return standard_algorithms(rl_permutations=2, seed=0)

        serial = run_algorithms(instance, suite(), settings={"beta": "U[0,1]"})
        parallel = run_algorithms(instance, suite(), settings={"beta": "U[0,1]"},
                                  jobs=3)
        assert list(parallel) == list(serial)
        for name in serial:
            assert parallel[name].revenue == serial[name].revenue
            assert (parallel[name].strategy.triples()
                    == serial[name].strategy.triples())
            assert parallel[name].extras["beta"] == "U[0,1]"

    def test_experiment_records_merge_identically(self, tiny_amazon_pipeline):
        instance = tiny_amazon_pipeline.instance
        settings = {"scale": "tiny"}
        serial = experiment_records(
            run_algorithms(instance, standard_algorithms(rl_permutations=2)),
            settings,
        )
        parallel = experiment_records(
            run_algorithms(instance, standard_algorithms(rl_permutations=2),
                           jobs=2),
            settings,
        )
        assert [r.algorithm for r in parallel] == [r.algorithm for r in serial]
        assert [r.revenue for r in parallel] == [r.revenue for r in serial]
        assert [r.strategy_size for r in parallel] == [
            r.strategy_size for r in serial
        ]
        assert all(r.settings == settings for r in parallel)


class TestDatasetCache:
    def test_cache_is_lru_bounded(self):
        previous = set_dataset_cache_limit(2)
        try:
            harness._DATASET_CACHE.clear()
            prepare_dataset("amazon", scale="tiny", seed=101)
            prepare_dataset("amazon", scale="tiny", seed=102)
            prepare_dataset("amazon", scale="tiny", seed=103)
            assert len(harness._DATASET_CACHE) == 2
            seeds = [key[2] for key in harness._DATASET_CACHE]
            assert seeds == [102, 103]
            # A hit refreshes recency: 102 survives the next insertion.
            prepare_dataset("amazon", scale="tiny", seed=102)
            prepare_dataset("amazon", scale="tiny", seed=104)
            seeds = [key[2] for key in harness._DATASET_CACHE]
            assert seeds == [102, 104]
        finally:
            harness._DATASET_CACHE.clear()
            set_dataset_cache_limit(previous)

    def test_zero_limit_disables_caching(self):
        previous = set_dataset_cache_limit(0)
        try:
            harness._DATASET_CACHE.clear()
            first = prepare_dataset("amazon", scale="tiny", seed=105)
            assert len(harness._DATASET_CACHE) == 0
            second = prepare_dataset("amazon", scale="tiny", seed=105)
            assert first is not second
        finally:
            set_dataset_cache_limit(previous)

    def test_cache_hits_return_same_object_within_process(self):
        first = prepare_dataset("amazon", scale="tiny", seed=0)
        second = prepare_dataset("amazon", scale="tiny", seed=0)
        assert first is second

    def test_keys_include_process_id(self):
        prepare_dataset("amazon", scale="tiny", seed=0)
        assert any(key[3] == os.getpid() for key in harness._DATASET_CACHE)

    def test_negative_limit_rejected(self):
        with pytest.raises(ValueError):
            set_dataset_cache_limit(-1)


class TestCLIJobs:
    def test_compare_jobs_matches_serial(self, capsys):
        from repro.cli import main

        assert main(["compare", "--scale", "tiny", "--permutations", "2",
                     "--jobs", "1"]) == 0
        serial_out = capsys.readouterr().out
        assert main(["compare", "--scale", "tiny", "--permutations", "2",
                     "--jobs", "2"]) == 0
        parallel_out = capsys.readouterr().out

        def revenue_rows(text):
            import re

            rows = []
            for line in text.splitlines():
                cells = re.split(r"\s{2,}", line.strip())
                if len(cells) >= 4:
                    # algorithm, revenue, plan size -- everything but timing.
                    rows.append(tuple(cells[:3]))
            return rows

        # Same ranking, same revenues, same plan sizes; only timings differ.
        assert revenue_rows(parallel_out) == revenue_rows(serial_out)

    def test_solve_accepts_backend_and_jobs(self, capsys):
        from repro.cli import main

        assert main(["solve", "--scale", "tiny", "--algorithm", "rlg",
                     "--backend", "python", "--jobs", "2"]) == 0
        assert "RL-Greedy" in capsys.readouterr().out
