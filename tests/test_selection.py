"""Tests for the shared selection engine and the batched scoring path.

Two equivalence ladders anchor the refactor:

* ``marginal_revenue_batch`` must agree with scalar ``marginal_revenue``
  to 1e-9 on random instances, on both backends, with and without the
  group cache;
* every solver built on :class:`LazyGreedySelector` must reproduce, triple
  for triple, both a transparent reference greedy (argmax re-scoring every
  candidate at every step -- no heaps, no laziness) and its own output
  under the other backend.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.global_greedy import GlobalGreedy, GlobalGreedyNoSaturation
from repro.algorithms.local_greedy import RandomizedLocalGreedy, SequentialLocalGreedy
from repro.algorithms.local_search import LocalSearchApproximation
from repro.core.constraints import ConstraintChecker
from repro.core.revenue import RevenueModel
from repro.core.selection import SEED_ISOLATED, SEED_MARGINAL, LazyGreedySelector
from repro.core.strategy import Strategy

from tests.conftest import build_random_instance


def _random_strategy(instance, rng, size):
    """A valid random strategy of roughly ``size`` triples."""
    checker = ConstraintChecker(instance)
    strategy = Strategy(instance.catalog)
    candidates = sorted(instance.candidate_triples())
    rng.shuffle(candidates)
    for triple in candidates:
        if len(strategy) >= size:
            break
        if checker.can_add(strategy, triple):
            strategy.add(triple)
    return strategy


class TestMarginalRevenueBatch:
    @pytest.mark.parametrize("backend", ["numpy", "python"])
    @pytest.mark.parametrize("cache", [True, False])
    def test_matches_scalar_on_random_instances(self, backend, cache):
        for seed in range(8):
            instance = build_random_instance(
                num_users=4, num_items=6, num_classes=2, horizon=4,
                display_limit=3, capacity=5, density=0.8, seed=seed,
            )
            rng = np.random.default_rng(seed)
            strategy = _random_strategy(instance, rng, size=6)
            candidates = sorted(instance.candidate_triples())
            scalar_model = RevenueModel(instance, backend=backend, cache=cache)
            batch_model = RevenueModel(instance, backend=backend, cache=cache)
            scalar = [
                scalar_model.marginal_revenue(strategy, z) for z in candidates
            ]
            batch = batch_model.marginal_revenue_batch(strategy, candidates)
            assert batch == pytest.approx(scalar, rel=1e-9, abs=1e-12)

    def test_in_strategy_triples_score_zero(self, small_instance):
        model = RevenueModel(small_instance)
        candidates = sorted(small_instance.candidate_triples())
        strategy = Strategy(small_instance.catalog, candidates[:3])
        values = model.marginal_revenue_batch(strategy, candidates[:5])
        assert values[:3] == [0.0, 0.0, 0.0]

    def test_batch_counts_one_lookup_per_scored_candidate(self, small_instance):
        model = RevenueModel(small_instance)
        candidates = sorted(small_instance.candidate_triples())
        strategy = Strategy(small_instance.catalog, candidates[:2])
        model.reset_counters()
        model.marginal_revenue_batch(strategy, candidates)
        # The two already-selected triples are answered without scoring.
        assert model.lookups == len(candidates) - 2

    def test_evaluations_count_only_computed_rows(self, small_instance):
        model = RevenueModel(small_instance)
        candidates = sorted(small_instance.candidate_triples())
        strategy = Strategy(small_instance.catalog)
        first = model.marginal_revenue_batch(strategy, candidates)
        computed = model.evaluations
        assert computed > 0
        # A second identical batch is answered entirely from the cache.
        second = model.marginal_revenue_batch(strategy, candidates)
        assert second == first
        assert model.evaluations == computed
        assert model.cache_hits >= len(candidates)
        # Lookups still count every requested candidate of both batches.
        assert model.lookups == 2 * len(candidates)

    def test_scalar_lookup_semantics_unchanged(self, small_instance):
        """A scalar marginal is still two lookups (before + after group)."""
        model = RevenueModel(small_instance)
        candidate = sorted(small_instance.candidate_triples())[0]
        strategy = Strategy(small_instance.catalog)
        model.reset_counters()
        model.marginal_revenue(strategy, candidate)
        # Empty "before" group short-circuits, so exactly one lookup here.
        assert model.lookups == 1
        strategy.add(candidate)
        other = next(
            z for z in sorted(small_instance.candidate_triples())
            if z != candidate
        )
        model.reset_counters()
        model.marginal_revenue(strategy, other)
        expected = 2 if strategy.group_of_triple(other) else 1
        assert model.lookups == expected


def _reference_global_greedy(instance, ignore_saturation=False):
    """Transparent G-Greedy: re-score every candidate at every step."""
    selection_instance = (
        instance.with_betas(1.0) if ignore_saturation else instance
    )
    model = RevenueModel(selection_instance)
    checker = ConstraintChecker(instance)
    strategy = Strategy(instance.catalog)
    candidates = list(instance.candidate_triples())
    while True:
        best, best_value = None, 0.0
        for triple in candidates:
            if triple in strategy or not checker.can_add(strategy, triple):
                continue
            value = model.marginal_revenue(strategy, triple)
            if value > best_value:
                best, best_value = triple, value
        if best is None:
            return strategy
        strategy.add(best)


def _reference_local_greedy(instance, order):
    """Transparent SL-Greedy: per-step argmax re-scoring every candidate."""
    model = RevenueModel(instance)
    checker = ConstraintChecker(instance)
    strategy = Strategy(instance.catalog)
    for time_step in order:
        step_candidates = [
            z for z in instance.candidate_triples() if z.t == time_step
        ]
        while True:
            best, best_value = None, 0.0
            for triple in step_candidates:
                if triple in strategy or not checker.can_add(strategy, triple):
                    continue
                value = model.marginal_revenue(strategy, triple)
                if value > best_value:
                    best, best_value = triple, value
            if best is None:
                break
            strategy.add(best)
    return strategy


class TestSolverEquivalence:
    """The refactored solvers against the reference greedy and across backends."""

    @pytest.mark.parametrize("seed", range(4))
    def test_global_greedy_matches_reference(self, seed):
        instance = build_random_instance(
            num_users=5, num_items=5, num_classes=2, horizon=3,
            display_limit=2, capacity=3, beta=0.5, density=0.8, seed=seed,
        )
        reference = _reference_global_greedy(instance)
        for kwargs in (
            {},
            {"use_lazy_forward": False},
            {"use_two_level_heap": False},
            {"use_lazy_forward": False, "use_two_level_heap": False},
        ):
            strategy = GlobalGreedy(**kwargs).build_strategy(instance)
            assert strategy.triples() == reference.triples(), kwargs

    @pytest.mark.parametrize("seed", range(4))
    def test_local_greedy_matches_reference(self, seed):
        instance = build_random_instance(
            num_users=5, num_items=5, num_classes=2, horizon=3,
            display_limit=2, capacity=3, beta=0.5, density=0.8, seed=seed,
        )
        order = list(range(instance.horizon))
        reference = _reference_local_greedy(instance, order)
        strategy = SequentialLocalGreedy().build_strategy(instance)
        assert strategy.triples() == reference.triples()

    def test_global_no_matches_reference(self, small_instance):
        reference = _reference_global_greedy(
            small_instance, ignore_saturation=True
        )
        strategy = GlobalGreedyNoSaturation().build_strategy(small_instance)
        assert strategy.triples() == reference.triples()

    @pytest.mark.parametrize("algorithm_factory", [
        lambda backend: GlobalGreedy(backend=backend),
        lambda backend: GlobalGreedyNoSaturation(backend=backend),
        lambda backend: SequentialLocalGreedy(backend=backend),
        lambda backend: RandomizedLocalGreedy(
            num_permutations=4, seed=0, backend=backend
        ),
    ])
    def test_backends_produce_identical_strategies(
        self, tiny_amazon_pipeline, algorithm_factory
    ):
        instance = tiny_amazon_pipeline.instance
        numpy_strategy = algorithm_factory("numpy").build_strategy(instance)
        python_strategy = algorithm_factory("python").build_strategy(instance)
        assert numpy_strategy.triples() == python_strategy.triples()


class TestLazyGreedySelector:
    def test_rejects_unknown_seeding_rule(self, small_instance):
        model = RevenueModel(small_instance)
        with pytest.raises(ValueError):
            LazyGreedySelector(
                small_instance, model, ConstraintChecker(small_instance),
                seed_priorities="optimistic",
            )

    def test_max_selections_caps_strategy_size(self, small_instance):
        model = RevenueModel(small_instance)
        strategy = Strategy(small_instance.catalog)
        selector = LazyGreedySelector(
            small_instance, model, ConstraintChecker(small_instance),
            seed_priorities=SEED_MARGINAL, max_selections=3,
        )
        admitted = selector.select(
            strategy, small_instance.candidate_triples()
        )
        assert admitted == 3
        assert len(strategy) == 3

    def test_on_admit_hook_sees_every_admission(self, small_instance):
        model = RevenueModel(small_instance)
        strategy = Strategy(small_instance.catalog)
        admissions = []
        selector = LazyGreedySelector(
            small_instance, model, ConstraintChecker(small_instance),
            seed_priorities=SEED_ISOLATED,
            on_admit=lambda triple, gain: admissions.append((triple, gain)),
        )
        growth_curve = []
        selector.select(strategy, small_instance.candidate_triples(),
                        growth_curve=growth_curve)
        assert len(admissions) == len(strategy)
        assert all(gain > 0.0 for _, gain in admissions)
        assert [round(g, 12) for _, g in admissions] == [
            round(b - a, 12) for (_, a), (_, b) in
            zip([(0, 0.0)] + growth_curve[:-1], growth_curve)
        ]

    def test_growth_curve_continues_across_calls(self, small_instance):
        """SL-Greedy's per-step calls accumulate one cumulative curve."""
        model = RevenueModel(small_instance)
        checker = ConstraintChecker(small_instance)
        strategy = Strategy(small_instance.catalog)
        selector = LazyGreedySelector(
            small_instance, model, checker, seed_priorities=SEED_MARGINAL,
            use_two_level_heap=False,
        )
        curve = []
        for t in range(small_instance.horizon):
            selector.select(
                strategy,
                (z for z in small_instance.candidate_triples() if z.t == t),
                growth_curve=curve,
            )
        sizes = [size for size, _ in curve]
        revenues = [revenue for _, revenue in curve]
        assert sizes == list(range(1, len(strategy) + 1))
        assert revenues == sorted(revenues)
        assert revenues[-1] == pytest.approx(
            RevenueModel(small_instance).revenue(strategy), rel=1e-6
        )

    def test_selection_skips_triples_already_in_strategy(self, small_instance):
        model = RevenueModel(small_instance)
        candidates = sorted(small_instance.candidate_triples())
        strategy = Strategy(small_instance.catalog, candidates[:2])
        selector = LazyGreedySelector(
            small_instance, model, ConstraintChecker(small_instance),
            seed_priorities=SEED_MARGINAL,
        )
        selector.select(strategy, candidates)
        # No duplicate admissions: Strategy.add would have raised otherwise.
        assert set(candidates[:2]) <= strategy.triples()


class TestWarmStartLocalSearch:
    def test_warm_start_runs_and_is_recorded(self):
        instance = build_random_instance(
            num_users=3, num_items=3, num_classes=2, horizon=2,
            display_limit=1, capacity=2, beta=0.5, seed=5,
        )
        cold = LocalSearchApproximation(epsilon=0.5)
        warm = LocalSearchApproximation(epsilon=0.5, warm_start=True)
        cold_result = cold.run(instance)
        warm_result = warm.run(instance)
        assert cold.last_extras["warm_start"] is False
        assert warm.last_extras["warm_start"] is True
        # Both are approximate local optima of the same objective; the warm
        # start must stay in the same quality regime as the textbook start.
        assert warm_result.revenue >= 0.0
        assert warm.last_extras["objective_value"] >= 0.0
        # Display feasibility is the one hard constraint of R-REVMAX.
        checker = ConstraintChecker(instance, enforce_capacity=False)
        assert checker.is_valid(warm_result.strategy)
