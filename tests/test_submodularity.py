"""Empirical examination of Theorem 2 (non-negativity, non-monotonicity,
submodularity of the revenue function).

Reproduction finding
--------------------
Non-negativity and non-monotonicity hold exactly as claimed.  The
*submodularity* claim of Theorem 2, however, does **not** hold for the revenue
function exactly as written in Definition 1: because the saturation factor
``beta ** M_S`` and the competition products discount a later triple's
contribution *multiplicatively*, the revenue **loss** caused by inserting an
earlier same-class recommendation is proportional to the later triple's
current contribution -- which is larger in a *smaller* strategy.  Diminishing
returns can therefore be violated (the paper's Case 2/3 argument, "the number
of triples z precedes in S' is no less than that in S, so is the revenue
loss", compares counts rather than magnitudes).

``test_theorem2_submodularity_counterexample`` pins down a concrete, hand-
verifiable counterexample; the remaining tests verify the parts of the
theorem's statement and proof that do hold (Lemma 1, the "z succeeds
everything" case, and submodularity in degenerate/modular settings).  The
greedy algorithms of §5 remain well-defined heuristics either way; only the
exactness of the lazy-forward acceleration and the 1/(4+eps) guarantee relied
on the claim.  See DESIGN.md ("Reproduction findings").
"""

from __future__ import annotations

import itertools

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.revenue import RevenueModel
from repro.core.strategy import Strategy
from repro.matroid.submodular import (
    find_submodularity_violation,
    is_monotone,
    is_submodular,
)

from tests.conftest import build_random_instance


def _revenue_set_function(instance):
    model = RevenueModel(instance)

    def function(subset):
        return model.revenue_of_triples(subset)

    return function


class TestNonNegativityAndNonMonotonicity:
    def test_revenue_non_negative_on_all_small_subsets(self):
        instance = build_random_instance(
            num_users=2, num_items=2, num_classes=1, horizon=2, seed=3
        )
        function = _revenue_set_function(instance)
        ground = list(instance.candidate_triples())
        for size in range(0, 4):
            for subset in itertools.combinations(ground, size):
                assert function(frozenset(subset)) >= 0.0

    def test_revenue_is_non_monotone(self, paper_example_instance):
        function = _revenue_set_function(paper_example_instance)
        ground = list(paper_example_instance.candidate_triples())
        assert not is_monotone(function, ground)

    @given(seed=st.integers(0, 300), size=st.integers(0, 10))
    @settings(max_examples=25, deadline=None)
    def test_property_revenue_never_negative(self, seed, size):
        instance = build_random_instance(seed=seed)
        candidates = list(instance.candidate_triples())
        rng = np.random.default_rng(seed)
        rng.shuffle(candidates)
        function = _revenue_set_function(instance)
        assert function(frozenset(candidates[:size])) >= 0.0


class TestLemma1AndProofCases:
    @given(seed=st.integers(0, 300))
    @settings(max_examples=25, deadline=None)
    def test_lemma1_dynamic_probability_non_increasing(self, seed):
        """Lemma 1: q_S(u,i,t) can only shrink as S grows (this does hold)."""
        instance = build_random_instance(
            num_users=2, num_items=3, num_classes=1, horizon=3, beta=0.4, seed=seed
        )
        model = RevenueModel(instance)
        candidates = list(instance.candidate_triples())
        rng = np.random.default_rng(seed)
        rng.shuffle(candidates)
        if len(candidates) < 3:
            return
        target = candidates[0]
        extras = candidates[1:4]
        small = Strategy(instance.catalog, [target])
        large = Strategy(instance.catalog, [target] + extras)
        assert model.dynamic_probability(large, target) <= (
            model.dynamic_probability(small, target) + 1e-12
        )

    @given(seed=st.integers(0, 300))
    @settings(max_examples=25, deadline=None)
    def test_case1_gain_diminishes_when_candidate_succeeds_everything(self, seed):
        """Proof Case 1: if z comes strictly after every same-class triple,
        its marginal gain cannot grow when the strategy grows."""
        instance = build_random_instance(
            num_users=1, num_items=3, num_classes=1, horizon=4, beta=0.5,
            display_limit=3, seed=seed,
        )
        model = RevenueModel(instance)
        last_time = instance.horizon - 1
        late = [z for z in instance.candidate_triples() if z.t == last_time]
        early = [z for z in instance.candidate_triples() if z.t < last_time]
        if not late or len(early) < 2:
            return
        z = late[0]
        small = Strategy(instance.catalog, early[:1])
        large = Strategy(instance.catalog, early[:3])
        assert model.marginal_revenue(small, z) >= model.marginal_revenue(large, z) - 1e-9


class TestSubmodularityStatus:
    def test_modular_when_groups_are_singletons(self):
        """T = 1 with singleton classes: contributions are independent, so the
        revenue function is additive (hence submodular)."""
        instance = build_random_instance(
            num_users=3, num_items=3, num_classes=3, horizon=1,
            display_limit=3, beta=0.5, seed=0,
        )
        function = _revenue_set_function(instance)
        ground = list(instance.candidate_triples())[:6]
        assert is_submodular(function, ground, max_subset_size=4)

    def test_single_candidate_per_class_multi_step_is_submodular(self):
        """One candidate item per (user, class): only saturation via repeats of
        the same item interacts; small enough to verify exhaustively."""
        instance = build_random_instance(
            num_users=2, num_items=2, num_classes=2, horizon=2,
            display_limit=2, beta=0.7, density=1.0, seed=4,
        )
        function = _revenue_set_function(instance)
        ground = [z for z in instance.candidate_triples() if z.user == 0]
        assert is_submodular(function, ground, max_subset_size=3)

    def test_theorem2_submodularity_counterexample(self):
        """Documented deviation from the paper: Definition 1's revenue function
        is not submodular in general.

        Hand-checkable instance (single user, two same-class items, beta=0.3):
        S = {(u, i0, t1)}, S' = S + {(u, i0, t0)}, w = (u, i1, t0).  Adding w
        costs far more revenue in the *smaller* set S (it saturates and
        competes against i0's large undiscounted contribution at t1) than in
        S', violating diminishing returns.
        """
        instance = build_random_instance(
            num_users=2, num_items=3, num_classes=1, horizon=2,
            display_limit=3, beta=0.3, seed=1,
        )
        function = _revenue_set_function(instance)
        ground = list(instance.candidate_triples())[:6]
        violation = find_submodularity_violation(function, ground, max_subset_size=4)
        assert violation is not None
        small, large, element = violation
        assert small <= large
        assert element not in large
        gain_small = function(small | {element}) - function(small)
        gain_large = function(large | {element}) - function(large)
        assert gain_small < gain_large

    def test_counterexample_exists_even_without_saturation(self):
        """The violation is not an artefact of saturation alone: with beta = 1
        the multiplicative competition discounts still produce violations."""
        found = False
        for seed in range(10):
            instance = build_random_instance(
                num_users=1, num_items=3, num_classes=1, horizon=3,
                display_limit=3, beta=1.0, seed=seed,
            )
            function = _revenue_set_function(instance)
            ground = list(instance.candidate_triples())[:6]
            if find_submodularity_violation(function, ground, max_subset_size=4):
                found = True
                break
        assert found


class TestCheckerSanity:
    """Validate the brute-force checkers themselves on known functions."""

    def test_coverage_function_is_submodular_and_monotone(self):
        sets = {0: {1, 2}, 1: {2, 3}, 2: {4}, 3: {1, 4, 5}}

        def coverage(subset):
            covered = set()
            for element in subset:
                covered |= sets[element]
            return float(len(covered))

        ground = list(sets)
        assert is_submodular(coverage, ground)
        assert is_monotone(coverage, ground)

    def test_supermodular_function_detected(self):
        def product(subset):
            return float(2 ** len(subset)) - 1.0

        ground = [0, 1, 2, 3]
        assert not is_submodular(product, ground)

    def test_non_monotone_detected(self):
        def dip(subset):
            return float(len(subset) if len(subset) <= 2 else 4 - len(subset))

        assert not is_monotone(dip, [0, 1, 2, 3])
