"""Shared fixtures for the test suite.

Fixtures provide a ladder of instance sizes:

* ``paper_example_instance`` -- the two-triple instance from the proof of
  Theorem 2 / Example 4 (used to check non-monotonicity and SL- vs RL-Greedy);
* ``small_instance`` -- a deterministic hand-built instance small enough for
  brute-force comparisons;
* ``random_instance_factory`` -- parameterised random instances for
  property-based tests;
* ``tiny_amazon_pipeline`` / ``tiny_epinions_pipeline`` -- full §6.1 pipelines
  at the smallest reproduction scale (session-scoped: built once).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.problem import RevMaxInstance
from repro.experiments.harness import prepare_dataset

try:
    from hypothesis import HealthCheck, settings as hypothesis_settings
except ImportError:  # pragma: no cover - hypothesis is a test extra
    hypothesis_settings = None

if hypothesis_settings is not None:
    # "ci": the deterministic tier -- derandomize=True fixes the example
    # stream from the test code itself (no ambient entropy), so a red CI
    # run reproduces locally with `HYPOTHESIS_PROFILE=ci`.  "dev" keeps
    # local runs fast.  Both disable the deadline: a greedy solve's wall
    # time depends on the machine, not on correctness.
    hypothesis_settings.register_profile(
        "ci", max_examples=200, derandomize=True, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    hypothesis_settings.register_profile(
        "dev", max_examples=50, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    hypothesis_settings.load_profile(
        os.environ.get("HYPOTHESIS_PROFILE", "dev")
    )


@pytest.fixture
def paper_example_instance() -> RevMaxInstance:
    """The instance used in the paper's non-monotonicity proof (Theorem 2).

    One user, one item, T = 2, k = 1, capacity 2, q(u,i,1) = 0.5,
    q(u,i,2) = 0.6, p(i,1) = 1, p(i,2) = 0.95, beta = 0.1.
    """
    return RevMaxInstance.from_dense_adoption(
        prices=np.array([[1.0, 0.95]]),
        adoption={(0, 0): [0.5, 0.6]},
        item_class=[0],
        capacities=2,
        betas=0.1,
        display_limit=1,
        num_users=1,
        name="paper-example",
    )


def build_random_instance(
    num_users: int = 5,
    num_items: int = 4,
    num_classes: int = 2,
    horizon: int = 3,
    display_limit: int = 2,
    capacity: int = 3,
    beta: float = 0.5,
    density: float = 0.7,
    seed: int = 0,
) -> RevMaxInstance:
    """Build a random REVMAX instance (deterministic given the seed)."""
    rng = np.random.default_rng(seed)
    prices = rng.uniform(5.0, 100.0, size=(num_items, horizon))
    adoption = {}
    for user in range(num_users):
        for item in range(num_items):
            if rng.random() < density:
                adoption[(user, item)] = rng.uniform(0.05, 0.95, size=horizon).tolist()
    if not adoption:
        adoption[(0, 0)] = rng.uniform(0.05, 0.95, size=horizon).tolist()
    item_class = [item % num_classes for item in range(num_items)]
    return RevMaxInstance.from_dense_adoption(
        prices=prices,
        adoption=adoption,
        item_class=item_class,
        capacities=capacity,
        betas=beta,
        display_limit=display_limit,
        num_users=num_users,
        name=f"random-{seed}",
    )


@pytest.fixture
def small_instance() -> RevMaxInstance:
    """A small deterministic instance used across algorithm tests."""
    return build_random_instance(seed=42)


@pytest.fixture
def random_instance_factory():
    """Factory fixture so tests can build many random instances cheaply."""
    return build_random_instance


@pytest.fixture(scope="session")
def tiny_amazon_pipeline():
    """The Amazon-like dataset run through the full pipeline (tiny scale)."""
    return prepare_dataset("amazon", scale="tiny", seed=0)


@pytest.fixture(scope="session")
def tiny_epinions_pipeline():
    """The Epinions-like dataset run through the full pipeline (tiny scale)."""
    return prepare_dataset("epinions", scale="tiny", seed=0)
