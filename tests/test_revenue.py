"""Tests for the dynamic revenue model (Definitions 1-3 of the paper)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.entities import Triple
from repro.core.problem import RevMaxInstance
from repro.core.revenue import (
    RevenueModel,
    group_dynamic_probability,
    group_revenue,
    memory_term,
)
from repro.core.strategy import Strategy

from tests.conftest import build_random_instance


class TestMemoryTerm:
    def test_no_earlier_triples(self):
        assert memory_term([Triple(0, 0, 2)], 1) == 0.0
        assert memory_term([], 3) == 0.0

    def test_single_earlier_triple(self):
        # One recommendation one step earlier contributes 1 / 1.
        assert memory_term([Triple(0, 0, 1)], 2) == pytest.approx(1.0)

    def test_equation_1_weights(self):
        # Recommendations at t=0 and t=1, memory evaluated at t=2:
        # 1/(2-0) + 1/(2-1) = 0.5 + 1 = 1.5
        group = [Triple(0, 0, 0), Triple(0, 1, 1)]
        assert memory_term(group, 2) == pytest.approx(1.5)

    def test_same_time_does_not_count(self):
        group = [Triple(0, 0, 2), Triple(0, 1, 2)]
        assert memory_term(group, 2) == 0.0


def _single_class_instance(primitive: float, beta: float, horizon: int = 3):
    """One user, two items of the same class, constant primitive probability."""
    return RevMaxInstance.from_dense_adoption(
        prices=np.ones((2, horizon)),
        adoption={
            (0, 0): [primitive] * horizon,
            (0, 1): [primitive] * horizon,
        },
        item_class=[0, 0],
        capacities=5,
        betas=beta,
        display_limit=2,
        num_users=1,
    )


class TestDynamicAdoptionProbability:
    def test_example_1_from_paper(self):
        """Example 1: S = {(u,i,1), (u,j,2), (u,i,3)}, same class, prob a."""
        a, beta = 0.3, 0.6
        instance = _single_class_instance(a, beta)
        # 0-based times: 0, 1, 2.
        triples = [Triple(0, 0, 0), Triple(0, 1, 1), Triple(0, 0, 2)]
        strategy = Strategy(instance.catalog, triples)
        model = RevenueModel(instance)
        assert model.dynamic_probability(strategy, triples[0]) == pytest.approx(a)
        assert model.dynamic_probability(strategy, triples[1]) == pytest.approx(
            (1 - a) * a * beta ** 1.0
        )
        assert model.dynamic_probability(strategy, triples[2]) == pytest.approx(
            (1 - a) ** 2 * a * beta ** (1.0 + 0.5)
        )

    def test_absent_triple_has_zero_probability(self):
        instance = _single_class_instance(0.5, 0.5)
        strategy = Strategy(instance.catalog, [Triple(0, 0, 0)])
        model = RevenueModel(instance)
        assert model.dynamic_probability(strategy, Triple(0, 1, 1)) == 0.0

    def test_single_triple_equals_primitive(self):
        instance = _single_class_instance(0.4, 0.2)
        strategy = Strategy(instance.catalog, [Triple(0, 0, 1)])
        model = RevenueModel(instance)
        assert model.dynamic_probability(strategy, Triple(0, 0, 1)) == pytest.approx(0.4)

    def test_same_time_competition(self):
        """Two same-class items at the same time discount each other."""
        a = 0.5
        instance = _single_class_instance(a, 1.0)
        strategy = Strategy(instance.catalog, [Triple(0, 0, 0), Triple(0, 1, 0)])
        model = RevenueModel(instance)
        assert model.dynamic_probability(strategy, Triple(0, 0, 0)) == pytest.approx(
            a * (1 - a)
        )
        assert model.dynamic_probability(strategy, Triple(0, 1, 0)) == pytest.approx(
            a * (1 - a)
        )

    def test_different_classes_do_not_interact(self):
        instance = RevMaxInstance.from_dense_adoption(
            prices=np.ones((2, 2)),
            adoption={(0, 0): [0.5, 0.5], (0, 1): [0.7, 0.7]},
            item_class=[0, 1],
            capacities=5,
            betas=0.1,
            display_limit=2,
            num_users=1,
        )
        strategy = Strategy(instance.catalog, [Triple(0, 0, 0), Triple(0, 1, 1)])
        model = RevenueModel(instance)
        # Item 1 at time 1 is unaffected by the class-0 recommendation.
        assert model.dynamic_probability(strategy, Triple(0, 1, 1)) == pytest.approx(0.7)

    def test_lemma_1_probability_non_increasing_in_strategy(self):
        instance = _single_class_instance(0.4, 0.5)
        target = Triple(0, 0, 2)
        small = Strategy(instance.catalog, [target])
        large = Strategy(instance.catalog, [target, Triple(0, 1, 0), Triple(0, 1, 2)])
        model = RevenueModel(instance)
        assert model.dynamic_probability(large, target) <= model.dynamic_probability(
            small, target
        )


class TestRevenueFunction:
    def test_empty_strategy_has_zero_revenue(self, small_instance):
        model = RevenueModel(small_instance)
        assert model.revenue(Strategy(small_instance.catalog)) == 0.0

    def test_paper_non_monotonicity_example(self, paper_example_instance):
        """Rev({(u,i,2)}) = 0.57 > Rev({(u,i,1), (u,i,2)}) = 0.5285."""
        model = RevenueModel(paper_example_instance)
        catalog = paper_example_instance.catalog
        late_only = Strategy(catalog, [Triple(0, 0, 1)])
        both = Strategy(catalog, [Triple(0, 0, 0), Triple(0, 0, 1)])
        assert model.revenue(late_only) == pytest.approx(0.57)
        assert model.revenue(both) == pytest.approx(0.5285)
        assert model.revenue(both) < model.revenue(late_only)

    def test_revenue_of_triples_helper(self, paper_example_instance):
        model = RevenueModel(paper_example_instance)
        assert model.revenue_of_triples([(0, 0, 1)]) == pytest.approx(0.57)

    def test_revenue_is_nonnegative_on_random_instances(self):
        for seed in range(5):
            instance = build_random_instance(seed=seed)
            model = RevenueModel(instance)
            triples = list(instance.candidate_triples())[:8]
            assert model.revenue_of_triples(triples) >= 0.0

    def test_group_revenue_matches_manual_sum(self):
        instance = _single_class_instance(0.3, 0.6)
        triples = [Triple(0, 0, 0), Triple(0, 1, 1)]
        expected = sum(
            instance.price(z.item, z.t)
            * group_dynamic_probability(instance, triples, z)
            for z in triples
        )
        assert group_revenue(instance, triples) == pytest.approx(expected)


class TestMarginalRevenue:
    def test_marginal_of_existing_triple_is_zero(self, small_instance):
        model = RevenueModel(small_instance)
        triple = next(iter(small_instance.candidate_triples()))
        strategy = Strategy(small_instance.catalog, [triple])
        assert model.marginal_revenue(strategy, triple) == 0.0

    def test_marginal_matches_revenue_difference(self, small_instance):
        model = RevenueModel(small_instance)
        candidates = list(small_instance.candidate_triples())
        strategy = Strategy(small_instance.catalog, candidates[:4])
        for triple in candidates[4:10]:
            expected = model.revenue_of_triples(candidates[:4] + [triple]) - (
                model.revenue_of_triples(candidates[:4])
            )
            assert model.marginal_revenue(strategy, triple) == pytest.approx(expected)

    def test_components_sum_to_marginal(self, small_instance):
        model = RevenueModel(small_instance)
        candidates = list(small_instance.candidate_triples())
        strategy = Strategy(small_instance.catalog, candidates[:5])
        for triple in candidates[5:12]:
            gain, loss = model.marginal_revenue_components(strategy, triple)
            assert gain >= 0.0
            assert loss <= 1e-12
            assert gain + loss == pytest.approx(
                model.marginal_revenue(strategy, triple)
            )

    def test_evaluation_counter(self, small_instance):
        model = RevenueModel(small_instance)
        assert model.evaluations == 0
        triple = next(iter(small_instance.candidate_triples()))
        model.marginal_revenue(Strategy(small_instance.catalog), triple)
        assert model.evaluations >= 1
        model.reset_counters()
        assert model.evaluations == 0

    @given(seed=st.integers(0, 1000), size=st.integers(0, 8))
    @settings(max_examples=30, deadline=None)
    def test_property_marginal_equals_difference(self, seed, size):
        instance = build_random_instance(seed=seed)
        model = RevenueModel(instance)
        candidates = list(instance.candidate_triples())
        rng = np.random.default_rng(seed)
        rng.shuffle(candidates)
        base = candidates[:size]
        strategy = Strategy(instance.catalog, base)
        remaining = [z for z in candidates[size:size + 3]]
        for triple in remaining:
            difference = model.revenue_of_triples(base + [triple]) - (
                model.revenue_of_triples(base)
            )
            assert model.marginal_revenue(strategy, triple) == pytest.approx(
                difference, abs=1e-9
            )
