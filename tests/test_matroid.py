"""Tests for the matroid toolkit (uniform / partition matroids, Lemma 2)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.matroid.matroid import FreeMatroid, UniformMatroid
from repro.matroid.partition import PartitionMatroid, display_constraint_matroid

from tests.conftest import build_random_instance


class TestUniformMatroid:
    def test_independence_by_cardinality(self):
        matroid = UniformMatroid(range(5), rank=2)
        assert matroid.is_independent([])
        assert matroid.is_independent([0, 1])
        assert not matroid.is_independent([0, 1, 2])

    def test_elements_outside_ground_set_rejected(self):
        matroid = UniformMatroid(range(3), rank=2)
        assert not matroid.is_independent([7])

    def test_negative_rank_rejected(self):
        with pytest.raises(ValueError):
            UniformMatroid(range(3), rank=-1)

    def test_can_add(self):
        matroid = UniformMatroid(range(4), rank=2)
        assert matroid.can_add({0}, 1)
        assert not matroid.can_add({0, 1}, 2)
        assert not matroid.can_add({0}, 0)

    def test_can_swap(self):
        matroid = UniformMatroid(range(4), rank=2)
        assert matroid.can_swap({0, 1}, 0, 2)
        assert not matroid.can_swap({0, 1}, 3, 2)  # 3 not in the set

    def test_rank(self):
        matroid = UniformMatroid(range(10), rank=3)
        assert matroid.rank(range(10)) == 3
        assert matroid.rank([0]) == 1

    def test_axioms_spot_check(self):
        matroid = UniformMatroid(range(4), rank=2)
        samples = [set(), {0}, {1}, {0, 1}, {2, 3}, {1, 2}]
        matroid.check_axioms(samples)


class TestFreeMatroid:
    def test_everything_independent(self):
        matroid = FreeMatroid(range(3))
        assert matroid.is_independent([0, 1, 2])
        assert not matroid.is_independent([5])

    def test_rank_is_size(self):
        matroid = FreeMatroid(range(5))
        assert matroid.rank([0, 1, 4]) == 3


class TestPartitionMatroid:
    def _blocks_by_parity(self):
        return PartitionMatroid(
            ground_set=range(8),
            block_of=lambda x: x % 2,
            capacities={0: 2, 1: 1},
        )

    def test_independence(self):
        matroid = self._blocks_by_parity()
        assert matroid.is_independent([0, 2, 1])     # two even, one odd
        assert not matroid.is_independent([0, 2, 4])  # three even
        assert not matroid.is_independent([1, 3])     # two odd

    def test_default_capacity(self):
        matroid = PartitionMatroid(range(6), block_of=lambda x: x % 3,
                                   default_capacity=1)
        assert matroid.is_independent([0, 1, 2])
        assert not matroid.is_independent([0, 3])

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            PartitionMatroid(range(3), block_of=lambda x: 0, capacities={0: -1})
        with pytest.raises(ValueError):
            PartitionMatroid(range(3), block_of=lambda x: 0, default_capacity=-2)

    def test_specialised_can_add_matches_generic(self):
        matroid = self._blocks_by_parity()
        current = {0, 1}
        for element in range(8):
            generic = (
                element not in current
                and matroid.is_independent(current | {element})
            )
            assert matroid.can_add(current, element) == generic

    def test_block_and_capacity_accessors(self):
        matroid = self._blocks_by_parity()
        assert matroid.block(3) == 1
        assert matroid.capacity(0) == 2
        assert matroid.capacity(99) == 1  # default

    @given(
        st.lists(st.integers(0, 11), min_size=0, max_size=12, unique=True),
        st.lists(st.integers(0, 11), min_size=0, max_size=12, unique=True),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_augmentation_axiom(self, raw_a, raw_b):
        """For any two independent sets with |A| < |B|, some element of B \\ A
        can be added to A keeping it independent."""
        matroid = PartitionMatroid(range(12), block_of=lambda x: x % 4,
                                   default_capacity=2)
        a = {x for x in raw_a}
        b = {x for x in raw_b}
        if not matroid.is_independent(a) or not matroid.is_independent(b):
            return
        if len(a) >= len(b):
            return
        assert any(matroid.is_independent(a | {x}) for x in b - a)


class TestDisplayConstraintMatroid(object):
    def test_lemma2_construction(self):
        instance = build_random_instance(
            num_users=3, num_items=3, num_classes=2, horizon=2,
            display_limit=2, seed=0,
        )
        matroid = display_constraint_matroid(instance)
        candidates = list(instance.candidate_triples())
        assert set(matroid.ground_set) == set(candidates)
        # Any two triples of the same user at the same time are fine (k = 2),
        # three are not.
        per_slot = {}
        for triple in candidates:
            per_slot.setdefault((triple.user, triple.t), []).append(triple)
        for slot, triples in per_slot.items():
            if len(triples) >= 3:
                assert matroid.is_independent(triples[:2])
                assert not matroid.is_independent(triples[:3])

    def test_matroid_independence_equals_display_validity(self):
        """A triple set is independent iff it satisfies the display constraint."""
        from repro.core.constraints import DisplayConstraint
        from repro.core.strategy import Strategy

        instance = build_random_instance(
            num_users=2, num_items=3, num_classes=2, horizon=2,
            display_limit=1, seed=5,
        )
        matroid = display_constraint_matroid(instance)
        constraint = DisplayConstraint(instance)
        candidates = list(instance.candidate_triples())
        rng = np.random.default_rng(0)
        for _ in range(30):
            size = int(rng.integers(0, min(6, len(candidates)) + 1))
            subset = [candidates[i] for i in
                      rng.choice(len(candidates), size=size, replace=False)]
            strategy = Strategy(instance.catalog, subset)
            display_ok = not constraint.violations(strategy)
            assert matroid.is_independent(subset) == display_ok
