"""Tests for the recommender substrate: ratings, MF, evaluation, top-k."""

from __future__ import annotations

import numpy as np
import pytest

from repro.recsys.evaluation import cross_validate, evaluate_model, mae, rmse
from repro.recsys.mf import MatrixFactorization, MFConfig
from repro.recsys.ratings import RatingsMatrix
from repro.recsys.topk import top_candidates, top_candidates_for_user


def _structured_ratings(num_users=40, num_items=20, per_user=8, seed=0):
    """Ratings with latent structure so MF has signal to learn."""
    rng = np.random.default_rng(seed)
    user_factors = rng.normal(size=(num_users, 3))
    item_factors = rng.normal(size=(num_items, 3))
    ratings = RatingsMatrix(num_users, num_items)
    for user in range(num_users):
        items = rng.choice(num_items, size=per_user, replace=False)
        for item in items:
            value = 3.0 + user_factors[user] @ item_factors[item] * 0.7
            value += rng.normal(0, 0.3)
            ratings.add(user, int(item), float(np.clip(value, 1.0, 5.0)))
    return ratings


class TestRatingsMatrix:
    def test_construction_validation(self):
        with pytest.raises(ValueError):
            RatingsMatrix(0, 5)
        with pytest.raises(ValueError):
            RatingsMatrix(5, 5, rating_scale=(5.0, 1.0))

    def test_add_and_get(self):
        ratings = RatingsMatrix(3, 3)
        ratings.add(0, 1, 4.0)
        assert ratings.get(0, 1) == 4.0
        assert ratings.get(0, 2) is None
        assert len(ratings) == 1

    def test_out_of_range_ids_rejected(self):
        ratings = RatingsMatrix(2, 2)
        with pytest.raises(ValueError):
            ratings.add(5, 0, 3.0)
        with pytest.raises(ValueError):
            ratings.add(0, 5, 3.0)

    def test_out_of_scale_rating_rejected(self):
        ratings = RatingsMatrix(2, 2)
        with pytest.raises(ValueError):
            ratings.add(0, 0, 6.0)

    def test_rerating_overwrites(self):
        ratings = RatingsMatrix(2, 2)
        ratings.add(0, 0, 2.0)
        ratings.add(0, 0, 5.0)
        assert ratings.get(0, 0) == 5.0
        assert len(ratings) == 1

    def test_user_and_item_views(self):
        ratings = RatingsMatrix(3, 3)
        ratings.add_many([(0, 0, 3.0), (0, 1, 4.0), (1, 1, 2.0)])
        assert len(ratings.user_ratings(0)) == 2
        assert len(ratings.item_ratings(1)) == 2
        assert ratings.rated_items(0) == [0, 1]
        assert ratings.item_rating_counts() == {0: 1, 1: 2}

    def test_density_and_global_mean(self):
        ratings = RatingsMatrix(2, 2)
        assert ratings.global_mean() == 0.0
        ratings.add_many([(0, 0, 2.0), (1, 1, 4.0)])
        assert ratings.density() == pytest.approx(0.5)
        assert ratings.global_mean() == pytest.approx(3.0)

    def test_filter_items_with_min_ratings(self):
        ratings = RatingsMatrix(4, 2)
        ratings.add_many([(0, 0, 3.0), (1, 0, 4.0), (2, 0, 5.0), (0, 1, 2.0)])
        filtered = ratings.filter_items_with_min_ratings(2)
        assert len(filtered.item_ratings(0)) == 3
        assert len(filtered.item_ratings(1)) == 0

    def test_split_partitions_all_ratings(self):
        ratings = _structured_ratings(num_users=10, num_items=8, per_user=4)
        train, test = ratings.split(0.25, seed=1)
        assert len(train) + len(test) == len(ratings)
        assert len(test) == pytest.approx(0.25 * len(ratings), abs=1)

    def test_split_invalid_fraction(self):
        ratings = _structured_ratings(num_users=5, num_items=5, per_user=2)
        with pytest.raises(ValueError):
            ratings.split(0.0)

    def test_k_folds_cover_everything_once(self):
        ratings = _structured_ratings(num_users=10, num_items=8, per_user=3)
        folds = ratings.k_folds(4, seed=0)
        assert len(folds) == 4
        total_test = sum(len(test) for _, test in folds)
        assert total_test == len(ratings)
        for train, test in folds:
            assert len(train) + len(test) == len(ratings)

    def test_k_folds_requires_k_at_least_two(self):
        ratings = _structured_ratings(num_users=5, num_items=5, per_user=2)
        with pytest.raises(ValueError):
            ratings.k_folds(1)

    def test_to_arrays(self):
        ratings = RatingsMatrix(2, 2)
        ratings.add_many([(0, 1, 3.0), (1, 0, 4.0)])
        users, items, values = ratings.to_arrays()
        assert users.tolist() == [0, 1]
        assert items.tolist() == [1, 0]
        assert values.tolist() == [3.0, 4.0]


class TestMatrixFactorization:
    def test_fit_on_empty_matrix_raises(self):
        with pytest.raises(ValueError):
            MatrixFactorization().fit(RatingsMatrix(3, 3))

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            MatrixFactorization().predict(0, 0)

    def test_training_error_decreases(self):
        ratings = _structured_ratings()
        model = MatrixFactorization(MFConfig(num_factors=6, num_epochs=15, seed=0))
        model.fit(ratings)
        errors = model.training_rmse_per_epoch
        assert len(errors) == 15
        assert errors[-1] < errors[0]

    def test_predictions_within_rating_scale(self):
        ratings = _structured_ratings()
        model = MatrixFactorization(MFConfig(num_epochs=5, seed=0)).fit(ratings)
        for user in range(5):
            for item in range(5):
                assert 1.0 <= model.predict(user, item) <= 5.0

    def test_predict_for_user_matches_pointwise(self):
        ratings = _structured_ratings()
        model = MatrixFactorization(MFConfig(num_epochs=5, seed=0)).fit(ratings)
        batch = model.predict_for_user(2, [0, 1, 2])
        pointwise = [model.predict(2, item) for item in range(3)]
        assert np.allclose(batch, pointwise)

    def test_fit_recovers_signal_better_than_global_mean(self):
        ratings = _structured_ratings(num_users=60, num_items=25, per_user=10)
        train, test = ratings.split(0.2, seed=3)
        model = MatrixFactorization(MFConfig(num_factors=6, num_epochs=25,
                                             learning_rate=0.02, seed=0)).fit(train)
        model_rmse = evaluate_model(model, test)
        mean = train.global_mean()
        baseline_rmse = rmse([mean] * len(test), [r.value for r in test])
        assert model_rmse < baseline_rmse

    def test_num_parameters(self):
        ratings = _structured_ratings(num_users=10, num_items=8, per_user=3)
        config = MFConfig(num_factors=4, num_epochs=2, seed=0)
        model = MatrixFactorization(config).fit(ratings)
        expected = 10 * 4 + 8 * 4 + 10 + 8
        assert model.num_parameters == expected

    def test_unbiased_variant(self):
        ratings = _structured_ratings(num_users=10, num_items=8, per_user=3)
        config = MFConfig(num_factors=4, num_epochs=2, use_biases=False, seed=0)
        model = MatrixFactorization(config).fit(ratings)
        assert model.num_parameters == 10 * 4 + 8 * 4


class TestEvaluation:
    def test_rmse_and_mae_basics(self):
        assert rmse([1.0, 2.0], [1.0, 2.0]) == 0.0
        assert rmse([0.0, 0.0], [3.0, 4.0]) == pytest.approx(np.sqrt(12.5))
        assert mae([1.0, 3.0], [2.0, 5.0]) == pytest.approx(1.5)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            rmse([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            mae([], [])

    def test_cross_validation_reports_folds(self):
        ratings = _structured_ratings(num_users=30, num_items=15, per_user=6)
        result = cross_validate(
            ratings, MFConfig(num_factors=4, num_epochs=5, seed=0), num_folds=3
        )
        assert len(result.fold_rmse) == 3
        assert 0.0 < result.mean_rmse < 2.5
        assert result.std_rmse >= 0.0


class TestTopK:
    def test_top_candidates_excludes_rated_items(self):
        ratings = _structured_ratings(num_users=10, num_items=10, per_user=4)
        model = MatrixFactorization(MFConfig(num_epochs=5, seed=0)).fit(ratings)
        rated = set(ratings.rated_items(0))
        candidates = top_candidates_for_user(model, ratings, 0, num_candidates=5)
        assert all(c.item not in rated for c in candidates)
        assert len(candidates) <= 5

    def test_candidates_sorted_by_prediction(self):
        ratings = _structured_ratings(num_users=10, num_items=10, per_user=3)
        model = MatrixFactorization(MFConfig(num_epochs=5, seed=0)).fit(ratings)
        candidates = top_candidates_for_user(model, ratings, 1, num_candidates=6)
        predictions = [c.predicted_rating for c in candidates]
        assert predictions == sorted(predictions, reverse=True)

    def test_min_predicted_rating_threshold(self):
        ratings = _structured_ratings(num_users=10, num_items=10, per_user=3)
        model = MatrixFactorization(MFConfig(num_epochs=5, seed=0)).fit(ratings)
        candidates = top_candidates_for_user(
            model, ratings, 0, num_candidates=10, min_predicted_rating=6.0
        )
        assert candidates == []

    def test_invalid_num_candidates(self):
        ratings = _structured_ratings(num_users=5, num_items=5, per_user=2)
        model = MatrixFactorization(MFConfig(num_epochs=2, seed=0)).fit(ratings)
        with pytest.raises(ValueError):
            top_candidates_for_user(model, ratings, 0, num_candidates=0)

    def test_top_candidates_for_all_users(self):
        ratings = _structured_ratings(num_users=8, num_items=10, per_user=3)
        model = MatrixFactorization(MFConfig(num_epochs=3, seed=0)).fit(ratings)
        by_user = top_candidates(model, ratings, num_candidates=4)
        assert set(by_user) == set(range(8))
        assert all(len(candidates) <= 4 for candidates in by_user.values())
