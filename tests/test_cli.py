"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.command == "solve"
        assert args.dataset == "amazon"
        assert args.algorithm == "gg"
        assert args.scale == "tiny"

    def test_invalid_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve", "--algorithm", "magic"])

    def test_backend_and_jobs_on_every_subcommand(self):
        parser = build_parser()
        for argv in (["solve"], ["compare"], ["exhibit", "table1"]):
            args = parser.parse_args(argv + ["--backend", "python",
                                             "--jobs", "4"])
            assert args.backend == "python"
            assert args.jobs == 4
            defaults = parser.parse_args(argv)
            assert defaults.backend is None
            assert defaults.jobs is None

    def test_invalid_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve", "--backend", "fortran"])

    def test_invalid_exhibit_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["exhibit", "figure99"])


class TestSolveCommand:
    def test_solve_prints_summary(self, capsys):
        exit_code = main(["solve", "--dataset", "amazon", "--scale", "tiny",
                          "--algorithm", "gg"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "G-Greedy" in captured.out
        assert "revenue" in captured.out

    def test_solve_each_algorithm_key(self, capsys):
        for key, expected in [("slg", "SL-Greedy"), ("topre", "TopRE"),
                              ("topra", "TopRA")]:
            exit_code = main(["solve", "--scale", "tiny", "--algorithm", key])
            captured = capsys.readouterr()
            assert exit_code == 0
            assert expected in captured.out

    def test_solve_writes_artifacts(self, tmp_path, capsys):
        result_path = tmp_path / "result.json"
        instance_path = tmp_path / "instance.json"
        exit_code = main([
            "solve", "--scale", "tiny", "--algorithm", "gg",
            "--save-result", str(result_path),
            "--save-instance", str(instance_path),
        ])
        assert exit_code == 0
        assert result_path.exists()
        assert instance_path.exists()
        with result_path.open() as handle:
            document = json.load(handle)
        assert document["algorithm"] == "G-Greedy"
        with instance_path.open() as handle:
            instance_document = json.load(handle)
        assert instance_document["kind"] == "revmax-instance"


class TestCompareCommand:
    def test_compare_prints_all_algorithms(self, capsys):
        exit_code = main(["compare", "--dataset", "amazon", "--scale", "tiny",
                          "--permutations", "2"])
        captured = capsys.readouterr()
        assert exit_code == 0
        for name in ("G-Greedy", "GlobalNo", "RL-Greedy", "SL-Greedy",
                     "TopRE", "TopRA"):
            assert name in captured.out


class TestInfoCommand:
    def test_info_prints_statistics_and_footprint(self, capsys):
        exit_code = main(["info", "--dataset", "amazon", "--scale", "tiny"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "candidate (user, item) pairs" in captured.out
        assert "compiled tensor footprint" in captured.out
        assert "pair_probs" in captured.out
        assert "total" in captured.out

    def test_info_loads_saved_npz(self, tmp_path, capsys):
        instance_path = tmp_path / "instance.npz"
        assert main(["solve", "--scale", "tiny",
                     "--save-instance", str(instance_path)]) == 0
        capsys.readouterr()
        exit_code = main(["info", "--load", str(instance_path)])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "amazon-like" in captured.out
        assert "(user, class) groups" in captured.out

    def test_info_loads_saved_json(self, tmp_path, capsys):
        instance_path = tmp_path / "instance.json"
        assert main(["solve", "--scale", "tiny",
                     "--save-instance", str(instance_path)]) == 0
        capsys.readouterr()
        exit_code = main(["info", "--load", str(instance_path)])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "candidate triples (positive q)" in captured.out


class TestExhibitCommand:
    def test_exhibit_table1(self, capsys):
        exit_code = main(["exhibit", "table1", "--scale", "tiny"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "#Triples with positive q" in captured.out

    def test_exhibit_theory(self, capsys):
        exit_code = main(["exhibit", "theory"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Exact Max-DCS" in captured.out
