"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.command == "solve"
        assert args.dataset == "amazon"
        assert args.algorithm == "gg"
        assert args.scale == "tiny"

    def test_invalid_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve", "--algorithm", "magic"])

    def test_backend_and_jobs_on_every_subcommand(self):
        parser = build_parser()
        for argv in (["solve"], ["compare"], ["exhibit", "table1"]):
            args = parser.parse_args(argv + ["--backend", "python",
                                             "--jobs", "4"])
            assert args.backend == "python"
            assert args.jobs == 4
            defaults = parser.parse_args(argv)
            assert defaults.backend is None
            # The cost model decides by default; it degrades to serial
            # wherever parallelism would lose (repro.autotune).
            assert defaults.jobs == "auto"

    def test_invalid_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve", "--backend", "fortran"])

    def test_invalid_exhibit_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["exhibit", "figure99"])


class TestSolveCommand:
    def test_solve_prints_summary(self, capsys):
        exit_code = main(["solve", "--dataset", "amazon", "--scale", "tiny",
                          "--algorithm", "gg"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "G-Greedy" in captured.out
        assert "revenue" in captured.out

    def test_solve_each_algorithm_key(self, capsys):
        for key, expected in [("slg", "SL-Greedy"), ("topre", "TopRE"),
                              ("topra", "TopRA")]:
            exit_code = main(["solve", "--scale", "tiny", "--algorithm", key])
            captured = capsys.readouterr()
            assert exit_code == 0
            assert expected in captured.out

    def test_solve_writes_artifacts(self, tmp_path, capsys):
        result_path = tmp_path / "result.json"
        instance_path = tmp_path / "instance.json"
        exit_code = main([
            "solve", "--scale", "tiny", "--algorithm", "gg",
            "--save-result", str(result_path),
            "--save-instance", str(instance_path),
        ])
        assert exit_code == 0
        assert result_path.exists()
        assert instance_path.exists()
        with result_path.open() as handle:
            document = json.load(handle)
        assert document["algorithm"] == "G-Greedy"
        with instance_path.open() as handle:
            instance_document = json.load(handle)
        assert instance_document["kind"] == "revmax-instance"


class TestCompareCommand:
    def test_compare_prints_all_algorithms(self, capsys):
        exit_code = main(["compare", "--dataset", "amazon", "--scale", "tiny",
                          "--permutations", "2"])
        captured = capsys.readouterr()
        assert exit_code == 0
        for name in ("G-Greedy", "GlobalNo", "RL-Greedy", "SL-Greedy",
                     "TopRE", "TopRA"):
            assert name in captured.out


class TestInfoCommand:
    def test_info_prints_statistics_and_footprint(self, capsys):
        exit_code = main(["info", "--dataset", "amazon", "--scale", "tiny"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "candidate (user, item) pairs" in captured.out
        assert "compiled tensor footprint" in captured.out
        assert "pair_probs" in captured.out
        assert "total" in captured.out

    def test_info_loads_saved_npz(self, tmp_path, capsys):
        instance_path = tmp_path / "instance.npz"
        assert main(["solve", "--scale", "tiny",
                     "--save-instance", str(instance_path)]) == 0
        capsys.readouterr()
        exit_code = main(["info", "--load", str(instance_path)])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "amazon-like" in captured.out
        assert "(user, class) groups" in captured.out

    def test_info_loads_saved_json(self, tmp_path, capsys):
        instance_path = tmp_path / "instance.json"
        assert main(["solve", "--scale", "tiny",
                     "--save-instance", str(instance_path)]) == 0
        capsys.readouterr()
        exit_code = main(["info", "--load", str(instance_path)])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "candidate triples (positive q)" in captured.out


class TestResolveCommand:
    def test_resolve_requires_an_instance(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["resolve"])

    def test_resolve_rejects_python_backend(self, tmp_path, monkeypatch,
                                            capsys):
        # The flag is constrained by the parser ...
        with pytest.raises(SystemExit):
            build_parser().parse_args(["resolve", "--load", "x.npz",
                                       "--backend", "python"])
        # ... and a python default from the environment is a clean CLI
        # error, not a traceback.
        instance_path = tmp_path / "plan.npz"
        assert main(["solve", "--scale", "tiny",
                     "--save-instance", str(instance_path)]) == 0
        capsys.readouterr()
        monkeypatch.setenv("REPRO_REVENUE_BACKEND", "python")
        assert main(["resolve", "--load", str(instance_path)]) == 2
        captured = capsys.readouterr()
        assert "numpy backend" in captured.err

    def test_cold_prime_then_warm_delta_cycle(self, tmp_path, capsys):
        """The full CLI workflow: solve, prime state, re-solve with a delta."""
        instance_path = tmp_path / "plan.npz"
        state_path = tmp_path / "state.json"
        delta_path = tmp_path / "delta.json"
        strategy_path = tmp_path / "strategy.json"
        assert main(["solve", "--scale", "tiny",
                     "--save-instance", str(instance_path)]) == 0
        capsys.readouterr()

        # Cold prime: no delta, no state -- records the warm state.
        assert main(["resolve", "--load", str(instance_path),
                     "--save-state", str(state_path)]) == 0
        captured = capsys.readouterr()
        assert "re-solve mode=cold" in captured.out
        assert state_path.exists()

        from repro.dynamic import InstanceDelta, save_delta

        save_delta(InstanceDelta(price_updates={(0, 0): 42.0},
                                 capacity_updates={1: 500},
                                 name="cli-cycle"), delta_path)
        assert main(["resolve", "--load", str(instance_path),
                     "--state", str(state_path),
                     "--delta", str(delta_path),
                     "--save-state", str(state_path),
                     "--save-strategy", str(strategy_path)]) == 0
        captured = capsys.readouterr()
        assert "delta 'cli-cycle'" in captured.out
        assert "re-solve mode=" in captured.out
        assert "revenue=" in captured.out
        document = json.loads(strategy_path.read_text())
        assert document["kind"] == "revmax-strategy"
        assert len(document["triples"]) > 0

    def test_warm_merge_path_reports_reuse(self, tmp_path, capsys):
        """A saturating instance takes the fast merge path through the CLI."""
        from repro import io as repro_io
        from repro.dynamic import InstanceDelta, save_delta
        from tests.conftest import build_random_instance

        instance = build_random_instance(
            num_users=8, num_items=6, num_classes=3, horizon=3,
            display_limit=2, capacity=8, beta=0.95, density=1.0, seed=0,
        )
        instance_path = tmp_path / "plan.npz"
        state_path = tmp_path / "state.json"
        delta_path = tmp_path / "delta.json"
        repro_io.save_instance_npz(instance, instance_path)
        pair = sorted(instance.adoption.pairs())[0]
        save_delta(InstanceDelta(
            probability_updates={pair: [0.9, 0.8, 0.7]}
        ), delta_path)
        assert main(["resolve", "--load", str(instance_path),
                     "--save-state", str(state_path)]) == 0
        capsys.readouterr()
        assert main(["resolve", "--load", str(instance_path),
                     "--state", str(state_path),
                     "--delta", str(delta_path)]) == 0
        captured = capsys.readouterr()
        assert "re-solve mode=merge" in captured.out
        assert "dirty_users=1" in captured.out
        assert "reused_events=" in captured.out

    def test_stale_instance_state_pairing_rejected(self, tmp_path, capsys):
        """Delta cycles must re-save the instance; a stale pairing errors.

        Without the digest check, cycle 2 would silently merge cycle 1's
        recorded sequences against tensors that never received cycle 1's
        delta -- a wrong strategy with no warning.
        """
        from repro import io as repro_io
        from repro.dynamic import InstanceDelta, save_delta
        from tests.conftest import build_random_instance

        instance = build_random_instance(
            num_users=8, num_items=6, num_classes=3, horizon=3,
            display_limit=2, capacity=8, beta=0.95, density=1.0, seed=0,
        )
        instance_path = tmp_path / "plan.npz"
        state_path = tmp_path / "state.json"
        delta_path = tmp_path / "delta.json"
        repro_io.save_instance_npz(instance, instance_path)
        pair = sorted(instance.adoption.pairs())[0]
        save_delta(InstanceDelta(probability_updates={pair: [0.9, 0.8, 0.7]}),
                   delta_path)
        assert main(["resolve", "--load", str(instance_path),
                     "--save-state", str(state_path)]) == 0
        # Cycle 1 forgets --save-instance: state moves on, plan.npz stays.
        assert main(["resolve", "--load", str(instance_path),
                     "--state", str(state_path),
                     "--delta", str(delta_path),
                     "--save-state", str(state_path)]) == 0
        capsys.readouterr()
        # Cycle 2 with the now-stale instance is rejected, not merged.
        assert main(["resolve", "--load", str(instance_path),
                     "--state", str(state_path),
                     "--delta", str(delta_path)]) == 2
        captured = capsys.readouterr()
        assert "does not match" in captured.err

    def test_resolve_save_instance_persists_the_mutation(self, tmp_path,
                                                         capsys):
        instance_path = tmp_path / "plan.npz"
        mutated_path = tmp_path / "mutated.npz"
        delta_path = tmp_path / "delta.json"
        assert main(["solve", "--scale", "tiny",
                     "--save-instance", str(instance_path)]) == 0

        from repro import io as repro_io
        from repro.dynamic import InstanceDelta, save_delta

        save_delta(InstanceDelta(price_updates={(2, 0): 99.5}), delta_path)
        assert main(["resolve", "--load", str(instance_path),
                     "--delta", str(delta_path),
                     "--save-instance", str(mutated_path)]) == 0
        capsys.readouterr()
        mutated = repro_io.load_instance_npz(mutated_path)
        assert mutated.prices[2, 0] == 99.5


class TestExhibitCommand:
    def test_exhibit_table1(self, capsys):
        exit_code = main(["exhibit", "table1", "--scale", "tiny"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "#Triples with positive q" in captured.out

    def test_exhibit_theory(self, capsys):
        exit_code = main(["exhibit", "theory"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Exact Max-DCS" in captured.out
