"""Tests for the experiment harness, reporting helpers and figure functions.

The figure functions are exercised at the smallest reproduction scale; the
assertions check output *structure* and the qualitative relationships the
paper reports (full sweeps live in ``benchmarks/``).
"""

from __future__ import annotations

import pytest

from repro.datasets.synthetic import SyntheticConfig
from repro.experiments.figures import (
    extension_random_prices,
    figure1_revenue_by_capacity_distribution,
    figure2_revenue_by_saturation,
    figure3_revenue_by_saturation_singleton,
    figure4_revenue_growth_curves,
    figure5_repeat_histograms,
    figure6_scalability,
    figure7_incomplete_prices,
    table1_dataset_statistics,
    table2_running_times,
    theory_small_instances,
)
from repro.experiments.harness import (
    SCALES,
    predicted_ratings_map,
    prepare_dataset,
    run_algorithms,
    standard_algorithms,
)
from repro.experiments.reporting import (
    format_grouped_bars,
    format_histogram,
    format_series,
    format_table,
)


class TestHarness:
    def test_scales_defined(self):
        assert {"tiny", "small", "medium"} <= set(SCALES)

    def test_prepare_dataset_caching(self):
        first = prepare_dataset("amazon", scale="tiny", seed=0)
        second = prepare_dataset("amazon", scale="tiny", seed=0)
        assert first is second
        third = prepare_dataset("amazon", scale="tiny", seed=0, use_cache=False)
        assert third is not first

    def test_prepare_dataset_unknown_names_rejected(self):
        with pytest.raises(ValueError):
            prepare_dataset("netflix", scale="tiny")
        with pytest.raises(ValueError):
            prepare_dataset("amazon", scale="galactic")

    def test_predicted_ratings_map(self, tiny_amazon_pipeline):
        mapping = predicted_ratings_map(tiny_amazon_pipeline)
        assert mapping
        assert all(isinstance(key, tuple) and len(key) == 2 for key in mapping)
        assert all(1.0 <= value <= 5.0 for value in mapping.values())

    def test_standard_algorithms_full_suite(self):
        suite = standard_algorithms()
        names = [algorithm.name for algorithm in suite]
        assert names == ["G-Greedy", "GlobalNo", "RL-Greedy", "SL-Greedy",
                         "TopRE", "TopRA"]

    def test_standard_algorithms_subset(self):
        suite = standard_algorithms(include=["GG", "SLG"])
        assert [algorithm.name for algorithm in suite] == ["G-Greedy", "SL-Greedy"]
        with pytest.raises(ValueError):
            standard_algorithms(include=["nope"])

    def test_run_algorithms(self, tiny_amazon_pipeline):
        suite = standard_algorithms(include=["GG", "TopRev"])
        results = run_algorithms(tiny_amazon_pipeline.instance, suite,
                                 settings={"tag": "unit-test"})
        assert set(results) == {"G-Greedy", "TopRE"}
        assert all(result.revenue > 0 for result in results.values())
        assert results["G-Greedy"].extras["tag"] == "unit-test"


class TestReporting:
    def test_format_table_alignment_and_floats(self):
        text = format_table(["name", "value"], [["a", 1.2345], ["bb", 2.0]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "1.23" in text
        assert "----" in lines[1]

    def test_format_grouped_bars(self):
        data = {"normal": {"GG": 10.0, "SLG": 8.0}, "power": {"GG": 12.0}}
        text = format_grouped_bars(data, group_label="capacity")
        assert "capacity" in text
        assert "GG" in text and "SLG" in text
        assert "-" in text.splitlines()[-1]  # missing value placeholder

    def test_format_histogram(self):
        text = format_histogram({1: 10, 2: 5, 3: 1}, label="repeats")
        assert "repeats" in text
        assert "#" in text
        assert format_histogram({}, label="repeats") == "(no repeats)"

    def test_format_series_downsamples(self):
        points = [(i, float(i * i)) for i in range(100)]
        text = format_series(points, max_points=10)
        assert len(text.splitlines()) <= 16
        assert "99" in text  # last point always kept
        assert format_series([]) == "(empty series)"


@pytest.fixture(scope="module")
def tiny_pipelines():
    return {
        "amazon": prepare_dataset("amazon", scale="tiny", seed=0),
        "epinions": prepare_dataset("epinions", scale="tiny", seed=0),
    }


class TestTables:
    def test_table1(self, tiny_pipelines):
        result = table1_dataset_statistics(
            tiny_pipelines,
            synthetic_config=SyntheticConfig(num_users=50, num_items=30,
                                             candidates_per_user=10, seed=0),
        )
        assert "amazon" in result.text
        assert "synthetic" in result.text
        assert len(result.data["rows"]) == 3

    def test_table2(self, tiny_pipelines):
        result = table2_running_times(
            {"amazon": tiny_pipelines["amazon"]}, rl_permutations=2
        )
        times = result.data["amazon"]
        assert set(times) == {"G-Greedy", "GlobalNo", "RL-Greedy", "SL-Greedy",
                              "TopRE", "TopRA"}
        assert all(value >= 0 for value in times.values())
        # Baselines are much cheaper than the greedy algorithms.
        assert times["TopRE"] <= times["G-Greedy"]


class TestFigures:
    def test_figure1_structure_and_ordering(self, tiny_pipelines):
        result = figure1_revenue_by_capacity_distribution(
            {"amazon": tiny_pipelines["amazon"]},
            capacity_distributions=("normal",),
            rl_permutations=2,
        )
        revenues = result.data["amazon"]["normal"]
        assert revenues["G-Greedy"] >= revenues["TopRE"]
        assert revenues["G-Greedy"] >= revenues["TopRA"]
        assert "G-Greedy" in result.text

    def test_figure2_saturation_settings(self, tiny_pipelines):
        result = figure2_revenue_by_saturation(
            {"amazon": tiny_pipelines["amazon"]},
            betas=(0.1, 0.9),
            capacity_distributions=("normal",),
            rl_permutations=2,
        )
        block = result.data["amazon/normal"]
        assert set(block) == {"beta=0.1", "beta=0.9"}
        for revenues in block.values():
            assert revenues["G-Greedy"] >= revenues["TopRA"]

    def test_figure3_uses_singleton_classes(self, tiny_pipelines):
        result = figure3_revenue_by_saturation_singleton(
            {"amazon": tiny_pipelines["amazon"]},
            betas=(0.5,),
            capacity_distributions=("normal",),
            rl_permutations=2,
        )
        assert result.name == "Figure 3"
        assert "singleton" in result.description

    def test_figure4_growth_curves(self, tiny_pipelines):
        result = figure4_revenue_growth_curves(tiny_pipelines["amazon"],
                                               rl_permutations=2)
        curves = result.data["curves"]
        assert set(curves) == {"G-Greedy", "SL-Greedy", "RL-Greedy"}
        for curve in curves.values():
            revenues = [revenue for _, revenue in curve]
            assert revenues == sorted(revenues)

    def test_figure5_histograms(self, tiny_pipelines):
        result = figure5_repeat_histograms(tiny_pipelines["amazon"], betas=(0.1, 0.9))
        histograms = result.data["histograms"]
        assert set(histograms) == {0.1, 0.9}
        for counts in histograms.values():
            assert sum(counts.values()) > 0
        # Stronger saturation (0.1) should push mass toward fewer repeats:
        # compare the share of single recommendations.
        def single_share(counts):
            total = sum(counts.values())
            return counts.get(1, 0) / total

        assert single_share(histograms[0.1]) >= single_share(histograms[0.9]) - 0.05

    def test_figure6_scalability_points(self):
        config = SyntheticConfig(num_items=30, num_classes=5, candidates_per_user=5,
                                 horizon=3, seed=0)
        result = figure6_scalability(user_counts=(20, 40), base_config=config)
        points = result.data["points"]
        assert len(points) == 2
        assert points[0][0] < points[1][0]
        assert all(runtime >= 0 for _, runtime in points)

    def test_figure7_incomplete_prices(self, tiny_pipelines):
        result = figure7_incomplete_prices(
            {"amazon": tiny_pipelines["amazon"]},
            cutoffs=(2,),
            capacity_distributions=("normal",),
            rl_permutations=2,
        )
        revenues = result.data["amazon/normal"]
        assert {"GG", "GG_2", "SLG", "RLG", "RLG_2"} <= set(revenues)
        # Losing look-ahead should not help (allow heuristic slack).
        assert revenues["GG_2"] <= revenues["GG"] * 1.05

    def test_extension_random_prices(self):
        result = extension_random_prices(num_users=6, num_items=4, horizon=3,
                                         num_mc_samples=2000, seed=0)
        data = result.data
        assert data["strategy_size"] > 0
        # With enough Monte-Carlo samples the second-order Taylor estimate is
        # closer to the ground truth than the naive mean-price estimate.
        assert data["taylor_abs_error"] <= data["mean_abs_error"] + 1e-6

    def test_theory_small_instances(self):
        result = theory_small_instances(seed=0)
        data = result.data
        assert data["t1_exact_revenue"] >= data["t1_greedy_revenue"] - 1e-9
        assert data["t3_local_search_revenue"] >= 0
        assert "Exact Max-DCS" in result.text


class TestDegradedParallelRecording:
    """Satellite of the auto-parallelism work: explicit losing requests are
    overridden with one warning and surface ``degraded`` in records."""

    def test_explicit_losing_request_recorded(self, tiny_amazon_pipeline):
        import os
        import warnings

        from repro.experiments.harness import experiment_records

        instance = tiny_amazon_pipeline.instance
        if (os.cpu_count() or 1) < 2:
            with pytest.warns(RuntimeWarning, match="cannot win on 1 core"):
                suite = standard_algorithms(rl_permutations=2,
                                            gg_shards=2, rl_jobs=2)
            records = experiment_records(
                run_algorithms(instance, suite), {"scale": "tiny"}
            )
            by_name = {record.algorithm: record for record in records}
            for name in ("G-Greedy", "GlobalNo", "RL-Greedy"):
                assert by_name[name].settings["degraded"] is True
                parallel = by_name[name].settings["parallel"]
                assert parallel["degraded"] is True
                assert parallel["effective"] is None
                assert parallel["cost_model"]["cpu_count"] == 1
            # Untouched algorithms carry no degraded marker.
            assert "degraded" not in by_name["SL-Greedy"].settings
        else:
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                suite = standard_algorithms(rl_permutations=2,
                                            gg_shards=2, rl_jobs=2)
            records = experiment_records(run_algorithms(instance, suite))
            assert all("degraded" not in record.settings
                       for record in records)

    def test_auto_requests_never_warn_or_degrade(self, tiny_amazon_pipeline):
        import warnings

        from repro.experiments.harness import experiment_records

        instance = tiny_amazon_pipeline.instance
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            suite = standard_algorithms(rl_permutations=2,
                                        gg_shards="auto", rl_jobs="auto")
        serial = run_algorithms(
            instance, standard_algorithms(rl_permutations=2)
        )
        auto = run_algorithms(instance, suite)
        for name in serial:
            assert auto[name].revenue == serial[name].revenue
            assert (auto[name].strategy.triples()
                    == serial[name].strategy.triples())
        assert all("degraded" not in record.settings
                   for record in experiment_records(auto))
