"""Tests for the generic non-monotone submodular local search (Lee et al.)."""

from __future__ import annotations

import itertools

import pytest

from repro.matroid.local_search import (
    local_search_matroid,
    non_monotone_local_search,
)
from repro.matroid.matroid import UniformMatroid
from repro.matroid.partition import PartitionMatroid
from repro.matroid.submodular import MemoizedSetFunction


def _brute_force_optimum(objective, matroid, ground):
    best_value, best_set = 0.0, frozenset()
    for size in range(len(ground) + 1):
        for combo in itertools.combinations(ground, size):
            if not matroid.is_independent(combo):
                continue
            value = objective(frozenset(combo))
            if value > best_value:
                best_value, best_set = value, frozenset(combo)
    return best_value, best_set


class TestMemoizedSetFunction:
    def test_caches_evaluations(self):
        calls = []

        def raw(subset):
            calls.append(frozenset(subset))
            return float(len(subset))

        wrapped = MemoizedSetFunction(raw)
        assert wrapped({1, 2}) == 2.0
        assert wrapped({2, 1}) == 2.0
        assert wrapped.evaluations == 1
        assert wrapped.marginal({1, 2}, 3) == 1.0

    def test_marginal(self):
        wrapped = MemoizedSetFunction(lambda s: float(sum(s)))
        assert wrapped.marginal({1}, 4) == 4.0


class TestLocalSearchOnModularFunctions:
    def test_picks_best_elements_under_cardinality(self):
        weights = {0: 5.0, 1: 1.0, 2: 3.0, 3: 4.0}

        def objective(subset):
            return sum(weights[x] for x in subset)

        matroid = UniformMatroid(weights, rank=2)
        result = non_monotone_local_search(objective, matroid, epsilon=0.1)
        assert result.solution == frozenset({0, 3})
        assert result.value == pytest.approx(9.0)

    def test_negative_elements_excluded(self):
        weights = {0: 5.0, 1: -2.0, 2: 1.0}

        def objective(subset):
            return sum(weights[x] for x in subset)

        matroid = UniformMatroid(weights, rank=3)
        result = non_monotone_local_search(objective, matroid, epsilon=0.1)
        assert 1 not in result.solution
        assert result.value == pytest.approx(6.0)

    def test_empty_ground_set(self):
        matroid = UniformMatroid([], rank=2)
        result = local_search_matroid(lambda s: float(len(s)), matroid)
        assert result.solution == frozenset()
        assert result.value == 0.0

    def test_invalid_epsilon_rejected(self):
        matroid = UniformMatroid(range(3), rank=1)
        with pytest.raises(ValueError):
            local_search_matroid(lambda s: 1.0, matroid, epsilon=0.0)


class TestLocalSearchOnSubmodularFunctions:
    def test_coverage_under_partition_matroid_reaches_good_fraction(self):
        universe_sets = {
            0: {1, 2, 3}, 1: {3, 4}, 2: {5, 6, 7, 8}, 3: {1, 8}, 4: {9}, 5: {2, 9},
        }

        def coverage(subset):
            covered = set()
            for element in subset:
                covered |= universe_sets[element]
            return float(len(covered))

        matroid = PartitionMatroid(
            ground_set=universe_sets,
            block_of=lambda x: x % 2,
            default_capacity=2,
        )
        result = non_monotone_local_search(coverage, matroid, epsilon=0.1)
        optimum, _ = _brute_force_optimum(coverage, matroid, list(universe_sets))
        # The theoretical guarantee is 1/(4+eps); in practice local search does
        # far better on small instances -- require at least half the optimum.
        assert result.value >= 0.5 * optimum
        assert matroid.is_independent(result.solution)

    def test_non_monotone_cut_function(self):
        """Directed-cut-style non-monotone objective: local search must still
        return an independent set with value within the guarantee."""
        edges = [(0, 1, 3.0), (1, 2, 2.0), (2, 0, 4.0), (0, 3, 1.0), (3, 2, 5.0)]
        nodes = [0, 1, 2, 3]

        def cut(subset):
            subset = set(subset)
            return float(sum(w for (a, b, w) in edges
                             if a in subset and b not in subset))

        matroid = UniformMatroid(nodes, rank=2)
        result = non_monotone_local_search(cut, matroid, epsilon=0.1)
        optimum, _ = _brute_force_optimum(cut, matroid, nodes)
        assert result.value >= optimum / 4.1
        assert matroid.is_independent(result.solution)

    def test_result_reports_moves_and_evaluations(self):
        weights = {0: 1.0, 1: 2.0, 2: 3.0}
        matroid = UniformMatroid(weights, rank=2)
        result = non_monotone_local_search(
            lambda s: sum(weights[x] for x in s), matroid, epsilon=0.1
        )
        assert result.moves >= 1
        assert result.evaluations >= 1
