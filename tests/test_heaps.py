"""Tests for the addressable binary heap and the two-level heap."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.heaps.binary_heap import AddressableMaxHeap
from repro.heaps.two_level import TwoLevelHeap


class TestAddressableMaxHeap:
    def test_empty_heap_properties(self):
        heap = AddressableMaxHeap()
        assert len(heap) == 0
        assert not heap
        assert "x" not in heap

    def test_peek_empty_raises(self):
        with pytest.raises(IndexError):
            AddressableMaxHeap().peek()

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            AddressableMaxHeap().pop()

    def test_insert_and_peek(self):
        heap = AddressableMaxHeap()
        heap.insert("a", 1.0)
        heap.insert("b", 3.0)
        heap.insert("c", 2.0)
        assert heap.peek() == ("b", 3.0)
        assert len(heap) == 3

    def test_duplicate_insert_raises(self):
        heap = AddressableMaxHeap()
        heap.insert("a", 1.0)
        with pytest.raises(KeyError):
            heap.insert("a", 2.0)

    def test_pop_returns_descending_order(self):
        heap = AddressableMaxHeap()
        values = [5.0, 1.0, 9.0, 3.0, 7.0]
        for index, value in enumerate(values):
            heap.insert(f"k{index}", value)
        popped = [heap.pop()[1] for _ in range(len(values))]
        assert popped == sorted(values, reverse=True)

    def test_update_increase(self):
        heap = AddressableMaxHeap()
        heap.insert("a", 1.0)
        heap.insert("b", 2.0)
        heap.update("a", 10.0)
        assert heap.peek() == ("a", 10.0)

    def test_update_decrease(self):
        heap = AddressableMaxHeap()
        heap.insert("a", 10.0)
        heap.insert("b", 2.0)
        heap.update("a", 1.0)
        assert heap.peek() == ("b", 2.0)

    def test_push_inserts_or_updates(self):
        heap = AddressableMaxHeap()
        heap.push("a", 1.0)
        heap.push("a", 5.0)
        assert len(heap) == 1
        assert heap.priority("a") == 5.0

    def test_delete_returns_priority(self):
        heap = AddressableMaxHeap()
        heap.insert("a", 4.0)
        heap.insert("b", 2.0)
        assert heap.delete("a") == 4.0
        assert "a" not in heap
        assert heap.peek() == ("b", 2.0)

    def test_delete_missing_raises(self):
        with pytest.raises(KeyError):
            AddressableMaxHeap().delete("missing")

    def test_discard_missing_is_noop(self):
        heap = AddressableMaxHeap()
        heap.discard("missing")
        assert len(heap) == 0

    def test_get_with_default(self):
        heap = AddressableMaxHeap()
        heap.insert("a", 1.5)
        assert heap.get("a") == 1.5
        assert heap.get("missing") is None
        assert heap.get("missing", -1.0) == -1.0

    def test_tie_break_is_insertion_order(self):
        heap = AddressableMaxHeap()
        heap.insert("first", 1.0)
        heap.insert("second", 1.0)
        assert heap.pop()[0] == "first"
        assert heap.pop()[0] == "second"

    def test_clear(self):
        heap = AddressableMaxHeap()
        heap.insert("a", 1.0)
        heap.clear()
        assert len(heap) == 0
        assert "a" not in heap

    def test_items_and_keys(self):
        heap = AddressableMaxHeap()
        heap.insert("a", 1.0)
        heap.insert("b", 2.0)
        assert sorted(heap.keys()) == ["a", "b"]
        assert sorted(heap.items()) == [("a", 1.0), ("b", 2.0)]

    def test_random_mixed_operations_match_reference(self):
        rng = random.Random(7)
        heap = AddressableMaxHeap()
        reference = {}
        for step in range(500):
            action = rng.random()
            if action < 0.5 or not reference:
                key = f"key{step}"
                priority = rng.uniform(-100, 100)
                heap.insert(key, priority)
                reference[key] = priority
            elif action < 0.75:
                key = rng.choice(list(reference))
                priority = rng.uniform(-100, 100)
                heap.update(key, priority)
                reference[key] = priority
            else:
                key = rng.choice(list(reference))
                heap.delete(key)
                del reference[key]
            heap.check_invariants()
            if reference:
                best_key, best_priority = heap.peek()
                assert best_priority == max(reference.values())
                assert reference[best_key] == best_priority

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_property_heap_sort_matches_sorted(self, values):
        heap = AddressableMaxHeap()
        for index, value in enumerate(values):
            heap.insert(index, value)
        drained = [heap.pop()[1] for _ in range(len(values))]
        assert drained == sorted(values, reverse=True)

    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=20),
                      st.floats(min_value=-100, max_value=100, allow_nan=False)),
            min_size=1, max_size=50,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_property_push_keeps_max_consistent(self, operations):
        heap = AddressableMaxHeap()
        reference = {}
        for key, priority in operations:
            heap.push(key, priority)
            reference[key] = priority
            heap.check_invariants()
            _, best = heap.peek()
            assert best == pytest.approx(max(reference.values()))


class TestTwoLevelHeap:
    def test_empty(self):
        heap = TwoLevelHeap()
        assert len(heap) == 0
        assert not heap
        with pytest.raises(IndexError):
            heap.peek()

    def test_insert_and_global_peek(self):
        heap = TwoLevelHeap()
        heap.insert("g1", "a", 1.0)
        heap.insert("g1", "b", 5.0)
        heap.insert("g2", "c", 3.0)
        assert heap.peek() == ("b", 5.0)
        assert heap.group_count == 2

    def test_duplicate_key_raises(self):
        heap = TwoLevelHeap()
        heap.insert("g1", "a", 1.0)
        with pytest.raises(KeyError):
            heap.insert("g2", "a", 2.0)

    def test_pop_across_groups(self):
        heap = TwoLevelHeap()
        heap.insert("g1", "a", 1.0)
        heap.insert("g2", "b", 9.0)
        heap.insert("g3", "c", 5.0)
        assert [heap.pop()[0] for _ in range(3)] == ["b", "c", "a"]
        assert len(heap) == 0
        assert heap.group_count == 0

    def test_update_moves_group_root(self):
        heap = TwoLevelHeap()
        heap.insert("g1", "a", 1.0)
        heap.insert("g2", "b", 2.0)
        heap.update("a", 10.0)
        assert heap.peek() == ("a", 10.0)
        heap.update("a", 0.5)
        assert heap.peek() == ("b", 2.0)

    def test_delete_last_entry_removes_group(self):
        heap = TwoLevelHeap()
        heap.insert("g1", "a", 1.0)
        heap.delete("a")
        assert heap.group_count == 0
        assert "a" not in heap

    def test_delete_group(self):
        heap = TwoLevelHeap()
        heap.insert("g1", "a", 1.0)
        heap.insert("g1", "b", 2.0)
        heap.insert("g2", "c", 3.0)
        heap.delete_group("g1")
        assert len(heap) == 1
        assert heap.peek() == ("c", 3.0)

    def test_group_membership_queries(self):
        heap = TwoLevelHeap()
        heap.insert("g1", "a", 1.0)
        heap.insert("g1", "b", 2.0)
        assert set(heap.group_keys("g1")) == {"a", "b"}
        assert heap.group_of("a") == "g1"
        assert heap.group_keys("missing") == []

    def test_priority_lookup(self):
        heap = TwoLevelHeap()
        heap.insert("g", "a", 4.0)
        assert heap.priority("a") == 4.0

    def test_items_iterates_everything(self):
        heap = TwoLevelHeap()
        heap.insert("g1", "a", 1.0)
        heap.insert("g2", "b", 2.0)
        assert sorted(heap.items()) == [("a", 1.0), ("b", 2.0)]

    def test_random_operations_match_flat_reference(self):
        rng = random.Random(11)
        heap = TwoLevelHeap()
        reference = {}
        for step in range(400):
            action = rng.random()
            if action < 0.5 or not reference:
                key = f"k{step}"
                group = f"g{rng.randint(0, 10)}"
                priority = rng.uniform(-50, 50)
                heap.insert(group, key, priority)
                reference[key] = priority
            elif action < 0.75:
                key = rng.choice(list(reference))
                priority = rng.uniform(-50, 50)
                heap.update(key, priority)
                reference[key] = priority
            else:
                key = rng.choice(list(reference))
                heap.delete(key)
                del reference[key]
            heap.check_invariants()
            if reference:
                _, best = heap.peek()
                assert best == pytest.approx(max(reference.values()))

    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=5),
                      st.floats(min_value=-100, max_value=100, allow_nan=False)),
            min_size=1, max_size=40,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_property_two_level_equals_flat(self, entries):
        """The two-level heap must order entries exactly like a flat heap."""
        two_level = TwoLevelHeap()
        flat = AddressableMaxHeap()
        for index, (group, priority) in enumerate(entries):
            two_level.insert(group, index, priority)
            flat.insert(index, priority)
        drained_two_level = [two_level.pop()[1] for _ in range(len(entries))]
        drained_flat = [flat.pop()[1] for _ in range(len(entries))]
        assert drained_two_level == drained_flat
