"""Golden regression fixtures: canonical instances with frozen solutions.

``tests/golden/`` holds three small instances (serialized JSON, so they
are independent of the generators staying bit-stable) and the expected
strategy, revenue and growth curve of each solver on each of them.  The
test re-solves every (instance, solver) pair and fails with a **readable
triple-level diff** when anything drifts -- which turns "some refactor
silently changed what G-Greedy picks" from a benchmarking surprise into a
red unit test naming the exact triples that moved.

Drift that is *intentional* (an algorithm fix that changes solutions) is
recorded by regenerating the fixtures::

    PYTHONPATH=src python tests/golden/regenerate.py

and committing the result together with an explanation.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List

import pytest

from repro import io as repro_io
from repro.algorithms.baselines import TopRevenueBaseline
from repro.algorithms.global_greedy import GlobalGreedy, GlobalGreedyNoSaturation
from repro.algorithms.local_greedy import SequentialLocalGreedy

GOLDEN_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          "golden")

#: The frozen instances (see ``tests/golden/regenerate.py``).
GOLDEN_INSTANCES = ("golden-paper-like", "golden-dense",
                    "golden-tight-capacity")

#: Revenue / growth-curve tolerance: loose enough to ignore last-bit noise
#: from e.g. a NumPy upgrade changing reduction order, tight enough that
#: any behavioural change (a different triple, a different admission
#: order) blows straight through it.
REL_TOLERANCE = 1e-9


def instance_path(name: str) -> str:
    return os.path.join(GOLDEN_DIR, f"{name}.instance.json")


def expected_path(name: str) -> str:
    return os.path.join(GOLDEN_DIR, f"{name}.expected.json")


def _solvers():
    """The solver configurations frozen by the fixtures."""
    return {
        "g-greedy": GlobalGreedy(backend="numpy"),
        "g-greedy-object-path": GlobalGreedy(backend="numpy",
                                             use_compiled=False),
        "global-no": GlobalGreedyNoSaturation(backend="numpy"),
        "sl-greedy": SequentialLocalGreedy(backend="numpy"),
        "top-re": TopRevenueBaseline(),
    }


def solver_signatures(instance) -> Dict[str, Dict]:
    """Solve ``instance`` with every frozen solver; JSON-ready signatures."""
    signatures = {}
    for key, algorithm in _solvers().items():
        result = algorithm.run(instance)
        signatures[key] = {
            "triples": [[z.user, z.item, z.t]
                        for z in result.strategy.sorted_triples()],
            "revenue": float(result.revenue),
            "growth_curve": [[int(size), float(revenue)]
                             for size, revenue in result.growth_curve],
        }
    return signatures


def _format_triples(rows: List[List[int]]) -> str:
    return "\n".join(f"    (u{user}, i{item}, t{t})"
                     for user, item, t in rows) or "    (none)"


def _diff_message(instance_name: str, solver: str, expected: Dict,
                  actual: Dict) -> List[str]:
    """Human-readable description of a golden drift (empty if none)."""
    problems: List[str] = []
    expected_triples = [tuple(row) for row in expected["triples"]]
    actual_triples = [tuple(row) for row in actual["triples"]]
    if expected_triples != actual_triples:
        missing = sorted(set(expected_triples) - set(actual_triples))
        extra = sorted(set(actual_triples) - set(expected_triples))
        lines = [f"strategy drift ({len(expected_triples)} expected "
                 f"triples, {len(actual_triples)} produced):"]
        if missing:
            lines.append("  expected but not produced:")
            lines.append(_format_triples([list(row) for row in missing]))
        if extra:
            lines.append("  produced but not expected:")
            lines.append(_format_triples([list(row) for row in extra]))
        if not missing and not extra:
            lines.append("  same triples, different presentation order "
                         "(sorted_triples changed?)")
        problems.append("\n".join(lines))
    if actual["revenue"] != pytest.approx(expected["revenue"],
                                          rel=REL_TOLERANCE):
        problems.append(
            f"revenue drift: expected {expected['revenue']!r}, "
            f"got {actual['revenue']!r}"
        )
    expected_curve = expected["growth_curve"]
    actual_curve = actual["growth_curve"]
    if len(expected_curve) != len(actual_curve):
        problems.append(
            f"growth-curve length drift: expected {len(expected_curve)} "
            f"checkpoints, got {len(actual_curve)}"
        )
    else:
        for index, ((exp_size, exp_rev), (act_size, act_rev)) in enumerate(
            zip(expected_curve, actual_curve)
        ):
            if exp_size != act_size or act_rev != pytest.approx(
                exp_rev, rel=REL_TOLERANCE
            ):
                problems.append(
                    f"growth-curve drift at checkpoint {index}: expected "
                    f"({exp_size}, {exp_rev!r}), got ({act_size}, {act_rev!r})"
                )
                break
    if problems:
        header = (f"golden drift for instance {instance_name!r}, solver "
                  f"{solver!r} -- if intentional, regenerate with "
                  f"`PYTHONPATH=src python tests/golden/regenerate.py` "
                  f"and commit the diff:")
        return [header] + problems
    return []


@pytest.mark.parametrize("name", GOLDEN_INSTANCES)
def test_golden_instances(name):
    instance = repro_io.load_instance(instance_path(name))
    with open(expected_path(name), "r", encoding="utf-8") as fh:
        expected = json.load(fh)
    actual = solver_signatures(instance)
    assert set(actual) == set(expected["solvers"]), (
        "solver set drifted; regenerate the golden fixtures"
    )
    failures: List[str] = []
    for solver in sorted(expected["solvers"]):
        failures.extend(_diff_message(name, solver,
                                      expected["solvers"][solver],
                                      actual[solver]))
    assert not failures, "\n\n".join(failures)
