"""Tests for the auto-parallelism cost model (:mod:`repro.autotune`).

The decisions are pure functions of a :class:`ParallelCostModel`, so every
scenario here injects synthetic calibrations -- a fat 8-core box with
cheap spawns, a 1-core laptop -- instead of probing the machine; only the
calibration round-trip itself touches the real probes.
"""

from __future__ import annotations

import warnings

import pytest

from repro import autotune
from repro.autotune import (
    AUTO,
    MIN_PREDICTED_SPEEDUP,
    ParallelCostModel,
    cost_model,
    decide_jobs,
    decide_shards,
    override_losing_request,
    reset_cost_model,
    warn_if_losing,
)

#: An 8-core machine where spawning is cheap relative to the work: a
#: 4M-pair seeding sweep costs 0.4s serial vs ~0.05s + 8*1ms sharded.
FAT_BOX = ParallelCostModel(cpu_count=8, spawn_overhead_seconds=0.001,
                            per_pair_seconds=1e-7)

#: A single-core machine: concurrency is 1, so sharding can never win.
LAPTOP = ParallelCostModel(cpu_count=1, spawn_overhead_seconds=0.0,
                           per_pair_seconds=1e-7)

#: Many cores but outrageous spawn cost relative to tiny instances.
SLOW_SPAWN = ParallelCostModel(cpu_count=8, spawn_overhead_seconds=1.0,
                               per_pair_seconds=1e-7)


class TestCostModel:
    def test_predicted_speedup_shape(self):
        # 4M pairs on the fat box: near-linear until spawn overhead bites.
        big = FAT_BOX.predicted_shard_speedup(4_000_000, 8)
        small = FAT_BOX.predicted_shard_speedup(1_000, 8)
        assert big > MIN_PREDICTED_SPEEDUP
        assert small < 1.0
        assert FAT_BOX.predicted_shard_speedup(4_000_000, 4) > 1.0

    def test_single_core_never_wins(self):
        assert LAPTOP.predicted_shard_speedup(10**9, 4) <= 1.0

    def test_as_dict_round_trip(self):
        record = FAT_BOX.as_dict()
        assert record == {
            "cpu_count": 8,
            "spawn_overhead_seconds": 0.001,
            "per_pair_seconds": 1e-7,
        }

    def test_calibration_is_cached_and_resettable(self):
        reset_cost_model()
        try:
            first = cost_model()
            assert cost_model() is first
            assert first.per_pair_seconds > 0.0
            assert first.cpu_count >= 1
            refreshed = cost_model(refresh=True)
            assert refreshed is not first
        finally:
            reset_cost_model()


class TestDecideShards:
    def test_auto_wins_on_fat_box(self):
        decision = decide_shards(4_000_000, AUTO, model=FAT_BOX)
        assert decision.effective == 0  # per-core sharding
        assert decision.parallel
        assert not decision.degraded
        assert decision.predicted_speedup >= MIN_PREDICTED_SPEEDUP

    def test_auto_degrades_on_single_core(self):
        decision = decide_shards(4_000_000, AUTO, model=LAPTOP)
        assert decision.effective is None
        assert not decision.parallel
        assert not decision.degraded  # auto losing is the intended outcome
        assert "serial" in decision.reason

    def test_auto_degrades_on_tiny_instances(self):
        decision = decide_shards(1_000, AUTO, model=FAT_BOX)
        assert decision.effective is None
        assert not decision.parallel

    def test_explicit_request_honoured_but_flagged(self):
        decision = decide_shards(1_000, 4, model=SLOW_SPAWN)
        assert decision.effective == 4  # honoured: ablations must force it
        assert decision.degraded
        warned = pytest.warns(RuntimeWarning, match="shards='auto' would")
        with warned:
            warn_if_losing(decision, "test harness")

    def test_explicit_winning_request_not_flagged(self):
        decision = decide_shards(4_000_000, 8, model=FAT_BOX)
        assert decision.effective == 8
        assert not decision.degraded
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            warn_if_losing(decision, "test harness")

    def test_serial_requests_pass_through(self):
        assert decide_shards(10, None, model=FAT_BOX).effective is None
        assert decide_shards(10, 1, model=FAT_BOX).effective == 1

    def test_as_dict_carries_calibration(self):
        record = decide_shards(4_000_000, AUTO, model=FAT_BOX).as_dict()
        assert record["kind"] == "shards"
        assert record["requested"] == AUTO
        assert record["cost_model"] == FAT_BOX.as_dict()
        assert set(record) >= {"effective", "parallel", "predicted_speedup",
                               "degraded", "reason"}


class TestDecideJobs:
    def test_auto_scales_to_tasks_and_cores(self):
        decision = decide_jobs(3, AUTO, model=FAT_BOX)
        assert decision.effective == 3
        decision = decide_jobs(50, AUTO, model=FAT_BOX)
        assert decision.effective == 8

    def test_auto_degrades_on_single_core_or_single_task(self):
        assert decide_jobs(50, AUTO, model=LAPTOP).effective is None
        assert decide_jobs(1, AUTO, model=FAT_BOX).effective is None

    def test_explicit_request_honoured_but_flagged(self):
        decision = decide_jobs(4, 4, model=LAPTOP)
        assert decision.effective == 4
        assert decision.degraded


class TestOverrideLosingRequest:
    def test_auto_and_serial_pass_through_untouched(self):
        for requested in (AUTO, None, 1):
            effective, decision = override_losing_request("shards", requested)
            assert effective == requested
            assert decision is None

    def test_explicit_request_on_real_machine(self):
        # On a single-core box the request is overridden with one warning
        # and a degraded decision; on a multi-core box it passes through.
        reset_cost_model()
        try:
            cores = cost_model().cpu_count
            if cores < 2:
                with pytest.warns(RuntimeWarning,
                                  match="cannot win on 1 core"):
                    effective, decision = override_losing_request("shards", 4)
                assert effective is None
                assert decision is not None
                assert decision.degraded
                assert decision.as_dict()["cost_model"]["cpu_count"] == cores
            else:
                with warnings.catch_warnings():
                    warnings.simplefilter("error")
                    effective, decision = override_losing_request("shards", 4)
                assert effective == 4
                assert decision is None
        finally:
            reset_cost_model()


class TestSelectorAutoIntegration:
    def test_selector_auto_records_decision(self, tiny_amazon_pipeline):
        from repro.core.constraints import ConstraintChecker
        from repro.core.revenue import RevenueModel
        from repro.core.selection import SEED_ISOLATED, LazyGreedySelector
        from repro.core.strategy import Strategy

        instance = tiny_amazon_pipeline.instance
        model = RevenueModel(instance, backend="numpy")
        auto = LazyGreedySelector(
            instance, model, ConstraintChecker(instance),
            seed_priorities=SEED_ISOLATED, shards="auto", jobs="auto",
        )
        strategy = Strategy(instance.catalog)
        auto.select(strategy, None)

        serial_model = RevenueModel(instance, backend="numpy")
        serial = LazyGreedySelector(
            instance, serial_model, ConstraintChecker(instance),
            seed_priorities=SEED_ISOLATED,
        )
        reference = Strategy(instance.catalog)
        serial.select(reference, None)

        assert strategy.triples() == reference.triples()
        decision = auto.last_parallel_decision
        assert decision is not None
        assert decision.kind == "shards"
        assert decision.requested == AUTO
        record = decision.as_dict()
        assert record["cost_model"]["cpu_count"] >= 1

    def test_global_greedy_auto_surfaces_extras(self, tiny_amazon_pipeline):
        from repro.algorithms.global_greedy import GlobalGreedy

        instance = tiny_amazon_pipeline.instance
        auto = GlobalGreedy(backend="numpy", shards="auto", jobs="auto")
        reference = GlobalGreedy(backend="numpy")
        assert (auto.build_strategy(instance).triples()
                == reference.build_strategy(instance).triples())
        parallel = auto.last_extras["parallel"]
        assert parallel["kind"] == "shards"
        assert parallel["requested"] == AUTO

    def test_autotune_module_is_lazy_for_serial_solves(self, monkeypatch):
        # A plain serial selector must never probe the machine.
        import sys

        from repro.core.constraints import ConstraintChecker
        from repro.core.revenue import RevenueModel
        from repro.core.selection import SEED_ISOLATED, LazyGreedySelector
        from repro.core.strategy import Strategy
        from repro.datasets.synthetic import (
            SyntheticConfig,
            generate_synthetic_columnar,
        )

        instance = generate_synthetic_columnar(SyntheticConfig(
            num_users=6, num_items=5, num_classes=2, candidates_per_user=3,
            horizon=3, display_limit=1, capacity_fraction=0.5, beta=0.5,
            seed=0,
        ))
        monkeypatch.setattr(autotune, "decide_shards", None)  # would blow up
        model = RevenueModel(instance, backend="numpy")
        selector = LazyGreedySelector(
            instance, model, ConstraintChecker(instance),
            seed_priorities=SEED_ISOLATED,
        )
        selector.select(Strategy(instance.catalog), None)
        assert selector.last_parallel_decision is None
        assert "repro.autotune" in sys.modules  # imported, never invoked
