"""Tests for AdoptionTable and RevMaxInstance."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.entities import ItemCatalog, Triple
from repro.core.problem import AdoptionTable, RevMaxInstance


class TestAdoptionTable:
    def test_requires_positive_horizon(self):
        with pytest.raises(ValueError):
            AdoptionTable(0)

    def test_set_and_get(self):
        table = AdoptionTable(3)
        table.set(0, 1, [0.1, 0.2, 0.3])
        assert table.probability(0, 1, 2) == pytest.approx(0.3)
        assert (0, 1) in table
        assert (0, 2) not in table

    def test_missing_pair_has_zero_probability(self):
        table = AdoptionTable(2)
        assert table.probability(5, 5, 1) == 0.0
        assert table.get(5, 5) is None

    def test_wrong_length_rejected(self):
        table = AdoptionTable(3)
        with pytest.raises(ValueError):
            table.set(0, 0, [0.1, 0.2])

    def test_out_of_range_probability_rejected(self):
        table = AdoptionTable(2)
        with pytest.raises(ValueError):
            table.set(0, 0, [0.5, 1.5])
        with pytest.raises(ValueError):
            table.set(0, 0, [-0.1, 0.5])

    def test_overwrite_does_not_duplicate_user_items(self):
        table = AdoptionTable(2)
        table.set(0, 1, [0.1, 0.2])
        table.set(0, 1, [0.3, 0.4])
        assert table.items_for_user(0) == [1]
        assert table.probability(0, 1, 0) == pytest.approx(0.3)

    def test_positive_triples_enumeration(self):
        table = AdoptionTable(3)
        table.set(0, 0, [0.0, 0.5, 0.0])
        table.set(1, 2, [0.3, 0.0, 0.7])
        triples = set(table.positive_triples())
        assert triples == {Triple(0, 0, 1), Triple(1, 2, 0), Triple(1, 2, 2)}
        assert table.num_positive_triples() == 3

    def test_users_and_pairs(self):
        table = AdoptionTable(1)
        table.set(3, 1, [0.5])
        table.set(4, 2, [0.6])
        assert sorted(table.users()) == [3, 4]
        assert sorted(table.pairs()) == [(3, 1), (4, 2)]


def _make_instance(**overrides):
    defaults = dict(
        prices=np.array([[10.0, 12.0], [20.0, 18.0]]),
        adoption={(0, 0): [0.5, 0.4], (0, 1): [0.2, 0.3], (1, 1): [0.6, 0.1]},
        item_class=[0, 0],
        capacities=2,
        betas=0.5,
        display_limit=1,
        num_users=2,
        name="test-instance",
    )
    defaults.update(overrides)
    return RevMaxInstance.from_dense_adoption(**defaults)


class TestRevMaxInstance:
    def test_basic_accessors(self):
        instance = _make_instance()
        assert instance.num_items == 2
        assert instance.horizon == 2
        assert instance.price(1, 0) == 20.0
        assert instance.capacity(0) == 2
        assert instance.beta(1) == 0.5
        assert instance.class_of(1) == 0
        assert instance.probability(0, 0, 1) == pytest.approx(0.4)

    def test_candidate_triples_and_users(self):
        instance = _make_instance()
        assert instance.num_candidate_triples() == 6
        assert sorted(instance.users()) == [0, 1]
        assert instance.candidate_items(0) == [0, 1]

    def test_expected_isolated_revenue(self):
        instance = _make_instance()
        triple = Triple(0, 0, 0)
        assert instance.expected_isolated_revenue(triple) == pytest.approx(10.0 * 0.5)

    def test_price_shape_validation(self):
        with pytest.raises(ValueError):
            RevMaxInstance(
                num_users=1,
                catalog=ItemCatalog(item_class=[0]),
                horizon=2,
                display_limit=1,
                prices=np.zeros((2, 2)),
                capacities=np.ones(1, dtype=int),
                betas=np.ones(1),
                adoption=AdoptionTable(2),
            )

    def test_negative_price_rejected(self):
        with pytest.raises(ValueError):
            _make_instance(prices=np.array([[-1.0, 2.0], [3.0, 4.0]]))

    def test_beta_range_validated(self):
        with pytest.raises(ValueError):
            _make_instance(betas=1.5)

    def test_nonpositive_display_limit_rejected(self):
        with pytest.raises(ValueError):
            _make_instance(display_limit=0)

    def test_horizon_mismatch_rejected(self):
        table = AdoptionTable(3)
        table.set(0, 0, [0.5, 0.5, 0.5])
        with pytest.raises(ValueError):
            RevMaxInstance(
                num_users=1,
                catalog=ItemCatalog(item_class=[0]),
                horizon=2,
                display_limit=1,
                prices=np.ones((1, 2)),
                capacities=np.ones(1, dtype=int),
                betas=np.ones(1),
                adoption=table,
            )

    def test_with_singleton_classes(self):
        instance = _make_instance()
        singleton = instance.with_singleton_classes()
        assert singleton.catalog.num_classes == 2
        assert instance.catalog.num_classes == 1
        assert singleton.num_candidate_triples() == instance.num_candidate_triples()

    def test_with_betas_scalar_and_array(self):
        instance = _make_instance()
        scalar = instance.with_betas(0.9)
        assert scalar.beta(0) == 0.9
        array = instance.with_betas([0.2, 0.3])
        assert array.beta(1) == pytest.approx(0.3)
        # original untouched
        assert instance.beta(0) == 0.5

    def test_with_capacities(self):
        instance = _make_instance()
        modified = instance.with_capacities(1)
        assert modified.capacity(0) == 1
        assert instance.capacity(0) == 2

    def test_restricted_to_horizon(self):
        instance = _make_instance()
        restricted = instance.restricted_to_horizon([1])
        assert restricted.horizon == 1
        assert restricted.price(0, 0) == pytest.approx(12.0)
        assert restricted.probability(0, 0, 0) == pytest.approx(0.4)

    def test_restricted_to_horizon_requires_contiguity(self):
        instance = _make_instance()
        with pytest.raises(ValueError):
            instance.restricted_to_horizon([0, 2])
        with pytest.raises(ValueError):
            instance.restricted_to_horizon([])
