"""Tests for dataset simulators, capacity/beta samplers and Table-1 statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.entities import ItemCatalog
from repro.datasets.amazon_like import AmazonLikeConfig, generate_amazon_like
from repro.datasets.capacities import (
    CAPACITY_DISTRIBUTIONS,
    sample_betas,
    sample_capacities,
)
from repro.datasets.epinions_like import EpinionsLikeConfig, generate_epinions_like
from repro.datasets.schema import MarketDataset
from repro.datasets.statistics import dataset_statistics, format_table1
from repro.datasets.synthetic import SyntheticConfig, generate_synthetic_instance
from repro.recsys.ratings import RatingsMatrix


class TestMarketDatasetSchema:
    def _ratings(self, num_users=4, num_items=3):
        ratings = RatingsMatrix(num_users, num_items)
        ratings.add(0, 0, 4.0)
        return ratings

    def test_needs_some_price_source(self):
        with pytest.raises(ValueError):
            MarketDataset(
                name="broken",
                ratings=self._ratings(),
                catalog=ItemCatalog.singleton(3),
                horizon=2,
            )

    def test_price_shape_validated(self):
        with pytest.raises(ValueError):
            MarketDataset(
                name="broken",
                ratings=self._ratings(),
                catalog=ItemCatalog.singleton(3),
                horizon=2,
                prices=np.ones((3, 5)),
            )

    def test_catalog_item_count_must_match(self):
        with pytest.raises(ValueError):
            MarketDataset(
                name="broken",
                ratings=self._ratings(num_items=3),
                catalog=ItemCatalog.singleton(4),
                horizon=2,
                prices=np.ones((4, 2)),
            )

    def test_valid_dataset_properties(self):
        dataset = MarketDataset(
            name="ok",
            ratings=self._ratings(),
            catalog=ItemCatalog.singleton(3),
            horizon=2,
            prices=np.ones((3, 2)),
            item_names={0: "kindle"},
        )
        assert dataset.num_users == 4
        assert dataset.num_items == 3
        assert dataset.num_ratings == 1
        assert dataset.has_exact_prices()
        assert dataset.item_name(0) == "kindle"
        assert dataset.item_name(2) == "item-2"


class TestAmazonLikeGenerator:
    def test_shapes_and_structure(self):
        config = AmazonLikeConfig(num_users=80, num_items=40, num_classes=8, seed=1)
        dataset = generate_amazon_like(config)
        assert dataset.num_users == 80
        assert dataset.num_items == 40
        assert dataset.horizon == config.horizon
        assert dataset.prices.shape == (40, 7)
        assert np.all(dataset.prices > 0)
        assert dataset.catalog.num_classes == 8
        assert dataset.reported_prices is None
        assert dataset.num_ratings > 0

    def test_class_sizes_are_skewed(self):
        dataset = generate_amazon_like(AmazonLikeConfig(
            num_users=100, num_items=120, num_classes=12, seed=2
        ))
        sizes = sorted(dataset.catalog.class_sizes().values())
        assert sizes[-1] >= 3 * sizes[0]

    def test_deterministic_given_seed(self):
        a = generate_amazon_like(AmazonLikeConfig(num_users=50, num_items=20, seed=9))
        b = generate_amazon_like(AmazonLikeConfig(num_users=50, num_items=20, seed=9))
        assert np.allclose(a.prices, b.prices)
        assert a.num_ratings == b.num_ratings

    def test_rating_values_in_scale(self):
        dataset = generate_amazon_like(AmazonLikeConfig(num_users=40, num_items=20, seed=3))
        for rating in dataset.ratings:
            assert 1.0 <= rating.value <= 5.0


class TestEpinionsLikeGenerator:
    def test_shapes_and_structure(self):
        config = EpinionsLikeConfig(num_users=70, num_items=30, num_classes=6, seed=1)
        dataset = generate_epinions_like(config)
        assert dataset.num_users == 70
        assert dataset.num_items == 30
        assert dataset.prices is None
        assert dataset.reported_prices
        assert all(len(reports) >= config.min_reports_per_item
                   for reports in dataset.reported_prices.values())

    def test_classes_are_balanced(self):
        dataset = generate_epinions_like(EpinionsLikeConfig(
            num_users=50, num_items=30, num_classes=6, seed=0
        ))
        sizes = list(dataset.catalog.class_sizes().values())
        assert max(sizes) - min(sizes) <= 1

    def test_sparser_than_amazon(self):
        amazon = generate_amazon_like(AmazonLikeConfig(num_users=100, num_items=40, seed=0))
        epinions = generate_epinions_like(EpinionsLikeConfig(num_users=100, num_items=40, seed=0))
        assert epinions.ratings.density() < amazon.ratings.density()


class TestSyntheticGenerator:
    def test_instance_structure(self):
        config = SyntheticConfig(num_users=50, num_items=30, num_classes=5,
                                 candidates_per_user=10, seed=0)
        instance = generate_synthetic_instance(config)
        assert instance.num_users == 50
        assert instance.num_items == 30
        assert instance.horizon == config.horizon
        assert instance.num_candidate_triples() == 50 * 10 * config.horizon
        assert instance.display_limit == config.display_limit

    def test_prices_in_declared_range(self):
        config = SyntheticConfig(num_users=20, num_items=10, candidates_per_user=5,
                                 price_low=10.0, price_high=500.0, seed=1)
        instance = generate_synthetic_instance(config)
        assert np.all(instance.prices >= 10.0)
        assert np.all(instance.prices <= 2 * 500.0)

    def test_anti_monotone_price_probability_matching(self):
        """Within each (user, item) pair, cheaper time steps get larger q."""
        config = SyntheticConfig(num_users=10, num_items=8, candidates_per_user=4, seed=2)
        instance = generate_synthetic_instance(config)
        checked = 0
        for user, item in list(instance.adoption.pairs())[:20]:
            prices = instance.prices[item]
            probabilities = instance.adoption.get(user, item)
            order_by_price = np.argsort(prices)
            sorted_probabilities = probabilities[order_by_price]
            assert np.all(np.diff(sorted_probabilities) <= 1e-12)
            checked += 1
        assert checked > 0

    def test_too_many_candidates_rejected(self):
        with pytest.raises(ValueError):
            generate_synthetic_instance(SyntheticConfig(num_items=5, candidates_per_user=10))


class TestCapacityAndBetaSamplers:
    def test_all_distributions_produce_valid_capacities(self):
        for distribution in CAPACITY_DISTRIBUTIONS:
            capacities = sample_capacities(
                50, 1000, distribution=distribution, mean_fraction=0.2, seed=0
            )
            assert capacities.shape == (50,)
            assert capacities.dtype.kind == "i"
            assert np.all(capacities >= 1)

    def test_mean_fraction_respected(self):
        capacities = sample_capacities(200, 1000, distribution="normal",
                                       mean_fraction=0.3, seed=1)
        assert np.mean(capacities) == pytest.approx(300, rel=0.15)

    def test_unknown_distribution_rejected(self):
        with pytest.raises(ValueError):
            sample_capacities(10, 100, distribution="cauchy")

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            sample_capacities(0, 100)
        with pytest.raises(ValueError):
            sample_capacities(10, 100, mean_fraction=0.0)

    def test_power_law_is_heavy_tailed(self):
        capacities = sample_capacities(500, 10_000, distribution="power", seed=0)
        assert capacities.max() > 3 * np.median(capacities)

    def test_uniform_betas_in_range(self):
        betas = sample_betas(100, mode="uniform", seed=0)
        assert betas.shape == (100,)
        assert np.all((betas >= 0.0) & (betas <= 1.0))

    def test_fixed_betas(self):
        betas = sample_betas(10, mode="fixed", value=0.3)
        assert np.all(betas == 0.3)

    def test_fixed_mode_requires_valid_value(self):
        with pytest.raises(ValueError):
            sample_betas(10, mode="fixed")
        with pytest.raises(ValueError):
            sample_betas(10, mode="fixed", value=1.5)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            sample_betas(10, mode="gamma")


class TestStatistics:
    def test_dataset_statistics_fields(self, tiny_amazon_pipeline):
        stats = dataset_statistics(tiny_amazon_pipeline.instance, name="amazon-tiny")
        assert stats.name == "amazon-tiny"
        assert stats.num_users > 0
        assert stats.num_items > 0
        assert stats.num_positive_triples > 0
        assert stats.largest_class >= stats.median_class >= stats.smallest_class

    def test_format_table1_contains_all_rows(self, tiny_amazon_pipeline):
        stats = dataset_statistics(tiny_amazon_pipeline.instance, name="amazon-tiny")
        text = format_table1([stats])
        assert "#Users" in text
        assert "#Triples with positive q" in text
        assert "amazon-tiny" in text
        assert "Median class size" in text
