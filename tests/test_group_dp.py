"""Tests for per-group exact optimization and the group-decomposition bound."""

from __future__ import annotations

import itertools

import pytest

from repro.algorithms.baselines import TopRevenueBaseline
from repro.algorithms.global_greedy import GlobalGreedy
from repro.algorithms.group_dp import (
    GroupDecompositionBound,
    optimal_group_plan,
)
from repro.algorithms.local_greedy import SequentialLocalGreedy
from repro.core.entities import Triple
from repro.core.revenue import RevenueModel, group_revenue
from repro.core.strategy import Strategy

from tests.conftest import build_random_instance


class TestOptimalGroupPlan:
    def test_paper_example_group_optimum(self, paper_example_instance):
        """On the Theorem-2 instance the optimal single-group plan is {(u,i,2)}."""
        subset, value = optimal_group_plan(paper_example_instance, user=0, class_id=0)
        assert subset == [Triple(0, 0, 1)]
        assert value == pytest.approx(0.57)

    def test_empty_group(self, small_instance):
        subset, value = optimal_group_plan(small_instance, user=0, class_id=999)
        assert subset == []
        assert value == 0.0

    def test_oversized_group_rejected(self, small_instance):
        user = small_instance.users()[0]
        class_id = small_instance.class_of(small_instance.candidate_items(user)[0])
        with pytest.raises(ValueError):
            optimal_group_plan(small_instance, user, class_id, max_candidates=1)

    def test_matches_exhaustive_enumeration(self):
        instance = build_random_instance(
            num_users=1, num_items=2, num_classes=1, horizon=3,
            display_limit=1, beta=0.4, density=1.0, seed=8,
        )
        subset, value = optimal_group_plan(instance, user=0, class_id=0)
        # Independent brute force, including display filtering.
        candidates = [z for z in instance.candidate_triples()]
        best = 0.0
        for size in range(len(candidates) + 1):
            for combo in itertools.combinations(candidates, size):
                counts = {}
                ok = True
                for triple in combo:
                    counts[triple.t] = counts.get(triple.t, 0) + 1
                    if counts[triple.t] > instance.display_limit:
                        ok = False
                        break
                if ok:
                    best = max(best, group_revenue(instance, list(combo)))
        assert value == pytest.approx(best)
        assert group_revenue(instance, subset) == pytest.approx(value)

    def test_respects_display_limit_within_group(self):
        instance = build_random_instance(
            num_users=1, num_items=3, num_classes=1, horizon=2,
            display_limit=1, density=1.0, seed=2,
        )
        subset, _ = optimal_group_plan(instance, user=0, class_id=0)
        per_time = {}
        for triple in subset:
            per_time[triple.t] = per_time.get(triple.t, 0) + 1
        assert all(count <= 1 for count in per_time.values())


class TestGroupDecompositionBound:
    def test_bound_dominates_greedy_and_baselines(self, small_instance):
        bound = GroupDecompositionBound().compute(small_instance)
        greedy = GlobalGreedy().run(small_instance).revenue
        sequential = SequentialLocalGreedy().run(small_instance).revenue
        top_revenue = TopRevenueBaseline().run(small_instance).revenue
        assert bound.upper_bound >= greedy - 1e-9
        assert bound.upper_bound >= sequential - 1e-9
        assert bound.upper_bound >= top_revenue - 1e-9

    def test_bound_dominates_every_small_valid_strategy(self):
        instance = build_random_instance(
            num_users=2, num_items=2, num_classes=1, horizon=2,
            display_limit=1, capacity=1, seed=4,
        )
        bound = GroupDecompositionBound().compute(instance)
        model = RevenueModel(instance)
        candidates = list(instance.candidate_triples())
        from repro.core.constraints import ConstraintChecker
        checker = ConstraintChecker(instance)
        for size in range(min(4, len(candidates)) + 1):
            for combo in itertools.combinations(candidates, size):
                strategy = Strategy(instance.catalog, combo)
                if not checker.is_valid(strategy):
                    continue
                assert model.revenue(strategy) <= bound.upper_bound + 1e-9

    def test_per_group_accounting(self, small_instance):
        bound = GroupDecompositionBound().compute(small_instance)
        assert bound.upper_bound == pytest.approx(sum(bound.per_group.values()))
        assert bound.enumerated_groups + bound.relaxed_groups == len(bound.per_group)

    def test_relaxed_fallback_still_upper_bounds(self, small_instance):
        """Forcing the loose relaxation everywhere must give a larger (or equal)
        bound than exact enumeration."""
        exact = GroupDecompositionBound(max_candidates_per_group=14).compute(
            small_instance
        )
        loose = GroupDecompositionBound(max_candidates_per_group=0).compute(
            small_instance
        )
        assert loose.relaxed_groups == len(loose.per_group)
        assert loose.upper_bound >= exact.upper_bound - 1e-9

    def test_gap_helper(self, small_instance):
        bound = GroupDecompositionBound().compute(small_instance)
        assert bound.gap(bound.upper_bound) == pytest.approx(0.0)
        assert 0.0 <= bound.gap(0.5 * bound.upper_bound) <= 1.0
        greedy = GlobalGreedy().run(small_instance).revenue
        assert 0.0 <= bound.gap(greedy) < 1.0
