"""Tests for the display and capacity constraints."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.constraints import (
    CapacityConstraint,
    ConstraintChecker,
    DisplayConstraint,
)
from repro.core.entities import Triple
from repro.core.problem import RevMaxInstance
from repro.core.strategy import Strategy


@pytest.fixture
def instance():
    """Three users, two same-class items, k = 1, capacity 2."""
    return RevMaxInstance.from_dense_adoption(
        prices=np.full((2, 3), 10.0),
        adoption={
            (u, i): [0.5, 0.5, 0.5] for u in range(3) for i in range(2)
        },
        item_class=[0, 0],
        capacities=2,
        betas=0.5,
        display_limit=1,
        num_users=3,
    )


class TestDisplayConstraint:
    def test_can_add_under_limit(self, instance):
        constraint = DisplayConstraint(instance)
        strategy = Strategy(instance.catalog)
        assert constraint.can_add(strategy, Triple(0, 0, 0))

    def test_cannot_exceed_limit(self, instance):
        constraint = DisplayConstraint(instance)
        strategy = Strategy(instance.catalog, [Triple(0, 0, 0)])
        assert not constraint.can_add(strategy, Triple(0, 1, 0))
        # Different time step is fine.
        assert constraint.can_add(strategy, Triple(0, 1, 1))

    def test_violations_reported(self, instance):
        constraint = DisplayConstraint(instance)
        strategy = Strategy(instance.catalog, [Triple(0, 0, 0), Triple(0, 1, 0)])
        violations = constraint.violations(strategy)
        assert len(violations) == 1
        assert violations[0].kind == "display"
        assert violations[0].subject == (0, 0)
        assert violations[0].observed == 2
        assert violations[0].limit == 1


class TestCapacityConstraint:
    def test_distinct_users_counted(self, instance):
        constraint = CapacityConstraint(instance)
        strategy = Strategy(instance.catalog, [Triple(0, 0, 0), Triple(1, 0, 1)])
        # capacity 2 reached with two distinct users
        assert not constraint.can_add(strategy, Triple(2, 0, 2))

    def test_repeat_to_same_user_allowed(self, instance):
        constraint = CapacityConstraint(instance)
        strategy = Strategy(instance.catalog, [Triple(0, 0, 0), Triple(1, 0, 1)])
        # user 0 is already in the audience, so a repeat is fine.
        assert constraint.can_add(strategy, Triple(0, 0, 2))

    def test_violations_reported(self, instance):
        constraint = CapacityConstraint(instance)
        strategy = Strategy(instance.catalog, [
            Triple(0, 0, 0), Triple(1, 0, 1), Triple(2, 0, 2),
        ])
        violations = constraint.violations(strategy)
        assert len(violations) == 1
        assert violations[0].kind == "capacity"
        assert violations[0].subject == (0,)
        assert violations[0].observed == 3


class TestConstraintChecker:
    def test_valid_strategy_passes(self, instance):
        checker = ConstraintChecker(instance)
        strategy = Strategy(instance.catalog, [Triple(0, 0, 0), Triple(1, 1, 0)])
        assert checker.is_valid(strategy)
        checker.check(strategy)  # should not raise

    def test_invalid_strategy_raises_with_message(self, instance):
        checker = ConstraintChecker(instance)
        strategy = Strategy(instance.catalog, [Triple(0, 0, 0), Triple(0, 1, 0)])
        assert not checker.is_valid(strategy)
        with pytest.raises(ValueError, match="display"):
            checker.check(strategy)

    def test_can_add_combines_both_constraints(self, instance):
        checker = ConstraintChecker(instance)
        strategy = Strategy(instance.catalog, [Triple(0, 0, 0), Triple(1, 0, 0)])
        # display: slot (2, 0) free; capacity: item 0 full for new users.
        assert not checker.can_add(strategy, Triple(2, 0, 0))
        assert checker.can_add(strategy, Triple(2, 1, 0))

    def test_capacity_enforcement_can_be_disabled(self, instance):
        checker = ConstraintChecker(instance, enforce_capacity=False)
        strategy = Strategy(instance.catalog, [Triple(0, 0, 0), Triple(1, 0, 0)])
        # Without capacity, only the display constraint applies.
        assert checker.can_add(strategy, Triple(2, 0, 0))
        over_capacity = Strategy(instance.catalog, [
            Triple(0, 0, 0), Triple(1, 0, 0), Triple(2, 0, 0),
        ])
        assert checker.is_valid(over_capacity)

    def test_violation_str(self, instance):
        checker = ConstraintChecker(instance)
        strategy = Strategy(instance.catalog, [Triple(0, 0, 0), Triple(0, 1, 0)])
        violation = checker.violations(strategy)[0]
        assert "display" in str(violation)
        assert "2 > 1" in str(violation)
