"""Tests for the gradually-available-prices protocol (§6.3)."""

from __future__ import annotations

import pytest

from repro.algorithms.global_greedy import GlobalGreedy
from repro.algorithms.incomplete_prices import SubHorizonWrapper, split_horizon
from repro.algorithms.local_greedy import RandomizedLocalGreedy, SequentialLocalGreedy
from repro.core.constraints import ConstraintChecker


class TestSplitHorizon:
    def test_single_cutoff(self):
        assert split_horizon(7, [2]) == [[0, 1], [2, 3, 4, 5, 6]]

    def test_multiple_cutoffs(self):
        assert split_horizon(7, [2, 5]) == [[0, 1], [2, 3, 4], [5, 6]]

    def test_duplicate_and_unsorted_cutoffs_normalised(self):
        assert split_horizon(6, [4, 2, 4]) == [[0, 1], [2, 3], [4, 5]]

    def test_invalid_cutoffs_rejected(self):
        with pytest.raises(ValueError):
            split_horizon(5, [0])
        with pytest.raises(ValueError):
            split_horizon(5, [5])
        with pytest.raises(ValueError):
            split_horizon(5, [-1])

    def test_covers_whole_horizon_without_overlap(self):
        parts = split_horizon(7, [3, 5])
        flattened = [t for part in parts for t in part]
        assert flattened == list(range(7))


class TestSubHorizonWrapper:
    def test_wrapped_global_greedy_is_valid(self, small_instance):
        wrapper = SubHorizonWrapper(GlobalGreedy(), cutoffs=[1])
        result = wrapper.run(small_instance)
        ConstraintChecker(small_instance).check(result.strategy)
        assert result.revenue > 0
        assert "cut1" in wrapper.name

    def test_wrapped_sequential_matches_plain_sequential(self, small_instance):
        """SL-Greedy is unaffected by sub-horizon splitting (it is already
        chronological), as the paper notes."""
        plain = SequentialLocalGreedy().run(small_instance)
        wrapped = SubHorizonWrapper(SequentialLocalGreedy(), cutoffs=[1]).run(
            small_instance
        )
        assert wrapped.revenue == pytest.approx(plain.revenue, rel=1e-9)
        assert wrapped.strategy.triples() == plain.strategy.triples()

    def test_wrapped_randomized_greedy_is_valid(self, small_instance):
        wrapper = SubHorizonWrapper(
            RandomizedLocalGreedy(num_permutations=3, seed=0), cutoffs=[1]
        )
        result = wrapper.run(small_instance)
        ConstraintChecker(small_instance).check(result.strategy)
        assert result.revenue > 0

    def test_staged_global_greedy_not_better_than_full(self, small_instance):
        """Figure 7's qualitative shape: losing look-ahead cannot help much."""
        full = GlobalGreedy().run(small_instance).revenue
        staged = SubHorizonWrapper(GlobalGreedy(), cutoffs=[1]).run(small_instance).revenue
        assert staged <= full * 1.05 + 1e-9

    def test_extras_record_protocol(self, small_instance):
        wrapper = SubHorizonWrapper(GlobalGreedy(), cutoffs=[1, 2])
        wrapper.run(small_instance)
        assert wrapper.last_extras["cutoffs"] == [1, 2]
        assert wrapper.last_extras["num_sub_horizons"] == 3

    def test_triples_cover_both_sub_horizons(self, tiny_amazon_pipeline):
        instance = tiny_amazon_pipeline.instance
        wrapper = SubHorizonWrapper(GlobalGreedy(), cutoffs=[3])
        result = wrapper.run(instance)
        times = {triple.t for triple in result.strategy}
        assert any(t < 3 for t in times)
        assert any(t >= 3 for t in times)
