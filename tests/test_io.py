"""Tests for JSON serialization of instances, strategies and results."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import io as repro_io
from repro.algorithms.global_greedy import GlobalGreedy
from repro.core.revenue import RevenueModel
from repro.core.strategy import Strategy



class TestInstanceRoundTrip:
    def test_dict_round_trip_preserves_everything(self, small_instance):
        document = repro_io.instance_to_dict(small_instance)
        restored = repro_io.instance_from_dict(document)
        assert restored.num_users == small_instance.num_users
        assert restored.num_items == small_instance.num_items
        assert restored.horizon == small_instance.horizon
        assert restored.display_limit == small_instance.display_limit
        assert np.allclose(restored.prices, small_instance.prices)
        assert np.array_equal(restored.capacities, small_instance.capacities)
        assert np.allclose(restored.betas, small_instance.betas)
        assert restored.catalog.item_class == small_instance.catalog.item_class
        assert set(restored.adoption.pairs()) == set(small_instance.adoption.pairs())
        for user, item in small_instance.adoption.pairs():
            assert np.allclose(restored.adoption.get(user, item),
                               small_instance.adoption.get(user, item))

    def test_round_trip_preserves_revenue_semantics(self, small_instance):
        restored = repro_io.instance_from_dict(repro_io.instance_to_dict(small_instance))
        original_result = GlobalGreedy().run(small_instance)
        restored_result = GlobalGreedy().run(restored)
        assert restored_result.revenue == pytest.approx(original_result.revenue)
        assert restored_result.strategy.triples() == original_result.strategy.triples()

    def test_file_round_trip(self, small_instance, tmp_path):
        path = tmp_path / "nested" / "instance.json"
        repro_io.save_instance(small_instance, path)
        assert path.exists()
        restored = repro_io.load_instance(path)
        assert restored.num_candidate_triples() == small_instance.num_candidate_triples()

    def test_document_is_plain_json(self, small_instance, tmp_path):
        path = tmp_path / "instance.json"
        repro_io.save_instance(small_instance, path)
        with path.open() as handle:
            document = json.load(handle)
        assert document["kind"] == "revmax-instance"
        assert document["format_version"] == repro_io.FORMAT_VERSION

    def test_wrong_kind_rejected(self, small_instance):
        document = repro_io.instance_to_dict(small_instance)
        document["kind"] = "something-else"
        with pytest.raises(ValueError):
            repro_io.instance_from_dict(document)

    def test_wrong_version_rejected(self, small_instance):
        document = repro_io.instance_to_dict(small_instance)
        document["format_version"] = 999
        with pytest.raises(ValueError):
            repro_io.instance_from_dict(document)


class TestStrategyRoundTrip:
    def test_round_trip(self, small_instance, tmp_path):
        candidates = list(small_instance.candidate_triples())[:6]
        strategy = Strategy(small_instance.catalog, candidates)
        path = tmp_path / "strategy.json"
        repro_io.save_strategy(strategy, path, instance_name=small_instance.name)
        restored = repro_io.load_strategy(path, small_instance.catalog)
        assert restored.triples() == strategy.triples()

    def test_revenue_preserved_after_round_trip(self, small_instance, tmp_path):
        model = RevenueModel(small_instance)
        strategy = GlobalGreedy().build_strategy(small_instance)
        path = tmp_path / "plan.json"
        repro_io.save_strategy(strategy, path)
        restored = repro_io.load_strategy(path, small_instance.catalog)
        assert model.revenue(restored) == pytest.approx(model.revenue(strategy))

    def test_wrong_kind_rejected(self, small_instance):
        strategy = Strategy(small_instance.catalog)
        document = repro_io.strategy_to_dict(strategy)
        document["kind"] = "revmax-instance"
        with pytest.raises(ValueError):
            repro_io.strategy_from_dict(document, small_instance.catalog)


class TestResultSerialization:
    def test_result_document_structure(self, small_instance, tmp_path):
        result = GlobalGreedy().run(small_instance)
        path = tmp_path / "result.json"
        repro_io.save_result(result, path)
        with path.open() as handle:
            document = json.load(handle)
        assert document["kind"] == "revmax-result"
        assert document["algorithm"] == "G-Greedy"
        assert document["revenue"] == pytest.approx(result.revenue)
        assert document["strategy_size"] == result.strategy_size
        assert len(document["strategy"]["triples"]) == result.strategy_size
        assert document["growth_curve"][-1][0] == result.strategy_size

    def test_numpy_extras_are_json_safe(self, small_instance, tmp_path):
        result = GlobalGreedy().run(small_instance)
        result.extras["numpy_scalar"] = np.float64(1.5)
        result.extras["numpy_array"] = np.array([1, 2, 3])
        result.extras["nested"] = {"value": np.int64(7)}
        path = tmp_path / "result.json"
        repro_io.save_result(result, path)
        with path.open() as handle:
            document = json.load(handle)
        assert document["extras"]["numpy_scalar"] == 1.5
        assert document["extras"]["numpy_array"] == [1, 2, 3]
        assert document["extras"]["nested"]["value"] == 7
