"""Tests for SL-Greedy and RL-Greedy (Algorithm 2)."""

from __future__ import annotations

import pytest

from repro.algorithms.global_greedy import GlobalGreedy
from repro.algorithms.local_greedy import (
    RandomizedLocalGreedy,
    SequentialLocalGreedy,
    greedy_single_step,
)
from repro.core.constraints import ConstraintChecker
from repro.core.entities import Triple
from repro.core.revenue import RevenueModel
from repro.core.strategy import Strategy

from tests.conftest import build_random_instance


class TestGreedySingleStep:
    def test_only_selected_time_step_used(self, small_instance):
        model = RevenueModel(small_instance)
        checker = ConstraintChecker(small_instance)
        strategy = Strategy(small_instance.catalog)
        greedy_single_step(small_instance, model, checker, strategy, time_step=1)
        assert len(strategy) > 0
        assert all(triple.t == 1 for triple in strategy)
        checker.check(strategy)

    def test_growth_curve_is_cumulative(self, small_instance):
        model = RevenueModel(small_instance)
        checker = ConstraintChecker(small_instance)
        strategy = Strategy(small_instance.catalog)
        curve = []
        greedy_single_step(small_instance, model, checker, strategy, 0, curve)
        revenues = [revenue for _, revenue in curve]
        assert revenues == sorted(revenues)
        assert revenues[-1] == pytest.approx(model.revenue(strategy), rel=1e-6)


class TestSequentialLocalGreedy:
    def test_output_is_valid(self, small_instance):
        result = SequentialLocalGreedy().run(small_instance)
        ConstraintChecker(small_instance).check(result.strategy)
        assert result.revenue > 0

    def test_chronological_order_recorded(self, small_instance):
        algorithm = SequentialLocalGreedy()
        algorithm.run(small_instance)
        assert algorithm.last_extras["time_order"] == list(range(small_instance.horizon))

    def test_explicit_time_order_respected(self, small_instance):
        algorithm = SequentialLocalGreedy()
        reversed_order = list(range(small_instance.horizon))[::-1]
        strategy = algorithm.build_strategy(small_instance, time_order=reversed_order)
        ConstraintChecker(small_instance).check(strategy)
        assert algorithm.last_extras["time_order"] == reversed_order

    def test_example_4_chronological_is_suboptimal(self, paper_example_instance):
        """Example 4: SL-Greedy picks both triples (revenue 0.5285) whereas the
        reverse order keeps only (u, i, 2) (revenue 0.57)."""
        slg = SequentialLocalGreedy()
        chronological = slg.build_strategy(paper_example_instance)
        model = RevenueModel(paper_example_instance)
        assert chronological.triples() == {Triple(0, 0, 0), Triple(0, 0, 1)}
        assert model.revenue(chronological) == pytest.approx(0.5285)
        reverse = slg.build_strategy(paper_example_instance, time_order=[1, 0])
        assert reverse.triples() == {Triple(0, 0, 1)}
        assert model.revenue(reverse) == pytest.approx(0.57)


class TestRandomizedLocalGreedy:
    def test_output_is_valid(self, small_instance):
        result = RandomizedLocalGreedy(num_permutations=4, seed=0).run(small_instance)
        ConstraintChecker(small_instance).check(result.strategy)
        assert result.revenue > 0

    def test_invalid_permutation_count_rejected(self):
        with pytest.raises(ValueError):
            RandomizedLocalGreedy(num_permutations=0)

    def test_at_least_as_good_as_sequential(self, small_instance):
        """RL-Greedy samples the chronological order too, so it can never do
        worse than SL-Greedy."""
        sequential = SequentialLocalGreedy().run(small_instance)
        randomized = RandomizedLocalGreedy(num_permutations=6, seed=1).run(small_instance)
        assert randomized.revenue >= sequential.revenue - 1e-9

    def test_beats_sequential_on_paper_example(self, paper_example_instance):
        """On Example 4 the 2! = 2 permutations are enumerated exhaustively, so
        RL-Greedy finds the better reverse order."""
        randomized = RandomizedLocalGreedy(num_permutations=5, seed=0).run(
            paper_example_instance
        )
        sequential = SequentialLocalGreedy().run(paper_example_instance)
        assert randomized.revenue == pytest.approx(0.57)
        assert randomized.revenue > sequential.revenue

    def test_enumerates_all_permutations_when_few(self, paper_example_instance):
        algorithm = RandomizedLocalGreedy(num_permutations=100, seed=0)
        permutations = algorithm._sample_permutations(3)
        assert len(permutations) == 6
        assert len(set(permutations)) == 6

    def test_samples_distinct_permutations(self):
        algorithm = RandomizedLocalGreedy(num_permutations=10, seed=3)
        permutations = algorithm._sample_permutations(7)
        assert len(permutations) == 10
        assert len(set(permutations)) == 10
        assert tuple(range(7)) in permutations

    def test_best_order_reported(self, small_instance):
        algorithm = RandomizedLocalGreedy(num_permutations=4, seed=2)
        algorithm.run(small_instance)
        best_order = algorithm.last_extras["best_order"]
        assert sorted(best_order) == list(range(small_instance.horizon))


class TestAlgorithmHierarchy:
    def test_paper_ranking_on_random_instances(self):
        """The qualitative ordering GG >= RLG >= SLG (within tolerance) should
        hold on most instances; check it holds on average over several seeds."""
        gg_wins, rlg_wins = 0, 0
        trials = 5
        for seed in range(trials):
            instance = build_random_instance(
                num_users=6, num_items=5, num_classes=2, horizon=4,
                display_limit=2, capacity=4, beta=0.4, seed=seed,
            )
            gg = GlobalGreedy().run(instance).revenue
            rlg = RandomizedLocalGreedy(num_permutations=6, seed=seed).run(instance).revenue
            slg = SequentialLocalGreedy().run(instance).revenue
            if gg >= rlg - 1e-9:
                gg_wins += 1
            if rlg >= slg - 1e-9:
                rlg_wins += 1
        assert gg_wins >= trials - 1
        assert rlg_wins == trials
