"""Tests for the NumPy revenue engine and the incremental group cache.

Three layers of guarantees:

* kernel equivalence -- the vectorized memory / probability / revenue kernels
  reproduce the pure-Python reference functions to floating-point round-off
  on randomized groups (property tests);
* model equivalence -- ``RevenueModel(backend="numpy")`` and
  ``RevenueModel(backend="python")`` agree on revenues and marginal revenues,
  and the greedy algorithms produce *identical strategies* under either
  backend on the seed test instances;
* cache correctness -- interleaved ``add`` / ``marginal_revenue`` calls give
  the same answers with and without the cache, and the evaluation counter
  counts kernel work only (cache hits are reported separately).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.entities import Triple
from repro.core.revenue import (
    RevenueModel,
    group_dynamic_probability,
    group_revenue,
    memory_term,
)
from repro.core.strategy import Strategy
from repro.core.vectorized import (
    BACKENDS,
    GroupArrays,
    get_default_backend,
    resolve_backend,
    set_default_backend,
    vectorized_group_probabilities,
    vectorized_group_revenue,
    vectorized_memory_terms,
)
from repro.algorithms.global_greedy import GlobalGreedy
from repro.algorithms.local_greedy import SequentialLocalGreedy

from tests.conftest import build_random_instance


def _random_strategy(instance, size, seed):
    """A random subset of the instance's candidate triples."""
    candidates = list(instance.candidate_triples())
    rng = np.random.default_rng(seed)
    rng.shuffle(candidates)
    return candidates[:size], candidates[size:]


class TestBackendSelection:
    def test_default_backend_is_numpy(self):
        assert get_default_backend() == "numpy"
        assert RevenueModel(build_random_instance()).backend == "numpy"

    def test_explicit_backend_wins(self):
        instance = build_random_instance()
        assert RevenueModel(instance, backend="python").backend == "python"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            resolve_backend("fortran")
        with pytest.raises(ValueError):
            RevenueModel(build_random_instance(), backend="fortran")

    def test_set_default_backend_round_trip(self):
        try:
            set_default_backend("python")
            assert get_default_backend() == "python"
            assert RevenueModel(build_random_instance()).backend == "python"
        finally:
            set_default_backend(None)
        assert get_default_backend() == "numpy"
        with pytest.raises(ValueError):
            set_default_backend("fortran")


class TestKernelEquivalence:
    def test_memory_terms_match_reference(self):
        group = [Triple(0, 0, 0), Triple(0, 1, 1), Triple(0, 0, 3), Triple(0, 2, 3)]
        times = np.array([z.t for z in group])
        vectorized = vectorized_memory_terms(times)
        for j, triple in enumerate(group):
            assert vectorized[j] == pytest.approx(
                memory_term(group, triple.t), abs=1e-12
            )

    def test_empty_group(self):
        instance = build_random_instance()
        assert vectorized_group_revenue(instance, []) == 0.0
        assert vectorized_memory_terms(np.zeros(0, dtype=int)).shape == (0,)

    def test_probabilities_match_paper_example_1(self):
        """Example 1 of the paper, cross-checked against the closed form."""
        a, beta = 0.3, 0.6
        instance = build_random_instance(
            num_users=1, num_items=2, num_classes=1, horizon=3, seed=0
        )
        # Overwrite with the deterministic Example-1 numbers.
        instance.betas[:] = beta
        instance.adoption.set(0, 0, [a, a, a])
        instance.adoption.set(0, 1, [a, a, a])
        group = [Triple(0, 0, 0), Triple(0, 1, 1), Triple(0, 0, 2)]
        arrays = GroupArrays.from_group(instance, group)
        probabilities = vectorized_group_probabilities(arrays)
        assert probabilities[0] == pytest.approx(a)
        assert probabilities[1] == pytest.approx((1 - a) * a * beta)
        assert probabilities[2] == pytest.approx((1 - a) ** 2 * a * beta ** 1.5)

    @given(seed=st.integers(0, 1000), size=st.integers(0, 12))
    @settings(max_examples=40, deadline=None)
    def test_property_group_revenue_matches_python(self, seed, size):
        instance = build_random_instance(
            num_users=3, num_items=6, num_classes=2, horizon=4, seed=seed
        )
        chosen, _ = _random_strategy(instance, size, seed)
        strategy = Strategy(instance.catalog, chosen)
        for _, group in strategy.groups():
            assert vectorized_group_revenue(instance, group) == pytest.approx(
                group_revenue(instance, group), abs=1e-9
            )
            arrays = GroupArrays.from_group(instance, group)
            probabilities = vectorized_group_probabilities(arrays)
            for j, triple in enumerate(group):
                assert probabilities[j] == pytest.approx(
                    group_dynamic_probability(instance, group, triple), abs=1e-12
                )


class TestModelEquivalence:
    @given(seed=st.integers(0, 1000), size=st.integers(0, 10))
    @settings(max_examples=40, deadline=None)
    def test_property_backends_agree(self, seed, size):
        """python- and numpy-backend revenues agree to 1e-9 (ISSUE gate)."""
        instance = build_random_instance(seed=seed)
        chosen, rest = _random_strategy(instance, size, seed)
        strategy = Strategy(instance.catalog, chosen)
        python_model = RevenueModel(instance, backend="python", cache=False)
        numpy_model = RevenueModel(instance, backend="numpy")
        assert numpy_model.revenue(strategy) == pytest.approx(
            python_model.revenue(strategy), abs=1e-9
        )
        for triple in rest[:4]:
            assert numpy_model.marginal_revenue(strategy, triple) == pytest.approx(
                python_model.marginal_revenue(strategy, triple), abs=1e-9
            )

    @pytest.mark.parametrize("algorithm_factory", [
        lambda backend: GlobalGreedy(backend=backend),
        lambda backend: GlobalGreedy(use_lazy_forward=False, backend=backend),
        lambda backend: SequentialLocalGreedy(backend=backend),
    ])
    def test_identical_strategies_across_backends(self, algorithm_factory):
        """Both backends drive the greedy to the *same* strategy."""
        for seed in range(4):
            instance = build_random_instance(
                num_users=6, num_items=6, num_classes=2, horizon=4, seed=seed
            )
            strategies = {}
            for backend in BACKENDS:
                result = algorithm_factory(backend).run(instance)
                strategies[backend] = result.strategy.triples()
            assert strategies["numpy"] == strategies["python"]

    def test_identical_strategies_on_pipeline_instance(self, tiny_amazon_pipeline):
        instance = tiny_amazon_pipeline.instance
        numpy_result = GlobalGreedy(backend="numpy").run(instance)
        python_result = GlobalGreedy(backend="python").run(instance)
        assert numpy_result.strategy.triples() == python_result.strategy.triples()
        assert numpy_result.revenue == pytest.approx(python_result.revenue, abs=1e-9)


class TestIncrementalCache:
    def test_interleaved_add_and_marginal_calls(self):
        """Cache answers stay correct while the strategy mutates under it."""
        instance = build_random_instance(seed=3)
        cached = RevenueModel(instance, backend="numpy", cache=True)
        uncached = RevenueModel(instance, backend="python", cache=False)
        candidates = list(instance.candidate_triples())
        rng = np.random.default_rng(3)
        rng.shuffle(candidates)
        strategy = Strategy(instance.catalog)
        for step, triple in enumerate(candidates[:12]):
            for probe in candidates[: 12 + 4]:
                if probe in strategy:
                    continue
                assert cached.marginal_revenue(strategy, probe) == pytest.approx(
                    uncached.marginal_revenue(strategy, probe), abs=1e-9
                )
            strategy.add(triple)
            assert cached.revenue(strategy) == pytest.approx(
                uncached.revenue(strategy), abs=1e-9
            )
            if step == 5:  # removing triples must also be answered correctly
                strategy.remove(triple)
        assert cached.cache_hits > 0

    def test_cache_hits_do_not_count_as_evaluations(self):
        instance = build_random_instance(seed=1)
        model = RevenueModel(instance, backend="numpy", cache=True)
        triples, _ = _random_strategy(instance, 5, seed=1)
        strategy = Strategy(instance.catalog, triples)
        model.revenue(strategy)
        first = model.evaluations
        assert first == len(list(strategy.groups()))
        assert model.cache_hits == 0
        model.revenue(strategy)  # answered entirely from the cache
        assert model.evaluations == first
        assert model.cache_hits == first
        info = model.cache_info()
        assert info["size"] == first
        assert info["hits"] == first
        assert info["evaluations"] == first

    def test_marginal_before_value_is_reused(self):
        instance = build_random_instance(seed=2)
        model = RevenueModel(instance, backend="numpy", cache=True)
        candidates = list(instance.candidate_triples())
        target = candidates[0]
        same_group = [
            z for z in candidates
            if z.user == target.user
            and instance.class_of(z.item) == instance.class_of(target.item)
        ]
        assert len(same_group) >= 2
        strategy = Strategy(instance.catalog, [same_group[0]])
        model.reset_counters()
        model.marginal_revenue(strategy, same_group[1])  # before + after: 2 kernels
        assert model.evaluations == 2
        # Second probe against the same group: "before" is a cache hit.
        probe = Triple(target.user, same_group[1].item,
                       (same_group[1].t + 1) % instance.horizon)
        if probe not in strategy and probe != same_group[1]:
            model.marginal_revenue(strategy, probe)
            assert model.evaluations == 3
            assert model.cache_hits >= 1

    def test_clear_cache_and_reset_counters(self):
        instance = build_random_instance(seed=4)
        model = RevenueModel(instance, backend="numpy", cache=True)
        triples, _ = _random_strategy(instance, 4, seed=4)
        strategy = Strategy(instance.catalog, triples)
        model.revenue(strategy)
        model.revenue(strategy)
        assert model.cache_info()["size"] > 0
        model.clear_cache()
        assert model.cache_info()["size"] == 0
        model.reset_counters()
        assert model.evaluations == 0
        assert model.cache_hits == 0
        # Still correct after the clear.
        assert model.revenue(strategy) == pytest.approx(
            RevenueModel(instance, backend="python", cache=False).revenue(strategy),
            abs=1e-9,
        )

    def test_cache_size_bound_triggers_wholesale_clear(self):
        instance = build_random_instance(seed=5)
        model = RevenueModel(instance, backend="numpy", cache=True,
                             max_cache_entries=2)
        candidates = list(instance.candidate_triples())
        for triple in candidates[:6]:
            model.group_revenue([triple])
        assert model.cache_info()["size"] <= 2
        # Values survive the evictions.
        assert model.group_revenue([candidates[0]]) == pytest.approx(
            group_revenue(instance, [candidates[0]]), abs=1e-12
        )

    def test_uncached_python_model_matches_seed_semantics(self):
        """backend='python', cache=False counts every call (seed behaviour)."""
        instance = build_random_instance(seed=6)
        model = RevenueModel(instance, backend="python", cache=False)
        triples, _ = _random_strategy(instance, 3, seed=6)
        strategy = Strategy(instance.catalog, triples)
        model.revenue(strategy)
        model.revenue(strategy)
        groups = len(list(strategy.groups()))
        assert model.evaluations == 2 * groups
        assert model.cache_hits == 0
