"""Tests for the kernel tier: registry, replicas, native dispatch.

The kernel package ships one source (:mod:`repro.core.kernels.impl`)
executed two ways -- JIT-compiled where numba is installed, interpreted
everywhere.  These tests pin the three contracts that make the tier safe
to enable by default:

* the **registry** resolves ``REPRO_KERNEL`` / ``set_default_kernel``
  exactly like the revenue-backend registry, degrading a ``numba``
  request to ``numpy`` (one warning) on machines without numba;
* the **replicas** are bit-identical to the references they replace
  (``pairwise_sum`` vs ``np.sum``, the admit loop vs the serial
  columnar engine -- triples, gains *and* model counters);
* the **dispatch** through :class:`LazyGreedySelector` engages exactly
  when the gate says so, and callers cannot tell the tiers apart.

Where numba is missing the native path is exercised through the
interpreted module (see :func:`interpreted_native`) -- same source, same
floats, only slower; CI's numba leg runs the same assertions compiled.
"""

from __future__ import annotations

import warnings
from contextlib import contextmanager

import numpy as np
import pytest

from repro.core import kernels, revenue as revenue_module
from repro.core.constraints import ConstraintChecker
from repro.core.kernels import impl
from repro.core.revenue import RevenueModel
from repro.core.selection import SEED_ISOLATED, LazyGreedySelector
from repro.core.strategy import Strategy
from repro.core.vectorized import vectorized_extended_group_revenues
from repro.datasets.synthetic import SyntheticConfig, generate_synthetic_columnar


@contextmanager
def interpreted_native():
    """Force the native dispatch through the *interpreted* kernel source.

    Machines without numba cannot execute the JIT twin, but the dispatch
    plumbing (selector gate, ``native_select``, counter absorption) is
    identical either way -- only the module executing ``admit_loop``
    differs.  Patching :func:`kernels.native_enabled` /
    :func:`kernels.jit_module` exercises the full native path with
    :mod:`repro.core.kernels.impl` standing in for the compiled twin.
    """
    original_enabled = kernels.native_enabled
    original_jit = kernels.jit_module
    kernels.native_enabled = lambda: True
    kernels.jit_module = lambda: impl
    try:
        yield
    finally:
        kernels.native_enabled = original_enabled
        kernels.jit_module = original_jit


def _instance(num_users=40, seed=3):
    config = SyntheticConfig(
        num_users=num_users, num_items=30, num_classes=8,
        candidates_per_user=6, horizon=4, display_limit=2,
        capacity_fraction=0.3, beta=0.6, seed=seed,
    )
    return generate_synthetic_columnar(config)


def _serial_signature(instance, *, allowed_times=None, max_selections=None):
    """(admissions, growth curve, counters) of the reference serial engine."""
    admissions = []
    model = RevenueModel(instance, backend="numpy")
    selector = LazyGreedySelector(
        instance, model, ConstraintChecker(instance),
        seed_priorities=SEED_ISOLATED, max_selections=max_selections,
        on_admit=lambda triple, gain: admissions.append((*triple, gain)),
    )
    strategy = Strategy(instance.catalog)
    growth = []
    with kernels.forced_kernel("numpy"):
        selector.select(strategy, None, allowed_times=allowed_times,
                        growth_curve=growth)
    return admissions, growth, (model.evaluations, model.cache_hits,
                                model.lookups)


def _native_signature(instance, *, allowed_times=None, max_selections=None):
    """The same signature straight from the (interpreted) kernel loop."""
    compiled = instance.compiled()
    rows, ts, gains, counters = kernels.native_select(
        compiled, allowed_times=allowed_times,
        max_selections=max_selections, module=impl,
    )
    admissions = []
    growth = []
    revenue = 0.0
    for row, t, gain in zip(rows.tolist(), ts.tolist(), gains.tolist()):
        admissions.append((int(compiled.pair_user[row]),
                           int(compiled.pair_item[row]), int(t), gain))
        revenue += gain
        growth.append((len(admissions), revenue))
    return admissions, growth, (counters["evaluations"],
                                counters["cache_hits"], counters["lookups"])


class TestRegistry:
    def setup_method(self):
        kernels.set_default_kernel(None)

    def teardown_method(self):
        kernels.set_default_kernel(None)

    def test_numpy_tier_always_resolves(self):
        with kernels.forced_kernel("numpy"):
            assert kernels.active_kernel() == "numpy"
            assert not kernels.native_enabled()

    def test_invalid_env_value_rejected(self, monkeypatch):
        monkeypatch.setenv(kernels.KERNEL_ENV_VAR, "cuda")
        with pytest.raises(ValueError, match="not a known kernel tier"):
            kernels.get_default_kernel()

    def test_invalid_explicit_value_rejected(self):
        with pytest.raises(ValueError):
            kernels.set_default_kernel("cython")
        with pytest.raises(ValueError):
            kernels.resolve_kernel("cython")

    def test_forced_kernel_restores_previous(self):
        before = kernels.get_default_kernel()
        with kernels.forced_kernel("numpy"):
            assert kernels.get_default_kernel() == "numpy"
        assert kernels.get_default_kernel() == before

    @pytest.mark.skipif(kernels.NUMBA_AVAILABLE,
                        reason="fallback only exists without numba")
    def test_numba_request_degrades_with_one_warning(self, monkeypatch):
        monkeypatch.setenv(kernels.KERNEL_ENV_VAR, "numba")
        monkeypatch.setattr(kernels, "_warned_fallback", False)
        with pytest.warns(RuntimeWarning, match="numba is not installed"):
            assert kernels.get_default_kernel() == "numpy"
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # second resolution stays silent
            assert kernels.get_default_kernel() == "numpy"
        assert not kernels.native_enabled()

    @pytest.mark.skipif(not kernels.NUMBA_AVAILABLE,
                        reason="needs an installed numba")
    def test_numba_tier_active_when_requested(self, monkeypatch):
        monkeypatch.setenv(kernels.KERNEL_ENV_VAR, "numba")
        assert kernels.get_default_kernel() == "numba"
        assert kernels.native_enabled()
        assert kernels.numba_version() is not None

    def test_kernel_info_shape(self):
        info = kernels.kernel_info()
        assert info["kernel"] in kernels.KERNELS
        assert info["numba_available"] == kernels.NUMBA_AVAILABLE
        assert (info["numba_version"] is None) == (not kernels.NUMBA_AVAILABLE)


class TestReplicaArithmetic:
    def test_dispatch_constants_stay_in_sync(self):
        # impl duplicates the constants (importing revenue would cycle and
        # break numba compilation); drift would silently fork the dispatch.
        assert impl.VECTORIZE_MIN_GROUP == revenue_module.VECTORIZE_MIN_GROUP
        assert impl.BATCH_MIN_WORK == revenue_module.VECTORIZE_MIN_GROUP ** 2

    def test_pairwise_sum_matches_numpy_bitwise(self):
        rng = np.random.default_rng(11)
        for n in (0, 1, 2, 7, 8, 9, 16, 100, 127, 128, 129, 300, 1024):
            values = rng.standard_normal(n) * rng.choice([1e-8, 1.0, 1e8], n)
            assert impl.pairwise_sum(values, 0, n) == np.sum(values)

    def test_pairwise_sum_respects_offset(self):
        rng = np.random.default_rng(12)
        values = rng.standard_normal(200)
        assert impl.pairwise_sum(values, 50, 100) == np.sum(values[50:150])

    def test_batched_dispatch_matches_reference_kernel(self):
        # The tier wrapper must return the reference broadcast kernel's
        # floats whichever module executes underneath.
        instance = _instance(num_users=12, seed=9)
        compiled = instance.compiled()
        strategy = Strategy(instance.catalog)
        selector_model = RevenueModel(instance, backend="numpy")
        _serial = LazyGreedySelector(
            instance, selector_model, ConstraintChecker(instance),
            seed_priorities=SEED_ISOLATED, max_selections=40,
        )
        _serial.select(strategy, None)
        groups = [members for _, members in strategy.groups()
                  if len(members) >= 2]
        if not groups:  # pragma: no cover - seed-dependent guard
            pytest.skip("fuzz instance produced no multi-triple group")
        group = groups[0]
        user = group[0].user
        item = group[0].item
        horizon = instance.horizon
        from repro.core.entities import Triple

        pending = [Triple(user, item, t) for t in range(horizon)
                   if Triple(user, item, t) not in group]
        reference = vectorized_extended_group_revenues(
            instance, group, pending, compiled
        )
        with kernels.forced_kernel("numpy"):
            numpy_tier = kernels.batched_extended_revenues(
                instance, group, pending, compiled
            )
        with interpreted_native():
            native_tier = kernels.batched_extended_revenues(
                instance, group, pending, compiled
            )
        assert numpy_tier.tolist() == reference.tolist()
        assert native_tier.tolist() == reference.tolist()


class TestAdmitLoopEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_full_run_bit_identical(self, seed):
        instance = _instance(num_users=35, seed=seed)
        serial = _serial_signature(instance)
        native = _native_signature(instance)
        assert native == serial

    def test_capped_run_bit_identical(self):
        instance = _instance(num_users=50, seed=7)
        serial = _serial_signature(instance, max_selections=40)
        native = _native_signature(instance, max_selections=40)
        assert native == serial
        assert len(native[0]) == 40

    def test_allowed_times_masking_bit_identical(self):
        instance = _instance(num_users=30, seed=5)
        serial = _serial_signature(instance, allowed_times=[0, 2])
        native = _native_signature(instance, allowed_times=[0, 2])
        assert native == serial
        assert all(entry[2] in (0, 2) for entry in native[0])

    def test_out_of_range_allowed_times_ignored(self):
        instance = _instance(num_users=10, seed=2)
        full = _native_signature(instance)
        padded = _native_signature(instance,
                                   allowed_times=[-3, 0, 1, 2, 3, 99])
        assert padded == full


class TestSelectorDispatch:
    def test_native_path_engages_and_matches(self):
        instance = _instance(num_users=40, seed=13)
        serial = _serial_signature(instance)

        calls = []
        original = kernels.native_select

        def counting(compiled, **kwargs):
            calls.append(kwargs)
            return original(compiled, **kwargs)

        admissions = []
        model = RevenueModel(instance, backend="numpy")
        selector = LazyGreedySelector(
            instance, model, ConstraintChecker(instance),
            seed_priorities=SEED_ISOLATED,
            on_admit=lambda triple, gain: admissions.append((*triple, gain)),
        )
        strategy = Strategy(instance.catalog)
        growth = []
        with interpreted_native():
            kernels.native_select = counting
            try:
                selector.select(strategy, None, growth_curve=growth)
            finally:
                kernels.native_select = original

        assert len(calls) == 1  # the native loop actually ran
        assert (admissions, growth,
                (model.evaluations, model.cache_hits, model.lookups)) == serial
        assert sorted(strategy.triples()) == sorted(
            (user, item, t) for user, item, t, _ in serial[0]
        )

    def test_non_empty_strategy_stays_on_python_path(self):
        instance = _instance(num_users=15, seed=4)
        model = RevenueModel(instance, backend="numpy")
        selector = LazyGreedySelector(
            instance, model, ConstraintChecker(instance),
            seed_priorities=SEED_ISOLATED,
        )
        strategy = Strategy(instance.catalog)
        with interpreted_native():
            assert selector._kernel_eligible(strategy)
            selector.select(strategy, None)
            if len(strategy):
                # A warm strategy disqualifies the kernel (it seeds from
                # isolated revenues alone).
                assert not selector._kernel_eligible(strategy)

    def test_python_backend_model_is_incompatible(self):
        instance = _instance(num_users=8, seed=6)
        model = RevenueModel(instance, backend="python")
        assert not model.native_compatible()
        selector = LazyGreedySelector(
            instance, model, ConstraintChecker(instance),
            seed_priorities=SEED_ISOLATED,
        )
        with interpreted_native():
            assert not selector._kernel_eligible(Strategy(instance.catalog))

    def test_numpy_backend_model_is_compatible(self):
        instance = _instance(num_users=8, seed=6)
        assert RevenueModel(instance, backend="numpy").native_compatible()
