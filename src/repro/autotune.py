"""Auto-degrading parallelism: a measured cost model for shards/jobs.

``BENCH_shard.json`` records the sharded solver *losing* at low core
counts (0.38x at ``cpu_count: 1`` on the 400k-user head-to-head) and
``BENCH_selection.json`` records 0.32x for the parallel RL runner: process
spawn, shared-memory publication and coordinator round trips are pure
overhead when the cores are not there.  This module decides -- from a
micro-probe of the actual machine, not a guess -- whether partitioned
execution can win, so ``shards="auto"`` / ``jobs="auto"`` degrade to the
serial columnar path exactly where parallelism would lose:

* :func:`cost_model` calibrates once per process: the per-pair cost of
  the vectorized seeding sweep (a small timed slice of the same
  price-gather-times-probability arithmetic) and the cost of spawning and
  joining one worker process;
* :func:`decide_shards` / :func:`decide_jobs` turn a request
  (``"auto"``, an explicit count, ``0`` for per-core, or ``None``) into
  an effective setting plus a :class:`ParallelDecision` record carrying
  the prediction, so callers can surface ``degraded: true`` and the
  calibration numbers in experiment records and bench JSON.

Explicit requests are honoured (tests and ablations must be able to force
the sharded engine anywhere) but warned about -- one line -- when the
model predicts they lose; the ``"auto"`` mode, the CLI default, silently
picks the winner.
"""

from __future__ import annotations

import os
import time
import warnings
from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

import numpy as np

__all__ = [
    "AUTO",
    "ParallelCostModel",
    "ParallelDecision",
    "cost_model",
    "decide_jobs",
    "decide_shards",
    "override_losing_request",
    "reset_cost_model",
    "warn_if_losing",
]

#: Sentinel request value: let the cost model pick.
AUTO = "auto"

#: Minimum predicted speedup before parallelism is worth process overhead;
#: the margin absorbs calibration noise (a predicted 1.02x is a coin flip).
MIN_PREDICTED_SPEEDUP = 1.1

#: Rows of the seeding micro-probe (big enough to amortize dispatch,
#: small enough to stay well under a millisecond).
_PROBE_ROWS = 65_536
_PROBE_HORIZON = 5

ShardRequest = Union[str, int, None]


@dataclass(frozen=True)
class ParallelCostModel:
    """Per-machine calibration behind the auto decisions.

    Attributes:
        cpu_count: cores visible to the process.
        spawn_overhead_seconds: measured cost of spawning + joining one
            worker process (0.0 when the probe is skipped on single-core
            machines, where no decision ever needs it).
        per_pair_seconds: measured per-candidate-pair cost of the
            vectorized seeding sweep the sharded workers parallelize.
    """

    cpu_count: int
    spawn_overhead_seconds: float
    per_pair_seconds: float

    def predicted_shard_speedup(self, num_pairs: int, workers: int) -> float:
        """Predicted serial/sharded wall-clock ratio for one selection.

        The sharded path splits the per-pair sweep across
        ``min(workers, cpu_count)`` truly concurrent processes but pays
        spawn overhead per worker (startup, shared-memory attach, shutdown
        all sit inside the measured region; see
        ``benchmarks/test_sharded_scale.py``).
        """
        workers = max(1, int(workers))
        serial = max(num_pairs, 1) * self.per_pair_seconds
        concurrency = max(1, min(workers, self.cpu_count))
        parallel = serial / concurrency + self.spawn_overhead_seconds * workers
        return serial / parallel if parallel > 0.0 else 1.0

    def as_dict(self) -> Dict[str, float]:
        """JSON-ready calibration record for the bench writers."""
        return {
            "cpu_count": self.cpu_count,
            "spawn_overhead_seconds": self.spawn_overhead_seconds,
            "per_pair_seconds": self.per_pair_seconds,
        }


@dataclass(frozen=True)
class ParallelDecision:
    """Outcome of one auto-parallelism decision.

    ``degraded`` is True exactly when an *explicit* parallel request was
    predicted to lose -- the signal experiment records surface so a user
    who forced ``shards=4`` on a laptop can see why it was slow (or, at
    the CLI where auto overrides, why it was ignored).
    """

    kind: str  # "shards" or "jobs"
    requested: ShardRequest
    effective: Optional[int]
    predicted_speedup: float
    degraded: bool
    reason: str
    model: Dict[str, float]

    @property
    def parallel(self) -> bool:
        return self.effective is not None and self.effective != 1

    def as_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "requested": self.requested,
            "effective": self.effective,
            "parallel": self.parallel,
            "predicted_speedup": self.predicted_speedup,
            "degraded": self.degraded,
            "reason": self.reason,
            "cost_model": dict(self.model),
        }


_cost_model: Optional[ParallelCostModel] = None


def _probe_per_pair_seconds() -> float:
    """Time the per-pair cost of the isolated-revenue seeding sweep.

    The sharded workers' dominant parallelizable work is the vectorized
    ``prices[pair_item] * pair_probs`` gather plus the row-max of the
    frontier build; the probe runs the same shape on a 65k-row slice.
    """
    rng = np.random.default_rng(12345)
    probs = rng.random((_PROBE_ROWS, _PROBE_HORIZON))
    prices = rng.random((256, _PROBE_HORIZON))
    items = rng.integers(0, 256, _PROBE_ROWS)
    # Warm-up pass keeps allocator/page-fault noise out of the timing.
    (prices[items] * probs).max(axis=1)
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        (prices[items] * probs).max(axis=1)
        best = min(best, time.perf_counter() - start)
    return best / _PROBE_ROWS


def _probe_spawn_overhead_seconds() -> float:
    """Measure spawning + joining one worker process (fork-first context)."""
    from repro.parallel import pool_context

    context = pool_context()
    start = time.perf_counter()
    process = context.Process(target=_noop)
    process.start()
    process.join()
    return time.perf_counter() - start


def _noop() -> None:  # pragma: no cover - runs in the probe subprocess
    pass


def cost_model(refresh: bool = False) -> ParallelCostModel:
    """The process-wide calibration, probing the machine on first use.

    Single-core machines skip the spawn probe entirely (every decision is
    serial regardless), so the common laptop/CI case pays only the
    sub-millisecond seeding probe.
    """
    global _cost_model
    if _cost_model is None or refresh:
        cores = os.cpu_count() or 1
        spawn = _probe_spawn_overhead_seconds() if cores >= 2 else 0.0
        _cost_model = ParallelCostModel(
            cpu_count=cores,
            spawn_overhead_seconds=spawn,
            per_pair_seconds=_probe_per_pair_seconds(),
        )
    return _cost_model


def reset_cost_model() -> None:
    """Drop the cached calibration (tests that monkeypatch the probes)."""
    global _cost_model
    _cost_model = None


def decide_shards(num_pairs: int, requested: ShardRequest = AUTO,
                  model: Optional[ParallelCostModel] = None) -> ParallelDecision:
    """Resolve a shards request against the measured cost model.

    ``"auto"`` picks per-core sharding where the prediction clears
    :data:`MIN_PREDICTED_SPEEDUP` and the serial columnar path everywhere
    else.  Explicit counts (including ``0`` = per-core) are kept as the
    effective value -- the caller decides whether to honour or override --
    with ``degraded`` flagging a predicted loss.
    """
    model = model or cost_model()
    if requested is None or requested == 1:
        return ParallelDecision(
            "shards", requested, None if requested is None else 1,
            1.0, False, "serial requested", model.as_dict(),
        )
    workers = model.cpu_count if requested in (AUTO, 0) else int(requested)
    speedup = model.predicted_shard_speedup(num_pairs, workers)
    wins = model.cpu_count >= 2 and speedup >= MIN_PREDICTED_SPEEDUP
    if requested == AUTO:
        if wins:
            reason = (f"predicted {speedup:.2f}x at {workers} workers "
                      f"on {model.cpu_count} cores")
            return ParallelDecision("shards", requested, 0, speedup,
                                    False, reason, model.as_dict())
        reason = (f"parallelism predicted to lose ({speedup:.2f}x at "
                  f"{workers} workers on {model.cpu_count} cores); "
                  "using the serial columnar path")
        return ParallelDecision("shards", requested, None, speedup,
                                False, reason, model.as_dict())
    effective = int(requested)
    if wins:
        reason = f"predicted {speedup:.2f}x at {workers} workers"
        return ParallelDecision("shards", requested, effective, speedup,
                                False, reason, model.as_dict())
    reason = (f"shards={requested} predicted to lose ({speedup:.2f}x on "
              f"{model.cpu_count} cores)")
    return ParallelDecision("shards", requested, effective, speedup,
                            True, reason, model.as_dict())


def decide_jobs(num_tasks: int, requested: ShardRequest = AUTO,
                model: Optional[ParallelCostModel] = None) -> ParallelDecision:
    """Resolve a jobs request (parallel permutation runs) the same way.

    Per-task cost is workload-dependent, so the jobs rule is structural:
    parallel workers need at least two real cores and at least two tasks;
    the persistent pool (:mod:`repro.parallel`) amortizes the spawn cost
    that made small permutation counts lose.
    """
    model = model or cost_model()
    if requested is None or requested == 1:
        return ParallelDecision(
            "jobs", requested, None if requested is None else 1,
            1.0, False, "serial requested", model.as_dict(),
        )
    wins = model.cpu_count >= 2 and num_tasks >= 2
    if requested == AUTO:
        if wins:
            effective = min(model.cpu_count, num_tasks)
            reason = f"{effective} workers on {model.cpu_count} cores"
            return ParallelDecision("jobs", requested, effective, 1.0,
                                    False, reason, model.as_dict())
        reason = (f"parallel jobs predicted to lose on "
                  f"{model.cpu_count} core(s); running in-process")
        return ParallelDecision("jobs", requested, None, 1.0,
                                False, reason, model.as_dict())
    effective = int(requested)
    if wins:
        return ParallelDecision("jobs", requested, effective, 1.0, False,
                                f"{effective} workers requested",
                                model.as_dict())
    reason = (f"jobs={requested} predicted to lose on "
              f"{model.cpu_count} core(s)")
    return ParallelDecision("jobs", requested, effective, 1.0, True,
                            reason, model.as_dict())


def override_losing_request(kind: str, requested: ShardRequest
                            ) -> Tuple[ShardRequest, Optional[ParallelDecision]]:
    """Auto-mode override of an explicit CLI/harness parallel request.

    The entry points that default to ``"auto"`` (``repro solve --shards``,
    ``standard_algorithms(gg_shards=)``) still accept explicit counts; when
    the machine structurally cannot win -- fewer than two cores, where
    every worker is pure spawn overhead -- the request is overridden to the
    serial path with a one-line warning, and the returned degraded
    :class:`ParallelDecision` is surfaced in experiment records.  On
    multi-core machines explicit requests pass through untouched (size is
    workload-dependent there; use ``"auto"`` for the measured decision).
    """
    if requested in (None, 1) or requested == AUTO:
        return requested, None
    model = cost_model()
    if model.cpu_count >= 2:
        return requested, None
    decision = ParallelDecision(
        kind, requested, None, 1.0, True,
        f"{kind}={requested} requested but parallelism cannot win on "
        f"{model.cpu_count} core(s)",
        model.as_dict(),
    )
    warnings.warn(
        f"{decision.reason}; degrading to the serial path "
        f"(pass {kind}='auto' to silence this)",
        RuntimeWarning,
        stacklevel=3,
    )
    return None, decision


def warn_if_losing(decision: ParallelDecision, context: str) -> None:
    """Emit the one-line losing-configuration warning for explicit requests."""
    if decision.degraded:
        warnings.warn(
            f"{context}: {decision.reason}; "
            f"{decision.kind}='auto' would pick the serial path",
            RuntimeWarning,
            stacklevel=3,
        )
