"""Sharded shared-memory G-Greedy: user-partitioned selection across processes.

The serial columnar path (PR 3) made one core fast; this module makes the
same selection *scale across cores* without changing a single admitted
triple.  It exploits the structure of the revenue model: saturation and
competition couple triples only within one (user, class) group
(Definition 1), and the display constraint is per (user, time) -- so every
quantity the greedy loop computes, except the per-item capacity audit, is
**user-local**.  That yields the classic shared-nothing-reads /
coordinated-admission split of parallel database executors:

* **users are partitioned into K contiguous CSR shards** (balanced by pair
  count, :func:`shard_user_ranges`);
* each **worker process attaches to the compiled tensors zero-copy** --
  through :class:`SharedTensors` (``multiprocessing.shared_memory``) for
  in-memory instances, or by memory-mapping the saved ``.npz`` for on-disk
  ones (:func:`repro.io.attach_instance_shard`) -- slices out its rows, and
  runs a shard-local :class:`~repro.heaps.columnar.ColumnarFrontier`, lazy
  forward refreshes, display checks and revenue models over *its* users;
* a **coordinator owns the global admit loop**: it repeatedly takes the best
  worker proposal (ties broken by global CSR row, exactly the serial upper
  heap's rule), audits the centralized constraints (item capacities / any
  :class:`~repro.core.constraints.ConstraintChecker`), and routes
  admissions and capacity drops back to the owning worker.

Bit-identical by construction
-----------------------------
The coordinator executes the *same* peek / discard / refresh / admit
sequence as :meth:`repro.core.selection.LazyGreedySelector.select` over a
frontier that happens to be partitioned:

* priorities, refreshed marginal values and admission gains are computed on
  the same float tensors with the same kernels, so every value is the bit
  the serial path would produce;
* the global top is ``max`` over shard-local tops ordered by
  ``(-priority, global_row)`` -- the serial frontier's lazy-deletion heap
  resolves to exactly that ordering, and within a row the shard's lower
  heap is the serial lower heap;
* workers may refresh or display-discard *their local* top before it
  becomes the global top (saving a round trip), which is sound: a refresh
  between two admissions writes the same value whenever it runs (the
  candidate's group is frozen in between), and a display-blocked candidate
  stays blocked forever, so dropping it early removes nothing admissible.

``tests/test_shard.py`` asserts triple-for-triple, curve-for-curve equality
against the serial path on both backings; ``benchmarks/test_sharded_scale.py``
gates the wall-clock win at 250k users / 2.5M pairs.

Usage
-----
Callers normally reach this module through ``GlobalGreedy(shards=4)``,
``LazyGreedySelector(..., shards=4, jobs=4)`` or the CLI's
``repro solve --shards 4``; :class:`ShardedGreedySolver` is the underlying
engine.  ``jobs=1`` runs every shard in-process (no subprocesses) -- same
results, trivially debuggable.
"""

from __future__ import annotations

import traceback
from multiprocessing import shared_memory
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.compiled import CompiledInstance
from repro.core.constraints import ConstraintChecker
from repro.core.entities import Triple
from repro.core.problem import RevMaxInstance
from repro.core.revenue import RevenueModel
# Seeding and freshness semantics must stay the single definitions the
# serial loop uses, or the two paths could drift apart bit by bit.
from repro.core.selection import _ZeroFlags, build_columnar_frontier
from repro.core.strategy import Strategy
from repro.parallel import default_jobs, pool_context

__all__ = [
    "shard_user_ranges",
    "sharding_compatible",
    "SharedTensors",
    "ShardedGreedySolver",
    "ShardWorkerError",
]


class ShardWorkerError(RuntimeError):
    """A shard worker process failed or died; the message says how."""


# ----------------------------------------------------------------------
# user partitioning
# ----------------------------------------------------------------------
def shard_user_ranges(user_ptr: np.ndarray,
                      shards: int) -> List[Tuple[int, int]]:
    """Partition users into ``shards`` contiguous ranges balanced by pairs.

    Returns exactly ``shards`` half-open ranges ``[start, stop)`` that tile
    ``[0, num_users)`` in order.  Boundaries are placed so each shard holds
    roughly ``num_pairs / shards`` CSR rows (users are never split).  Ranges
    may be empty when ``shards`` exceeds the number of users or when runs of
    users have no candidates -- workers handle empty shards as trivially
    exhausted frontiers.
    """
    if shards <= 0:
        raise ValueError(f"shards must be positive, got {shards}")
    user_ptr = np.asarray(user_ptr)
    num_users = int(user_ptr.shape[0]) - 1
    total_pairs = int(user_ptr[-1])
    targets = np.arange(1, shards) * (total_pairs / shards)
    cuts = np.searchsorted(user_ptr, targets, side="left")
    bounds = np.concatenate(([0], np.clip(cuts, 0, num_users), [num_users]))
    bounds = np.maximum.accumulate(bounds)
    return [(int(a), int(b)) for a, b in zip(bounds[:-1], bounds[1:])]


def _rebuildable_from(instance: RevMaxInstance, model_instance) -> bool:
    """True when ``model_instance`` is ``instance``'s tensors plus betas."""
    return model_instance is instance or (
        model_instance.adoption is instance.adoption
        and model_instance.prices is instance.prices
        and model_instance.catalog is instance.catalog
    )


def sharding_compatible(instance: RevMaxInstance, model: RevenueModel,
                        true_model: Optional[RevenueModel] = None) -> bool:
    """Can this (instance, models) combination run sharded?

    Workers rebuild every model as a plain :class:`RevenueModel` from the
    solved instance's tensors plus a beta vector, so both the selection
    model and a true model, if any, must *be* plain ``RevenueModel``s
    (subclasses carry overridden revenue semantics the reconstruction would
    silently discard) and must share that instance's adoption table, prices
    and catalog (the GlobalNo shape); a true model must additionally score
    on the numpy backend the workers use.  The single compatibility
    definition: the selection engine falls back to the serial loop when
    this returns False, and :class:`ShardedGreedySolver` rejects direct
    misuse against it.
    """
    if type(model) is not RevenueModel:
        return False
    if not _rebuildable_from(instance, model.instance):
        return False
    if true_model is not None:
        if (type(true_model) is not RevenueModel
                or true_model.backend != "numpy"):
            return False
        if not _rebuildable_from(model.instance, true_model.instance):
            return False
    return True


# ----------------------------------------------------------------------
# zero-copy tensor transport
# ----------------------------------------------------------------------
#: Tensors a worker needs to rebuild a CompiledInstance.
_TENSOR_FIELDS = ("user_ptr", "pair_item", "pair_probs", "prices",
                  "capacities", "betas", "item_class")


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to a segment without enrolling it in the resource tracker.

    Only the publishing process owns the segment's lifetime; an attaching
    worker must not enroll a segment it merely reads (under ``fork`` the
    tracker process is *shared*, so a worker's registration -- or
    unregistration -- would corrupt the publisher's bookkeeping).  Python
    3.13 exposes ``track=False`` for exactly this; earlier versions need
    registration suppressed around the attach.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


class SharedTensors:
    """Publish a compilation's tensors as ``multiprocessing.shared_memory``.

    The publisher copies each tensor into an anonymous segment once;
    workers then attach by name and wrap zero-copy ndarray views, so K
    workers share one physical copy of the candidate table no matter how
    the coordinator's arrays were allocated.  The publisher must outlive
    the workers and call :meth:`close` exactly once (unlinks the segments).
    """

    def __init__(self, compiled: CompiledInstance) -> None:
        self._segments: List[shared_memory.SharedMemory] = []
        tensors: Dict[str, Tuple[str, Tuple[int, ...], str]] = {}
        try:
            for field in _TENSOR_FIELDS:
                array = np.ascontiguousarray(getattr(compiled, field))
                segment = shared_memory.SharedMemory(
                    create=True, size=max(1, array.nbytes)
                )
                self._segments.append(segment)
                view = np.ndarray(array.shape, dtype=array.dtype,
                                  buffer=segment.buf)
                view[...] = array
                tensors[field] = (segment.name, array.shape, array.dtype.str)
        except BaseException:
            self.close()
            raise
        self.handle = {
            "backing": "shm",
            "tensors": tensors,
            "num_users": compiled.num_users,
            "horizon": compiled.horizon,
            "display_limit": compiled.display_limit,
            "name": compiled.name,
        }

    def close(self) -> None:
        """Release and unlink every segment (idempotent)."""
        for segment in self._segments:
            try:
                segment.close()
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass
        self._segments = []

    @staticmethod
    def attach(handle: Dict) -> CompiledInstance:
        """Rebuild the full compilation from a publisher's handle (worker side).

        The returned instance's tensors are views straight into the shared
        segments -- nothing is copied.  The segment objects are pinned on
        the compilation (``_shm_keepalive``) so the mappings outlive any
        ndarray views handed out.
        """
        segments = []
        arrays = {}
        for field, (name, shape, dtype) in handle["tensors"].items():
            segment = _attach_segment(name)
            segments.append(segment)
            arrays[field] = np.ndarray(tuple(shape), dtype=np.dtype(dtype),
                                       buffer=segment.buf)
        compiled = CompiledInstance(
            num_users=handle["num_users"],
            horizon=handle["horizon"],
            display_limit=handle["display_limit"],
            name=handle["name"],
            validate=False,
            **arrays,
        )
        compiled._shm_keepalive = segments
        return compiled


def _attach_shards(handle: Dict, shard_specs: List[Dict]) -> List["_ShardState"]:
    """Attach to the published tensors and build one state per shard spec.

    Shared-memory backing attaches the full tensors once and slices a view
    per shard; ``.npz`` backing goes through
    :func:`repro.io.attach_instance_shard`, memory-mapping each shard's
    rows by path + user range without ever holding a full deserialized
    instance.
    """
    backing = handle["backing"]
    if backing == "shm":
        full = SharedTensors.attach(handle)
        views = []
        for spec in shard_specs:
            view = full.shard(spec["user_start"], spec["user_stop"])
            # The slices alias the full attachment's segment mappings;
            # pinning the attachment keeps them mapped for the view's life.
            view._shm_keepalive = full
            views.append(view)
    elif backing == "npz":
        from repro.io import attach_instance_shard

        views = [
            attach_instance_shard(handle["path"], spec["user_start"],
                                  spec["user_stop"])
            for spec in shard_specs
        ]
    else:
        raise ValueError(f"unknown shard backing {backing!r}")
    return [
        _ShardState(
            view, spec["user_start"], spec["user_stop"],
            selection_betas=spec["selection_betas"],
            true_betas=spec["true_betas"],
            allowed_times=spec["allowed_times"],
            initial_triples=spec["initial_triples"],
        )
        for view, spec in zip(views, shard_specs)
    ]


# ----------------------------------------------------------------------
# shard-local selection state (runs inside workers)
# ----------------------------------------------------------------------
class _ShardState:
    """Frontier + models + strategy of one contiguous user range.

    This is the worker-resident half of the selection loop: everything
    :class:`~repro.core.selection.LazyGreedySelector` does *except* the
    centralized capacity audit and the global argmax, restricted to the
    shard's users.  ``proposal()`` surfaces the shard's best fresh,
    display-feasible candidate as ``(priority, global_row, user, item, t)``.
    """

    def __init__(self, shard: CompiledInstance, user_start: int,
                 user_stop: int, *,
                 selection_betas: Optional[np.ndarray],
                 true_betas: Optional[np.ndarray],
                 allowed_times: Optional[Sequence[int]],
                 initial_triples: Sequence[Tuple[int, int, int]]) -> None:
        self.user_start = int(user_start)
        self.user_stop = int(user_stop)
        self.row_offset = int(shard.shard_row_offset)
        # Derived instances (beta swaps below) alias the attachment's
        # mappings without carrying its keepalive; the state owns the
        # original view so the segments stay mapped for its whole life.
        self._attached = shard
        if selection_betas is not None:
            shard = shard.replace(betas=np.asarray(selection_betas,
                                                   dtype=np.float64))
        self.compiled = shard
        self.instance: RevMaxInstance = shard.as_instance()
        self.model = RevenueModel(self.instance, backend="numpy")
        self.true_model: Optional[RevenueModel] = None
        if true_betas is not None:
            true_instance = shard.replace(
                betas=np.asarray(true_betas, dtype=np.float64)
            ).as_instance()
            self.true_model = RevenueModel(true_instance, backend="numpy")
        self.strategy = Strategy(self.instance.catalog)
        for user, item, t in initial_triples:
            self.strategy.add(Triple(user, item, t))
        self.frontier = build_columnar_frontier(self.compiled, self.strategy,
                                                allowed_times)
        self.flags = _ZeroFlags()
        self._cached_proposal = None
        self._dirty = True

    def owns(self, user: int) -> bool:
        """True when ``user`` falls in this shard's range."""
        return self.user_start <= user < self.user_stop

    # -- the shard-local slice of the serial selection loop ------------
    def proposal(self) -> Optional[Tuple[float, int, int, int, int]]:
        """Best fresh, display-feasible candidate of this shard (cached).

        Replays the serial loop's display-discard and lazy-refresh steps on
        the local frontier until the local top is clean, then reports it
        with its *global* row for cross-shard tie-breaking.  Non-positive
        tops are still reported: whether they end the run is the
        coordinator's call (everything else might be non-positive too).
        """
        if not self._dirty:
            return self._cached_proposal
        frontier = self.frontier
        instance = self.instance
        limit = instance.display_limit
        while frontier:
            triple, priority, row = frontier.peek_with_row()
            if self.strategy.display_count(triple.user, triple.t) >= limit:
                # Display-blocked stays blocked forever (admissions are never
                # retracted): dropping early loses nothing admissible.
                frontier.discard(triple)
                continue
            freshness = self.strategy.group_size(
                triple.user, instance.class_of(triple.item)
            )
            if self.flags[triple] != freshness:
                self._refresh_group(triple, freshness)
                continue
            self._cached_proposal = (
                float(priority), self.row_offset + row,
                int(triple.user), int(triple.item), int(triple.t),
            )
            self._dirty = False
            return self._cached_proposal
        self._cached_proposal = None
        self._dirty = False
        return None

    def _refresh_group(self, triple: Triple, freshness: int) -> None:
        """Batch-rescore the popped candidate's whole (user, item) heap."""
        members = self.frontier.group_members((triple.user, triple.item))
        stale = [candidate for candidate in members
                 if candidate in self.frontier]
        values = self.model.marginal_revenue_batch(self.strategy, stale)
        for candidate, value in zip(stale, values):
            self.flags[candidate] = freshness
            self.frontier.update(candidate, value)

    def admit(self, triple: Triple, priority: float) -> float:
        """Record an admission decided by the coordinator; return the gain."""
        gain = (
            priority if self.true_model is None
            else self.true_model.marginal_revenue(self.strategy, triple)
        )
        self.strategy.add(triple)
        self.frontier.discard(triple)
        self._dirty = True
        return float(gain)

    def discard(self, triple: Triple) -> None:
        """Drop one candidate (coordinator-detected display block)."""
        self.frontier.discard(triple)
        self._dirty = True

    def drop_group(self, user: int, item: int) -> None:
        """Drop a whole (user, item) row (coordinator-detected capacity block)."""
        self.frontier.drop_group((user, item))
        self._dirty = True

    def counters(self) -> Tuple[int, int, int]:
        """(evaluations, cache_hits, lookups) of the shard's selection model."""
        return (self.model.evaluations, self.model.cache_hits,
                self.model.lookups)


def _best_over(shards: Sequence[_ShardState]
               ) -> Optional[Tuple[float, int, int, int, int]]:
    """Best proposal across a worker's shards, serial tie-breaking."""
    best = None
    for state in shards:
        top = state.proposal()
        if top is None:
            continue
        if best is None or (-top[0], top[1]) < (-best[0], best[1]):
            best = top
    return best


def _route(shards: Sequence[_ShardState], user: int) -> _ShardState:
    for state in shards:
        if state.owns(user):
            return state
    raise ValueError(f"no shard in this worker owns user {user}")


# ----------------------------------------------------------------------
# worker processes
# ----------------------------------------------------------------------
def _dispatch(shards: Sequence[_ShardState], message: Tuple):
    """Serve one coordinator command against a worker's shards.

    The single protocol implementation: the forked worker loop and the
    in-process ``jobs=1`` worker both dispatch through here, so the two
    modes cannot drift apart.
    """
    command = message[0]
    if command == "admit":
        _, (user, item, t), priority = message
        gain = _route(shards, user).admit(Triple(user, item, t), priority)
        return ("admitted", gain, _best_over(shards))
    if command == "discard":
        _, (user, item, t) = message
        _route(shards, user).discard(Triple(user, item, t))
        return ("top", _best_over(shards))
    if command == "drop_group":
        _, (user, item) = message
        _route(shards, user).drop_group(user, item)
        return ("top", _best_over(shards))
    if command == "stats":
        totals = [0, 0, 0]
        for state in shards:
            for index, value in enumerate(state.counters()):
                totals[index] += value
        return ("stats", tuple(totals))
    raise ValueError(f"unknown shard command {command!r}")


def _worker_main(conn, handle: Dict, shard_specs: List[Dict]) -> None:
    """Persistent worker loop: attach, seed, then serve coordinator commands.

    Every reply is a tagged tuple; any exception is caught and shipped back
    as ``("error", traceback)`` so the coordinator can surface it verbatim.
    """
    try:
        shards = _attach_shards(handle, shard_specs)
        conn.send(("ready", _best_over(shards)))
        while True:
            message = conn.recv()
            if message[0] == "stop":
                conn.send(("stopped",))
                return
            conn.send(_dispatch(shards, message))
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:  # pragma: no cover - coordinator already gone
            pass
    finally:
        conn.close()


class _ProcessWorker:
    """Coordinator-side proxy of one worker process."""

    def __init__(self, context, index: int, handle: Dict,
                 shard_specs: List[Dict]) -> None:
        self.index = index
        self.connection, child = context.Pipe(duplex=True)
        self.process = context.Process(
            target=_worker_main, args=(child, handle, shard_specs),
            name=f"repro-shard-{index}", daemon=True,
        )
        self.process.start()
        child.close()

    def request(self, *message):
        self.connection.send(message)
        return self.receive()

    def send(self, *message) -> None:
        self.connection.send(message)

    def receive(self):
        try:
            reply = self.connection.recv()
        except (EOFError, OSError) as error:
            exitcode = self.process.exitcode
            raise ShardWorkerError(
                f"shard worker {self.index} (pid {self.process.pid}) died "
                f"unexpectedly (exit code {exitcode}); its shard state is "
                f"lost -- re-run the solve"
            ) from error
        if reply[0] == "error":
            raise ShardWorkerError(
                f"shard worker {self.index} (pid {self.process.pid}) "
                f"failed:\n{reply[1]}"
            )
        return reply

    def shutdown(self) -> None:
        try:
            self.connection.send(("stop",))
            self.connection.recv()
        except Exception:
            pass
        self.connection.close()
        self.process.join(timeout=5.0)
        if self.process.is_alive():  # pragma: no cover - defensive
            self.process.terminate()
            self.process.join(timeout=5.0)


class _LocalWorker:
    """In-process stand-in for a worker (``jobs=1``): same protocol, no fork."""

    def __init__(self, index: int, compiled: CompiledInstance,
                 shard_specs: List[Dict]) -> None:
        self.index = index
        self._shards = [
            _ShardState(
                compiled.shard(spec["user_start"], spec["user_stop"]),
                spec["user_start"], spec["user_stop"],
                selection_betas=spec["selection_betas"],
                true_betas=spec["true_betas"],
                allowed_times=spec["allowed_times"],
                initial_triples=spec["initial_triples"],
            )
            for spec in shard_specs
        ]

    def receive(self):
        return ("ready", _best_over(self._shards))

    def request(self, *message):
        return _dispatch(self._shards, message)

    def shutdown(self) -> None:
        self._shards = []


# ----------------------------------------------------------------------
# the coordinator
# ----------------------------------------------------------------------
class ShardedGreedySolver:
    """Global admit loop over K user shards scored in worker processes.

    Drop-in for the columnar branch of
    :meth:`repro.core.selection.LazyGreedySelector.select` (whole ground
    set, isolated seeds, lazy forward): same arguments, same in-place
    strategy mutation, same growth curve -- and the same admitted triples,
    bit for bit.

    Args:
        instance: the REVMAX instance (its compilation is what gets shared).
        model: the selection model (supplies the selection instance's betas
            and receives the workers' aggregated work counters).
        checker: the centralized constraint authority; the coordinator
            audits every proposed admission against the *global* strategy.
        shards: number of contiguous user partitions (``0``: one per core).
        jobs: worker processes (default: one per shard, capped by
            :func:`repro.parallel.default_jobs`).  ``1`` runs all shards
            in-process.  Shards are distributed contiguously over workers;
            the partitioning never changes the result, only the balance.
        true_model: optional model whose marginal revenue is the *reported*
            gain (the GlobalNo baseline).  Must share the selection
            instance's adoption table, prices and catalog -- workers rebuild
            it shard-locally from its betas.
        max_selections: absolute cap on the strategy size.
        on_admit: ``(triple, gain)`` callback after every admission.
        backing: ``"shm"``, ``"npz"`` or ``None`` (auto: ``"npz"`` when the
            compilation was loaded from an ``.npz`` archive, else ``"shm"``).
        npz_path: archive path for ``backing="npz"`` (default: the
            compilation's recorded ``source_path``).
    """

    def __init__(self, instance: RevMaxInstance, model: RevenueModel,
                 checker: ConstraintChecker, *, shards: int,
                 jobs: Optional[int] = None,
                 true_model: Optional[RevenueModel] = None,
                 max_selections: Optional[int] = None,
                 on_admit: Optional[Callable[[Triple, float], None]] = None,
                 backing: Optional[str] = None,
                 npz_path: Optional[str] = None) -> None:
        self._instance = instance
        self._model = model
        self._checker = checker
        self._true_model = true_model
        self._max_selections = max_selections
        self._on_admit = on_admit
        self._shards = default_jobs() if shards == 0 else int(shards)
        if self._shards <= 0:
            raise ValueError(f"shards must be positive, got {shards}")
        if jobs is None or jobs == 0:
            jobs = min(self._shards, default_jobs())
        self._jobs = max(1, min(int(jobs), self._shards))
        if backing not in (None, "shm", "npz"):
            raise ValueError(f"unknown shard backing {backing!r}")
        self._backing = backing
        self._npz_path = npz_path

    # ------------------------------------------------------------------
    def select(self, strategy: Strategy,
               allowed_times: Optional[Iterable[int]] = None, *,
               growth_curve: Optional[List[Tuple[int, float]]] = None,
               initial_revenue: Optional[float] = None) -> int:
        """Greedily admit candidates into ``strategy`` across the shards.

        Same contract as ``LazyGreedySelector.select`` with
        ``candidates=None``; returns the number of admissions.
        """
        compiled = self._instance.compiled()
        # A misconfigured backing must fail the same way at every job
        # count, including the in-process mode that never publishes.
        self._resolve_backing(compiled)
        ranges = shard_user_ranges(compiled.user_ptr, self._shards)
        allowed = (
            tuple(sorted(set(int(t) for t in allowed_times)))
            if allowed_times is not None else None
        )
        selection_betas, true_betas = self._beta_overrides()
        initial = [
            (int(z.user), int(z.item), int(z.t)) for z in sorted(strategy)
        ]
        specs = [
            {
                "user_start": start,
                "user_stop": stop,
                "selection_betas": selection_betas,
                "true_betas": true_betas,
                "allowed_times": allowed,
                "initial_triples": [
                    triple for triple in initial if start <= triple[0] < stop
                ],
            }
            for start, stop in ranges
        ]
        published: Optional[SharedTensors] = None
        workers: List = []
        try:
            if self._jobs <= 1:
                workers = [_LocalWorker(0, compiled, specs)]
            else:
                handle, published = self._publish(compiled)
                context = pool_context()
                assignments = self._assign(specs, self._jobs)
                workers = [
                    _ProcessWorker(context, index, handle, assigned)
                    for index, assigned in enumerate(assignments)
                ]
            # Workers seed their frontiers concurrently during startup; the
            # "ready" reply doubles as the first proposal.
            proposals = [worker.receive()[1] for worker in workers]
            return self._admit_loop(strategy, workers, proposals,
                                    growth_curve, initial_revenue)
        finally:
            for worker in workers:
                worker.shutdown()
            if published is not None:
                published.close()

    # ------------------------------------------------------------------
    def _beta_overrides(self):
        """Selection / true beta vectors the workers rebuild models from.

        Workers rebuild each model from the solver instance's tensors plus a
        beta vector, so both models must share that instance's adoption
        table, prices and catalog; anything more exotic would silently admit
        different triples than the serial path and is rejected instead.
        """
        selection_instance = self._model.instance
        if (type(self._model) is not RevenueModel
                or not _rebuildable_from(self._instance, selection_instance)):
            raise ValueError(
                "sharded selection supports a plain RevenueModel differing "
                "from the solved instance only in betas (the GlobalNo "
                "shape); run without shards for other selection models"
            )
        selection_betas = (
            None if selection_instance is self._instance
            else np.asarray(selection_instance.betas, dtype=np.float64)
        )
        true_betas = None
        if self._true_model is not None:
            if not sharding_compatible(self._instance, self._model,
                                       self._true_model):
                raise ValueError(
                    "sharded selection supports a numpy-backed true_model "
                    "differing from the selection model only in betas (the "
                    "GlobalNo shape); run without shards for other true "
                    "models"
                )
            true_betas = np.asarray(self._true_model.instance.betas,
                                    dtype=np.float64)
        return selection_betas, true_betas

    def _resolve_backing(self, compiled: CompiledInstance) -> str:
        """Pick and validate the tensor backing (independent of job count)."""
        backing = self._backing
        npz_path = self._npz_path or compiled.source_path
        if backing is None:
            backing = "npz" if npz_path is not None else "shm"
        if backing == "npz" and npz_path is None:
            raise ValueError(
                "backing='npz' needs an archive: pass npz_path= or load "
                "the instance through repro.io.load_instance_npz"
            )
        return backing

    def _publish(self, compiled: CompiledInstance):
        backing = self._resolve_backing(compiled)
        if backing == "npz":
            npz_path = self._npz_path or compiled.source_path
            return {"backing": "npz", "path": str(npz_path)}, None
        published = SharedTensors(compiled)
        return published.handle, published

    @staticmethod
    def _assign(specs: List[Dict], jobs: int) -> List[List[Dict]]:
        """Distribute shard specs over workers, contiguously and evenly."""
        jobs = min(jobs, len(specs))
        base, extra = divmod(len(specs), jobs)
        assignments, cursor = [], 0
        for index in range(jobs):
            count = base + (1 if index < extra else 0)
            assignments.append(specs[cursor:cursor + count])
            cursor += count
        return assignments

    # ------------------------------------------------------------------
    def _admit_loop(self, strategy: Strategy, workers: List,
                    proposals: List[Optional[Tuple]],
                    growth_curve: Optional[List[Tuple[int, float]]],
                    initial_revenue: Optional[float]) -> int:
        """The serial admit loop of Algorithm 1, fed by worker proposals."""
        if initial_revenue is None:
            initial_revenue = growth_curve[-1][1] if growth_curve else 0.0
        revenue = initial_revenue
        admitted = 0
        instance = self._instance
        while self._max_selections is None or len(strategy) < self._max_selections:
            winner = None
            for index, proposal in enumerate(proposals):
                if proposal is None:
                    continue
                if winner is None or (
                    (-proposal[0], proposal[1])
                    < (-proposals[winner][0], proposals[winner][1])
                ):
                    winner = index
            if winner is None:
                break
            priority, _, user, item, t = proposals[winner]
            triple = Triple(user, item, t)
            if not self._checker.can_add(strategy, triple):
                # Mirror of LazyGreedySelector._discard_blocked: a display
                # block kills one candidate, a capacity block the whole row.
                if (strategy.display_count(user, t)
                        >= instance.display_limit):
                    reply = workers[winner].request("discard", (user, item, t))
                else:
                    reply = workers[winner].request("drop_group", (user, item))
                proposals[winner] = reply[1]
                continue
            if priority <= 0.0:
                break
            reply = workers[winner].request("admit", (user, item, t), priority)
            gain = reply[1]
            strategy.add(triple)
            proposals[winner] = reply[2]
            admitted += 1
            revenue += gain
            if growth_curve is not None:
                growth_curve.append((len(strategy), revenue))
            if self._on_admit is not None:
                self._on_admit(triple, gain)
        self._collect_stats(workers)
        return admitted

    def _collect_stats(self, workers: List) -> None:
        evaluations = cache_hits = lookups = 0
        for worker in workers:
            _, (worker_evals, worker_hits, worker_lookups) = (
                worker.request("stats")
            )
            evaluations += worker_evals
            cache_hits += worker_hits
            lookups += worker_lookups
        self._model.absorb_counts(evaluations=evaluations,
                                  cache_hits=cache_hits, lookups=lookups)
