"""Two-level heap structure of Algorithm 1 (Global Greedy).

The paper argues that a single "giant" heap over all ``|U| x |I| x T``
candidate triples makes every ``Decrease-Key`` traverse a tall tree.  Instead,
G-Greedy keeps

* one *lower-level* heap per group (a (user, item) pair) containing at most
  ``T`` entries -- the candidate time steps for that pair, and
* one *upper-level* heap over group identifiers whose priority is the
  priority of the group's current best entry.

Selecting the globally best candidate inspects only the upper-level heap;
updating the ``T`` stale entries of one group touches a heap of height
``O(log T)`` plus a single upper-level adjustment.

The structure below is generic: groups are arbitrary hashable identifiers and
entries within a group are arbitrary hashable keys.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Tuple

from repro.heaps.binary_heap import AddressableMaxHeap

__all__ = ["TwoLevelHeap"]


class TwoLevelHeap:
    """A heap of heaps keyed by (group, entry) pairs.

    Example:
        >>> heap = TwoLevelHeap()
        >>> heap.insert(("u1", "i1"), ("u1", "i1", 0), 5.0)
        >>> heap.insert(("u1", "i1"), ("u1", "i1", 1), 7.0)
        >>> heap.insert(("u2", "i9"), ("u2", "i9", 0), 6.0)
        >>> heap.peek()
        (('u1', 'i1', 1), 7.0)
    """

    def __init__(self) -> None:
        self._lower: Dict[Hashable, AddressableMaxHeap] = {}
        self._upper = AddressableMaxHeap()
        self._group_of: Dict[Hashable, Hashable] = {}

    # ------------------------------------------------------------------
    # sizing / membership
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._group_of)

    def __bool__(self) -> bool:
        return bool(self._group_of)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._group_of

    @property
    def group_count(self) -> int:
        """Number of non-empty lower-level heaps."""
        return len(self._lower)

    def group_keys(self, group: Hashable) -> List[Hashable]:
        """Return the entry keys currently stored under ``group``."""
        lower = self._lower.get(group)
        if lower is None:
            return []
        return lower.keys()

    def groups(self) -> List[Hashable]:
        """Return all group identifiers with at least one entry."""
        return list(self._lower.keys())

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def insert(self, group: Hashable, key: Hashable, priority: float) -> None:
        """Insert ``key`` with ``priority`` under ``group``.

        Raises:
            KeyError: if ``key`` already exists (keys are global across groups).
        """
        if key in self._group_of:
            raise KeyError(f"key already present: {key!r}")
        lower = self._lower.get(group)
        if lower is None:
            lower = AddressableMaxHeap()
            self._lower[group] = lower
        lower.insert(key, priority)
        self._group_of[key] = group
        self._refresh_upper(group)

    def update(self, key: Hashable, priority: float) -> None:
        """Change the priority of ``key`` (in whichever group it lives)."""
        group = self._group_of[key]
        self._lower[group].update(key, priority)
        self._refresh_upper(group)

    def push(self, group: Hashable, key: Hashable, priority: float) -> None:
        """Insert ``key`` or update it in place if already present."""
        if key in self._group_of:
            self.update(key, priority)
        else:
            self.insert(group, key, priority)

    def delete(self, key: Hashable) -> float:
        """Remove ``key`` and return its last priority."""
        group = self._group_of.pop(key)
        lower = self._lower[group]
        priority = lower.delete(key)
        if not lower:
            del self._lower[group]
            self._upper.discard(group)
        else:
            self._refresh_upper(group)
        return priority

    def discard(self, key: Hashable) -> None:
        """Remove ``key`` if present."""
        if key in self._group_of:
            self.delete(key)

    def delete_group(self, group: Hashable) -> None:
        """Remove an entire group and all of its entries."""
        lower = self._lower.pop(group, None)
        if lower is None:
            return
        for key in lower.keys():
            self._group_of.pop(key, None)
        self._upper.discard(group)

    def clear(self) -> None:
        """Remove everything."""
        self._lower.clear()
        self._upper.clear()
        self._group_of.clear()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def peek(self) -> Tuple[Hashable, float]:
        """Return the globally best ``(key, priority)`` without removing it.

        Raises:
            IndexError: if the structure is empty.
        """
        if not self._upper:
            raise IndexError("peek from an empty two-level heap")
        group, _ = self._upper.peek()
        return self._lower[group].peek()

    def pop(self) -> Tuple[Hashable, float]:
        """Remove and return the globally best ``(key, priority)``."""
        key, priority = self.peek()
        self.delete(key)
        return key, priority

    def priority(self, key: Hashable) -> float:
        """Return the priority currently stored for ``key``."""
        group = self._group_of[key]
        return self._lower[group].priority(key)

    def group_of(self, key: Hashable) -> Hashable:
        """Return the group identifier under which ``key`` is stored."""
        return self._group_of[key]

    def items(self) -> Iterable[Tuple[Hashable, float]]:
        """Yield every ``(key, priority)`` pair (arbitrary order)."""
        for lower in self._lower.values():
            for pair in lower.items():
                yield pair

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Raise ``AssertionError`` if any structural invariant is violated."""
        assert set(self._lower.keys()) == set(self._upper.keys()), (
            "upper heap does not mirror lower heap groups"
        )
        total = 0
        for group, lower in self._lower.items():
            lower.check_invariants()
            assert len(lower) > 0, "empty lower heap retained"
            _, best = lower.peek()
            assert self._upper.priority(group) == best, "upper priority stale"
            for key in lower.keys():
                assert self._group_of[key] == group, "group_of map out of sync"
            total += len(lower)
        assert total == len(self._group_of), "entry count mismatch"

    # ------------------------------------------------------------------
    # internal helpers
    # ------------------------------------------------------------------
    def _refresh_upper(self, group: Hashable) -> None:
        lower = self._lower.get(group)
        if lower is None or not lower:
            self._upper.discard(group)
            return
        _, best = lower.peek()
        self._upper.push(group, best)
