"""Columnar two-level frontier: bulk seeding from contiguous arrays.

The two-level heap of §5.1 (:class:`repro.heaps.two_level.TwoLevelHeap`)
pays a Python-level insert per candidate triple.  At production scale
(millions of candidates) that per-insert cost dominates G-Greedy's seeding
stage, even though almost all lower-level heaps are never touched again: a
run admits a few thousand triples, so only a few thousand (user, item)
groups ever have their best entry popped or refreshed.

:class:`ColumnarFrontier` exploits that skew.  It is seeded directly from
the compiled candidate tensors (see :mod:`repro.core.compiled`):

* the **upper level** is a lazy-deletion ``heapq`` over pair rows, built
  with one C-level ``heapify`` of ``(-best_priority, row)`` tuples, where
  ``best_priority`` is the row-wise maximum of the seeded priority matrix
  (one vectorized pass);
* **lower levels** (one addressable heap of at most ``T`` entries per pair)
  materialize lazily, the first time their row surfaces at the top or one
  of their entries is updated or discarded.

Determinism matches the incremental structure: priority ties at the upper
level break towards the smaller row index (CSR order, i.e. seeding order),
and within a group towards the earlier time step -- exactly the insertion
orders the eager two-level build would have produced for the same candidate
sequence.  Entries and groups behave identically under peek / update /
discard, so :class:`repro.core.selection.LazyGreedySelector` runs unchanged
on either frontier.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Set, Tuple

import numpy as np

from repro.core.entities import Triple
from repro.heaps.binary_heap import AddressableMaxHeap

__all__ = ["ColumnarFrontier"]

_DEAD = -np.inf


class ColumnarFrontier:
    """Lazily materialized two-level frontier over columnar candidates.

    Args:
        pair_user: shape ``(n_pairs,)`` user id per pair row.
        pair_item: shape ``(n_pairs,)`` item id per pair row.
        priorities: shape ``(n_pairs, T)`` seed priorities (read-only).
        seeded: shape ``(n_pairs, T)`` bool mask of live candidates; entries
            outside the mask (non-positive priority, disallowed time, triples
            already in the strategy) do not exist as far as the frontier is
            concerned.  The array is owned by the frontier.
        row_lookup: ``(user, item) -> row`` mapping (-1 when absent), e.g.
            :meth:`repro.core.compiled.CompiledInstance.pair_row`.
    """

    def __init__(self, pair_user: np.ndarray, pair_item: np.ndarray,
                 priorities: np.ndarray, seeded: np.ndarray,
                 row_lookup: Callable[[int, int], int]) -> None:
        self._pair_user = pair_user
        self._pair_item = pair_item
        self._priorities = priorities
        self._seeded = seeded
        self._row_lookup = row_lookup
        self._lower: Dict[int, AddressableMaxHeap] = {}
        # Row-wise best over the seeded mask; -inf marks rows with no live
        # entry ("dead").  heap entries carry the priority they were pushed
        # with; an entry is stale when it no longer matches _best[row].
        best = np.where(seeded, priorities, _DEAD).max(axis=1, initial=_DEAD)
        self._best = best
        live_rows = np.flatnonzero(best > _DEAD)
        self._live = int(live_rows.shape[0])
        self._heap: List[Tuple[float, int]] = list(
            zip((-best[live_rows]).tolist(), live_rows.tolist())
        )
        heapq.heapify(self._heap)

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------
    def __bool__(self) -> bool:
        return self._live > 0

    def __len__(self) -> int:
        total = 0
        for row in np.flatnonzero(self._best > _DEAD).tolist():
            lower = self._lower.get(row)
            total += len(lower) if lower is not None else int(
                np.count_nonzero(self._seeded[row])
            )
        return total

    def __contains__(self, key) -> bool:
        user, item, t = key
        row = self._row_lookup(user, item)
        if row < 0 or self._best[row] == _DEAD:
            return False
        lower = self._lower.get(row)
        if lower is not None:
            return Triple(user, item, t) in lower
        return 0 <= t < self._seeded.shape[1] and bool(self._seeded[row, t])

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def peek(self) -> Tuple[Triple, float]:
        """Return the globally best ``(triple, priority)`` without removal."""
        triple, priority, _ = self.peek_with_row()
        return triple, priority

    def peek_with_row(self) -> Tuple[Triple, float, int]:
        """Like :meth:`peek`, also returning the winning pair row.

        The row index is what the sharded solver offsets into the *global*
        CSR row to break priority ties across shards exactly like the serial
        frontier's upper heap does.
        """
        heap = self._heap
        while heap:
            negative, row = heap[0]
            if self._best[row] != -negative:
                heapq.heappop(heap)
                continue
            key, priority = self._lower_for(row).peek()
            return key, priority, row
        raise IndexError("peek from an empty columnar frontier")

    def pop(self) -> Tuple[Triple, float]:
        """Remove and return the globally best ``(triple, priority)``."""
        key, priority = self.peek()
        self.discard(key)
        return key, priority

    def priority(self, key) -> float:
        """Return the priority currently stored for a live candidate.

        Raises:
            KeyError: if the candidate is not in the frontier.
        """
        user, item, t = key
        row = self._row_lookup(user, item)
        if row < 0 or self._best[row] == _DEAD:
            raise KeyError(f"key not in frontier: {key!r}")
        lower = self._lower.get(row)
        if lower is not None:
            return lower.priority(Triple(*key))
        if not (0 <= t < self._seeded.shape[1] and self._seeded[row, t]):
            raise KeyError(f"key not in frontier: {key!r}")
        return float(self._priorities[row, t])

    def group_members(self, group: Tuple[int, int]) -> Set[Triple]:
        """Live candidate triples of one (user, item) group."""
        user, item = group
        row = self._row_lookup(user, item)
        if row < 0 or self._best[row] == _DEAD:
            return set()
        lower = self._lower.get(row)
        if lower is not None:
            return set(lower.keys())
        return {
            Triple(int(user), int(item), int(t))
            for t in np.flatnonzero(self._seeded[row])
        }

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def update(self, key, priority: float) -> None:
        """Change the priority of a live candidate."""
        user, item, _ = key
        row = self._row_lookup(user, item)
        if row < 0 or self._best[row] == _DEAD:
            raise KeyError(f"key not in frontier: {key!r}")
        lower = self._lower_for(row)
        lower.update(Triple(*key), float(priority))
        self._refresh(row, lower)

    def discard(self, key) -> None:
        """Remove a candidate if present."""
        user, item, t = key
        row = self._row_lookup(user, item)
        if row < 0 or self._best[row] == _DEAD:
            return
        lower = self._lower.get(row)
        if lower is None:
            if not (0 <= t < self._seeded.shape[1] and self._seeded[row, t]):
                return
            lower = self._lower_for(row)
        lower.discard(Triple(user, item, t))
        self._refresh(row, lower)

    def drop_group(self, group: Tuple[int, int]) -> None:
        """Remove an entire (user, item) group and all of its entries."""
        user, item = group
        row = self._row_lookup(user, item)
        if row < 0 or self._best[row] == _DEAD:
            return
        self._kill(row)

    # ------------------------------------------------------------------
    # internal helpers
    # ------------------------------------------------------------------
    def _lower_for(self, row: int) -> AddressableMaxHeap:
        lower = self._lower.get(row)
        if lower is None:
            lower = AddressableMaxHeap()
            user = int(self._pair_user[row])
            item = int(self._pair_item[row])
            priorities = self._priorities[row]
            for t in np.flatnonzero(self._seeded[row]).tolist():
                lower.insert(Triple(user, item, t), float(priorities[t]))
            self._lower[row] = lower
        return lower

    def _refresh(self, row: int, lower: AddressableMaxHeap) -> None:
        if not lower:
            self._kill(row)
            return
        best = lower.peek()[1]
        if best != self._best[row]:
            self._best[row] = best
            heapq.heappush(self._heap, (-best, row))

    def _kill(self, row: int) -> None:
        self._best[row] = _DEAD
        self._live -= 1
        self._lower.pop(row, None)
