"""Addressable priority queues used by the greedy REVMAX algorithms.

The paper's Global Greedy algorithm (Algorithm 1) relies on two data
structures:

* an *addressable* maximum binary heap supporting ``insert``, ``find_max``,
  ``delete_max``, ``update_key`` (increase or decrease) and ``delete`` by
  entry key -- :class:`repro.heaps.binary_heap.AddressableMaxHeap`;
* a *two-level* heap where one lower-level heap exists per (user, item) pair
  holding its time-step candidates, and an upper-level heap holds the roots
  of all lower-level heaps -- :class:`repro.heaps.two_level.TwoLevelHeap`.

Both structures are deterministic (ties broken by insertion order) so that
algorithm outputs are reproducible.

:class:`repro.heaps.columnar.ColumnarFrontier` is the bulk-seeded columnar
variant of the two-level structure: one C-level ``heapify`` over the
compiled candidate tensors replaces millions of per-triple inserts, and
lower-level heaps materialize lazily (see :mod:`repro.core.compiled`).
"""

from repro.heaps.binary_heap import AddressableMaxHeap
from repro.heaps.columnar import ColumnarFrontier
from repro.heaps.two_level import TwoLevelHeap

__all__ = ["AddressableMaxHeap", "ColumnarFrontier", "TwoLevelHeap"]
