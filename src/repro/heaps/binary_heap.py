"""An addressable maximum binary heap.

The greedy algorithms of the paper repeatedly need to

* look at the entry with the largest (marginal revenue) priority,
* update the priority of an arbitrary entry after a strategy change
  (``Decrease-Key`` in the paper's terminology, although priorities may also
  increase when stale lazy-forward values are refreshed), and
* remove arbitrary entries once a constraint rules them out.

The standard library ``heapq`` module supports none of these operations
directly, so this module implements a classic array-backed binary heap with a
position index (``key -> slot``) that makes every entry addressable in
``O(1)`` and updatable in ``O(log n)``.

Ties between equal priorities are broken by insertion order (older entries
first) so that all algorithms built on top of the heap are deterministic.
"""

from __future__ import annotations

from typing import Hashable, Iterator, List, Optional, Tuple

__all__ = ["AddressableMaxHeap"]


class _Entry:
    """A single heap entry.

    Attributes:
        key: hashable identifier of the entry (unique within the heap).
        priority: the value the heap orders by (larger is better).
        order: insertion sequence number used for deterministic tie-breaks.
    """

    __slots__ = ("key", "priority", "order")

    def __init__(self, key: Hashable, priority: float, order: int) -> None:
        self.key = key
        self.priority = priority
        self.order = order

    def beats(self, other: "_Entry") -> bool:
        """Return True if this entry should sit above ``other`` in the heap."""
        if self.priority != other.priority:
            return self.priority > other.priority
        return self.order < other.order

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"_Entry(key={self.key!r}, priority={self.priority!r})"


class AddressableMaxHeap:
    """Array-backed max-heap with O(1) lookup of entries by key.

    Example:
        >>> heap = AddressableMaxHeap()
        >>> heap.insert("a", 1.0)
        >>> heap.insert("b", 3.0)
        >>> heap.peek()
        ('b', 3.0)
        >>> heap.update("a", 10.0)
        >>> heap.pop()
        ('a', 10.0)
    """

    def __init__(self) -> None:
        self._slots: List[_Entry] = []
        self._positions: dict = {}
        self._counter = 0

    # ------------------------------------------------------------------
    # basic container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._slots)

    def __bool__(self) -> bool:
        return bool(self._slots)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._positions

    def __iter__(self) -> Iterator[Hashable]:
        """Iterate over keys in arbitrary (heap array) order."""
        return iter(list(self._positions.keys()))

    def keys(self) -> List[Hashable]:
        """Return all keys currently stored, in arbitrary order."""
        return list(self._positions.keys())

    # ------------------------------------------------------------------
    # core operations
    # ------------------------------------------------------------------
    def insert(self, key: Hashable, priority: float) -> None:
        """Insert ``key`` with ``priority``.

        Raises:
            KeyError: if ``key`` is already present (use :meth:`update`).
        """
        if key in self._positions:
            raise KeyError(f"key already present in heap: {key!r}")
        entry = _Entry(key, float(priority), self._counter)
        self._counter += 1
        self._slots.append(entry)
        index = len(self._slots) - 1
        self._positions[key] = index
        self._sift_up(index)

    def push(self, key: Hashable, priority: float) -> None:
        """Insert ``key`` or update its priority if already present."""
        if key in self._positions:
            self.update(key, priority)
        else:
            self.insert(key, priority)

    def peek(self) -> Tuple[Hashable, float]:
        """Return ``(key, priority)`` of the maximum entry without removing it.

        Raises:
            IndexError: if the heap is empty.
        """
        if not self._slots:
            raise IndexError("peek from an empty heap")
        top = self._slots[0]
        return top.key, top.priority

    def pop(self) -> Tuple[Hashable, float]:
        """Remove and return ``(key, priority)`` of the maximum entry.

        Raises:
            IndexError: if the heap is empty.
        """
        if not self._slots:
            raise IndexError("pop from an empty heap")
        top = self._slots[0]
        self._remove_at(0)
        return top.key, top.priority

    def priority(self, key: Hashable) -> float:
        """Return the current priority associated with ``key``."""
        index = self._positions[key]
        return self._slots[index].priority

    def get(self, key: Hashable, default: Optional[float] = None) -> Optional[float]:
        """Return the priority of ``key`` or ``default`` if absent."""
        if key not in self._positions:
            return default
        return self.priority(key)

    def update(self, key: Hashable, priority: float) -> None:
        """Change the priority of an existing entry (up or down).

        Raises:
            KeyError: if ``key`` is not in the heap.
        """
        index = self._positions[key]
        entry = self._slots[index]
        old = entry.priority
        entry.priority = float(priority)
        if entry.priority > old:
            self._sift_up(index)
        elif entry.priority < old:
            self._sift_down(index)

    def delete(self, key: Hashable) -> float:
        """Remove ``key`` from the heap and return its last priority.

        Raises:
            KeyError: if ``key`` is not present.
        """
        index = self._positions[key]
        priority = self._slots[index].priority
        self._remove_at(index)
        return priority

    def discard(self, key: Hashable) -> None:
        """Remove ``key`` if present; do nothing otherwise."""
        if key in self._positions:
            self.delete(key)

    def clear(self) -> None:
        """Remove every entry."""
        self._slots.clear()
        self._positions.clear()

    def items(self) -> List[Tuple[Hashable, float]]:
        """Return ``(key, priority)`` pairs in arbitrary order."""
        return [(entry.key, entry.priority) for entry in self._slots]

    # ------------------------------------------------------------------
    # internal helpers
    # ------------------------------------------------------------------
    def _remove_at(self, index: int) -> None:
        last = len(self._slots) - 1
        entry = self._slots[index]
        del self._positions[entry.key]
        if index == last:
            self._slots.pop()
            return
        moved = self._slots[last]
        self._slots[index] = moved
        self._positions[moved.key] = index
        self._slots.pop()
        # The moved entry may need to travel either direction.
        parent = (index - 1) // 2
        if index > 0 and moved.beats(self._slots[parent]):
            self._sift_up(index)
        else:
            self._sift_down(index)

    def _sift_up(self, index: int) -> None:
        slots = self._slots
        entry = slots[index]
        while index > 0:
            parent = (index - 1) // 2
            if entry.beats(slots[parent]):
                slots[index] = slots[parent]
                self._positions[slots[index].key] = index
                index = parent
            else:
                break
        slots[index] = entry
        self._positions[entry.key] = index

    def _sift_down(self, index: int) -> None:
        slots = self._slots
        size = len(slots)
        entry = slots[index]
        while True:
            left = 2 * index + 1
            right = left + 1
            best = index
            best_entry = entry
            if left < size and slots[left].beats(best_entry):
                best = left
                best_entry = slots[left]
            if right < size and slots[right].beats(best_entry):
                best = right
                best_entry = slots[right]
            if best == index:
                break
            slots[index] = slots[best]
            self._positions[slots[index].key] = index
            index = best
        slots[index] = entry
        self._positions[entry.key] = index

    # ------------------------------------------------------------------
    # invariants (used by tests / property based checks)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Raise ``AssertionError`` if the heap property or index map is broken."""
        for index, entry in enumerate(self._slots):
            assert self._positions[entry.key] == index, "position map out of sync"
            if index > 0:
                parent = (index - 1) // 2
                assert not entry.beats(self._slots[parent]), "heap property violated"
        assert len(self._positions) == len(self._slots), "dangling position entries"
