"""Pricing substrate: KDE estimation, valuations, price series, adoption model."""

from repro.pricing.kde import GaussianKDE, silverman_bandwidth
from repro.pricing.valuation import (
    EmpiricalValuation,
    GaussianValuation,
    ValuationModel,
)
from repro.pricing.price_series import (
    ExactPriceModel,
    generate_price_matrix,
    generate_price_series,
    prices_from_kde,
)
from repro.pricing.adoption import AdoptionEstimator

__all__ = [
    "AdoptionEstimator",
    "EmpiricalValuation",
    "ExactPriceModel",
    "GaussianKDE",
    "GaussianValuation",
    "ValuationModel",
    "generate_price_matrix",
    "generate_price_series",
    "prices_from_kde",
    "silverman_bandwidth",
]
