"""Primitive adoption-probability estimation (§6 of the paper).

The estimator combines the two signals the paper identifies as driving a
purchase decision:

* *interest* -- the predicted rating ``r_hat(u, i)`` from the rating model,
  normalised by the maximum rating ``r_max``;
* *affordability* -- the probability that the user's private valuation clears
  the offered price, ``Pr[val_ui >= p(i, t)]`` from a per-item valuation model.

The primitive adoption probability of a candidate triple is their product:

``q(u, i, t) = Pr[val_ui >= p(i, t)] * r_hat(u, i) / r_max``

These probabilities are *primitive* in the paper's sense: they ignore
competition and saturation, which the dynamic model of
:mod:`repro.core.revenue` layers on top.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.core.problem import AdoptionTable
from repro.pricing.valuation import ValuationModel
from repro.recsys.topk import Candidate

__all__ = ["AdoptionEstimator"]


@dataclass
class AdoptionEstimator:
    """Turns rating predictions, valuations and prices into an adoption table.

    Attributes:
        valuations: per-item valuation models (``item -> ValuationModel``).
        max_rating: the rating scale's maximum ``r_max``.
        min_probability: probabilities below this threshold are clamped to
            zero, mirroring the paper's remark that items predicted to be of
            little interest are dropped from consideration.
    """

    valuations: Mapping[int, ValuationModel]
    max_rating: float
    min_probability: float = 1e-4

    def probability(self, predicted_rating: float, item: int, price: float) -> float:
        """Return ``q`` for a single (predicted rating, item, price) combination."""
        if self.max_rating <= 0:
            raise ValueError("max_rating must be positive")
        valuation = self.valuations.get(item)
        if valuation is None:
            return 0.0
        acceptance = valuation.acceptance_probability(price)
        interest = min(1.0, max(0.0, predicted_rating / self.max_rating))
        probability = acceptance * interest
        if probability < self.min_probability:
            return 0.0
        return min(1.0, probability)

    def build_table(
        self,
        candidates: Mapping[int, Sequence[Candidate]],
        prices: np.ndarray,
    ) -> AdoptionTable:
        """Build the sparse adoption table for all candidate (user, item) pairs.

        Args:
            candidates: per-user candidate lists from
                :func:`repro.recsys.topk.top_candidates`.
            prices: the ``(num_items, T)`` exact price matrix.

        Returns:
            An :class:`~repro.core.problem.AdoptionTable` holding
            ``q(u, i, t)`` for every candidate pair and every time step.
        """
        prices = np.asarray(prices, dtype=float)
        horizon = prices.shape[1]
        table = AdoptionTable(horizon)
        for user, user_candidates in candidates.items():
            for candidate in user_candidates:
                vector = [
                    self.probability(
                        candidate.predicted_rating,
                        candidate.item,
                        float(prices[candidate.item, t]),
                    )
                    for t in range(horizon)
                ]
                if any(v > 0.0 for v in vector):
                    table.set(user, candidate.item, vector)
        return table

    def build_csr(
        self,
        candidates: Mapping[int, Sequence[Candidate]],
        prices: np.ndarray,
        num_users: int,
    ):
        """Columnar equivalent of :meth:`build_table`: CSR arrays, no dict.

        Per-item acceptance rows ``Pr[val >= p(i, t)]`` are evaluated once
        per candidate item; the (pair, t) probability matrix is then one
        broadcasted product with the per-pair interest factors, thresholded
        and clamped exactly as the scalar :meth:`probability` does, so every
        stored value is bit-identical to the dict path.  All-zero pairs are
        dropped, mirroring ``build_table``.

        Returns:
            ``(user_ptr, pair_item, pair_probs)`` ready for
            :class:`~repro.core.compiled.CompiledInstance`.
        """
        if self.max_rating <= 0:
            raise ValueError("max_rating must be positive")
        prices = np.asarray(prices, dtype=float)
        horizon = prices.shape[1]
        # Keyed per (user, item) so repeated candidates overwrite like
        # build_table's table.set (last write wins).
        entries: dict = {}
        for user, user_candidates in candidates.items():
            for candidate in user_candidates:
                if self.valuations.get(candidate.item) is None:
                    continue
                entries[(user, candidate.item)] = min(1.0, max(
                    0.0, candidate.predicted_rating / self.max_rating
                ))
        n = len(entries)
        pair_user = np.fromiter((k[0] for k in entries), np.int64, count=n)
        pair_item = np.fromiter((k[1] for k in entries), np.int64, count=n)
        interest = np.fromiter(entries.values(), np.float64, count=n)
        # One acceptance row per distinct item (the valuation models are
        # scalar), then a single vectorized gather out to the pairs.
        unique_items, inverse = np.unique(pair_item, return_inverse=True)
        acceptance_by_item = np.array([
            [self.valuations[int(item)].acceptance_probability(
                float(prices[item, t]))
             for t in range(horizon)]
            for item in unique_items
        ]).reshape(unique_items.shape[0], horizon)
        acceptance = acceptance_by_item[inverse]
        probs = acceptance * interest[:, None]
        probs = np.where(probs < self.min_probability, 0.0,
                         np.minimum(1.0, probs))
        keep = (probs > 0.0).any(axis=1)
        pair_user, pair_item, probs = (
            pair_user[keep], pair_item[keep], probs[keep]
        )
        order = np.lexsort((pair_item, pair_user))
        pair_user, pair_item, probs = (
            pair_user[order], pair_item[order], probs[order]
        )
        user_ptr = np.zeros(num_users + 1, dtype=np.int64)
        np.cumsum(np.bincount(pair_user, minlength=num_users),
                  out=user_ptr[1:])
        return user_ptr, pair_item, probs
