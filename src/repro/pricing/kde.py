"""Gaussian kernel density estimation with Silverman's bandwidth rule.

§6.1: Epinions has no ground-truth price time series, only prices reported by
individual reviewers.  The paper fits a kernel density estimate to the
reported prices of each item (Gaussian kernel, bandwidth from Silverman's rule
of thumb), then

* samples ``T`` prices from the estimate to act as the item's price series,
  and
* reuses the estimated distribution as a proxy for the valuation distribution
  of users, so that ``Pr[val >= p]`` is one minus its CDF.

This module implements exactly that estimator from scratch (density, CDF,
sampling) so the Epinions-like pipeline can run without SciPy.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

__all__ = ["silverman_bandwidth", "GaussianKDE"]

_SQRT_2PI = math.sqrt(2.0 * math.pi)
_SQRT_2 = math.sqrt(2.0)


def silverman_bandwidth(samples: Sequence[float]) -> float:
    """Silverman's rule-of-thumb bandwidth ``h* = (4 sigma^5 / 3 n)^{1/5}``.

    Args:
        samples: the observed values (at least two, not all identical).

    Returns:
        A strictly positive bandwidth.  When the empirical standard deviation
        is zero (all samples identical) a small floor is returned so the KDE
        stays well-defined.
    """
    samples = np.asarray(list(samples), dtype=float)
    if samples.size < 1:
        raise ValueError("at least one sample is required")
    sigma = float(np.std(samples, ddof=1)) if samples.size > 1 else 0.0
    if sigma <= 0.0:
        sigma = max(1e-3, 0.01 * max(1.0, abs(float(samples[0]))))
    n = samples.size
    return float((4.0 * sigma ** 5 / (3.0 * n)) ** 0.2)


class GaussianKDE:
    """A one-dimensional Gaussian kernel density estimate.

    Args:
        samples: observed values the density is fitted to.
        bandwidth: kernel bandwidth; defaults to Silverman's rule of thumb.
    """

    def __init__(self, samples: Sequence[float],
                 bandwidth: Optional[float] = None) -> None:
        self._samples = np.asarray(list(samples), dtype=float)
        if self._samples.size == 0:
            raise ValueError("cannot fit a KDE to an empty sample")
        self._bandwidth = (
            float(bandwidth) if bandwidth is not None
            else silverman_bandwidth(self._samples)
        )
        if self._bandwidth <= 0.0:
            raise ValueError("bandwidth must be positive")

    # ------------------------------------------------------------------
    # fitted parameters
    # ------------------------------------------------------------------
    @property
    def bandwidth(self) -> float:
        """The kernel bandwidth ``h``."""
        return self._bandwidth

    @property
    def samples(self) -> np.ndarray:
        """The sample the estimate was fitted to (copy)."""
        return np.array(self._samples, copy=True)

    @property
    def mean(self) -> float:
        """Mean of the KDE (equals the sample mean for Gaussian kernels)."""
        return float(np.mean(self._samples))

    @property
    def variance(self) -> float:
        """Variance of the KDE: sample variance plus squared bandwidth."""
        sample_var = float(np.var(self._samples)) if self._samples.size > 1 else 0.0
        return sample_var + self._bandwidth ** 2

    # ------------------------------------------------------------------
    # density / distribution functions
    # ------------------------------------------------------------------
    def pdf(self, x) -> np.ndarray:
        """Evaluate the density at ``x`` (scalar or array)."""
        x = np.atleast_1d(np.asarray(x, dtype=float))
        z = (x[:, None] - self._samples[None, :]) / self._bandwidth
        density = np.exp(-0.5 * z * z).sum(axis=1)
        density /= self._samples.size * self._bandwidth * _SQRT_2PI
        return density if density.size > 1 else density

    def cdf(self, x) -> np.ndarray:
        """Evaluate the cumulative distribution function at ``x``."""
        x = np.atleast_1d(np.asarray(x, dtype=float))
        z = (x[:, None] - self._samples[None, :]) / self._bandwidth
        values = 0.5 * (1.0 + _erf(z / _SQRT_2)).mean(axis=1)
        return values

    def survival(self, x) -> np.ndarray:
        """Evaluate ``Pr[X >= x] = 1 - CDF(x)``."""
        return 1.0 - self.cdf(x)

    def sample(self, size: int, rng: Optional[np.random.Generator] = None,
               clip_min: Optional[float] = 0.0) -> np.ndarray:
        """Draw ``size`` values from the KDE.

        Sampling picks a data point uniformly and adds Gaussian kernel noise.
        Prices are non-negative, so draws are clipped at ``clip_min`` (pass
        ``None`` to disable clipping).
        """
        if size <= 0:
            raise ValueError("size must be positive")
        rng = rng or np.random.default_rng()
        centers = rng.choice(self._samples, size=size, replace=True)
        draws = centers + rng.standard_normal(size) * self._bandwidth
        if clip_min is not None:
            draws = np.clip(draws, clip_min, None)
        return draws


def _erf(x: np.ndarray) -> np.ndarray:
    """Vectorised error function (Abramowitz & Stegun 7.1.26 approximation)."""
    sign = np.sign(x)
    x = np.abs(x)
    a1, a2, a3, a4, a5 = (
        0.254829592,
        -0.284496736,
        1.421413741,
        -1.453152027,
        1.061405429,
    )
    p = 0.3275911
    t = 1.0 / (1.0 + p * x)
    y = 1.0 - (((((a5 * t + a4) * t) + a3) * t + a2) * t + a1) * t * np.exp(-x * x)
    return sign * y
