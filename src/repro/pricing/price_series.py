"""Exact price models and synthetic price-series generation.

The bulk of the paper uses the *exact price model*: ``p(i, t)`` is known for
every item and every time step of the short horizon (a week of daily prices
for Amazon).  This module provides

* :class:`ExactPriceModel` -- a thin wrapper around the ``(num_items, T)``
  price matrix with validation and convenience accessors;
* generators of realistic synthetic price series (base price plus daily
  fluctuation plus occasional promotional discounts), used by the Amazon-like
  dataset simulator, and
* :func:`prices_from_kde` -- the Epinions recipe: sample ``T`` prices per item
  from the KDE over reported prices.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.pricing.kde import GaussianKDE

__all__ = [
    "ExactPriceModel",
    "generate_price_series",
    "generate_price_matrix",
    "prices_from_kde",
]


class ExactPriceModel:
    """Known prices ``p(i, t)`` for every item and time step."""

    def __init__(self, prices: np.ndarray) -> None:
        prices = np.asarray(prices, dtype=float)
        if prices.ndim != 2:
            raise ValueError("prices must be a 2-D (num_items, horizon) array")
        if np.any(prices < 0.0):
            raise ValueError("prices must be non-negative")
        self._prices = prices

    @property
    def matrix(self) -> np.ndarray:
        """The full price matrix (copy)."""
        return np.array(self._prices, copy=True)

    @property
    def num_items(self) -> int:
        """Number of items."""
        return self._prices.shape[0]

    @property
    def horizon(self) -> int:
        """Number of time steps."""
        return self._prices.shape[1]

    def price(self, item: int, t: int) -> float:
        """Return ``p(item, t)``."""
        return float(self._prices[item, t])

    def series(self, item: int) -> np.ndarray:
        """Return the full price series of ``item``."""
        return np.array(self._prices[item], copy=True)

    def min_price_time(self, item: int) -> int:
        """Time step at which the item is cheapest (ties: earliest)."""
        return int(np.argmin(self._prices[item]))

    def max_price_time(self, item: int) -> int:
        """Time step at which the item is most expensive (ties: earliest)."""
        return int(np.argmax(self._prices[item]))


def generate_price_series(
    base_price: float,
    horizon: int,
    rng: np.random.Generator,
    fluctuation: float = 0.05,
    sale_probability: float = 0.15,
    sale_depth: float = 0.3,
) -> np.ndarray:
    """Generate one item's price series over the horizon.

    The series follows the empirical observations the paper cites (prices on
    Amazon fluctuate frequently and items periodically go on sale): each day
    the price wiggles around the base price by a relative ``fluctuation``, and
    with probability ``sale_probability`` a contiguous sale window starts in
    which the price is discounted by ``sale_depth``.

    Args:
        base_price: the item's reference price.
        horizon: number of time steps.
        rng: random generator (caller controls reproducibility).
        fluctuation: relative standard deviation of daily wiggles.
        sale_probability: probability that the series contains a sale window.
        sale_depth: relative discount applied during the sale window.
    """
    if base_price <= 0:
        raise ValueError("base_price must be positive")
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    noise = rng.normal(0.0, fluctuation, size=horizon)
    series = base_price * (1.0 + noise)
    if rng.random() < sale_probability and horizon >= 2:
        start = int(rng.integers(0, horizon))
        length = int(rng.integers(1, max(2, horizon // 2)))
        end = min(horizon, start + length)
        series[start:end] *= 1.0 - sale_depth
    return np.clip(series, 0.01 * base_price, None)


def generate_price_matrix(
    base_prices: Sequence[float],
    horizon: int,
    rng: Optional[np.random.Generator] = None,
    fluctuation: float = 0.05,
    sale_probability: float = 0.15,
    sale_depth: float = 0.3,
) -> np.ndarray:
    """Generate a full ``(num_items, horizon)`` price matrix."""
    rng = rng or np.random.default_rng()
    return np.vstack([
        generate_price_series(
            float(price), horizon, rng, fluctuation, sale_probability, sale_depth
        )
        for price in base_prices
    ])


def prices_from_kde(
    reported_prices: Dict[int, Sequence[float]],
    num_items: int,
    horizon: int,
    rng: Optional[np.random.Generator] = None,
    fallback_price: float = 50.0,
) -> np.ndarray:
    """Sample a price matrix from per-item KDEs over reported prices.

    This reproduces the Epinions preprocessing of §6.1: fit a Gaussian KDE to
    each item's reported prices and sample ``T`` values to act as the price
    series.  Items without reported prices receive a constant
    ``fallback_price``.
    """
    rng = rng or np.random.default_rng()
    prices = np.full((num_items, horizon), float(fallback_price))
    for item, reports in reported_prices.items():
        reports = list(reports)
        if not reports:
            continue
        kde = GaussianKDE(reports)
        prices[item, :] = kde.sample(horizon, rng=rng)
    return prices
