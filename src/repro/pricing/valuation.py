"""Buyer valuation models: ``Pr[val_ui >= p]``.

The paper adopts the independent-private-valuation assumption: each user
holds a private valuation of an item, drawn from a common per-item
distribution and independent of other users.  An item is purchasable by the
user only when the valuation reaches the offered price, so the price-dependent
part of the adoption probability is the survival function ``Pr[val >= p]``.

Two concrete valuation families are provided:

* :class:`GaussianValuation` -- the Epinions recipe of §6.1: the valuation
  distribution is the Gaussian implied by the KDE over reported prices
  (mean = sample mean, variance = bandwidth-inflated sample variance), and the
  survival function uses the Gauss error function.
* :class:`EmpiricalValuation` -- survival computed directly from a KDE or any
  object exposing ``survival``; used when the Gaussian summary is too coarse.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Optional, Sequence

import numpy as np

from repro.pricing.kde import GaussianKDE

__all__ = ["ValuationModel", "GaussianValuation", "EmpiricalValuation"]

_SQRT_2 = math.sqrt(2.0)


class ValuationModel(ABC):
    """Abstract valuation distribution of one item."""

    @abstractmethod
    def acceptance_probability(self, price: float) -> float:
        """Return ``Pr[val >= price]`` for a user drawn from the population."""

    def acceptance_probabilities(self, prices: Sequence[float]) -> np.ndarray:
        """Vectorised version of :meth:`acceptance_probability`."""
        return np.array([self.acceptance_probability(float(p)) for p in prices])


class GaussianValuation(ValuationModel):
    """Gaussian valuation distribution ``val ~ N(mean, std^2)``.

    ``Pr[val >= p] = (1/2) (1 - erf((p - mean) / (sqrt(2) std)))`` -- the
    formula of §6.1.
    """

    def __init__(self, mean: float, std: float) -> None:
        if std <= 0.0:
            raise ValueError("std must be positive")
        self._mean = float(mean)
        self._std = float(std)

    @property
    def mean(self) -> float:
        """Mean valuation."""
        return self._mean

    @property
    def std(self) -> float:
        """Standard deviation of the valuation."""
        return self._std

    def acceptance_probability(self, price: float) -> float:
        z = (float(price) - self._mean) / (_SQRT_2 * self._std)
        return 0.5 * (1.0 - math.erf(z))

    @classmethod
    def from_reported_prices(cls, prices: Sequence[float],
                             bandwidth: Optional[float] = None) -> "GaussianValuation":
        """Fit the valuation from reported prices via the KDE summary of §6.1.

        The paper sets the valuation distribution of item ``i`` to the
        Gaussian with the KDE's mean and (bandwidth-inflated) variance.
        """
        kde = GaussianKDE(prices, bandwidth=bandwidth)
        return cls(mean=kde.mean, std=math.sqrt(max(kde.variance, 1e-12)))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"GaussianValuation(mean={self._mean:.2f}, std={self._std:.2f})"


class EmpiricalValuation(ValuationModel):
    """Valuation model backed by an arbitrary fitted density (e.g. a KDE)."""

    def __init__(self, kde: GaussianKDE) -> None:
        self._kde = kde

    def acceptance_probability(self, price: float) -> float:
        value = float(np.atleast_1d(self._kde.survival(price))[0])
        return min(1.0, max(0.0, value))
