"""Maximum-weight degree-constrained subgraphs of bipartite graphs (Max-DCS).

§3.2 of the paper shows that REVMAX with a single time step reduces to
Max-DCS on the bipartite user-item graph: pick a subset of edges of maximum
total weight such that every user node has degree at most ``k`` and every item
node has degree at most ``q_i``.

With non-negative weights this is a transportation-style problem and is solved
here via minimum-cost flow: source -> user arcs of capacity ``d_u``,
user -> item arcs of capacity one and cost equal to the negated edge weight,
item -> sink arcs of capacity ``d_i``.  Augmentation stops as soon as the
cheapest augmenting path no longer has negative cost, i.e. exactly when adding
another edge would not increase the subgraph's weight.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Tuple

from repro.graph.flow import MinCostFlow

__all__ = ["DCSResult", "max_weight_degree_constrained_subgraph"]


@dataclass
class DCSResult:
    """Result of a Max-DCS computation.

    Attributes:
        edges: the selected edges as ``(left, right)`` pairs.
        total_weight: sum of the weights of the selected edges.
    """

    edges: List[Tuple[Hashable, Hashable]]
    total_weight: float


def max_weight_degree_constrained_subgraph(
    edges: Mapping[Tuple[Hashable, Hashable], float],
    left_degrees: Mapping[Hashable, int],
    right_degrees: Mapping[Hashable, int],
) -> DCSResult:
    """Solve Max-DCS on a bipartite graph with non-negative edge weights.

    Args:
        edges: mapping ``(left node, right node) -> weight``; weights must be
            non-negative (zero-weight edges are never selected).
        left_degrees: maximum degree of each left node; nodes absent from the
            mapping are treated as having degree bound zero.
        right_degrees: maximum degree of each right node (same convention).

    Returns:
        The selected edge set and its total weight.
    """
    for edge, weight in edges.items():
        if weight < 0:
            raise ValueError(f"edge weights must be non-negative, got {weight} for {edge}")

    network = MinCostFlow()
    source = ("__source__",)
    sink = ("__sink__",)
    network.add_node(source)
    network.add_node(sink)

    left_nodes = {left for (left, _right) in edges}
    right_nodes = {right for (_left, right) in edges}

    for left in left_nodes:
        bound = int(left_degrees.get(left, 0))
        if bound > 0:
            network.add_edge(source, ("L", left), bound, 0.0)
    for right in right_nodes:
        bound = int(right_degrees.get(right, 0))
        if bound > 0:
            network.add_edge(("R", right), sink, bound, 0.0)

    handle_to_edge: Dict[int, Tuple[Hashable, Hashable]] = {}
    for (left, right), weight in edges.items():
        if weight <= 0.0:
            continue
        if left_degrees.get(left, 0) <= 0 or right_degrees.get(right, 0) <= 0:
            continue
        handle = network.add_edge(("L", left), ("R", right), 1.0, -float(weight))
        handle_to_edge[handle] = (left, right)

    if not handle_to_edge:
        return DCSResult(edges=[], total_weight=0.0)

    result = network.solve(source, sink, stop_when_nonnegative=True)
    selected: List[Tuple[Hashable, Hashable]] = []
    total = 0.0
    for handle, edge in handle_to_edge.items():
        if result.edge_flows.get(handle, 0.0) > 0.5:
            selected.append(edge)
            total += float(edges[edge])
    return DCSResult(edges=selected, total_weight=total)
