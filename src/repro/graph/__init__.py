"""Graph substrate: min-cost flow and maximum-weight degree-constrained subgraphs."""

from repro.graph.flow import FlowResult, MinCostFlow
from repro.graph.dcs import DCSResult, max_weight_degree_constrained_subgraph

__all__ = [
    "DCSResult",
    "FlowResult",
    "MinCostFlow",
    "max_weight_degree_constrained_subgraph",
]
