"""Minimum-cost flow on directed graphs (successive shortest augmenting paths).

The ``T = 1`` special case of REVMAX is solvable in polynomial time through a
maximum-weight degree-constrained subgraph computation (§3.2).  The classical
way to solve weighted degree-constrained subgraph / b-matching problems is via
minimum-cost flow, which this module implements from scratch:

* residual-graph representation with paired forward/backward arcs,
* Bellman-Ford initialisation of node potentials (costs may be negative
  because maximizing weight is modelled as minimizing negative cost),
* Dijkstra with reduced costs for every subsequent augmentation,
* optional early stopping once the cheapest augmenting path has non-negative
  cost -- exactly the condition under which adding more edges to the subgraph
  would no longer increase its total weight.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = ["MinCostFlow", "FlowResult"]

_INF = float("inf")


@dataclass
class FlowResult:
    """Result of a minimum-cost flow computation.

    Attributes:
        flow_value: total flow shipped from source to sink.
        total_cost: total cost of that flow.
        edge_flows: flow on each original edge, indexed by the handle returned
            from :meth:`MinCostFlow.add_edge`.
    """

    flow_value: float
    total_cost: float
    edge_flows: Dict[int, float]


class MinCostFlow:
    """A small, dependency-free min-cost flow solver.

    Nodes are arbitrary hashable objects; edges are added with a capacity and
    a per-unit cost and are identified by the integer handle returned from
    :meth:`add_edge`.
    """

    def __init__(self) -> None:
        self._index: Dict[object, int] = {}
        self._nodes: List[object] = []
        # Arc arrays: to-node, capacity remaining, cost, index of reverse arc.
        self._to: List[int] = []
        self._cap: List[float] = []
        self._cost: List[float] = []
        self._adj: List[List[int]] = []
        self._edge_handles: List[Tuple[int, float]] = []  # (arc index, original capacity)

    # ------------------------------------------------------------------
    # graph construction
    # ------------------------------------------------------------------
    def add_node(self, node: object) -> int:
        """Register ``node`` (idempotent) and return its internal index."""
        if node not in self._index:
            self._index[node] = len(self._nodes)
            self._nodes.append(node)
            self._adj.append([])
        return self._index[node]

    def add_edge(self, source: object, target: object, capacity: float,
                 cost: float) -> int:
        """Add a directed edge and return its handle.

        Args:
            source: tail node (created if unseen).
            target: head node (created if unseen).
            capacity: maximum flow on the edge (must be non-negative).
            cost: per-unit cost (may be negative).
        """
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        u = self.add_node(source)
        v = self.add_node(target)
        arc = len(self._to)
        self._to.extend([v, u])
        self._cap.extend([float(capacity), 0.0])
        self._cost.extend([float(cost), -float(cost)])
        self._adj[u].append(arc)
        self._adj[v].append(arc + 1)
        handle = len(self._edge_handles)
        self._edge_handles.append((arc, float(capacity)))
        return handle

    @property
    def num_nodes(self) -> int:
        """Number of registered nodes."""
        return len(self._nodes)

    # ------------------------------------------------------------------
    # solving
    # ------------------------------------------------------------------
    def solve(self, source: object, sink: object,
              max_flow: Optional[float] = None,
              stop_when_nonnegative: bool = False) -> FlowResult:
        """Send flow from ``source`` to ``sink`` at minimum cost.

        Args:
            source: source node.
            sink: sink node.
            max_flow: optional cap on the amount of flow to ship; defaults to
                shipping as much as possible.
            stop_when_nonnegative: stop as soon as the cheapest augmenting
                path has non-negative cost.  With profits encoded as negative
                costs this finds the *maximum-profit* (not maximum-flow)
                solution, which is what the Max-DCS reduction needs.

        Returns:
            A :class:`FlowResult`; flows on original edges are recoverable via
            ``edge_flows``.
        """
        if source not in self._index or sink not in self._index:
            raise KeyError("source and sink must be nodes of the graph")
        if source == sink:
            # The zero-length "path" has infinite bottleneck; shipping along
            # it is meaningless, so the answer is simply the empty flow.
            return FlowResult(
                flow_value=0.0, total_cost=0.0,
                edge_flows={handle: 0.0 for handle
                            in range(len(self._edge_handles))},
            )
        s = self._index[source]
        t = self._index[sink]
        n = len(self._nodes)
        remaining = _INF if max_flow is None else float(max_flow)

        potentials = self._bellman_ford(s)
        flow_value = 0.0
        total_cost = 0.0

        while remaining > 0:
            distances, parents = self._dijkstra(s, potentials)
            if distances[t] == _INF:
                break
            path_cost = distances[t] + potentials[t] - potentials[s]
            if stop_when_nonnegative and path_cost >= 0:
                break
            # Update potentials for the next round.
            for node in range(n):
                if distances[node] < _INF:
                    potentials[node] += distances[node]
            # Find bottleneck along the augmenting path.
            bottleneck = remaining
            node = t
            while node != s:
                arc = parents[node]
                bottleneck = min(bottleneck, self._cap[arc])
                node = self._to[arc ^ 1]
            # Augment.
            node = t
            while node != s:
                arc = parents[node]
                self._cap[arc] -= bottleneck
                self._cap[arc ^ 1] += bottleneck
                total_cost += bottleneck * self._cost[arc]
                node = self._to[arc ^ 1]
            flow_value += bottleneck
            remaining -= bottleneck

        edge_flows = {
            handle: original - self._cap[arc]
            for handle, (arc, original) in enumerate(self._edge_handles)
        }
        return FlowResult(flow_value=flow_value, total_cost=total_cost,
                          edge_flows=edge_flows)

    # ------------------------------------------------------------------
    # internal shortest-path routines
    # ------------------------------------------------------------------
    def _bellman_ford(self, source: int) -> List[float]:
        """Initial potentials; handles negative arc costs."""
        n = len(self._nodes)
        distances = [_INF] * n
        distances[source] = 0.0
        for _ in range(n - 1):
            updated = False
            for u in range(n):
                if distances[u] == _INF:
                    continue
                for arc in self._adj[u]:
                    if self._cap[arc] <= 0:
                        continue
                    v = self._to[arc]
                    candidate = distances[u] + self._cost[arc]
                    if candidate < distances[v] - 1e-12:
                        distances[v] = candidate
                        updated = True
            if not updated:
                break
        return [d if d < _INF else 0.0 for d in distances]

    def _dijkstra(self, source: int,
                  potentials: List[float]) -> Tuple[List[float], List[int]]:
        """Shortest paths under reduced costs; returns distances and parent arcs."""
        n = len(self._nodes)
        distances = [_INF] * n
        parents = [-1] * n
        distances[source] = 0.0
        queue = [(0.0, source)]
        visited = [False] * n
        while queue:
            distance, u = heapq.heappop(queue)
            if visited[u]:
                continue
            visited[u] = True
            for arc in self._adj[u]:
                if self._cap[arc] <= 1e-12:
                    continue
                v = self._to[arc]
                reduced = self._cost[arc] + potentials[u] - potentials[v]
                if reduced < -1e-9:
                    # Numerical guard: clamp tiny negative reduced costs.
                    reduced = 0.0
                candidate = distance + max(reduced, 0.0)
                if candidate < distances[v] - 1e-12:
                    distances[v] = candidate
                    parents[v] = arc
                    heapq.heappush(queue, (candidate, v))
        return distances, parents
