"""Serialization of instances, strategies and results to plain JSON.

A production deployment of a REVMAX planner needs to move three artefacts
between systems: the *instance* (assembled by the data pipeline, consumed by
the optimizer), the *strategy* (the recommendation plan handed to the serving
layer), and the *result record* (revenue / runtime diagnostics for
monitoring).  This module provides explicit, dependency-free JSON encodings
for all three, with round-trip guarantees covered by ``tests/test_io.py``.

The format is deliberately simple and versioned so it can be inspected and
produced by other tools:

* instances store dense per-item arrays (prices, capacities, betas, classes)
  and a sparse list of adoption-probability rows;
* strategies store a list of ``[user, item, t]`` triples;
* results store the scalar summary plus the strategy inline.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.algorithms.base import AlgorithmResult
from repro.core.entities import ItemCatalog, Triple
from repro.core.problem import AdoptionTable, RevMaxInstance
from repro.core.strategy import Strategy

__all__ = [
    "FORMAT_VERSION",
    "instance_to_dict",
    "instance_from_dict",
    "save_instance",
    "load_instance",
    "strategy_to_dict",
    "strategy_from_dict",
    "save_strategy",
    "load_strategy",
    "result_to_dict",
    "save_result",
]

#: Version tag written into every serialized document.
FORMAT_VERSION = 1

_PathLike = Union[str, Path]


# ----------------------------------------------------------------------
# instances
# ----------------------------------------------------------------------
def instance_to_dict(instance: RevMaxInstance) -> Dict:
    """Encode an instance as a JSON-serializable dictionary."""
    adoption_rows = []
    for user, item in instance.adoption.pairs():
        vector = instance.adoption.get(user, item)
        adoption_rows.append({
            "user": int(user),
            "item": int(item),
            "probabilities": [float(p) for p in vector],
        })
    return {
        "format_version": FORMAT_VERSION,
        "kind": "revmax-instance",
        "name": instance.name,
        "num_users": instance.num_users,
        "horizon": instance.horizon,
        "display_limit": instance.display_limit,
        "item_class": [int(c) for c in instance.catalog.item_class],
        "class_names": {str(k): v for k, v in instance.catalog.class_names.items()},
        "prices": instance.prices.tolist(),
        "capacities": instance.capacities.tolist(),
        "betas": instance.betas.tolist(),
        "adoption": adoption_rows,
    }


def instance_from_dict(document: Dict) -> RevMaxInstance:
    """Decode an instance from the dictionary produced by :func:`instance_to_dict`.

    Raises:
        ValueError: if the document kind or version is not recognised.
    """
    _check_document(document, "revmax-instance")
    horizon = int(document["horizon"])
    table = AdoptionTable(horizon)
    for row in document["adoption"]:
        table.set(int(row["user"]), int(row["item"]), row["probabilities"])
    catalog = ItemCatalog.from_assignment(
        document["item_class"],
        {int(k): v for k, v in document.get("class_names", {}).items()},
    )
    return RevMaxInstance(
        num_users=int(document["num_users"]),
        catalog=catalog,
        horizon=horizon,
        display_limit=int(document["display_limit"]),
        prices=np.asarray(document["prices"], dtype=float),
        capacities=np.asarray(document["capacities"], dtype=int),
        betas=np.asarray(document["betas"], dtype=float),
        adoption=table,
        name=document.get("name", "revmax-instance"),
    )


def save_instance(instance: RevMaxInstance, path: _PathLike) -> None:
    """Write an instance to a JSON file."""
    _write_json(instance_to_dict(instance), path)


def load_instance(path: _PathLike) -> RevMaxInstance:
    """Read an instance from a JSON file."""
    return instance_from_dict(_read_json(path))


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
def strategy_to_dict(strategy: Strategy, instance_name: Optional[str] = None) -> Dict:
    """Encode a strategy as a JSON-serializable dictionary."""
    return {
        "format_version": FORMAT_VERSION,
        "kind": "revmax-strategy",
        "instance_name": instance_name,
        "triples": [[z.user, z.item, z.t] for z in strategy.sorted_triples()],
    }


def strategy_from_dict(document: Dict, catalog: ItemCatalog) -> Strategy:
    """Decode a strategy; the catalog must match the instance it was built for."""
    _check_document(document, "revmax-strategy")
    triples = [Triple(int(u), int(i), int(t)) for u, i, t in document["triples"]]
    return Strategy(catalog, triples)


def save_strategy(strategy: Strategy, path: _PathLike,
                  instance_name: Optional[str] = None) -> None:
    """Write a strategy to a JSON file."""
    _write_json(strategy_to_dict(strategy, instance_name), path)


def load_strategy(path: _PathLike, catalog: ItemCatalog) -> Strategy:
    """Read a strategy from a JSON file."""
    return strategy_from_dict(_read_json(path), catalog)


# ----------------------------------------------------------------------
# results
# ----------------------------------------------------------------------
def result_to_dict(result: AlgorithmResult) -> Dict:
    """Encode an algorithm result (summary + strategy) for logging."""
    return {
        "format_version": FORMAT_VERSION,
        "kind": "revmax-result",
        "algorithm": result.algorithm,
        "instance_name": result.instance_name,
        "revenue": float(result.revenue),
        "runtime_seconds": float(result.runtime_seconds),
        "strategy_size": result.strategy_size,
        "evaluations": int(result.evaluations),
        "growth_curve": [[int(size), float(revenue)]
                         for size, revenue in result.growth_curve],
        "extras": {key: _json_safe(value) for key, value in result.extras.items()},
        "strategy": strategy_to_dict(result.strategy, result.instance_name),
    }


def save_result(result: AlgorithmResult, path: _PathLike) -> None:
    """Write an algorithm result to a JSON file."""
    _write_json(result_to_dict(result), path)


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _json_safe(value):
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return value


def _check_document(document: Dict, expected_kind: str) -> None:
    kind = document.get("kind")
    if kind != expected_kind:
        raise ValueError(f"expected a {expected_kind!r} document, got {kind!r}")
    version = document.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported format version {version!r} (supported: {FORMAT_VERSION})"
        )


def _write_json(document: Dict, path: _PathLike) -> None:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)


def _read_json(path: _PathLike) -> Dict:
    with Path(path).open("r", encoding="utf-8") as handle:
        return json.load(handle)
