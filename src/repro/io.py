"""Serialization of instances, strategies and results to plain JSON.

A production deployment of a REVMAX planner needs to move three artefacts
between systems: the *instance* (assembled by the data pipeline, consumed by
the optimizer), the *strategy* (the recommendation plan handed to the serving
layer), and the *result record* (revenue / runtime diagnostics for
monitoring).  This module provides explicit, dependency-free JSON encodings
for all three, with round-trip guarantees covered by ``tests/test_io.py``.

The format is deliberately simple and versioned so it can be inspected and
produced by other tools:

* instances store dense per-item arrays (prices, capacities, betas, classes)
  and a sparse list of adoption-probability rows;
* strategies store a list of ``[user, item, t]`` triples;
* results store the scalar summary plus the strategy inline.

Binary columnar format
----------------------
JSON is the interchange format; it is neither compact nor fast at
production scale (a million candidate pairs is ~100 MB of decimal text).
:func:`save_instance_npz` / :func:`load_instance_npz` therefore serialize
the *compiled* columnar tensors of an instance
(:class:`~repro.core.compiled.CompiledInstance`) as a standard uncompressed
NumPy ``.npz`` archive.  On load the big tensors are **memory-mapped**
straight out of the archive (uncompressed zip members are plain ``.npy``
payloads at a known byte offset), so opening a multi-gigabyte instance
costs a few page faults rather than a full read -- and the returned
instance is columnar-backed end to end.
"""

from __future__ import annotations

import json
import zipfile
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.algorithms.base import AlgorithmResult
from repro.core.compiled import CompiledInstance
from repro.core.entities import ItemCatalog, Triple
from repro.core.problem import AdoptionTable, RevMaxInstance
from repro.core.strategy import Strategy
from repro.dynamic.incremental import SolverState

__all__ = [
    "FORMAT_VERSION",
    "instance_to_dict",
    "instance_from_dict",
    "save_instance",
    "load_instance",
    "save_instance_npz",
    "load_instance_npz",
    "load_compiled_npz",
    "attach_instance_shard",
    "strategy_to_dict",
    "strategy_from_dict",
    "save_strategy",
    "load_strategy",
    "solver_state_to_dict",
    "solver_state_from_dict",
    "save_solver_state",
    "load_solver_state",
    "result_to_dict",
    "save_result",
]

#: Version tag written into every serialized document.
FORMAT_VERSION = 1

_PathLike = Union[str, Path]


# ----------------------------------------------------------------------
# instances
# ----------------------------------------------------------------------
def instance_to_dict(instance: RevMaxInstance) -> Dict:
    """Encode an instance as a JSON-serializable dictionary."""
    adoption_rows = []
    for user, item in instance.adoption.pairs():
        vector = instance.adoption.get(user, item)
        adoption_rows.append({
            "user": int(user),
            "item": int(item),
            "probabilities": [float(p) for p in vector],
        })
    return {
        "format_version": FORMAT_VERSION,
        "kind": "revmax-instance",
        "name": instance.name,
        "num_users": instance.num_users,
        "horizon": instance.horizon,
        "display_limit": instance.display_limit,
        "item_class": [int(c) for c in instance.catalog.item_class],
        "class_names": {str(k): v for k, v in instance.catalog.class_names.items()},
        "prices": instance.prices.tolist(),
        "capacities": instance.capacities.tolist(),
        "betas": instance.betas.tolist(),
        "adoption": adoption_rows,
    }


def instance_from_dict(document: Dict) -> RevMaxInstance:
    """Decode an instance from the dictionary produced by :func:`instance_to_dict`.

    Raises:
        ValueError: if the document kind or version is not recognised.
    """
    _check_document(document, "revmax-instance")
    horizon = int(document["horizon"])
    table = AdoptionTable(horizon)
    for row in document["adoption"]:
        table.set(int(row["user"]), int(row["item"]), row["probabilities"])
    catalog = ItemCatalog.from_assignment(
        document["item_class"],
        {int(k): v for k, v in document.get("class_names", {}).items()},
    )
    return RevMaxInstance(
        num_users=int(document["num_users"]),
        catalog=catalog,
        horizon=horizon,
        display_limit=int(document["display_limit"]),
        prices=np.asarray(document["prices"], dtype=float),
        capacities=np.asarray(document["capacities"], dtype=int),
        betas=np.asarray(document["betas"], dtype=float),
        adoption=table,
        name=document.get("name", "revmax-instance"),
    )


def save_instance(instance: RevMaxInstance, path: _PathLike) -> None:
    """Write an instance to a JSON file."""
    _write_json(instance_to_dict(instance), path)


def load_instance(path: _PathLike) -> RevMaxInstance:
    """Read an instance from a JSON file."""
    return instance_from_dict(_read_json(path))


# ----------------------------------------------------------------------
# compiled instances (.npz, memory-mapped on load)
# ----------------------------------------------------------------------
def save_instance_npz(instance: RevMaxInstance, path: _PathLike) -> None:
    """Write an instance's columnar compilation as an uncompressed ``.npz``.

    The archive holds the compiled tensors (``user_ptr``, ``pair_item``,
    ``pair_probs``, ``prices``, ``capacities``, ``betas``, ``item_class``)
    plus the scalar metadata; it is a plain NumPy archive readable by any
    tool.  Compression is deliberately off so that
    :func:`load_instance_npz` can memory-map the tensors in place.
    """
    compiled = instance.compiled()
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    # savez on a file object: no surprise ".npz" suffix appended to the path.
    with path.open("wb") as handle:
        np.savez(
            handle,
            format_version=np.int64(FORMAT_VERSION),
            kind=np.str_("revmax-instance-columnar"),
            name=np.str_(compiled.name),
            class_names_json=np.str_(json.dumps(
                {str(k): v for k, v in instance.catalog.class_names.items()}
            )),
            num_users=np.int64(compiled.num_users),
            horizon=np.int64(compiled.horizon),
            display_limit=np.int64(compiled.display_limit),
            user_ptr=compiled.user_ptr,
            pair_item=compiled.pair_item,
            pair_probs=compiled.pair_probs,
            prices=compiled.prices,
            capacities=compiled.capacities,
            betas=compiled.betas,
            item_class=compiled.item_class,
        )


def _mmap_npz_members(path: Path) -> Optional[Dict[str, np.ndarray]]:
    """Memory-map every member of an *uncompressed* ``.npz`` archive.

    ``np.load`` cannot memory-map zipped archives, but ``np.savez`` stores
    members uncompressed (``ZIP_STORED``), so each member's bytes are a
    verbatim ``.npy`` file at ``local header offset + header size``.  This
    parses the npy header of each member and maps the payload with
    ``np.memmap``.  Returns ``None`` when any member is compressed (fall
    back to a regular load).
    """
    arrays: Dict[str, np.ndarray] = {}
    with zipfile.ZipFile(path) as archive, open(path, "rb") as raw:
        for info in archive.infolist():
            if info.compress_type != zipfile.ZIP_STORED:
                return None
            # Local file header: 30 fixed bytes, then name and extra field
            # (whose length may differ from the central directory's copy).
            raw.seek(info.header_offset)
            local_header = raw.read(30)
            if local_header[:4] != b"PK\x03\x04":
                return None
            name_length = int.from_bytes(local_header[26:28], "little")
            extra_length = int.from_bytes(local_header[28:30], "little")
            raw.seek(info.header_offset + 30 + name_length + extra_length)
            version = np.lib.format.read_magic(raw)
            if version == (1, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_1_0(raw)
            elif version == (2, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_2_0(raw)
            else:
                return None
            key = info.filename[:-4] if info.filename.endswith(".npy") else (
                info.filename
            )
            arrays[key] = np.memmap(
                path, dtype=dtype, mode="r", offset=raw.tell(), shape=shape,
                order="F" if fortran else "C",
            )
    return arrays


def _load_npz_arrays(path: Path, mmap: bool) -> Dict[str, np.ndarray]:
    """Load (memory-mapping when possible) and type-check an archive."""
    arrays = _mmap_npz_members(path) if mmap else None
    if arrays is None:
        with np.load(path, allow_pickle=False) as archive:
            arrays = {key: archive[key] for key in archive.files}
    kind = str(arrays["kind"])
    if kind != "revmax-instance-columnar":
        raise ValueError(
            f"expected a 'revmax-instance-columnar' archive, got {kind!r}"
        )
    version = int(arrays["format_version"])
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported format version {version!r} (supported: {FORMAT_VERSION})"
        )
    return arrays


def _compiled_from_arrays(arrays: Dict[str, np.ndarray],
                          path: Path) -> CompiledInstance:
    compiled = CompiledInstance(
        num_users=int(arrays["num_users"]),
        horizon=int(arrays["horizon"]),
        display_limit=int(arrays["display_limit"]),
        user_ptr=arrays["user_ptr"],
        pair_item=arrays["pair_item"],
        pair_probs=arrays["pair_probs"],
        prices=arrays["prices"],
        capacities=arrays["capacities"],
        betas=arrays["betas"],
        item_class=arrays["item_class"],
        name=str(arrays["name"]),
        # The writer validated; a full check would page in every tensor and
        # defeat the lazy memory mapping.
        validate=False,
    )
    compiled.source_path = str(path)
    return compiled


def load_compiled_npz(path: _PathLike, mmap: bool = True) -> CompiledInstance:
    """Read the bare :class:`CompiledInstance` out of a ``.npz`` archive.

    The tensors are memory-mapped by default, so this costs a few page
    faults regardless of the archive size; ``source_path`` is recorded on
    the compilation so downstream consumers (the sharded solver's workers)
    can re-attach by path instead of shipping tensors around.
    """
    path = Path(path)
    return _compiled_from_arrays(_load_npz_arrays(path, mmap), path)


def attach_instance_shard(path: _PathLike, user_start: int,
                          user_stop: int) -> CompiledInstance:
    """Attach to one user shard of a saved instance, by path + range.

    This is the worker-process entry point of the sharded solver's ``.npz``
    backing: the archive is memory-mapped (never deserialized wholesale) and
    the returned compilation holds zero-copy row slices covering users
    ``[user_start, user_stop)`` -- reading a shard of a multi-gigabyte
    instance pages in only that shard's rows.  User ids stay global; see
    :meth:`repro.core.compiled.CompiledInstance.shard`.
    """
    return load_compiled_npz(path, mmap=True).shard(user_start, user_stop)


def load_instance_npz(path: _PathLike, mmap: bool = True) -> RevMaxInstance:
    """Read a columnar instance from ``.npz``; tensors memory-mapped by default.

    Args:
        path: archive written by :func:`save_instance_npz`.
        mmap: map the tensors read-only straight out of the archive
            (``False`` or a compressed archive reads them into memory).

    Returns:
        A columnar-backed :class:`~repro.core.problem.RevMaxInstance`; its
        ``compiled()`` is free and no pair dict exists.
    """
    path = Path(path)
    arrays = _load_npz_arrays(path, mmap)
    compiled = _compiled_from_arrays(arrays, path)
    class_names = {
        int(k): v
        for k, v in json.loads(str(arrays.get("class_names_json", "{}"))).items()
    }
    catalog = ItemCatalog.from_assignment(
        compiled.item_class.tolist(), class_names
    )
    return compiled.as_instance(catalog=catalog)


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
def strategy_to_dict(strategy: Strategy, instance_name: Optional[str] = None) -> Dict:
    """Encode a strategy as a JSON-serializable dictionary."""
    return {
        "format_version": FORMAT_VERSION,
        "kind": "revmax-strategy",
        "instance_name": instance_name,
        "triples": [[z.user, z.item, z.t] for z in strategy.sorted_triples()],
    }


def strategy_from_dict(document: Dict, catalog: ItemCatalog) -> Strategy:
    """Decode a strategy; the catalog must match the instance it was built for."""
    _check_document(document, "revmax-strategy")
    triples = [Triple(int(u), int(i), int(t)) for u, i, t in document["triples"]]
    return Strategy(catalog, triples)


def save_strategy(strategy: Strategy, path: _PathLike,
                  instance_name: Optional[str] = None) -> None:
    """Write a strategy to a JSON file."""
    _write_json(strategy_to_dict(strategy, instance_name), path)


def load_strategy(path: _PathLike, catalog: ItemCatalog) -> Strategy:
    """Read a strategy from a JSON file."""
    return strategy_from_dict(_read_json(path), catalog)


# ----------------------------------------------------------------------
# solver state (the dynamic re-solve layer's warm start)
# ----------------------------------------------------------------------
def solver_state_to_dict(state: SolverState) -> Dict:
    """Encode an incremental solver's warm state as a JSON document.

    The document holds the admission sequence in global admission order
    (triple + float gain per row) plus the per-user pop sequences the next
    re-solve merges -- exactly what
    :meth:`repro.dynamic.incremental.IncrementalSolver.state` exports.
    Persisted alongside the instance's ``.npz``, it lets a later process
    warm-start an incremental re-solve without re-running the cold solve.
    Floats round-trip exactly (``json`` uses ``repr`` shortest-round-trip
    encoding), so a warm start preserves the bit-identity guarantee.
    """
    return {
        "format_version": FORMAT_VERSION,
        "kind": "revmax-solver-state",
        "instance_name": state.instance_name,
        "signature": state.signature,
        "complete": bool(state.complete),
        "admits": [
            [int(user), int(item), int(t), float(gain)]
            for user, item, t, gain in state.admits
        ],
        "events": {
            str(user): [
                [float(priority), int(item), int(t), int(admitted)]
                for priority, item, t, admitted in sequence
            ]
            for user, sequence in state.events.items()
        },
    }


def solver_state_from_dict(document: Dict) -> SolverState:
    """Decode a solver state from :func:`solver_state_to_dict`'s document."""
    _check_document(document, "revmax-solver-state")
    return SolverState(
        admits=[
            (int(user), int(item), int(t), float(gain))
            for user, item, t, gain in document["admits"]
        ],
        events={
            int(user): [
                (float(priority), int(item), int(t), bool(admitted))
                for priority, item, t, admitted in sequence
            ]
            for user, sequence in document.get("events", {}).items()
        },
        complete=bool(document.get("complete", False)),
        instance_name=document.get("instance_name", "revmax-instance"),
        signature=document.get("signature", ""),
    )


def save_solver_state(state: SolverState, path: _PathLike) -> None:
    """Write an incremental solver's warm state to a JSON file."""
    _write_json(solver_state_to_dict(state), path)


def load_solver_state(path: _PathLike) -> SolverState:
    """Read an incremental solver's warm state from a JSON file."""
    return solver_state_from_dict(_read_json(path))


# ----------------------------------------------------------------------
# results
# ----------------------------------------------------------------------
def result_to_dict(result: AlgorithmResult) -> Dict:
    """Encode an algorithm result (summary + strategy) for logging."""
    return {
        "format_version": FORMAT_VERSION,
        "kind": "revmax-result",
        "algorithm": result.algorithm,
        "instance_name": result.instance_name,
        "revenue": float(result.revenue),
        "runtime_seconds": float(result.runtime_seconds),
        "strategy_size": result.strategy_size,
        "evaluations": int(result.evaluations),
        "growth_curve": [[int(size), float(revenue)]
                         for size, revenue in result.growth_curve],
        "extras": {key: _json_safe(value) for key, value in result.extras.items()},
        "strategy": strategy_to_dict(result.strategy, result.instance_name),
    }


def save_result(result: AlgorithmResult, path: _PathLike) -> None:
    """Write an algorithm result to a JSON file."""
    _write_json(result_to_dict(result), path)


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _json_safe(value):
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return value


def _check_document(document: Dict, expected_kind: str) -> None:
    kind = document.get("kind")
    if kind != expected_kind:
        raise ValueError(f"expected a {expected_kind!r} document, got {kind!r}")
    version = document.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported format version {version!r} (supported: {FORMAT_VERSION})"
        )


def _write_json(document: Dict, path: _PathLike) -> None:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)


def _read_json(path: _PathLike) -> Dict:
    with Path(path).open("r", encoding="utf-8") as handle:
        return json.load(handle)
