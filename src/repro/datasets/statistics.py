"""Dataset statistics in the format of Table 1 of the paper.

Table 1 reports, per dataset: #users, #items, #ratings, #triples with
positive primitive adoption probability, #item classes, and the largest /
smallest / median class sizes.  :func:`dataset_statistics` computes the same
quantities for a reproduction dataset and its derived REVMAX instance, and
:func:`format_table1` renders a text table comparable with the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.problem import RevMaxInstance
from repro.datasets.schema import MarketDataset

__all__ = ["DatasetStatistics", "dataset_statistics", "format_table1"]


@dataclass
class DatasetStatistics:
    """The Table-1 row of one dataset.

    Attributes:
        name: dataset label.
        num_users: number of users.
        num_items: number of items.
        num_ratings: number of observed ratings (``None`` for synthetic data,
            which skips the rating step -- "N/A" in the paper).
        num_positive_triples: candidate triples with positive primitive
            adoption probability (the bold "true input size" of Table 1).
        num_classes: number of item classes.
        largest_class / smallest_class / median_class: class-size summary.
    """

    name: str
    num_users: int
    num_items: int
    num_ratings: Optional[int]
    num_positive_triples: int
    num_classes: int
    largest_class: int
    smallest_class: int
    median_class: float


def dataset_statistics(instance: RevMaxInstance,
                       dataset: Optional[MarketDataset] = None,
                       name: Optional[str] = None) -> DatasetStatistics:
    """Compute the Table-1 statistics of an instance (and its source dataset)."""
    sizes = list(instance.catalog.class_sizes().values())
    return DatasetStatistics(
        name=name or (dataset.name if dataset is not None else instance.name),
        num_users=instance.num_users,
        num_items=instance.num_items,
        num_ratings=(dataset.num_ratings if dataset is not None else None),
        num_positive_triples=instance.num_candidate_triples(),
        num_classes=instance.catalog.num_classes,
        largest_class=int(max(sizes)),
        smallest_class=int(min(sizes)),
        median_class=float(np.median(sizes)),
    )


def format_table1(rows: Sequence[DatasetStatistics]) -> str:
    """Render Table 1 ("Data Statistics") as aligned text."""
    headers = [
        "", *[row.name for row in rows],
    ]
    lines: List[List[str]] = [
        ["#Users"] + [f"{row.num_users:,}" for row in rows],
        ["#Items"] + [f"{row.num_items:,}" for row in rows],
        ["#Ratings"] + [
            f"{row.num_ratings:,}" if row.num_ratings is not None else "N/A"
            for row in rows
        ],
        ["#Triples with positive q"] + [
            f"{row.num_positive_triples:,}" for row in rows
        ],
        ["#Item classes"] + [f"{row.num_classes:,}" for row in rows],
        ["Largest class size"] + [f"{row.largest_class:,}" for row in rows],
        ["Smallest class size"] + [f"{row.smallest_class:,}" for row in rows],
        ["Median class size"] + [f"{row.median_class:g}" for row in rows],
    ]
    table = [headers] + lines
    widths = [
        max(len(str(row[column])) for row in table)
        for column in range(len(headers))
    ]
    rendered = []
    for row in table:
        rendered.append("  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(rendered)
