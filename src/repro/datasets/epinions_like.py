"""Epinions-like dataset simulator.

The paper's Epinions dataset is ultra-sparse (21.3K users, 1.1K items, only
32.9K ratings), has smaller and more even item classes than Amazon (43
classes, largest 52, median 27), and crucially carries *reported prices*
rather than a price time series: reviewers optionally state the price they
paid, and §6.1 fits a Gaussian KDE per item to those reports to obtain both a
sampled price series and a valuation distribution.

This simulator reproduces those characteristics: sparse ratings over a small
item set, balanced classes, and per-item reported-price lists drawn from a
noisy distribution around a hidden true price (different sellers, different
times, different bundles -- hence the spread).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.entities import ItemCatalog
from repro.datasets.schema import MarketDataset
from repro.recsys.ratings import RatingsMatrix

__all__ = ["EpinionsLikeConfig", "generate_epinions_like"]

_EPINIONS_CLASSES = (
    "kitchen", "vacuum", "stroller", "car-seat", "printer", "blender",
    "luggage", "toaster", "coffee-maker", "microwave", "fan", "heater",
)


@dataclass
class EpinionsLikeConfig:
    """Knobs of the Epinions-like generator.

    Attributes:
        num_users: number of users (paper: 21.3K).
        num_items: number of items (paper: 1.1K).
        num_classes: number of item classes (paper: 43).
        horizon: planning horizon (paper: 7, sampled from the KDE).
        ratings_per_user_mean: average ratings per user (Epinions is sparse,
            ~1.5 in the paper; slightly higher here so MF has signal at small
            scale).
        reports_per_item_mean: average number of reported prices per item
            (items with fewer than 10 reports were filtered in the paper).
        min_reports_per_item: items below this report count are dropped from
            the reported-price map (their prices fall back to a constant).
        price_min / price_max: range of hidden true prices.
        price_report_noise: relative spread of reported prices around the true
            price.
        latent_dim / rating_noise: ground-truth rating model parameters.
        seed: master random seed.
    """

    num_users: int = 350
    num_items: int = 80
    num_classes: int = 10
    horizon: int = 7
    ratings_per_user_mean: float = 8.0
    reports_per_item_mean: float = 18.0
    min_reports_per_item: int = 5
    price_min: float = 10.0
    price_max: float = 400.0
    price_report_noise: float = 0.15
    latent_dim: int = 5
    rating_noise: float = 0.6
    seed: Optional[int] = 11


def _balanced_class_assignment(num_items: int, num_classes: int,
                               rng: np.random.Generator) -> List[int]:
    """Assign items to classes with roughly even sizes (Epinions style)."""
    assignment = [item % num_classes for item in range(num_items)]
    rng.shuffle(assignment)
    return assignment


def generate_epinions_like(config: Optional[EpinionsLikeConfig] = None) -> MarketDataset:
    """Generate an Epinions-like :class:`~repro.datasets.schema.MarketDataset`."""
    config = config or EpinionsLikeConfig()
    rng = np.random.default_rng(config.seed)

    class_assignment = _balanced_class_assignment(
        config.num_items, config.num_classes, rng
    )
    class_names = {
        class_id: _EPINIONS_CLASSES[class_id % len(_EPINIONS_CLASSES)]
        for class_id in range(config.num_classes)
    }
    catalog = ItemCatalog.from_assignment(class_assignment, class_names)

    true_prices = rng.uniform(config.price_min, config.price_max, size=config.num_items)

    # Reported prices: each report is the true price perturbed by seller and
    # condition effects; heavier noise than Amazon's daily fluctuations.
    reported_prices: Dict[int, List[float]] = {}
    for item in range(config.num_items):
        count = max(2, int(rng.poisson(config.reports_per_item_mean)))
        reports = true_prices[item] * (
            1.0 + rng.normal(0.0, config.price_report_noise, size=count)
        )
        reports = np.clip(reports, 0.2 * true_prices[item], None)
        if count >= config.min_reports_per_item:
            reported_prices[item] = [float(r) for r in reports]

    # Sparse ratings from a latent ground truth.
    user_factors = rng.normal(0.0, 1.0, size=(config.num_users, config.latent_dim))
    item_factors = rng.normal(0.0, 1.0, size=(config.num_items, config.latent_dim))
    ratings = RatingsMatrix(config.num_users, config.num_items, rating_scale=(1.0, 5.0))
    scale = 1.2 / np.sqrt(config.latent_dim)
    for user in range(config.num_users):
        count = max(1, int(rng.poisson(config.ratings_per_user_mean)))
        count = min(count, config.num_items)
        items = rng.choice(config.num_items, size=count, replace=False)
        for item in items:
            affinity = float(user_factors[user] @ item_factors[item]) * scale
            value = 3.0 + affinity + rng.normal(0.0, config.rating_noise)
            ratings.add(user, int(item), float(np.clip(np.round(value), 1.0, 5.0)))

    item_names = {
        item: f"{class_names[class_assignment[item]]}-{item}"
        for item in range(config.num_items)
    }
    return MarketDataset(
        name="epinions-like",
        ratings=ratings,
        catalog=catalog,
        horizon=config.horizon,
        prices=None,
        reported_prices=reported_prices,
        item_names=item_names,
        base_prices=true_prices,
    )
