"""Per-item capacity and saturation-factor samplers used by the experiments.

§6.1 draws item capacities ``q_i`` from several distributions (Gaussian,
exponential, and -- in Figure 1 -- normal / power-law / uniform) and draws
saturation factors either uniformly at random from [0, 1] or fixes them to a
single value in {0.1, 0.5, 0.9}.  This module collects those samplers so every
benchmark configures its instance the same way.

The paper's capacity scale (mean 5000) reflects its 23K-user datasets; at
reproduction scale capacities are expressed as a fraction of the user count so
the constraint bites comparably hard.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = [
    "CAPACITY_DISTRIBUTIONS",
    "sample_capacities",
    "sample_betas",
]

#: Names of the capacity distributions used across Figures 1 and 2.
CAPACITY_DISTRIBUTIONS = ("normal", "power", "uniform", "exponential")


def sample_capacities(
    num_items: int,
    num_users: int,
    distribution: str = "normal",
    mean_fraction: float = 0.2,
    seed: Optional[int] = 0,
) -> np.ndarray:
    """Sample per-item capacities from one of the paper's distributions.

    Args:
        num_items: number of items.
        num_users: number of users (capacities scale with the audience size).
        distribution: one of ``"normal"``, ``"power"``, ``"uniform"``,
            ``"exponential"``.
        mean_fraction: target mean capacity as a fraction of ``num_users``
            (the paper's mean of 5000 over ~23K users is roughly 0.2).
        seed: random seed.

    Returns:
        An integer array of length ``num_items`` with capacities of at least 1.
    """
    if num_items <= 0 or num_users <= 0:
        raise ValueError("num_items and num_users must be positive")
    if not (0.0 < mean_fraction <= 1.0):
        raise ValueError("mean_fraction must be in (0, 1]")
    rng = np.random.default_rng(seed)
    mean_capacity = max(1.0, mean_fraction * num_users)
    if distribution == "normal":
        # Paper: N(5000, 200-300); keep the same coefficient of variation.
        draws = rng.normal(mean_capacity, 0.05 * mean_capacity, size=num_items)
    elif distribution == "power":
        # Pareto-like heavy tail rescaled to the target mean.
        raw = rng.pareto(2.5, size=num_items) + 1.0
        draws = raw * mean_capacity / np.mean(raw)
    elif distribution == "uniform":
        draws = rng.uniform(0.5 * mean_capacity, 1.5 * mean_capacity, size=num_items)
    elif distribution == "exponential":
        # Paper: exponential with mean 5000.
        draws = rng.exponential(mean_capacity, size=num_items)
    else:
        raise ValueError(
            f"unknown capacity distribution {distribution!r}; "
            f"expected one of {CAPACITY_DISTRIBUTIONS}"
        )
    return np.maximum(1, np.round(draws)).astype(int)


def sample_betas(
    num_items: int,
    mode: str = "uniform",
    value: Optional[float] = None,
    seed: Optional[int] = 0,
) -> np.ndarray:
    """Sample per-item saturation factors.

    Args:
        num_items: number of items.
        mode: ``"uniform"`` draws each ``beta_i`` uniformly from [0, 1] (the
            Figure 1 setting); ``"fixed"`` uses the single ``value`` for every
            item (the Figures 2-3 settings of 0.1 / 0.5 / 0.9).
        value: the fixed value when ``mode == "fixed"``.
        seed: random seed for the uniform mode.
    """
    if num_items <= 0:
        raise ValueError("num_items must be positive")
    if mode == "uniform":
        rng = np.random.default_rng(seed)
        return rng.uniform(0.0, 1.0, size=num_items)
    if mode == "fixed":
        if value is None or not (0.0 <= value <= 1.0):
            raise ValueError("fixed mode requires a value in [0, 1]")
        return np.full(num_items, float(value))
    raise ValueError(f"unknown beta mode {mode!r}; expected 'uniform' or 'fixed'")
