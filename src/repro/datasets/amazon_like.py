"""Amazon-Electronics-like dataset simulator.

The paper crawled prices and ratings of ~5000 popular Electronics items
(Kindle, Xbox, accessories, ...) over two months and kept items with at least
10 ratings, giving 23.0K users, 4.2K items, 681K ratings and 94 item classes
with a heavily skewed class-size distribution (largest 1081, median 12).  The
real crawl is unavailable, so this module generates a dataset with the same
*shape*:

* far more users than items, with long-tail rating counts per item;
* a modest number of item classes with a skewed (power-law-like) size
  distribution;
* ratings produced by a latent-factor ground truth (so matrix factorization
  has signal to recover);
* a daily exact price series per item with small fluctuations and occasional
  sales, as the paper observed on Amazon.

All sizes are parameters; the defaults are a laptop-scale reduction of the
paper's dataset (see DESIGN.md §6, "Scale-down policy").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.entities import ItemCatalog
from repro.datasets.schema import MarketDataset
from repro.pricing.price_series import generate_price_matrix
from repro.recsys.ratings import RatingsMatrix

__all__ = ["AmazonLikeConfig", "generate_amazon_like"]

_ELECTRONICS_CLASSES = (
    "e-reader", "tablet", "smartphone", "laptop", "headphones", "speaker",
    "game-console", "video-game", "camera", "tv", "router", "smartwatch",
    "keyboard", "mouse", "monitor", "charger", "cable", "case",
)


@dataclass
class AmazonLikeConfig:
    """Knobs of the Amazon-like generator.

    Attributes:
        num_users: number of users (paper: 23.0K).
        num_items: number of items (paper: 4.2K).
        num_classes: number of item classes (paper: 94).
        horizon: planning horizon in days (paper: 7).
        ratings_per_user_mean: average number of ratings per user.
        latent_dim: dimensionality of the ground-truth latent factors.
        rating_noise: standard deviation of rating noise.
        price_min / price_max: base price range across classes.
        min_ratings_per_item: items below this are filtered out, as in §6.1.
        seed: master random seed.
    """

    num_users: int = 400
    num_items: int = 120
    num_classes: int = 12
    horizon: int = 7
    ratings_per_user_mean: float = 25.0
    latent_dim: int = 6
    rating_noise: float = 0.4
    price_min: float = 15.0
    price_max: float = 600.0
    min_ratings_per_item: int = 3
    seed: Optional[int] = 7


def _skewed_class_assignment(num_items: int, num_classes: int,
                             rng: np.random.Generator) -> List[int]:
    """Assign items to classes with a skewed (Zipf-like) size distribution."""
    weights = 1.0 / np.arange(1, num_classes + 1) ** 1.1
    weights /= weights.sum()
    assignment = rng.choice(num_classes, size=num_items, p=weights)
    # Guarantee every class has at least one item so class statistics are
    # well-defined even at small scale.
    for class_id in range(num_classes):
        if class_id not in assignment:
            assignment[rng.integers(0, num_items)] = class_id
    return assignment.tolist()


def generate_amazon_like(config: Optional[AmazonLikeConfig] = None) -> MarketDataset:
    """Generate an Amazon-like :class:`~repro.datasets.schema.MarketDataset`."""
    config = config or AmazonLikeConfig()
    rng = np.random.default_rng(config.seed)

    class_assignment = _skewed_class_assignment(
        config.num_items, config.num_classes, rng
    )
    class_names = {
        class_id: _ELECTRONICS_CLASSES[class_id % len(_ELECTRONICS_CLASSES)]
        for class_id in range(config.num_classes)
    }
    catalog = ItemCatalog.from_assignment(class_assignment, class_names)

    # Base prices: items of the same class share a price regime (tablets are
    # pricier than cables) with per-item variation.
    class_price_levels = rng.uniform(
        config.price_min, config.price_max, size=config.num_classes
    )
    base_prices = np.array([
        max(config.price_min * 0.5,
            class_price_levels[class_assignment[item]] * rng.uniform(0.7, 1.3))
        for item in range(config.num_items)
    ])

    # Ground-truth latent factors drive both ratings and item popularity.
    user_factors = rng.normal(0.0, 1.0, size=(config.num_users, config.latent_dim))
    item_factors = rng.normal(0.0, 1.0, size=(config.num_items, config.latent_dim))
    item_popularity = rng.pareto(1.5, size=config.num_items) + 0.5
    item_popularity /= item_popularity.sum()

    ratings = RatingsMatrix(config.num_users, config.num_items, rating_scale=(1.0, 5.0))
    scale = 1.2 / np.sqrt(config.latent_dim)
    for user in range(config.num_users):
        count = max(1, int(rng.poisson(config.ratings_per_user_mean)))
        count = min(count, config.num_items)
        items = rng.choice(
            config.num_items, size=count, replace=False, p=item_popularity
        )
        for item in items:
            affinity = float(user_factors[user] @ item_factors[item]) * scale
            value = 3.0 + affinity + rng.normal(0.0, config.rating_noise)
            ratings.add(user, int(item), float(np.clip(np.round(value), 1.0, 5.0)))

    filtered = ratings.filter_items_with_min_ratings(config.min_ratings_per_item)
    if len(filtered) == 0:
        # Degenerate configuration (tiny test sizes): fall back to unfiltered.
        filtered = ratings

    prices = generate_price_matrix(
        base_prices, config.horizon, rng,
        fluctuation=0.05, sale_probability=0.25, sale_depth=0.3,
    )

    item_names = {
        item: f"{class_names[class_assignment[item]]}-{item}"
        for item in range(config.num_items)
    }
    return MarketDataset(
        name="amazon-like",
        ratings=filtered,
        catalog=catalog,
        horizon=config.horizon,
        prices=prices,
        reported_prices=None,
        item_names=item_names,
        base_prices=base_prices,
    )
