"""Dataset containers shared by the Amazon-like and Epinions-like simulators.

A :class:`MarketDataset` bundles everything the §6 preprocessing pipeline
needs before a REVMAX instance can be assembled:

* a sparse ratings matrix (input to matrix factorization),
* an item catalog with competition classes,
* either an exact daily price matrix (Amazon style) or per-item lists of
  reported prices (Epinions style), or both,
* item display names for human-readable examples.

The pipeline that turns a dataset into a :class:`~repro.core.problem.RevMaxInstance`
lives in :mod:`repro.datasets.pipeline`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.entities import ItemCatalog
from repro.recsys.ratings import RatingsMatrix

__all__ = ["MarketDataset"]


@dataclass
class MarketDataset:
    """A simulated e-commerce dataset.

    Attributes:
        name: dataset label ("amazon-like", "epinions-like", ...).
        ratings: observed user-item ratings.
        catalog: item catalog with competition classes.
        horizon: planning horizon ``T`` used when building instances.
        prices: optional exact ``(num_items, horizon)`` price matrix.
        reported_prices: optional per-item reported price lists (Epinions
            style); used to fit KDE price/valuation distributions.
        item_names: optional display names per item.
        base_prices: reference per-item price points used by the generators.
    """

    name: str
    ratings: RatingsMatrix
    catalog: ItemCatalog
    horizon: int
    prices: Optional[np.ndarray] = None
    reported_prices: Optional[Dict[int, List[float]]] = None
    item_names: Dict[int, str] = field(default_factory=dict)
    base_prices: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")
        if self.catalog.num_items != self.ratings.num_items:
            raise ValueError("catalog and ratings disagree on the number of items")
        if self.prices is not None:
            self.prices = np.asarray(self.prices, dtype=float)
            expected = (self.catalog.num_items, self.horizon)
            if self.prices.shape != expected:
                raise ValueError(
                    f"prices must have shape {expected}, got {self.prices.shape}"
                )
        if self.prices is None and self.reported_prices is None:
            raise ValueError("a dataset needs either exact prices or reported prices")

    @property
    def num_users(self) -> int:
        """Number of users."""
        return self.ratings.num_users

    @property
    def num_items(self) -> int:
        """Number of items."""
        return self.ratings.num_items

    @property
    def num_ratings(self) -> int:
        """Number of observed ratings."""
        return len(self.ratings)

    def has_exact_prices(self) -> bool:
        """True if the dataset carries a ground-truth price time series."""
        return self.prices is not None

    def item_name(self, item: int) -> str:
        """Display name of ``item`` (falls back to ``item-<id>``)."""
        return self.item_names.get(item, f"item-{item}")
