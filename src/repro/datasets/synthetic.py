"""Synthetic scalability instances (§6.1, "Synthetic Data").

The paper gauges scalability on synthetic instances with 100K-500K users,
20K items in 500 classes, T = 5, and 100 candidate items per user (so the
largest instance has 250M candidate triples, 2.5x Netflix).  The generation
recipe is:

* for each item, draw ``x_i`` uniformly from [10, 500] and set every price
  ``p(i, t)`` uniformly from ``[x_i, 2 x_i]``;
* for each user, pick 100 random candidate items; for each, draw ``T``
  adoption probabilities from a Gaussian centred at a per-item level ``y_i``
  (itself uniform in [0, 1]) with variance 0.1;
* re-order the probabilities against the prices so that higher price pairs
  with lower probability (anti-monotonicity).

The generator below follows that recipe exactly and produces a ready-to-solve
:class:`~repro.core.problem.RevMaxInstance` (no ratings / MF step is needed:
the paper skips it for synthetic data too).  Sizes are parameters; paper-scale
values are documented but the defaults are laptop-scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.compiled import CompiledInstance
from repro.core.entities import ItemCatalog
from repro.core.problem import AdoptionTable, RevMaxInstance

__all__ = [
    "SyntheticConfig",
    "generate_synthetic_instance",
    "generate_synthetic_columnar",
]


@dataclass
class SyntheticConfig:
    """Knobs of the synthetic scalability generator.

    Attributes:
        num_users: number of users (paper: 100K-500K).
        num_items: number of items (paper: 20K).
        num_classes: number of item classes (paper: 500).
        horizon: number of time steps (paper: 5).
        candidates_per_user: candidate items per user (paper: 100).
        display_limit: the display constraint ``k``.
        capacity_fraction: per-item capacity as a fraction of the user count.
        beta: saturation factor applied to every item.
        price_low / price_high: range of the per-item base draw ``x_i``.
        probability_std: std-dev of the per-triple probability draws.
        seed: master random seed.
    """

    num_users: int = 2000
    num_items: int = 400
    num_classes: int = 50
    horizon: int = 5
    candidates_per_user: int = 20
    display_limit: int = 2
    capacity_fraction: float = 0.25
    beta: float = 0.5
    price_low: float = 10.0
    price_high: float = 500.0
    probability_std: float = 0.1
    seed: Optional[int] = 13


def generate_synthetic_instance(config: Optional[SyntheticConfig] = None
                                ) -> RevMaxInstance:
    """Generate a synthetic REVMAX instance per the paper's recipe."""
    config = config or SyntheticConfig()
    if config.candidates_per_user > config.num_items:
        raise ValueError("candidates_per_user cannot exceed num_items")
    rng = np.random.default_rng(config.seed)

    item_class = rng.integers(0, config.num_classes, size=config.num_items)
    catalog = ItemCatalog.from_assignment(item_class.tolist())

    base = rng.uniform(config.price_low, config.price_high, size=config.num_items)
    prices = rng.uniform(
        base[:, None], 2.0 * base[:, None], size=(config.num_items, config.horizon)
    )

    item_level = rng.uniform(0.0, 1.0, size=config.num_items)

    adoption = AdoptionTable(config.horizon)
    for user in range(config.num_users):
        items = rng.choice(
            config.num_items, size=config.candidates_per_user, replace=False
        )
        for item in items:
            draws = rng.normal(
                item_level[item], config.probability_std, size=config.horizon
            )
            draws = np.clip(draws, 0.01, 1.0)
            # Anti-monotone matching: the highest probability is paired with
            # the lowest price of the item's series.
            price_order = np.argsort(prices[item])          # cheapest first
            probability_order = np.argsort(-draws)           # largest first
            vector = np.empty(config.horizon)
            vector[price_order] = draws[probability_order]
            adoption.set(user, int(item), vector)

    capacities = np.maximum(
        1, int(round(config.capacity_fraction * config.num_users))
    ) * np.ones(config.num_items, dtype=int)
    betas = np.full(config.num_items, float(config.beta))

    return RevMaxInstance(
        num_users=config.num_users,
        catalog=catalog,
        horizon=config.horizon,
        display_limit=config.display_limit,
        prices=prices,
        capacities=capacities,
        betas=betas,
        adoption=adoption,
        name=f"synthetic-{config.num_users}u-{config.num_items}i",
    )


#: Users processed per vectorized batch by the columnar generator; bounds the
#: transient (chunk, num_items) random matrix to a few dozen MB.
_COLUMNAR_CHUNK = 4096


def generate_synthetic_columnar(config: Optional[SyntheticConfig] = None
                                ) -> RevMaxInstance:
    """Generate a synthetic instance straight into the columnar layout.

    Same recipe as :func:`generate_synthetic_instance` (per-item price bands,
    per-pair Gaussian probability draws, anti-monotone price/probability
    matching) but executed as chunked array programs that write the CSR
    candidate tensors of :class:`~repro.core.compiled.CompiledInstance`
    directly -- the per-pair dict of the object layout is never
    materialized, which is what makes paper-scale instances (100K+ users,
    millions of candidate pairs) generate in seconds.  The returned
    instance's adoption table is a read-only columnar view and its
    ``compiled()`` is free.

    The random stream differs from the per-user loop of the object
    generator, so the two functions produce statistically identical but not
    numerically identical instances.
    """
    config = config or SyntheticConfig()
    if config.candidates_per_user > config.num_items:
        raise ValueError("candidates_per_user cannot exceed num_items")
    rng = np.random.default_rng(config.seed)
    num_users, num_items = config.num_users, config.num_items
    per_user, horizon = config.candidates_per_user, config.horizon

    item_class = rng.integers(0, config.num_classes, size=num_items)
    catalog = ItemCatalog.from_assignment(item_class.tolist())

    base = rng.uniform(config.price_low, config.price_high, size=num_items)
    prices = rng.uniform(
        base[:, None], 2.0 * base[:, None], size=(num_items, horizon)
    )
    item_level = rng.uniform(0.0, 1.0, size=num_items)
    price_order = np.argsort(prices, axis=1)                # cheapest first

    pair_item = np.empty(num_users * per_user, dtype=np.int64)
    pair_probs = np.empty((num_users * per_user, horizon), dtype=np.float64)
    for start in range(0, num_users, _COLUMNAR_CHUNK):
        stop = min(start + _COLUMNAR_CHUNK, num_users)
        chunk = stop - start
        # Distinct candidate items per user: top-k of per-user random keys
        # (uniform over item subsets), sorted ascending for the CSR layout.
        keys = rng.random((chunk, num_items))
        items = np.sort(keys.argpartition(per_user - 1, axis=1)[:, :per_user],
                        axis=1)
        flat_items = items.reshape(-1)
        draws = rng.normal(
            item_level[flat_items][:, None], config.probability_std,
            size=(chunk * per_user, horizon),
        )
        draws = np.clip(draws, 0.01, 1.0)
        # Anti-monotone matching: highest probability on the cheapest price.
        descending = np.sort(draws, axis=1)[:, ::-1]
        probs = np.empty_like(draws)
        np.put_along_axis(probs, price_order[flat_items], descending, axis=1)
        rows = slice(start * per_user, stop * per_user)
        pair_item[rows] = flat_items
        pair_probs[rows] = probs

    capacities = np.maximum(
        1, int(round(config.capacity_fraction * num_users))
    ) * np.ones(num_items, dtype=int)
    betas = np.full(num_items, float(config.beta))

    compiled = CompiledInstance(
        num_users=num_users,
        horizon=horizon,
        display_limit=config.display_limit,
        user_ptr=np.arange(0, (num_users + 1) * per_user, per_user,
                           dtype=np.int64),
        pair_item=pair_item,
        pair_probs=pair_probs,
        prices=prices,
        capacities=capacities,
        betas=betas,
        item_class=np.asarray(item_class, dtype=np.int64),
        name=f"synthetic-columnar-{num_users}u-{num_items}i",
    )
    return compiled.as_instance(catalog=catalog)
