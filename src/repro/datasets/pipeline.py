"""End-to-end preprocessing pipeline: dataset -> REVMAX instance.

This is the reproduction of the §6.1 preparation steps:

1. train a matrix-factorization model on the observed ratings;
2. for every user, keep the top-N items by predicted rating as candidates;
3. fit a per-item valuation model:
   * Epinions style -- a Gaussian implied by the KDE over reported prices,
     which also yields the sampled price series;
   * Amazon style -- the observed price series plays the role of the reported
     prices (the paper does not spell out the Amazon valuation fit; using the
     price history keeps acceptance probabilities well-calibrated against the
     actual price range, which is the property the experiments rely on);
4. compute primitive adoption probabilities
   ``q(u, i, t) = Pr[val >= p(i, t)] * r_hat / r_max``;
5. draw per-item capacities and saturation factors;
6. assemble the :class:`~repro.core.problem.RevMaxInstance`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.compiled import CompiledInstance
from repro.core.problem import RevMaxInstance
from repro.datasets.capacities import sample_betas, sample_capacities
from repro.datasets.schema import MarketDataset
from repro.pricing.adoption import AdoptionEstimator
from repro.pricing.price_series import prices_from_kde
from repro.pricing.valuation import GaussianValuation, ValuationModel
from repro.recsys.mf import MatrixFactorization, MFConfig
from repro.recsys.topk import Candidate, top_candidates

__all__ = ["PipelineConfig", "PipelineResult", "run_pipeline", "build_instance"]


@dataclass
class PipelineConfig:
    """Configuration of the dataset -> instance pipeline.

    Attributes:
        display_limit: the display constraint ``k``.
        num_candidates: per-user candidate count (the paper uses 100; the
            default is scaled down with the datasets).
        min_predicted_rating: candidates predicted below this are dropped.
        mf_config: hyper-parameters of the matrix-factorization model.
        capacity_distribution: ``"normal"``, ``"power"``, ``"uniform"`` or
            ``"exponential"``.
        capacity_mean_fraction: mean capacity as a fraction of the user count.
        beta_mode: ``"uniform"`` (random in [0,1]) or ``"fixed"``.
        beta_value: the fixed saturation factor when ``beta_mode == "fixed"``.
        seed: seed shared by the samplers of this pipeline run.
    """

    display_limit: int = 3
    num_candidates: int = 25
    min_predicted_rating: float = 2.0
    mf_config: Optional[MFConfig] = None
    capacity_distribution: str = "normal"
    capacity_mean_fraction: float = 0.2
    beta_mode: str = "uniform"
    beta_value: Optional[float] = None
    seed: Optional[int] = 0


@dataclass
class PipelineResult:
    """Everything produced while turning a dataset into an instance.

    Attributes:
        instance: the ready-to-solve REVMAX instance.
        model: the fitted matrix-factorization model.
        candidates: per-user candidate lists.
        valuations: per-item valuation models.
        prices: the exact price matrix used by the instance.
        dataset: the source dataset (kept for statistics / reporting).
    """

    instance: RevMaxInstance
    model: MatrixFactorization
    candidates: Dict[int, List[Candidate]]
    valuations: Dict[int, ValuationModel]
    prices: np.ndarray
    dataset: Optional[MarketDataset] = None


def _fit_valuations(dataset: MarketDataset, prices: np.ndarray
                    ) -> Dict[int, ValuationModel]:
    """Fit one valuation model per item from reported prices or price history."""
    valuations: Dict[int, ValuationModel] = {}
    for item in range(dataset.num_items):
        if dataset.reported_prices and item in dataset.reported_prices:
            samples = dataset.reported_prices[item]
        else:
            samples = prices[item, :].tolist()
        valuations[item] = GaussianValuation.from_reported_prices(samples)
    return valuations


def run_pipeline(dataset: MarketDataset,
                 config: Optional[PipelineConfig] = None,
                 columnar: bool = False) -> PipelineResult:
    """Run the full §6.1 preprocessing pipeline on a dataset.

    Args:
        dataset: the source market dataset.
        config: pipeline knobs (defaults used when ``None``).
        columnar: emit the instance in the columnar layout -- adoption
            probabilities are written straight into the CSR tensors of a
            :class:`~repro.core.compiled.CompiledInstance` and the returned
            instance carries a read-only columnar adoption view, so the
            per-pair dict is never materialized.  Probabilities are
            bit-identical to the object layout.
    """
    config = config or PipelineConfig()
    rng = np.random.default_rng(config.seed)

    model = MatrixFactorization(config.mf_config or MFConfig(seed=config.seed))
    model.fit(dataset.ratings)

    candidates = top_candidates(
        model,
        dataset.ratings,
        num_candidates=config.num_candidates,
        min_predicted_rating=config.min_predicted_rating,
    )

    if dataset.has_exact_prices():
        prices = np.asarray(dataset.prices, dtype=float)
    else:
        prices = prices_from_kde(
            dataset.reported_prices or {},
            dataset.num_items,
            dataset.horizon,
            rng=rng,
        )

    valuations = _fit_valuations(dataset, prices)
    estimator = AdoptionEstimator(
        valuations=valuations, max_rating=dataset.ratings.max_rating
    )

    capacities = sample_capacities(
        dataset.num_items,
        dataset.num_users,
        distribution=config.capacity_distribution,
        mean_fraction=config.capacity_mean_fraction,
        seed=config.seed,
    )
    betas = sample_betas(
        dataset.num_items,
        mode=config.beta_mode,
        value=config.beta_value,
        seed=config.seed,
    )

    if columnar:
        user_ptr, pair_item, pair_probs = estimator.build_csr(
            candidates, prices, num_users=dataset.num_users
        )
        compiled = CompiledInstance(
            num_users=dataset.num_users,
            horizon=dataset.horizon,
            display_limit=config.display_limit,
            user_ptr=user_ptr,
            pair_item=pair_item,
            pair_probs=pair_probs,
            prices=prices,
            capacities=capacities,
            betas=betas,
            item_class=np.asarray(dataset.catalog.item_class, dtype=np.int64),
            name=dataset.name,
        )
        instance = compiled.as_instance(catalog=dataset.catalog)
    else:
        instance = RevMaxInstance(
            num_users=dataset.num_users,
            catalog=dataset.catalog,
            horizon=dataset.horizon,
            display_limit=config.display_limit,
            prices=prices,
            capacities=capacities,
            betas=betas,
            adoption=estimator.build_table(candidates, prices),
            name=dataset.name,
        )
    return PipelineResult(
        instance=instance,
        model=model,
        candidates=candidates,
        valuations=valuations,
        prices=prices,
        dataset=dataset,
    )


def build_instance(dataset: MarketDataset,
                   config: Optional[PipelineConfig] = None,
                   columnar: bool = False) -> RevMaxInstance:
    """Convenience wrapper returning only the REVMAX instance."""
    return run_pipeline(dataset, config, columnar=columnar).instance
