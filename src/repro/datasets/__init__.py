"""Dataset simulators, preprocessing pipeline and statistics (§6.1)."""

from repro.datasets.schema import MarketDataset
from repro.datasets.amazon_like import AmazonLikeConfig, generate_amazon_like
from repro.datasets.epinions_like import EpinionsLikeConfig, generate_epinions_like
from repro.datasets.synthetic import (
    SyntheticConfig,
    generate_synthetic_columnar,
    generate_synthetic_instance,
)
from repro.datasets.capacities import (
    CAPACITY_DISTRIBUTIONS,
    sample_betas,
    sample_capacities,
)
from repro.datasets.pipeline import (
    PipelineConfig,
    PipelineResult,
    build_instance,
    run_pipeline,
)
from repro.datasets.statistics import (
    DatasetStatistics,
    dataset_statistics,
    format_table1,
)

__all__ = [
    "AmazonLikeConfig",
    "CAPACITY_DISTRIBUTIONS",
    "DatasetStatistics",
    "EpinionsLikeConfig",
    "MarketDataset",
    "PipelineConfig",
    "PipelineResult",
    "SyntheticConfig",
    "build_instance",
    "dataset_statistics",
    "format_table1",
    "generate_amazon_like",
    "generate_epinions_like",
    "generate_synthetic_columnar",
    "generate_synthetic_instance",
    "run_pipeline",
    "sample_betas",
    "sample_capacities",
]
