"""repro -- reproduction of "Show Me the Money: Dynamic Recommendations for
Revenue Maximization" (Lu, Chen, Li, Lakshmanan; VLDB 2014).

The package implements the paper's dynamic revenue model (prices, valuations,
competition, saturation), the REVMAX optimization problem, its greedy /
approximate / exact solvers, the data-preparation substrates (matrix
factorization, KDE valuation estimation, dataset simulators) and an
experiment harness regenerating every table and figure of the evaluation.

Typical usage::

    from repro import prepare_dataset, GlobalGreedy

    pipeline = prepare_dataset("amazon", scale="small")
    result = GlobalGreedy().run(pipeline.instance)
    print(result.summary())
"""

from repro.core import (
    AdoptionTable,
    CompiledInstance,
    ConstraintChecker,
    EffectiveRevenueModel,
    ItemCatalog,
    PriceDistribution,
    RevMaxInstance,
    RevenueModel,
    Strategy,
    TaylorRevenueModel,
    Triple,
)
from repro.algorithms import (
    AlgorithmResult,
    GlobalGreedy,
    GlobalGreedyNoSaturation,
    LocalSearchApproximation,
    RandomizedLocalGreedy,
    SequentialLocalGreedy,
    SingleStepExactSolver,
    SubHorizonWrapper,
    TopRatingBaseline,
    TopRevenueBaseline,
)
from repro.datasets import (
    build_instance,
    generate_amazon_like,
    generate_epinions_like,
    generate_synthetic_columnar,
    generate_synthetic_instance,
    run_pipeline,
)
from repro.core import get_default_backend, set_default_backend
from repro.experiments import prepare_dataset, run_algorithms, standard_algorithms
from repro.simulation import AdoptionSimulator

#: Lazily re-exported names -> defining module.  The sharded solver pulls in
#: multiprocessing machinery the serial paths never need, so ``import
#: repro`` must not pay for (or depend on) it; attribute access resolves
#: and caches the import on first use (PEP 562).
_LAZY_EXPORTS = {
    "ShardedGreedySolver": "repro.shard",
    "ShardWorkerError": "repro.shard",
    "shard_user_ranges": "repro.shard",
}


def __getattr__(name):
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value

__version__ = "1.0.0"

__all__ = [
    "AdoptionSimulator",
    "AdoptionTable",
    "AlgorithmResult",
    "CompiledInstance",
    "ConstraintChecker",
    "EffectiveRevenueModel",
    "GlobalGreedy",
    "GlobalGreedyNoSaturation",
    "ItemCatalog",
    "LocalSearchApproximation",
    "PriceDistribution",
    "RandomizedLocalGreedy",
    "RevMaxInstance",
    "RevenueModel",
    "SequentialLocalGreedy",
    "ShardWorkerError",
    "ShardedGreedySolver",
    "SingleStepExactSolver",
    "Strategy",
    "SubHorizonWrapper",
    "TaylorRevenueModel",
    "TopRatingBaseline",
    "TopRevenueBaseline",
    "Triple",
    "__version__",
    "build_instance",
    "generate_amazon_like",
    "generate_epinions_like",
    "generate_synthetic_columnar",
    "generate_synthetic_instance",
    "get_default_backend",
    "prepare_dataset",
    "run_algorithms",
    "run_pipeline",
    "set_default_backend",
    "shard_user_ranges",
    "standard_algorithms",
]
