"""Command-line interface for the REVMAX reproduction.

The CLI wraps the experiment harness so the main workflows can be run without
writing Python:

``python -m repro.cli solve --dataset amazon --algorithm gg``
    Prepare a dataset at the chosen scale, run one algorithm, print the
    summary and (optionally) write the plan / result JSON.

``python -m repro.cli compare --dataset amazon``
    Run the paper's six-algorithm suite on one instance and print the revenue
    / size / time comparison table.

``python -m repro.cli exhibit table1|table2|figure1|...``
    Regenerate one table or figure of the paper's evaluation and print its
    data (the same functions the benchmarks call).

``python -m repro.cli info --dataset amazon`` / ``info --load plan.npz``
    Print instance statistics (users, items, classes, candidate pairs,
    horizon) and the memory footprint of the compiled columnar tensors.

``python -m repro.cli resolve --load plan.npz --delta deltas.json``
    The dynamic re-solve workflow: load a saved instance, apply a JSON
    delta in place and repair the G-Greedy strategy incrementally.  With
    ``--state state.json`` (written by an earlier ``resolve
    --save-state``), untouched users' admission streams are reused instead
    of re-solved; the result is bit-identical to a cold solve either way.
    Delta cycles must re-save the instance alongside the state
    (``--save-instance plan.npz``): the state carries a digest of the
    tensors it was computed on and a mismatched pairing is rejected.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.algorithms.base import RevMaxAlgorithm
from repro.algorithms.baselines import TopRatingBaseline, TopRevenueBaseline
from repro.algorithms.global_greedy import GlobalGreedy, GlobalGreedyNoSaturation
from repro.algorithms.local_greedy import RandomizedLocalGreedy, SequentialLocalGreedy
from repro.core.vectorized import BACKENDS, set_default_backend
from repro.datasets.synthetic import SyntheticConfig
from repro.experiments import figures
from repro.experiments.harness import (
    SCALES,
    predicted_ratings_map,
    prepare_dataset,
    run_algorithms,
    standard_algorithms,
)
from repro.experiments.reporting import format_table
from repro import io as repro_io

__all__ = ["main", "build_parser"]

_ALGORITHM_KEYS = ("gg", "gg-no", "slg", "rlg", "topre", "topra")

_EXHIBITS = (
    "table1", "table2", "figure1", "figure2", "figure3", "figure4",
    "figure5", "figure6", "figure7", "random-prices", "theory",
)

#: Exhibits that run the full algorithm suite and honour ``--jobs``.
_SUITE_EXHIBITS = ("table2", "figure1", "figure2", "figure3")


def _make_algorithm(key: str, pipeline, seed: int,
                    backend: Optional[str] = None,
                    jobs: Optional[int] = None,
                    shards: Optional[int] = None) -> RevMaxAlgorithm:
    """Instantiate one algorithm by its CLI key."""
    key = key.lower()
    if key == "gg":
        return GlobalGreedy(backend=backend, shards=shards, jobs=jobs)
    if key == "gg-no":
        return GlobalGreedyNoSaturation(backend=backend, shards=shards,
                                        jobs=jobs)
    if key == "slg":
        return SequentialLocalGreedy(backend=backend)
    if key == "rlg":
        return RandomizedLocalGreedy(num_permutations=8, seed=seed,
                                     backend=backend, jobs=jobs)
    if key == "topre":
        return TopRevenueBaseline()
    if key == "topra":
        return TopRatingBaseline(predicted_ratings_map(pipeline))
    raise ValueError(f"unknown algorithm {key!r}; expected one of {_ALGORITHM_KEYS}")


def _parallel_arg(value: str):
    """Parse a ``--jobs`` / ``--shards`` value: an integer or ``auto``."""
    if value == "auto":
        return value
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer or 'auto', got {value!r}"
        ) from None


def _add_engine_arguments(parser: argparse.ArgumentParser, jobs_help: str) -> None:
    """Attach the revenue-engine knobs shared by every subcommand."""
    parser.add_argument("--backend", choices=BACKENDS, default=None,
                        help="revenue-engine backend (default: numpy, or "
                             "the REPRO_REVENUE_BACKEND environment variable)")
    parser.add_argument("--jobs", type=_parallel_arg, default="auto", metavar="N",
                        help=jobs_help)


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="REVMAX reproduction: revenue-maximizing dynamic recommendations",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    solve = subparsers.add_parser("solve", help="run one algorithm on one dataset")
    solve.add_argument("--dataset", choices=("amazon", "epinions"), default="amazon")
    solve.add_argument("--scale", choices=sorted(SCALES), default="tiny")
    solve.add_argument("--algorithm", choices=_ALGORITHM_KEYS, default="gg")
    solve.add_argument("--seed", type=int, default=0)
    solve.add_argument("--save-result", metavar="PATH", default=None,
                       help="write the result (summary + plan) as JSON")
    solve.add_argument("--save-instance", metavar="PATH", default=None,
                       help="write the solved instance as JSON")
    solve.add_argument("--shards", type=_parallel_arg, default="auto",
                       metavar="K",
                       help="partition users into K shards and run G-Greedy "
                            "/ GlobalNo across worker processes (0: one per "
                            "core; default 'auto' lets the measured cost "
                            "model choose, degrading to the serial path "
                            "where parallelism loses); results are "
                            "bit-identical to a serial solve")
    _add_engine_arguments(
        solve,
        jobs_help="worker processes for RL-Greedy's permutations and for "
                  "sharded G-Greedy (0: one per core; default 'auto': "
                  "cost-model decided; other algorithms run in-process)",
    )

    compare = subparsers.add_parser(
        "compare", help="run the paper's six-algorithm suite on one dataset"
    )
    compare.add_argument("--dataset", choices=("amazon", "epinions"), default="amazon")
    compare.add_argument("--scale", choices=sorted(SCALES), default="tiny")
    compare.add_argument("--seed", type=int, default=0)
    compare.add_argument("--permutations", type=int, default=8,
                         help="number of RL-Greedy permutations")
    _add_engine_arguments(
        compare,
        jobs_help="worker processes running the suite (0: one per core; "
                  "results are identical to a serial run)",
    )

    exhibit = subparsers.add_parser(
        "exhibit", help="regenerate one table/figure of the paper's evaluation"
    )
    exhibit.add_argument("name", choices=_EXHIBITS)
    exhibit.add_argument("--scale", choices=sorted(SCALES), default="tiny")
    exhibit.add_argument("--seed", type=int, default=0)
    _add_engine_arguments(
        exhibit,
        jobs_help="worker processes for the suite-running exhibits "
                  f"({', '.join(_SUITE_EXHIBITS)}); ignored by the rest",
    )

    resolve = subparsers.add_parser(
        "resolve",
        help="apply an instance delta and incrementally re-solve G-Greedy",
    )
    resolve.add_argument("--load", metavar="PATH", required=True,
                         help="instance to solve (.json or .npz)")
    resolve.add_argument("--delta", metavar="PATH", default=None,
                         help="JSON delta to apply before solving "
                              "(omit for a cold solve that primes --save-state)")
    resolve.add_argument("--state", metavar="PATH", default=None,
                         help="warm solver state from a previous resolve "
                              "(must match the loaded instance)")
    resolve.add_argument("--save-state", metavar="PATH", default=None,
                         help="write the updated solver state as JSON")
    resolve.add_argument("--save-strategy", metavar="PATH", default=None,
                         help="write the repaired strategy as JSON")
    resolve.add_argument("--save-instance", metavar="PATH", default=None,
                         help="write the mutated instance (.json or .npz)")
    resolve.add_argument("--backend", choices=("numpy",), default=None,
                         help="revenue-engine backend (the incremental "
                              "engine replays the columnar numpy path; "
                              "'python' is not available here)")

    info = subparsers.add_parser(
        "info", help="print instance statistics and compiled-tensor footprint"
    )
    info.add_argument("--dataset", choices=("amazon", "epinions"),
                      default="amazon")
    info.add_argument("--scale", choices=sorted(SCALES), default="tiny")
    info.add_argument("--seed", type=int, default=0)
    info.add_argument("--load", metavar="PATH", default=None,
                      help="inspect a saved instance instead of preparing a "
                           "dataset (.json or .npz)")

    return parser


def _command_solve(args: argparse.Namespace) -> int:
    pipeline = prepare_dataset(args.dataset, scale=args.scale, seed=args.seed)
    # Explicit parallel requests the cost model predicts will lose are
    # degraded to the serial path (one warning line); the decision rides
    # along in the result extras / saved JSON.
    from repro import autotune

    shards, shards_decision = autotune.override_losing_request(
        "shards", args.shards
    )
    jobs, jobs_decision = autotune.override_losing_request("jobs", args.jobs)
    algorithm = _make_algorithm(args.algorithm, pipeline, args.seed,
                                backend=args.backend, jobs=jobs,
                                shards=shards)
    decision = shards_decision or jobs_decision
    if decision is not None:
        algorithm.pinned_extras = {"degraded": True,
                                   "parallel": decision.as_dict()}
    result = algorithm.run(pipeline.instance)
    print(result.summary())
    if args.save_instance:
        if str(args.save_instance).endswith(".npz"):
            repro_io.save_instance_npz(pipeline.instance, args.save_instance)
        else:
            repro_io.save_instance(pipeline.instance, args.save_instance)
        print(f"instance written to {args.save_instance}")
    if args.save_result:
        repro_io.save_result(result, args.save_result)
        print(f"result written to {args.save_result}")
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    pipeline = prepare_dataset(args.dataset, scale=args.scale, seed=args.seed)
    suite = standard_algorithms(
        predicted_ratings=predicted_ratings_map(pipeline),
        rl_permutations=args.permutations,
        seed=args.seed,
        backend=args.backend,
    )
    results = run_algorithms(pipeline.instance, suite, jobs=args.jobs)
    rows = [
        [name, result.revenue, result.strategy_size, result.runtime_seconds]
        for name, result in sorted(results.items(), key=lambda item: -item[1].revenue)
    ]
    print(format_table(["algorithm", "expected revenue", "plan size", "seconds"], rows))
    return 0


def _command_exhibit(args: argparse.Namespace) -> int:
    name = args.name
    if args.backend is not None:
        # The exhibit functions build their own models throughout; the
        # process-wide default is the one switch that reaches all of them.
        set_default_backend(args.backend)
    if name in ("figure6", "random-prices", "theory"):
        if name == "figure6":
            result = figures.figure6_scalability(
                user_counts=(200, 400, 800),
                base_config=SyntheticConfig(num_items=100, num_classes=20,
                                            candidates_per_user=10, seed=args.seed),
            )
        elif name == "random-prices":
            result = figures.extension_random_prices(seed=args.seed)
        else:
            result = figures.theory_small_instances(seed=args.seed)
        print(result)
        return 0

    pipelines = {
        "amazon": prepare_dataset("amazon", scale=args.scale, seed=args.seed),
        "epinions": prepare_dataset("epinions", scale=args.scale, seed=args.seed),
    }
    if name == "table1":
        result = figures.table1_dataset_statistics(pipelines)
    elif name == "table2":
        result = figures.table2_running_times(pipelines, jobs=args.jobs)
    elif name == "figure1":
        result = figures.figure1_revenue_by_capacity_distribution(
            pipelines, jobs=args.jobs
        )
    elif name == "figure2":
        result = figures.figure2_revenue_by_saturation(pipelines, jobs=args.jobs)
    elif name == "figure3":
        result = figures.figure3_revenue_by_saturation_singleton(
            pipelines, jobs=args.jobs
        )
    elif name == "figure4":
        result = figures.figure4_revenue_growth_curves(pipelines["amazon"])
    elif name == "figure5":
        result = figures.figure5_repeat_histograms(pipelines["amazon"])
    elif name == "figure7":
        result = figures.figure7_incomplete_prices(pipelines)
    else:  # pragma: no cover - choices exhausted above
        raise ValueError(f"unknown exhibit {name!r}")
    print(result)
    return 0


def _command_resolve(args: argparse.Namespace) -> int:
    import time

    from repro.dynamic import IncrementalSolver, load_delta

    if str(args.load).endswith(".npz"):
        instance = repro_io.load_instance_npz(args.load)
    else:
        instance = repro_io.load_instance(args.load)
    delta = load_delta(args.delta) if args.delta else None
    try:
        if args.state:
            solver = IncrementalSolver.from_state(
                instance, repro_io.load_solver_state(args.state),
                backend=args.backend,
            )
        else:
            solver = IncrementalSolver(instance, backend=args.backend)
    except ValueError as error:
        # E.g. REPRO_REVENUE_BACKEND=python in the environment: report it
        # as a CLI error instead of a traceback.
        print(f"error: {error}", file=sys.stderr)
        return 2
    if delta is not None:
        print(delta.summary())
    start = time.perf_counter()
    if delta is None and args.state is None:
        strategy = solver.solve()
    else:
        strategy = solver.resolve(delta)
    seconds = time.perf_counter() - start
    stats = solver.last_stats
    detail = ""
    if stats.get("mode") == "merge":
        detail = (f"  dirty_users={stats['dirty_users']:,}"
                  f"  reused_events={stats['reused_events']:,}")
    elif "fallback_reason" in stats:
        detail = f"  fallback: {stats['fallback_reason']}"
    print(f"re-solve mode={stats['mode']}{detail}")
    print(
        f"strategy: {len(strategy):,} triples  "
        f"revenue={solver.revenue:,.2f}  ({seconds:.2f}s)"
    )
    if args.save_state:
        repro_io.save_solver_state(solver.state(), args.save_state)
        print(f"solver state written to {args.save_state}")
    if args.save_strategy:
        repro_io.save_strategy(strategy, args.save_strategy,
                               instance_name=instance.name)
        print(f"strategy written to {args.save_strategy}")
    if args.save_instance:
        if str(args.save_instance).endswith(".npz"):
            repro_io.save_instance_npz(instance, args.save_instance)
        else:
            repro_io.save_instance(instance, args.save_instance)
        print(f"instance written to {args.save_instance}")
    return 0


def _format_bytes(count: int) -> str:
    """Human-readable byte count (binary units)."""
    size = float(count)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if size < 1024.0 or unit == "GiB":
            return f"{size:,.1f} {unit}" if unit != "B" else f"{int(size)} B"
        size /= 1024.0
    return f"{int(count)} B"  # pragma: no cover - loop always returns


def _command_info(args: argparse.Namespace) -> int:
    if args.load is not None:
        if str(args.load).endswith(".npz"):
            instance = repro_io.load_instance_npz(args.load)
        else:
            instance = repro_io.load_instance(args.load)
    else:
        instance = prepare_dataset(
            args.dataset, scale=args.scale, seed=args.seed
        ).instance
    compiled = instance.compiled()
    sizes = instance.catalog.class_sizes().values()
    rows = [
        ["instance", instance.name],
        ["users", f"{instance.num_users:,}"],
        ["items", f"{instance.num_items:,}"],
        ["item classes", f"{instance.catalog.num_classes:,} "
                         f"(largest {max(sizes):,})"],
        ["horizon", f"{instance.horizon:,}"],
        ["display limit", f"{instance.display_limit:,}"],
        ["candidate (user, item) pairs", f"{compiled.num_pairs:,}"],
        ["candidate triples (positive q)",
         f"{compiled.num_candidate_triples():,}"],
        ["(user, class) groups", f"{compiled.num_groups:,}"],
    ]
    from repro.core import kernels

    tier = kernels.kernel_info()
    if tier["numba_available"]:
        detail = f"numba {tier['numba_version']}"
    else:
        detail = "numba not installed; pure-NumPy fallback"
    rows.append(["kernel tier", f"{tier['kernel']} ({detail})"])
    print(format_table(["statistic", "value"], rows))
    footprint = compiled.memory_footprint()
    total = footprint.pop("total")
    print("\ncompiled tensor footprint:")
    tensor_rows = [
        [name, _format_bytes(size)]
        for name, size in sorted(footprint.items(), key=lambda kv: -kv[1])
    ]
    tensor_rows.append(["total", _format_bytes(total)])
    print(format_table(["tensor", "bytes"], tensor_rows))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "solve":
        return _command_solve(args)
    if args.command == "compare":
        return _command_compare(args)
    if args.command == "exhibit":
        return _command_exhibit(args)
    if args.command == "resolve":
        return _command_resolve(args)
    if args.command == "info":
        return _command_info(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
