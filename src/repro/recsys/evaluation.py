"""Evaluation utilities for the rating-prediction substrate.

The paper reports the accuracy of its MF model as RMSE under five-fold cross
validation (0.91 on Amazon, 1.04 on Epinions).  This module provides the same
metrics so the reproduction can report the analogous numbers for its simulated
datasets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.recsys.mf import MatrixFactorization, MFConfig
from repro.recsys.ratings import RatingsMatrix

__all__ = ["rmse", "mae", "evaluate_model", "CrossValidationResult", "cross_validate"]


def rmse(predictions: Sequence[float], truths: Sequence[float]) -> float:
    """Root-mean-squared error between predictions and ground truth."""
    predictions = np.asarray(predictions, dtype=float)
    truths = np.asarray(truths, dtype=float)
    if predictions.shape != truths.shape:
        raise ValueError("predictions and truths must have the same length")
    if predictions.size == 0:
        raise ValueError("cannot compute RMSE of empty arrays")
    return float(np.sqrt(np.mean((predictions - truths) ** 2)))


def mae(predictions: Sequence[float], truths: Sequence[float]) -> float:
    """Mean absolute error between predictions and ground truth."""
    predictions = np.asarray(predictions, dtype=float)
    truths = np.asarray(truths, dtype=float)
    if predictions.shape != truths.shape:
        raise ValueError("predictions and truths must have the same length")
    if predictions.size == 0:
        raise ValueError("cannot compute MAE of empty arrays")
    return float(np.mean(np.abs(predictions - truths)))


def evaluate_model(model: MatrixFactorization, test: RatingsMatrix) -> float:
    """Return the RMSE of a fitted model on a held-out ratings matrix."""
    predictions = []
    truths = []
    for rating in test:
        predictions.append(model.predict(rating.user, rating.item))
        truths.append(rating.value)
    return rmse(predictions, truths)


@dataclass
class CrossValidationResult:
    """Per-fold and aggregate RMSE of a cross-validation run."""

    fold_rmse: List[float]

    @property
    def mean_rmse(self) -> float:
        """Mean RMSE across folds."""
        return float(np.mean(self.fold_rmse))

    @property
    def std_rmse(self) -> float:
        """Standard deviation of the per-fold RMSE."""
        if len(self.fold_rmse) < 2:
            return 0.0
        return float(np.std(self.fold_rmse, ddof=1))


def cross_validate(ratings: RatingsMatrix, config: Optional[MFConfig] = None,
                   num_folds: int = 5, seed: Optional[int] = 0
                   ) -> CrossValidationResult:
    """K-fold cross-validation of the MF model (the paper uses five folds)."""
    fold_rmse = []
    for train, test in ratings.k_folds(num_folds, seed=seed):
        model = MatrixFactorization(config).fit(train)
        fold_rmse.append(evaluate_model(model, test))
    return CrossValidationResult(fold_rmse=fold_rmse)
