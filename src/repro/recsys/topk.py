"""Per-user top-N candidate selection from predicted ratings.

§6.1 of the paper: "for all users we select 100 items with the highest
predicted ratings and compute primitive adoption probabilities (if the rating
is too low, the item is deemed to be of little interest)".  This module
implements that candidate-selection step: for every user, rank unrated items
by predicted rating, keep the best ``N`` whose prediction clears an optional
threshold, and hand the resulting (user, item, predicted rating) candidates to
the adoption-probability estimator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.recsys.mf import MatrixFactorization
from repro.recsys.ratings import RatingsMatrix

__all__ = ["Candidate", "top_candidates_for_user", "top_candidates"]


@dataclass(frozen=True)
class Candidate:
    """A candidate recommendation produced by the rating model.

    Attributes:
        user: the target user.
        item: the candidate item.
        predicted_rating: the model's predicted rating for the pair.
    """

    user: int
    item: int
    predicted_rating: float


def top_candidates_for_user(
    model: MatrixFactorization,
    ratings: RatingsMatrix,
    user: int,
    num_candidates: int,
    min_predicted_rating: float = 0.0,
    exclude_rated: bool = True,
) -> List[Candidate]:
    """Return the top-``num_candidates`` items for one user.

    Args:
        model: a fitted rating-prediction model.
        ratings: the observed ratings (used to exclude already-rated items).
        user: the target user.
        num_candidates: how many candidates to keep (the paper uses 100).
        min_predicted_rating: candidates below this prediction are dropped.
        exclude_rated: skip items the user has already rated.
    """
    if num_candidates <= 0:
        raise ValueError("num_candidates must be positive")
    already_rated = set(ratings.rated_items(user)) if exclude_rated else set()
    all_items = np.arange(ratings.num_items)
    predictions = model.predict_for_user(user, all_items)
    order = np.argsort(-predictions, kind="stable")
    result: List[Candidate] = []
    for index in order:
        item = int(all_items[index])
        if item in already_rated:
            continue
        prediction = float(predictions[index])
        if prediction < min_predicted_rating:
            break
        result.append(Candidate(user=user, item=item, predicted_rating=prediction))
        if len(result) >= num_candidates:
            break
    return result


def top_candidates(
    model: MatrixFactorization,
    ratings: RatingsMatrix,
    num_candidates: int,
    min_predicted_rating: float = 0.0,
    users: Optional[Sequence[int]] = None,
) -> Dict[int, List[Candidate]]:
    """Return the top candidates for every user (or for the given users)."""
    if users is None:
        users = range(ratings.num_users)
    return {
        user: top_candidates_for_user(
            model, ratings, user, num_candidates, min_predicted_rating
        )
        for user in users
    }
