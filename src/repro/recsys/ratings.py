"""Sparse user-item ratings storage.

The paper's pipeline starts from a classical ratings dataset: users rate a
small fraction of the items, a matrix-factorization model is trained on the
observed ratings, and the predicted ratings of unobserved pairs drive the
adoption-probability model.  :class:`RatingsMatrix` is the minimal sparse
container that pipeline needs: a list of (user, item, rating) observations
with indices by user and by item, plus train/test splitting utilities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

__all__ = ["Rating", "RatingsMatrix"]


@dataclass(frozen=True)
class Rating:
    """A single observed rating."""

    user: int
    item: int
    value: float


class RatingsMatrix:
    """A sparse collection of explicit ratings.

    Args:
        num_users: total number of users (ids ``0 .. num_users - 1``).
        num_items: total number of items.
        rating_scale: inclusive (min, max) rating values; used for clipping
            predictions and normalising predicted ratings into adoption
            probabilities (the ``r_max`` of §6).
    """

    def __init__(self, num_users: int, num_items: int,
                 rating_scale: Tuple[float, float] = (1.0, 5.0)) -> None:
        if num_users <= 0 or num_items <= 0:
            raise ValueError("num_users and num_items must be positive")
        if rating_scale[0] >= rating_scale[1]:
            raise ValueError("rating_scale must be (min, max) with min < max")
        self._num_users = num_users
        self._num_items = num_items
        self._scale = (float(rating_scale[0]), float(rating_scale[1]))
        self._ratings: List[Rating] = []
        self._by_user: Dict[int, List[int]] = {}
        self._by_item: Dict[int, List[int]] = {}
        self._pairs: Dict[Tuple[int, int], int] = {}

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def num_users(self) -> int:
        """Number of users."""
        return self._num_users

    @property
    def num_items(self) -> int:
        """Number of items."""
        return self._num_items

    @property
    def rating_scale(self) -> Tuple[float, float]:
        """The (min, max) rating scale."""
        return self._scale

    @property
    def max_rating(self) -> float:
        """The maximum rating ``r_max`` allowed by the system."""
        return self._scale[1]

    def __len__(self) -> int:
        return len(self._ratings)

    def __iter__(self) -> Iterator[Rating]:
        return iter(self._ratings)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, user: int, item: int, value: float) -> None:
        """Record a rating; re-rating a pair overwrites the previous value."""
        if not (0 <= user < self._num_users):
            raise ValueError(f"user id out of range: {user}")
        if not (0 <= item < self._num_items):
            raise ValueError(f"item id out of range: {item}")
        if not (self._scale[0] <= value <= self._scale[1]):
            raise ValueError(
                f"rating {value} outside scale {self._scale[0]}..{self._scale[1]}"
            )
        key = (user, item)
        if key in self._pairs:
            index = self._pairs[key]
            self._ratings[index] = Rating(user, item, float(value))
            return
        index = len(self._ratings)
        self._ratings.append(Rating(user, item, float(value)))
        self._pairs[key] = index
        self._by_user.setdefault(user, []).append(index)
        self._by_item.setdefault(item, []).append(index)

    def add_many(self, ratings: Iterable[Tuple[int, int, float]]) -> None:
        """Record many ``(user, item, value)`` ratings."""
        for user, item, value in ratings:
            self.add(user, item, value)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def get(self, user: int, item: int) -> Optional[float]:
        """Return the rating of ``(user, item)`` or ``None`` if unobserved."""
        index = self._pairs.get((user, item))
        if index is None:
            return None
        return self._ratings[index].value

    def user_ratings(self, user: int) -> List[Rating]:
        """Return every rating given by ``user``."""
        return [self._ratings[i] for i in self._by_user.get(user, [])]

    def item_ratings(self, item: int) -> List[Rating]:
        """Return every rating received by ``item``."""
        return [self._ratings[i] for i in self._by_item.get(item, [])]

    def item_rating_counts(self) -> Dict[int, int]:
        """Return ``item -> number of ratings`` (used for popularity filters)."""
        return {item: len(indices) for item, indices in self._by_item.items()}

    def rated_items(self, user: int) -> List[int]:
        """Return the items ``user`` has rated."""
        return [self._ratings[i].item for i in self._by_user.get(user, [])]

    def density(self) -> float:
        """Fraction of the full user-item matrix that is observed."""
        return len(self._ratings) / float(self._num_users * self._num_items)

    def global_mean(self) -> float:
        """Mean of all observed ratings (0 if the matrix is empty)."""
        if not self._ratings:
            return 0.0
        return float(np.mean([r.value for r in self._ratings]))

    def to_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return parallel arrays (users, items, values) of the observations."""
        users = np.array([r.user for r in self._ratings], dtype=int)
        items = np.array([r.item for r in self._ratings], dtype=int)
        values = np.array([r.value for r in self._ratings], dtype=float)
        return users, items, values

    # ------------------------------------------------------------------
    # dataset manipulation
    # ------------------------------------------------------------------
    def filter_items_with_min_ratings(self, min_ratings: int) -> "RatingsMatrix":
        """Return a copy keeping only items with at least ``min_ratings`` ratings.

        This mirrors the paper's preprocessing ("items with fewer than 10
        ratings are filtered out").  Item ids are preserved (not re-indexed).
        """
        counts = self.item_rating_counts()
        keep = {item for item, count in counts.items() if count >= min_ratings}
        filtered = RatingsMatrix(self._num_users, self._num_items, self._scale)
        for rating in self._ratings:
            if rating.item in keep:
                filtered.add(rating.user, rating.item, rating.value)
        return filtered

    def split(self, test_fraction: float, seed: Optional[int] = 0
              ) -> Tuple["RatingsMatrix", "RatingsMatrix"]:
        """Randomly split observations into train / test matrices."""
        if not (0.0 < test_fraction < 1.0):
            raise ValueError("test_fraction must be in (0, 1)")
        rng = np.random.default_rng(seed)
        indices = rng.permutation(len(self._ratings))
        cut = int(round(len(indices) * test_fraction))
        test_indices = set(indices[:cut].tolist())
        train = RatingsMatrix(self._num_users, self._num_items, self._scale)
        test = RatingsMatrix(self._num_users, self._num_items, self._scale)
        for index, rating in enumerate(self._ratings):
            target = test if index in test_indices else train
            target.add(rating.user, rating.item, rating.value)
        return train, test

    def k_folds(self, k: int, seed: Optional[int] = 0
                ) -> List[Tuple["RatingsMatrix", "RatingsMatrix"]]:
        """Return ``k`` (train, test) folds for cross-validation."""
        if k < 2:
            raise ValueError("k must be at least 2")
        rng = np.random.default_rng(seed)
        indices = rng.permutation(len(self._ratings))
        folds = np.array_split(indices, k)
        result = []
        for fold in folds:
            fold_set = set(fold.tolist())
            train = RatingsMatrix(self._num_users, self._num_items, self._scale)
            test = RatingsMatrix(self._num_users, self._num_items, self._scale)
            for index, rating in enumerate(self._ratings):
                target = test if index in fold_set else train
                target.add(rating.user, rating.item, rating.value)
            result.append((train, test))
        return result
