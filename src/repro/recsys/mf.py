"""Matrix factorization trained with stochastic gradient descent.

This is the "vanilla MF" rating predictor of §6: users and items are embedded
in a shared latent space, a rating is predicted as

``r_hat(u, i) = mu + b_u + b_i + p_u . q_i``

(global mean, user bias, item bias, latent interaction), and the parameters
are learned by SGD on the squared error with L2 regularisation -- the standard
Koren-style recipe.  The model plays a pure substrate role here: its predicted
ratings feed the adoption-probability estimator of
:mod:`repro.pricing.adoption`, exactly as MyMediaLite's factorization fed the
paper's pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.recsys.ratings import RatingsMatrix

__all__ = ["MFConfig", "MatrixFactorization"]


@dataclass
class MFConfig:
    """Hyper-parameters of the SGD matrix-factorization model.

    Attributes:
        num_factors: dimensionality of the latent space.
        num_epochs: number of passes over the training ratings.
        learning_rate: SGD step size.
        regularization: L2 penalty applied to every learned parameter.
        init_scale: standard deviation of the random factor initialisation.
        use_biases: learn user/item biases in addition to latent factors.
        seed: random seed for initialisation and example shuffling.
    """

    num_factors: int = 16
    num_epochs: int = 20
    learning_rate: float = 0.01
    regularization: float = 0.05
    init_scale: float = 0.1
    use_biases: bool = True
    seed: Optional[int] = 0


class MatrixFactorization:
    """Biased matrix factorization with SGD training.

    Example:
        >>> model = MatrixFactorization(MFConfig(num_factors=8, num_epochs=5))
        >>> model.fit(ratings)          # doctest: +SKIP
        >>> model.predict(user=3, item=17)   # doctest: +SKIP
    """

    def __init__(self, config: Optional[MFConfig] = None) -> None:
        self.config = config or MFConfig()
        self._user_factors: Optional[np.ndarray] = None
        self._item_factors: Optional[np.ndarray] = None
        self._user_bias: Optional[np.ndarray] = None
        self._item_bias: Optional[np.ndarray] = None
        self._global_mean = 0.0
        self._scale: Tuple[float, float] = (1.0, 5.0)
        self._training_errors: List[float] = []

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def fit(self, ratings: RatingsMatrix) -> "MatrixFactorization":
        """Train the model on the observed ratings; returns ``self``."""
        config = self.config
        rng = np.random.default_rng(config.seed)
        num_users, num_items = ratings.num_users, ratings.num_items
        self._scale = ratings.rating_scale
        self._global_mean = ratings.global_mean()
        self._user_factors = rng.normal(
            0.0, config.init_scale, size=(num_users, config.num_factors)
        )
        self._item_factors = rng.normal(
            0.0, config.init_scale, size=(num_items, config.num_factors)
        )
        self._user_bias = np.zeros(num_users)
        self._item_bias = np.zeros(num_items)
        users, items, values = ratings.to_arrays()
        if users.size == 0:
            raise ValueError("cannot fit a model on an empty ratings matrix")

        self._training_errors = []
        order = np.arange(users.size)
        for _ in range(config.num_epochs):
            rng.shuffle(order)
            squared_error = 0.0
            for index in order:
                user, item, value = users[index], items[index], values[index]
                error = value - self._raw_predict(user, item)
                squared_error += error * error
                self._sgd_step(user, item, error)
            self._training_errors.append(float(np.sqrt(squared_error / users.size)))
        return self

    def _sgd_step(self, user: int, item: int, error: float) -> None:
        config = self.config
        lr = config.learning_rate
        reg = config.regularization
        if config.use_biases:
            self._user_bias[user] += lr * (error - reg * self._user_bias[user])
            self._item_bias[item] += lr * (error - reg * self._item_bias[item])
        user_vector = self._user_factors[user]
        item_vector = self._item_factors[item]
        self._user_factors[user] = user_vector + lr * (error * item_vector - reg * user_vector)
        self._item_factors[item] = item_vector + lr * (error * user_vector - reg * item_vector)

    # ------------------------------------------------------------------
    # prediction
    # ------------------------------------------------------------------
    def _require_fitted(self) -> None:
        if self._user_factors is None:
            raise RuntimeError("model must be fitted before predicting")

    def _raw_predict(self, user: int, item: int) -> float:
        prediction = self._global_mean
        if self.config.use_biases:
            prediction += self._user_bias[user] + self._item_bias[item]
        prediction += float(np.dot(self._user_factors[user], self._item_factors[item]))
        return prediction

    def predict(self, user: int, item: int) -> float:
        """Predict the rating of ``(user, item)``, clipped to the rating scale."""
        self._require_fitted()
        low, high = self._scale
        return float(np.clip(self._raw_predict(user, item), low, high))

    def predict_for_user(self, user: int, items: Optional[Sequence[int]] = None
                         ) -> np.ndarray:
        """Predict ratings of ``user`` for ``items`` (default: all items)."""
        self._require_fitted()
        if items is None:
            items = np.arange(self._item_factors.shape[0])
        items = np.asarray(items, dtype=int)
        scores = self._item_factors[items] @ self._user_factors[user]
        scores += self._global_mean
        if self.config.use_biases:
            scores += self._user_bias[user] + self._item_bias[items]
        low, high = self._scale
        return np.clip(scores, low, high)

    @property
    def training_rmse_per_epoch(self) -> List[float]:
        """Training RMSE recorded after each epoch (for convergence checks)."""
        return list(self._training_errors)

    @property
    def num_parameters(self) -> int:
        """Total number of learned parameters."""
        self._require_fitted()
        total = self._user_factors.size + self._item_factors.size
        if self.config.use_biases:
            total += self._user_bias.size + self._item_bias.size
        return int(total)
