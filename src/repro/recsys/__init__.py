"""Recommender-system substrate: ratings, matrix factorization, evaluation."""

from repro.recsys.ratings import Rating, RatingsMatrix
from repro.recsys.mf import MatrixFactorization, MFConfig
from repro.recsys.evaluation import (
    CrossValidationResult,
    cross_validate,
    evaluate_model,
    mae,
    rmse,
)
from repro.recsys.topk import Candidate, top_candidates, top_candidates_for_user

__all__ = [
    "Candidate",
    "CrossValidationResult",
    "MFConfig",
    "MatrixFactorization",
    "Rating",
    "RatingsMatrix",
    "cross_validate",
    "evaluate_model",
    "mae",
    "rmse",
    "top_candidates",
    "top_candidates_for_user",
]
