"""Regeneration functions for every table and figure of the paper's evaluation.

Each ``figure*`` / ``table*`` function reproduces the data behind one exhibit
of §6 (and §7) on reproduction-scale instances:

========================  =====================================================
``table1_dataset_statistics``   Table 1 -- dataset statistics
``table2_running_times``        Table 2 -- running time of the six algorithms
``figure1_revenue_by_capacity_distribution``  Figure 1 -- revenue vs capacity
                                distribution (normal / power / uniform), both
                                datasets, multi-item and singleton classes
``figure2_revenue_by_saturation``  Figure 2 -- revenue vs uniform beta
                                (0.1 / 0.5 / 0.9), class size > 1
``figure3_revenue_by_saturation_singleton``  Figure 3 -- same, singleton classes
``figure4_revenue_growth_curves``  Figure 4 -- revenue vs strategy size
``figure5_repeat_histograms``      Figure 5 -- repeat-recommendation histograms
``figure6_scalability``            Figure 6 -- G-Greedy runtime vs #triples
``figure7_incomplete_prices``      Figure 7 -- gradually available prices
``extension_random_prices``        §7 -- Taylor vs mean-price vs Monte-Carlo
``theory_small_instances``         §3.2/§4 -- exact vs local search vs greedy
========================  =====================================================

Every function returns a :class:`FigureResult` whose ``data`` holds the raw
numbers and whose ``text`` is a readable rendering; the benchmarks under
``benchmarks/`` call these functions and print the text.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.algorithms.exact_single_step import SingleStepExactSolver
from repro.algorithms.global_greedy import GlobalGreedy
from repro.algorithms.incomplete_prices import SubHorizonWrapper
from repro.algorithms.local_greedy import RandomizedLocalGreedy, SequentialLocalGreedy
from repro.algorithms.local_search import LocalSearchApproximation
from repro.core.entities import ItemCatalog
from repro.core.problem import RevMaxInstance
from repro.core.random_prices import PriceDistribution, TaylorRevenueModel
from repro.datasets.capacities import sample_betas, sample_capacities
from repro.datasets.pipeline import PipelineResult
from repro.datasets.statistics import dataset_statistics, format_table1
from repro.datasets.synthetic import SyntheticConfig, generate_synthetic_instance
from repro.experiments.harness import (
    predicted_ratings_map,
    run_algorithms,
    standard_algorithms,
)
from repro.experiments.reporting import (
    format_grouped_bars,
    format_histogram,
    format_series,
    format_table,
)

__all__ = [
    "FigureResult",
    "table1_dataset_statistics",
    "table2_running_times",
    "figure1_revenue_by_capacity_distribution",
    "figure2_revenue_by_saturation",
    "figure3_revenue_by_saturation_singleton",
    "figure4_revenue_growth_curves",
    "figure5_repeat_histograms",
    "figure6_scalability",
    "figure7_incomplete_prices",
    "extension_random_prices",
    "theory_small_instances",
]


@dataclass
class FigureResult:
    """Raw data and text rendering of one reproduced exhibit."""

    name: str
    description: str
    data: Dict[str, object] = field(default_factory=dict)
    text: str = ""

    def __str__(self) -> str:
        return f"== {self.name}: {self.description} ==\n{self.text}"


# ----------------------------------------------------------------------
# shared helpers
# ----------------------------------------------------------------------
def _configured_instance(
    pipeline: PipelineResult,
    capacity_distribution: Optional[str] = None,
    beta_mode: str = "uniform",
    beta_value: Optional[float] = None,
    singleton_classes: bool = False,
    seed: int = 0,
) -> RevMaxInstance:
    """Apply a figure's capacity/beta/class settings to a pipeline instance."""
    instance = pipeline.instance
    if capacity_distribution is not None:
        capacities = sample_capacities(
            instance.num_items,
            instance.num_users,
            distribution=capacity_distribution,
            seed=seed,
        )
        instance = instance.with_capacities(capacities)
    betas = sample_betas(
        instance.num_items, mode=beta_mode, value=beta_value, seed=seed
    )
    instance = instance.with_betas(betas)
    if singleton_classes:
        instance = instance.with_singleton_classes()
    return instance


def _algorithm_suite(pipeline: PipelineResult, rl_permutations: int, seed: int):
    return standard_algorithms(
        predicted_ratings=predicted_ratings_map(pipeline),
        rl_permutations=rl_permutations,
        seed=seed,
    )


def _revenues_for_setting(pipeline: PipelineResult, instance: RevMaxInstance,
                          rl_permutations: int, seed: int,
                          jobs: Optional[int] = None) -> Dict[str, float]:
    results = run_algorithms(
        instance, _algorithm_suite(pipeline, rl_permutations, seed), jobs=jobs
    )
    return {name: result.revenue for name, result in results.items()}


# ----------------------------------------------------------------------
# Table 1 / Table 2
# ----------------------------------------------------------------------
def table1_dataset_statistics(
    pipelines: Mapping[str, PipelineResult],
    synthetic_config: Optional[SyntheticConfig] = None,
) -> FigureResult:
    """Reproduce Table 1 (dataset statistics) for the reproduction datasets."""
    rows = []
    for name, pipeline in pipelines.items():
        rows.append(
            dataset_statistics(pipeline.instance, dataset=pipeline.dataset, name=name)
        )
    if synthetic_config is not None:
        synthetic_instance = generate_synthetic_instance(synthetic_config)
        rows.append(dataset_statistics(synthetic_instance, name="synthetic"))
    text = format_table1(rows)
    return FigureResult(
        name="Table 1",
        description="Data statistics",
        data={"rows": rows},
        text=text,
    )


def table2_running_times(
    pipelines: Mapping[str, PipelineResult],
    beta_value: Optional[float] = None,
    rl_permutations: int = 6,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> FigureResult:
    """Reproduce Table 2 (running time of GG / RLG / SLG / TopRE / TopRA).

    With ``jobs`` the suite runs across worker processes; each reported time
    is still that solver's own wall-clock inside its worker.
    """
    data: Dict[str, Dict[str, float]] = {}
    for name, pipeline in pipelines.items():
        instance = _configured_instance(
            pipeline,
            capacity_distribution="normal",
            beta_mode="uniform" if beta_value is None else "fixed",
            beta_value=beta_value,
            seed=seed,
        )
        results = run_algorithms(
            instance, _algorithm_suite(pipeline, rl_permutations, seed), jobs=jobs
        )
        data[name] = {
            algorithm: result.runtime_seconds
            for algorithm, result in results.items()
        }
    text = format_grouped_bars(data, group_label="dataset", value_format="{:.3f}s")
    return FigureResult(
        name="Table 2",
        description="Running time comparison (seconds, reproduction scale)",
        data=data,
        text=text,
    )


# ----------------------------------------------------------------------
# Figures 1-3: revenue comparisons
# ----------------------------------------------------------------------
def figure1_revenue_by_capacity_distribution(
    pipelines: Mapping[str, PipelineResult],
    capacity_distributions: Sequence[str] = ("normal", "power", "uniform"),
    singleton_classes: bool = False,
    rl_permutations: int = 6,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> FigureResult:
    """Figure 1: expected revenue with beta ~ U[0,1], varying capacity law."""
    data: Dict[str, Dict[str, Dict[str, float]]] = {}
    for name, pipeline in pipelines.items():
        per_distribution: Dict[str, Dict[str, float]] = {}
        for distribution in capacity_distributions:
            instance = _configured_instance(
                pipeline,
                capacity_distribution=distribution,
                beta_mode="uniform",
                singleton_classes=singleton_classes,
                seed=seed,
            )
            per_distribution[distribution] = _revenues_for_setting(
                pipeline, instance, rl_permutations, seed, jobs=jobs
            )
        data[name] = per_distribution
    blocks = []
    for name, per_distribution in data.items():
        blocks.append(f"[{name}]")
        blocks.append(format_grouped_bars(per_distribution, group_label="capacity dist"))
    suffix = ", singleton classes" if singleton_classes else ""
    return FigureResult(
        name="Figure 1" + (" (c,d)" if singleton_classes else " (a,b)"),
        description=f"Expected total revenue, beta ~ U[0,1]{suffix}",
        data=data,
        text="\n".join(blocks),
    )


def figure2_revenue_by_saturation(
    pipelines: Mapping[str, PipelineResult],
    betas: Sequence[float] = (0.1, 0.5, 0.9),
    capacity_distributions: Sequence[str] = ("normal", "exponential"),
    singleton_classes: bool = False,
    rl_permutations: int = 6,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> FigureResult:
    """Figure 2: expected revenue at fixed beta in {0.1, 0.5, 0.9}."""
    data: Dict[str, Dict[str, Dict[str, float]]] = {}
    for name, pipeline in pipelines.items():
        for distribution in capacity_distributions:
            per_beta: Dict[str, Dict[str, float]] = {}
            for beta in betas:
                instance = _configured_instance(
                    pipeline,
                    capacity_distribution=distribution,
                    beta_mode="fixed",
                    beta_value=beta,
                    singleton_classes=singleton_classes,
                    seed=seed,
                )
                per_beta[f"beta={beta}"] = _revenues_for_setting(
                    pipeline, instance, rl_permutations, seed, jobs=jobs
                )
            data[f"{name}/{distribution}"] = per_beta
    blocks = []
    for key, per_beta in data.items():
        blocks.append(f"[{key}]")
        blocks.append(format_grouped_bars(per_beta, group_label="saturation"))
    figure_name = "Figure 3" if singleton_classes else "Figure 2"
    suffix = ", singleton classes" if singleton_classes else ", class size > 1"
    return FigureResult(
        name=figure_name,
        description=f"Expected revenue vs saturation strength{suffix}",
        data=data,
        text="\n".join(blocks),
    )


def figure3_revenue_by_saturation_singleton(
    pipelines: Mapping[str, PipelineResult],
    betas: Sequence[float] = (0.1, 0.5, 0.9),
    capacity_distributions: Sequence[str] = ("normal", "exponential"),
    rl_permutations: int = 6,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> FigureResult:
    """Figure 3: same as Figure 2 but with every item in its own class."""
    return figure2_revenue_by_saturation(
        pipelines,
        betas=betas,
        capacity_distributions=capacity_distributions,
        singleton_classes=True,
        rl_permutations=rl_permutations,
        seed=seed,
        jobs=jobs,
    )


# ----------------------------------------------------------------------
# Figure 4: revenue growth curves
# ----------------------------------------------------------------------
def figure4_revenue_growth_curves(
    pipeline: PipelineResult,
    rl_permutations: int = 6,
    seed: int = 0,
    singleton_classes: bool = False,
) -> FigureResult:
    """Figure 4: revenue vs strategy size for GG / SLG / RLG."""
    instance = _configured_instance(
        pipeline,
        capacity_distribution="normal",
        beta_mode="uniform",
        singleton_classes=singleton_classes,
        seed=seed,
    )
    algorithms = [
        GlobalGreedy(),
        SequentialLocalGreedy(),
        RandomizedLocalGreedy(num_permutations=rl_permutations, seed=seed),
    ]
    curves: Dict[str, List[Tuple[int, float]]] = {}
    for algorithm in algorithms:
        result = algorithm.run(instance)
        curves[algorithm.name] = result.growth_curve
    blocks = []
    for name, curve in curves.items():
        blocks.append(f"[{name}]")
        blocks.append(format_series(curve, x_label="|S|", y_label="revenue"))
    return FigureResult(
        name="Figure 4",
        description="Expected revenue vs strategy size (diminishing returns)",
        data={"curves": curves},
        text="\n".join(blocks),
    )


# ----------------------------------------------------------------------
# Figure 5: repeat-recommendation histograms
# ----------------------------------------------------------------------
def figure5_repeat_histograms(
    pipeline: PipelineResult,
    betas: Sequence[float] = (0.1, 0.5, 0.9),
    seed: int = 0,
) -> FigureResult:
    """Figure 5: histogram of repeat recommendations made by G-Greedy."""
    histograms: Dict[float, Dict[int, int]] = {}
    for beta in betas:
        instance = _configured_instance(
            pipeline,
            capacity_distribution="normal",
            beta_mode="fixed",
            beta_value=beta,
            seed=seed,
        )
        result = GlobalGreedy().run(instance)
        counts: Dict[int, int] = {}
        for repeats in result.strategy.repeat_counts().values():
            counts[repeats] = counts.get(repeats, 0) + 1
        histograms[beta] = counts
    blocks = []
    for beta, counts in histograms.items():
        blocks.append(f"[beta = {beta}]")
        blocks.append(format_histogram(counts, label="repeats"))
    return FigureResult(
        name="Figure 5",
        description="Repeat recommendations per user-item pair (G-Greedy)",
        data={"histograms": histograms},
        text="\n".join(blocks),
    )


# ----------------------------------------------------------------------
# Figure 6: scalability of G-Greedy on synthetic data
# ----------------------------------------------------------------------
def figure6_scalability(
    user_counts: Sequence[int] = (500, 1000, 1500, 2000),
    base_config: Optional[SyntheticConfig] = None,
    seed: int = 0,
) -> FigureResult:
    """Figure 6: G-Greedy running time vs number of candidate triples."""
    base_config = base_config or SyntheticConfig(seed=seed)
    points: List[Tuple[int, float]] = []
    revenues: List[float] = []
    for num_users in user_counts:
        config = SyntheticConfig(
            num_users=num_users,
            num_items=base_config.num_items,
            num_classes=base_config.num_classes,
            horizon=base_config.horizon,
            candidates_per_user=base_config.candidates_per_user,
            display_limit=base_config.display_limit,
            capacity_fraction=base_config.capacity_fraction,
            beta=base_config.beta,
            seed=seed,
        )
        instance = generate_synthetic_instance(config)
        num_triples = instance.num_candidate_triples()
        start = time.perf_counter()
        result = GlobalGreedy().run(instance)
        elapsed = time.perf_counter() - start
        points.append((num_triples, elapsed))
        revenues.append(result.revenue)
    text = format_series(points, x_label="#candidate triples", y_label="seconds")
    return FigureResult(
        name="Figure 6",
        description="G-Greedy running time on synthetic data (near-linear growth)",
        data={"points": points, "revenues": revenues, "user_counts": list(user_counts)},
        text=text,
    )


# ----------------------------------------------------------------------
# Figure 7: gradually available prices
# ----------------------------------------------------------------------
def figure7_incomplete_prices(
    pipelines: Mapping[str, PipelineResult],
    cutoffs: Sequence[int] = (2, 4, 5),
    capacity_distributions: Sequence[str] = ("normal", "power"),
    beta_value: float = 0.5,
    rl_permutations: int = 6,
    seed: int = 0,
) -> FigureResult:
    """Figure 7: revenue when prices arrive sub-horizon by sub-horizon."""
    data: Dict[str, Dict[str, float]] = {}
    for name, pipeline in pipelines.items():
        for distribution in capacity_distributions:
            instance = _configured_instance(
                pipeline,
                capacity_distribution=distribution,
                beta_mode="fixed",
                beta_value=beta_value,
                seed=seed,
            )
            revenues: Dict[str, float] = {}
            revenues["GG"] = GlobalGreedy().run(instance).revenue
            for cutoff in cutoffs:
                wrapper = SubHorizonWrapper(GlobalGreedy(), [cutoff])
                revenues[f"GG_{cutoff}"] = wrapper.run(instance).revenue
            revenues["SLG"] = SequentialLocalGreedy().run(instance).revenue
            rlg = RandomizedLocalGreedy(num_permutations=rl_permutations, seed=seed)
            revenues["RLG"] = rlg.run(instance).revenue
            for cutoff in cutoffs:
                wrapper = SubHorizonWrapper(
                    RandomizedLocalGreedy(num_permutations=rl_permutations, seed=seed),
                    [cutoff],
                )
                revenues[f"RLG_{cutoff}"] = wrapper.run(instance).revenue
            data[f"{name}/{distribution}"] = revenues
    text = format_grouped_bars(data, group_label="dataset/capacity")
    return FigureResult(
        name="Figure 7",
        description=(
            "Revenue with gradually available prices "
            f"(cut-offs {tuple(cutoffs)}, beta = {beta_value})"
        ),
        data=data,
        text=text,
    )


# ----------------------------------------------------------------------
# §7 extension: random prices
# ----------------------------------------------------------------------
def extension_random_prices(
    num_users: int = 12,
    num_items: int = 6,
    horizon: int = 4,
    price_std_fraction: float = 0.15,
    num_mc_samples: int = 300,
    seed: int = 0,
) -> FigureResult:
    """§7: compare mean-price, Taylor and Monte-Carlo revenue estimates.

    A small random-price market is generated; the strategy is planned by
    G-Greedy on the mean-price instance and then evaluated by the three
    estimators.  The Taylor estimate should sit closer to the Monte-Carlo
    ground truth than the naive mean-price estimate.
    """
    rng = np.random.default_rng(seed)
    catalog = ItemCatalog.from_assignment(
        [item % max(1, num_items // 2) for item in range(num_items)]
    )
    means = rng.uniform(20.0, 200.0, size=(num_items, horizon))
    variances = (price_std_fraction * means) ** 2
    distribution = PriceDistribution(means, variances)
    valuations = rng.uniform(0.8, 1.4, size=num_items)

    def adoption_given_price(user: int, item: int, t: int, price: float) -> float:
        reference = means[item].mean() * valuations[item]
        if reference <= 0:
            return 0.0
        ratio = price / reference
        return float(np.clip(1.2 - 0.6 * ratio, 0.0, 1.0))

    candidate_pairs = [
        (user, item)
        for user in range(num_users)
        for item in rng.choice(num_items, size=max(1, num_items // 2), replace=False)
    ]
    model = TaylorRevenueModel(
        num_users=num_users,
        catalog=catalog,
        display_limit=2,
        capacities=num_users,
        betas=0.6,
        price_distribution=distribution,
        adoption_given_price=adoption_given_price,
        candidate_pairs=candidate_pairs,
    )
    planning_instance = model.mean_price_instance()
    strategy = GlobalGreedy().build_strategy(planning_instance)
    triples = strategy.sorted_triples()

    mean_estimate = model.expected_price_revenue(triples)
    taylor_estimate = model.taylor_revenue(triples)
    monte_carlo = model.monte_carlo_revenue(triples, num_samples=num_mc_samples, seed=seed)
    data = {
        "mean_price_estimate": mean_estimate,
        "taylor_estimate": taylor_estimate,
        "monte_carlo_ground_truth": monte_carlo,
        "mean_abs_error": abs(mean_estimate - monte_carlo),
        "taylor_abs_error": abs(taylor_estimate - monte_carlo),
        "strategy_size": len(triples),
    }
    text = format_table(
        ["estimator", "expected revenue", "abs error vs MC"],
        [
            ["mean price (0th order)", mean_estimate, abs(mean_estimate - monte_carlo)],
            ["Taylor (2nd order)", taylor_estimate, abs(taylor_estimate - monte_carlo)],
            ["Monte-Carlo ground truth", monte_carlo, 0.0],
        ],
    )
    return FigureResult(
        name="Extension (§7)",
        description="Random-price revenue estimation: Taylor vs mean-price",
        data=data,
        text=text,
    )


# ----------------------------------------------------------------------
# §3.2 / §4 theory: exact and approximate solvers on small instances
# ----------------------------------------------------------------------
def theory_small_instances(seed: int = 0) -> FigureResult:
    """Compare the exact T=1 solver, local search and greedy on tiny instances."""
    rng = np.random.default_rng(seed)
    num_users, num_items = 6, 5
    # --- T = 1: exact Max-DCS vs greedy -----------------------------------
    prices_t1 = rng.uniform(10.0, 100.0, size=(num_items, 1))
    adoption_t1 = {}
    for user in range(num_users):
        for item in range(num_items):
            if rng.random() < 0.7:
                adoption_t1[(user, item)] = [float(rng.uniform(0.1, 0.9))]
    # Singleton classes keep the T=1 revenue additive, so the Max-DCS solution
    # is the true optimum and can anchor the greedy comparison.
    instance_t1 = RevMaxInstance.from_dense_adoption(
        prices=prices_t1,
        adoption=adoption_t1,
        item_class=list(range(num_items)),
        capacities=3,
        betas=0.5,
        display_limit=2,
        num_users=num_users,
        name="theory-T1",
    )
    exact = SingleStepExactSolver().run(instance_t1)
    greedy_t1 = GlobalGreedy().run(instance_t1)

    # --- T = 3: local search (R-REVMAX) vs greedy --------------------------
    horizon = 3
    prices_t3 = rng.uniform(10.0, 100.0, size=(num_items, horizon))
    adoption_t3 = {}
    for user in range(4):
        for item in range(3):
            if rng.random() < 0.8:
                adoption_t3[(user, item)] = rng.uniform(0.1, 0.9, size=horizon).tolist()
    instance_t3 = RevMaxInstance.from_dense_adoption(
        prices=prices_t3,
        adoption=adoption_t3,
        item_class=[item % 2 for item in range(num_items)],
        capacities=2,
        betas=0.5,
        display_limit=1,
        num_users=4,
        name="theory-T3",
    )
    local_search = LocalSearchApproximation(epsilon=0.5).run(instance_t3)
    greedy_t3 = GlobalGreedy().run(instance_t3)

    data = {
        "t1_exact_revenue": exact.revenue,
        "t1_greedy_revenue": greedy_t1.revenue,
        "t3_local_search_revenue": local_search.revenue,
        "t3_local_search_objective": local_search.extras.get("objective_value"),
        "t3_greedy_revenue": greedy_t3.revenue,
    }
    text = format_table(
        ["setting", "algorithm", "expected revenue"],
        [
            ["T=1", "Exact Max-DCS", exact.revenue],
            ["T=1", "G-Greedy", greedy_t1.revenue],
            ["T=3 (R-REVMAX)", "Local search 1/(4+eps)", local_search.revenue],
            ["T=3 (R-REVMAX)", "G-Greedy", greedy_t3.revenue],
        ],
    )
    return FigureResult(
        name="Theory (§3.2, §4)",
        description="Exact and approximation algorithms on small instances",
        data=data,
        text=text,
    )
