"""Experiment harness: prepared datasets, algorithm suites, result records.

The evaluation section of the paper repeatedly runs the same six algorithms
(G-Greedy, GlobalNo, RL-Greedy, SL-Greedy, TopRE, TopRA) on instances derived
from the Amazon and Epinions datasets under varying saturation factors,
capacity distributions and class settings.  This module centralises

* the *reproduction scales* (tiny / small / medium dataset sizes, so tests and
  benchmarks pick the cost they can afford),
* dataset preparation (generator + §6.1 pipeline) with caching,
* the standard algorithm suite and the loop that runs it on an instance and
  audits the outputs.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.algorithms.base import AlgorithmResult, RevMaxAlgorithm
from repro.algorithms.baselines import TopRatingBaseline, TopRevenueBaseline
from repro.algorithms.global_greedy import GlobalGreedy, GlobalGreedyNoSaturation
from repro.algorithms.local_greedy import RandomizedLocalGreedy, SequentialLocalGreedy
from repro.core.problem import RevMaxInstance
from repro.datasets.amazon_like import AmazonLikeConfig, generate_amazon_like
from repro.datasets.epinions_like import EpinionsLikeConfig, generate_epinions_like
from repro.datasets.pipeline import PipelineConfig, PipelineResult, run_pipeline
from repro.recsys.mf import MFConfig

__all__ = [
    "SCALES",
    "prepare_dataset",
    "set_dataset_cache_limit",
    "predicted_ratings_map",
    "standard_algorithms",
    "run_algorithms",
    "experiment_records",
    "ExperimentRecord",
]


@dataclass(frozen=True)
class _ScalePreset:
    """Dataset sizes and pipeline knobs of one reproduction scale."""

    amazon_users: int
    amazon_items: int
    epinions_users: int
    epinions_items: int
    num_candidates: int
    mf_epochs: int
    rl_permutations: int


#: Reproduction scales.  "tiny" keeps unit tests fast; "small" is the default
#: benchmark scale; "medium" approaches 1/20 of the paper's sizes.
SCALES: Dict[str, _ScalePreset] = {
    "tiny": _ScalePreset(
        amazon_users=60, amazon_items=30, epinions_users=50, epinions_items=24,
        num_candidates=8, mf_epochs=5, rl_permutations=4,
    ),
    "small": _ScalePreset(
        amazon_users=250, amazon_items=80, epinions_users=200, epinions_items=60,
        num_candidates=15, mf_epochs=10, rl_permutations=8,
    ),
    "medium": _ScalePreset(
        amazon_users=800, amazon_items=200, epinions_users=600, epinions_items=120,
        num_candidates=25, mf_epochs=15, rl_permutations=12,
    ),
}

#: Bounded LRU of prepared pipelines.  The key includes the process id: a
#: forked worker inherits a *copy* of the parent's entries, but pid-keying
#: guarantees it never serves an object the parent (or a sibling) also holds
#: a reference to -- ``PipelineResult`` is mutable, and the one-owner rule
#: makes concurrent harness use safe without deep-copying on every hit.
_DATASET_CACHE: "OrderedDict[Tuple[str, str, int, int], PipelineResult]" = (
    OrderedDict()
)
_DATASET_CACHE_LOCK = threading.Lock()
_DATASET_CACHE_LIMIT = int(os.environ.get("REPRO_DATASET_CACHE_SIZE", "8"))


def set_dataset_cache_limit(limit: int) -> int:
    """Bound the dataset cache to ``limit`` entries (0 disables caching).

    The default is 8 entries, overridable process-wide through the
    ``REPRO_DATASET_CACHE_SIZE`` environment variable.  Returns the previous
    limit so tests can restore it.
    """
    global _DATASET_CACHE_LIMIT
    if limit < 0:
        raise ValueError("cache limit must be non-negative")
    with _DATASET_CACHE_LOCK:
        previous = _DATASET_CACHE_LIMIT
        _DATASET_CACHE_LIMIT = int(limit)
        while len(_DATASET_CACHE) > _DATASET_CACHE_LIMIT:
            _DATASET_CACHE.popitem(last=False)
    return previous


def prepare_dataset(name: str, scale: str = "small", seed: int = 0,
                    use_cache: bool = True) -> PipelineResult:
    """Generate a dataset and run the §6.1 pipeline at the given scale.

    Args:
        name: ``"amazon"`` or ``"epinions"``.
        scale: one of :data:`SCALES`.
        seed: master seed (affects generation and the pipeline samplers).
        use_cache: reuse a previously prepared result for the same key.

    Returns:
        The full :class:`~repro.datasets.pipeline.PipelineResult`.
    """
    if scale not in SCALES:
        raise ValueError(f"unknown scale {scale!r}; expected one of {sorted(SCALES)}")
    key = (name, scale, seed, os.getpid())
    if use_cache:
        with _DATASET_CACHE_LOCK:
            cached = _DATASET_CACHE.get(key)
            if cached is not None:
                _DATASET_CACHE.move_to_end(key)
                return cached
    preset = SCALES[scale]
    if name == "amazon":
        dataset = generate_amazon_like(AmazonLikeConfig(
            num_users=preset.amazon_users,
            num_items=preset.amazon_items,
            seed=seed + 7,
        ))
    elif name == "epinions":
        dataset = generate_epinions_like(EpinionsLikeConfig(
            num_users=preset.epinions_users,
            num_items=preset.epinions_items,
            seed=seed + 11,
        ))
    else:
        raise ValueError(f"unknown dataset {name!r}; expected 'amazon' or 'epinions'")
    config = PipelineConfig(
        num_candidates=preset.num_candidates,
        mf_config=MFConfig(num_factors=8, num_epochs=preset.mf_epochs, seed=seed),
        seed=seed,
    )
    result = run_pipeline(dataset, config)
    if use_cache:
        with _DATASET_CACHE_LOCK:
            _DATASET_CACHE[key] = result
            _DATASET_CACHE.move_to_end(key)
            while len(_DATASET_CACHE) > _DATASET_CACHE_LIMIT:
                _DATASET_CACHE.popitem(last=False)
    return result


def predicted_ratings_map(pipeline: PipelineResult) -> Dict[Tuple[int, int], float]:
    """Extract the ``(user, item) -> predicted rating`` map for TopRA."""
    mapping: Dict[Tuple[int, int], float] = {}
    for user, candidates in pipeline.candidates.items():
        for candidate in candidates:
            mapping[(user, candidate.item)] = candidate.predicted_rating
    return mapping


def standard_algorithms(
    predicted_ratings: Optional[Mapping[Tuple[int, int], float]] = None,
    rl_permutations: int = 8,
    include: Optional[Sequence[str]] = None,
    seed: int = 0,
    backend: Optional[str] = None,
    rl_jobs: Union[int, str, None] = None,
    gg_shards: Union[int, str, None] = None,
) -> List[RevMaxAlgorithm]:
    """Build the six-algorithm suite the paper's figures compare.

    Args:
        predicted_ratings: optional rating map handed to TopRA.
        rl_permutations: number of permutations for RL-Greedy.
        include: optional subset of algorithm names (e.g. ``["GG", "SLG"]``);
            recognised keys are GG, GG-No, RLG, SLG, TopRev, TopRat.
        seed: seed of the randomized components.
        backend: revenue-engine backend forwarded to every solver ("numpy" /
            "python"; ``None`` uses the process default).  Handy for
            benchmarking the engines against each other on identical suites.
        rl_jobs: worker processes for RL-Greedy's permutation fan-out
            (``None``: serial; ``"auto"``: the cost model of
            :mod:`repro.autotune` decides).  Leave unset when the whole
            suite already runs under ``run_algorithms(jobs=...)`` --
            nesting pools wins nothing.
        gg_shards: user shards for G-Greedy / GlobalNo's sharded selection
            (:mod:`repro.shard`; ``None``: serial, ``0``: one per core,
            ``"auto"``: cost-model decided).  Bit-identical results either
            way; the same nesting caveat as ``rl_jobs`` applies.

    Explicit parallel requests the cost model predicts will lose (fewer
    than two cores) are overridden to the serial path with a one-line
    warning; the decision is pinned into the affected algorithms' result
    extras, and :func:`experiment_records` surfaces it as
    ``settings["degraded"]``.
    """
    # Imported lazily: building a suite must not pay for the machinery
    # unless a parallel knob is actually set.
    if rl_jobs is not None or gg_shards is not None:
        from repro import autotune

        rl_jobs, rl_decision = autotune.override_losing_request("jobs", rl_jobs)
        gg_shards, gg_decision = autotune.override_losing_request(
            "shards", gg_shards
        )
    else:
        rl_decision = gg_decision = None
    suite: Dict[str, RevMaxAlgorithm] = {
        "GG": GlobalGreedy(backend=backend, shards=gg_shards),
        "GG-No": GlobalGreedyNoSaturation(backend=backend, shards=gg_shards),
        "RLG": RandomizedLocalGreedy(num_permutations=rl_permutations, seed=seed,
                                     backend=backend, jobs=rl_jobs),
        "SLG": SequentialLocalGreedy(backend=backend),
        "TopRev": TopRevenueBaseline(),
        "TopRat": TopRatingBaseline(predicted_ratings),
    }
    if gg_decision is not None:
        for key in ("GG", "GG-No"):
            suite[key].pinned_extras = {"degraded": True,
                                        "parallel": gg_decision.as_dict()}
    if rl_decision is not None:
        suite["RLG"].pinned_extras = {"degraded": True,
                                      "parallel": rl_decision.as_dict()}
    if include is None:
        return list(suite.values())
    unknown = [key for key in include if key not in suite]
    if unknown:
        raise ValueError(f"unknown algorithm keys: {unknown}")
    return [suite[key] for key in include]


@dataclass
class ExperimentRecord:
    """One (instance, algorithm) measurement."""

    instance_name: str
    algorithm: str
    revenue: float
    runtime_seconds: float
    strategy_size: int
    settings: Dict[str, object] = field(default_factory=dict)


def run_algorithms(instance: RevMaxInstance,
                   algorithms: Iterable[RevMaxAlgorithm],
                   settings: Optional[Dict[str, object]] = None,
                   jobs: Union[int, str, None] = None,
                   ) -> Dict[str, AlgorithmResult]:
    """Run every algorithm on the instance and return results keyed by name.

    Args:
        instance: the REVMAX instance to solve.
        algorithms: the solvers to run.
        settings: optional experiment settings merged into every result's
            extras (capacity distribution, beta, ... -- figure bookkeeping).
        jobs: worker processes (``None``/1: serial in-process; ``0``: one
            per core; ``"auto"``: the cost model of :mod:`repro.autotune`
            decides, running in-process where fan-out loses).  Parallel
            runs return bit-identical revenues and strategies; see
            :mod:`repro.experiments.parallel`.
    """
    if jobs == "auto":
        from repro import autotune

        algorithms = list(algorithms)
        jobs = autotune.decide_jobs(len(algorithms), autotune.AUTO).effective
    if jobs is not None and jobs != 1:
        # Imported lazily: the parallel runner is optional infrastructure
        # and pulls in multiprocessing machinery the serial path never needs.
        from repro.experiments.parallel import run_algorithms_parallel

        return run_algorithms_parallel(instance, algorithms,
                                       settings=settings, jobs=jobs)
    results: Dict[str, AlgorithmResult] = {}
    for algorithm in algorithms:
        results[algorithm.name] = algorithm.run(instance)
        if settings:
            results[algorithm.name].extras.update(settings)
    return results


def experiment_records(results: Mapping[str, AlgorithmResult],
                       settings: Optional[Dict[str, object]] = None,
                       ) -> List[ExperimentRecord]:
    """Flatten a ``run_algorithms`` result map into :class:`ExperimentRecord` rows.

    Serial and parallel runs flow through the same conversion, so a
    ``jobs=4`` suite merges into records identical (runtimes aside) to a
    ``jobs=1`` suite.  Solves whose explicit parallel request was degraded
    by the cost model carry ``settings["degraded"] = True`` plus the
    decision record, so downstream analysis can tell overridden runs apart.
    """
    records = []
    for result in results.values():
        row_settings = dict(settings or {})
        if result.extras.get("degraded"):
            row_settings["degraded"] = True
            if "parallel" in result.extras:
                row_settings["parallel"] = result.extras["parallel"]
        records.append(ExperimentRecord(
            instance_name=result.instance_name,
            algorithm=result.algorithm,
            revenue=result.revenue,
            runtime_seconds=result.runtime_seconds,
            strategy_size=result.strategy_size,
            settings=row_settings,
        ))
    return records
