"""Parallel experiment runners: RL-Greedy permutations and algorithm suites.

Two fan-out points dominate the wall-clock of the paper's evaluation loops,
and both are embarrassingly parallel:

* **RL-Greedy's permutations** (Algorithm 2): each sampled time-step order
  is an independent SL-Greedy run; only the best-revenue strategy is kept.
  :func:`run_permutations_parallel` evaluates the orders across worker
  processes and returns per-order results the caller merges exactly like
  the serial loop (orders are sampled up front by the caller, so results
  are identical for every job count).
* **The six-algorithm suite** of the figures:
  :func:`run_algorithms_parallel` runs each solver in its own worker and
  merges the :class:`~repro.algorithms.base.AlgorithmResult` objects into
  the same name-keyed mapping -- and, via :func:`experiment_records`, into
  the existing :class:`~repro.experiments.harness.ExperimentRecord` rows --
  that the serial :func:`~repro.experiments.harness.run_algorithms`
  produces.

Workers receive the (large) instance once through the pool initializer, not
once per task.  Every worker computes with its own ``RevenueModel``; the
arithmetic is deterministic, so revenues agree bit-for-bit with the serial
path.  Evaluation *counters* may differ from a serial run (workers do not
share the parent's incremental group cache); compare revenues and
strategies across job counts, not counter totals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.algorithms.base import AlgorithmResult, RevMaxAlgorithm
from repro.core.problem import RevMaxInstance
from repro.core.vectorized import get_default_backend, set_default_backend
from repro.parallel import parallel_map

__all__ = [
    "PermutationRun",
    "run_permutations_parallel",
    "run_algorithms_parallel",
]


#: Per-worker shared state installed by the pool initializers (with the
#: ``fork`` start method this costs one pickle per worker, not per task).
_WORKER_STATE: Dict[str, object] = {}


@dataclass
class PermutationRun:
    """Result of one SL-Greedy run under one time-step permutation.

    Attributes:
        order: the time-step processing order that was evaluated.
        revenue: revenue of the resulting strategy (computed in the worker,
            bit-identical to the serial loop's score).
        triples: the strategy's triples, listed group by group in admission
            order so the parent can rebuild a :class:`Strategy` whose group
            lists -- and therefore every downstream kernel summation --
            match the worker's exactly.
        growth_curve: the run's ``(size, revenue)`` checkpoints.
        evaluations: kernel evaluations of the worker's scoring model.
        lookups: group-revenue lookups of the worker's scoring model.
    """

    order: Tuple[int, ...]
    revenue: float
    triples: List[Tuple[int, int, int]]
    growth_curve: List[Tuple[int, float]]
    evaluations: int
    lookups: int


def _init_permutation_worker(instance: RevMaxInstance,
                             backend: Optional[str],
                             default_backend: str) -> None:
    # Re-assert the parent's resolved default: under the spawn start method
    # a worker re-imports repro.core.vectorized with a clean module global,
    # so anything the parent configured via set_default_backend would
    # silently fall back to the environment default otherwise.  (No-op under
    # fork and on the in-process serial fallback.)
    if get_default_backend() != default_backend:
        set_default_backend(default_backend)
    _WORKER_STATE["instance"] = instance
    _WORKER_STATE["backend"] = backend


def _run_permutation(order: Tuple[int, ...]) -> PermutationRun:
    # Imported here: workers under non-fork start methods import this module
    # fresh, and the algorithms layer lazily imports this module in turn.
    from repro.algorithms.local_greedy import SequentialLocalGreedy
    from repro.core.revenue import RevenueModel

    instance: RevMaxInstance = _WORKER_STATE["instance"]
    backend: Optional[str] = _WORKER_STATE["backend"]
    runner = SequentialLocalGreedy(backend=backend)
    strategy = runner.build_strategy(instance, time_order=list(order))
    model = RevenueModel(instance, backend=backend)
    revenue = model.revenue(strategy)
    return PermutationRun(
        order=tuple(order),
        revenue=revenue,
        triples=[tuple(z) for _, group in strategy.groups() for z in group],
        growth_curve=list(runner.last_growth_curve),
        evaluations=model.evaluations,
        lookups=model.lookups,
    )


def run_permutations_parallel(
    instance: RevMaxInstance,
    orders: Sequence[Sequence[int]],
    backend: Optional[str] = None,
    jobs: Optional[int] = None,
) -> List[PermutationRun]:
    """Evaluate SL-Greedy under every permutation, fanned out over workers.

    Args:
        instance: the REVMAX instance (shipped to each worker once).
        orders: time-step permutations, sampled by the caller (seed-stable).
        backend: revenue-engine backend for the workers.
        jobs: worker count (``None``/1: in-process; 0: one per core).

    Returns:
        One :class:`PermutationRun` per order, in order.
    """
    return parallel_map(
        _run_permutation,
        [tuple(order) for order in orders],
        jobs=jobs,
        initializer=_init_permutation_worker,
        initargs=(instance, backend, get_default_backend()),
        # Figure sweeps call this once per (instance, point); the persistent
        # pool pays worker startup once per run instead of once per call.
        reuse=True,
    )


def _init_suite_worker(instance: RevMaxInstance, default_backend: str) -> None:
    if get_default_backend() != default_backend:  # see _init_permutation_worker
        set_default_backend(default_backend)
    _WORKER_STATE["instance"] = instance


def _run_suite_algorithm(algorithm: RevMaxAlgorithm) -> AlgorithmResult:
    instance: RevMaxInstance = _WORKER_STATE["instance"]
    return algorithm.run(instance)


def run_algorithms_parallel(
    instance: RevMaxInstance,
    algorithms: Iterable[RevMaxAlgorithm],
    settings: Optional[Dict[str, object]] = None,
    jobs: Optional[int] = None,
) -> Dict[str, AlgorithmResult]:
    """Parallel drop-in for :func:`repro.experiments.harness.run_algorithms`.

    Each algorithm solves the instance in its own worker process; results
    come back keyed by algorithm name in the same order -- and with
    bit-identical revenues -- as the serial loop.  Runtime fields measure
    the worker's wall-clock, so they remain meaningful per algorithm even
    though the suite overlaps in time.
    """
    algorithms = list(algorithms)
    results: Dict[str, AlgorithmResult] = {}
    for algorithm, result in zip(
        algorithms,
        parallel_map(
            _run_suite_algorithm,
            algorithms,
            jobs=jobs,
            initializer=_init_suite_worker,
            initargs=(instance, get_default_backend()),
        ),
    ):
        if settings:
            result.extras.update(settings)
        results[result.algorithm] = result
    return results
