"""Experiment harness, per-figure regeneration functions and reporting."""

# NOTE: repro.experiments.parallel is deliberately NOT imported here --
# the serial paths lazy-import it on first parallel use so that plain
# harness imports never pay for the multiprocessing machinery.
from repro.experiments.harness import (
    SCALES,
    ExperimentRecord,
    experiment_records,
    predicted_ratings_map,
    prepare_dataset,
    run_algorithms,
    set_dataset_cache_limit,
    standard_algorithms,
)
from repro.experiments.figures import (
    FigureResult,
    extension_random_prices,
    figure1_revenue_by_capacity_distribution,
    figure2_revenue_by_saturation,
    figure3_revenue_by_saturation_singleton,
    figure4_revenue_growth_curves,
    figure5_repeat_histograms,
    figure6_scalability,
    figure7_incomplete_prices,
    table1_dataset_statistics,
    table2_running_times,
    theory_small_instances,
)
from repro.experiments.reporting import (
    format_grouped_bars,
    format_histogram,
    format_series,
    format_table,
)

__all__ = [
    "SCALES",
    "ExperimentRecord",
    "FigureResult",
    "extension_random_prices",
    "figure1_revenue_by_capacity_distribution",
    "figure2_revenue_by_saturation",
    "figure3_revenue_by_saturation_singleton",
    "figure4_revenue_growth_curves",
    "figure5_repeat_histograms",
    "figure6_scalability",
    "figure7_incomplete_prices",
    "format_grouped_bars",
    "format_histogram",
    "format_series",
    "format_table",
    "experiment_records",
    "predicted_ratings_map",
    "prepare_dataset",
    "run_algorithms",
    "set_dataset_cache_limit",
    "standard_algorithms",
    "table1_dataset_statistics",
    "table2_running_times",
    "theory_small_instances",
]
