"""Plain-text rendering of experiment results (tables and series).

The paper reports its evaluation as bar charts, line plots, histograms and two
tables.  A pure-library reproduction regenerates the *numbers* behind each of
them; this module renders those numbers as aligned text tables so benchmark
output and EXPERIMENTS.md stay human-readable without a plotting dependency.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence, Tuple

__all__ = ["format_table", "format_grouped_bars", "format_histogram", "format_series"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 float_format: str = "{:.2f}") -> str:
    """Render rows as an aligned text table.

    Args:
        headers: column names.
        rows: row values; floats are formatted with ``float_format``.
        float_format: format spec applied to float cells.
    """
    def render(cell: object) -> str:
        if isinstance(cell, float):
            return float_format.format(cell)
        return str(cell)

    rendered_rows = [[render(cell) for cell in row] for row in rows]
    table = [list(headers)] + rendered_rows
    widths = [max(len(row[i]) for row in table) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(table):
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        if index == 0:
            lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    return "\n".join(lines)


def format_grouped_bars(
    data: Mapping[str, Mapping[str, float]],
    group_label: str = "group",
    value_format: str = "{:.2f}",
) -> str:
    """Render a "grouped bar chart" (group -> series -> value) as a table.

    This is the textual analogue of Figures 1-3 and 7: each row is a group
    (e.g. a capacity distribution or a beta value), each column an algorithm.
    """
    groups = list(data.keys())
    series: List[str] = []
    for group_values in data.values():
        for name in group_values:
            if name not in series:
                series.append(name)
    headers = [group_label] + series
    rows = []
    for group in groups:
        row: List[object] = [group]
        for name in series:
            value = data[group].get(name)
            row.append(value_format.format(value) if value is not None else "-")
        rows.append(row)
    return format_table(headers, rows)


def format_histogram(counts: Mapping[int, int], label: str = "repeats",
                     width: int = 40) -> str:
    """Render a histogram (e.g. Figure 5's repeat counts) with ASCII bars."""
    if not counts:
        return f"(no {label})"
    total = sum(counts.values())
    peak = max(counts.values())
    lines = [f"{label:>8}  count  share"]
    for key in sorted(counts):
        count = counts[key]
        share = count / total
        bar = "#" * max(1, int(round(width * count / peak)))
        lines.append(f"{key:>8}  {count:>5}  {share:>6.1%}  {bar}")
    return "\n".join(lines)


def format_series(points: Sequence[Tuple[float, float]],
                  x_label: str = "x", y_label: str = "y",
                  max_points: Optional[int] = 20) -> str:
    """Render an (x, y) series as a two-column table, down-sampling if long."""
    if not points:
        return "(empty series)"
    if max_points is not None and len(points) > max_points:
        step = max(1, len(points) // max_points)
        sampled = list(points[::step])
        if sampled[-1] != points[-1]:
            sampled.append(points[-1])
    else:
        sampled = list(points)
    rows = [[f"{x:g}", f"{y:,.2f}"] for x, y in sampled]
    return format_table([x_label, y_label], rows)
