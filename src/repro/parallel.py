"""Process-pool utilities shared by the parallel experiment runners.

A deliberately small wrapper around :class:`concurrent.futures.\
ProcessPoolExecutor` with the conventions every parallel path in this repo
follows:

* **order-preserving**: results come back in item order, so callers can zip
  them with their inputs and merge deterministically;
* **seed-stable**: nothing random happens here -- callers sample any random
  choices (e.g. RL-Greedy's permutations) *before* fanning out, so the same
  seed yields the same results for every job count;
* **fork-first**: on platforms that support it the ``fork`` start method is
  used, so workers inherit ``sys.path`` and module state (the repo's
  ``src``-layout import shim keeps working without installation);
* **in-process fallback**: ``jobs <= 1`` (or a single item) runs the plain
  loop, keeping the parallel code path trivially debuggable.

Heavy shared inputs (a :class:`~repro.core.problem.RevMaxInstance`, say)
should travel once per worker through ``initializer`` / ``initargs`` rather
than once per item through the mapped function's arguments.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, List, Optional, Tuple, TypeVar

__all__ = ["default_jobs", "parallel_map", "pool_context"]

_T = TypeVar("_T")
_R = TypeVar("_R")


def default_jobs() -> int:
    """Number of worker processes to use when the caller says ``jobs=0``."""
    return os.cpu_count() or 1


def pool_context():
    """Prefer ``fork`` (inherits sys.path / loaded modules) when available.

    Shared by every multi-process path in the repo -- the experiment runners
    below and the sharded solver's persistent workers
    (:mod:`repro.shard`) -- so they all follow the same fork-first policy.
    """
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


#: Backwards-compatible private alias (pre-shard-solver name).
_pool_context = pool_context


def parallel_map(
    function: Callable[[_T], _R],
    items: Iterable[_T],
    jobs: Optional[int] = None,
    *,
    initializer: Optional[Callable[..., None]] = None,
    initargs: Tuple = (),
    chunksize: int = 1,
) -> List[_R]:
    """Map ``function`` over ``items`` across worker processes, in order.

    Args:
        function: top-level (picklable) function applied to every item.
        items: the inputs; consumed eagerly.
        jobs: worker-process count.  ``None`` or ``1`` runs in-process;
            ``0`` means one worker per CPU core.
        initializer: optional per-worker setup (receives ``initargs``); also
            invoked once, in-process, on the serial fallback so the function
            finds the same state either way.
        initargs: arguments for ``initializer``.
        chunksize: items handed to a worker per dispatch.

    Returns:
        ``[function(item) for item in items]``, in item order.
    """
    items = list(items)
    if jobs == 0:
        jobs = default_jobs()
    if jobs is None or jobs <= 1 or len(items) <= 1:
        if initializer is not None:
            initializer(*initargs)
        return [function(item) for item in items]
    workers = min(jobs, len(items))
    with ProcessPoolExecutor(
        max_workers=workers,
        mp_context=_pool_context(),
        initializer=initializer,
        initargs=initargs,
    ) as pool:
        return list(pool.map(function, items, chunksize=chunksize))
