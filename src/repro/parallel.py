"""Process-pool utilities shared by the parallel experiment runners.

A deliberately small wrapper around :class:`concurrent.futures.\
ProcessPoolExecutor` with the conventions every parallel path in this repo
follows:

* **order-preserving**: results come back in item order, so callers can zip
  them with their inputs and merge deterministically;
* **seed-stable**: nothing random happens here -- callers sample any random
  choices (e.g. RL-Greedy's permutations) *before* fanning out, so the same
  seed yields the same results for every job count;
* **fork-first**: on platforms that support it the ``fork`` start method is
  used, so workers inherit ``sys.path`` and module state (the repo's
  ``src``-layout import shim keeps working without installation);
* **in-process fallback**: ``jobs <= 1`` (or a single item) runs the plain
  loop, keeping the parallel code path trivially debuggable.

Heavy shared inputs (a :class:`~repro.core.problem.RevMaxInstance`, say)
should travel once per worker through ``initializer`` / ``initargs`` rather
than once per item through the mapped function's arguments.

``parallel_map(..., reuse=True)`` routes the call through a lazily created
:class:`PersistentPool` that survives across calls: repeated fan-outs in one
experiment run (RL-Greedy re-solving per figure point, say) pay process
startup once instead of once per call.  The initializer is re-broadcast to
every worker on each call, so per-call state (a new instance) still arrives
exactly once per worker.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Dict, Iterable, List, Optional, Tuple, TypeVar

__all__ = [
    "PersistentPool",
    "default_jobs",
    "parallel_map",
    "pool_context",
    "shutdown_persistent_pools",
]

_T = TypeVar("_T")
_R = TypeVar("_R")


def default_jobs() -> int:
    """Number of worker processes to use when the caller says ``jobs=0``."""
    return os.cpu_count() or 1


def pool_context():
    """Prefer ``fork`` (inherits sys.path / loaded modules) when available.

    Shared by every multi-process path in the repo -- the experiment runners
    below and the sharded solver's persistent workers
    (:mod:`repro.shard`) -- so they all follow the same fork-first policy.
    """
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


#: Backwards-compatible private alias (pre-shard-solver name).
_pool_context = pool_context


def _persistent_worker(connection) -> None:  # pragma: no cover - subprocess
    """Loop of one persistent-pool worker: init / map / stop messages."""
    while True:
        try:
            message = connection.recv()
        except EOFError:
            return
        kind = message[0]
        if kind == "init":
            _, initializer, initargs = message
            try:
                if initializer is not None:
                    initializer(*initargs)
                connection.send(("ok", None))
            except BaseException as error:  # noqa: BLE001 - relayed to parent
                connection.send(("err", error))
        elif kind == "map":
            _, function, indexed_items = message
            results = []
            for index, item in indexed_items:
                try:
                    results.append((index, "ok", function(item)))
                except BaseException as error:  # noqa: BLE001 - relayed
                    results.append((index, "err", error))
            connection.send(results)
        else:  # "stop"
            connection.close()
            return


class PersistentPool:
    """A process pool that outlives individual map calls.

    Unlike :class:`~concurrent.futures.ProcessPoolExecutor`, whose
    initializer runs only at worker startup, :meth:`map` re-broadcasts the
    initializer to every worker on each call -- so per-call shared state
    (the current instance) is shipped once per worker, while the processes
    themselves are spawned exactly once and amortized across every fan-out
    of an experiment run.
    """

    def __init__(self, workers: int) -> None:
        context = pool_context()
        self._workers = []
        for _ in range(int(workers)):
            parent_end, child_end = context.Pipe()
            process = context.Process(
                target=_persistent_worker, args=(child_end,), daemon=True
            )
            process.start()
            child_end.close()
            self._workers.append((process, parent_end))

    def __len__(self) -> int:
        return len(self._workers)

    def alive(self) -> bool:
        """True while every worker process is still running."""
        return bool(self._workers) and all(
            process.is_alive() for process, _ in self._workers
        )

    def map(
        self,
        function: Callable[[_T], _R],
        items: List[_T],
        *,
        initializer: Optional[Callable[..., None]] = None,
        initargs: Tuple = (),
    ) -> List[_R]:
        """Order-preserving map with a per-call initializer broadcast."""
        if initializer is not None:
            for _, connection in self._workers:
                connection.send(("init", initializer, initargs))
            for _, connection in self._workers:
                status, error = connection.recv()
                if status == "err":
                    raise error
        # Round-robin blocks, one message per worker; indices carried with
        # the items make reassembly order-preserving regardless.
        indexed = list(enumerate(items))
        active = [
            (process, connection)
            for slot, (process, connection) in enumerate(self._workers)
            if slot < len(indexed)
        ]
        blocks = [indexed[slot::len(active)] for slot in range(len(active))]
        for (_, connection), block in zip(active, blocks):
            connection.send(("map", function, block))
        results: List[Optional[_R]] = [None] * len(indexed)
        first_error: Optional[BaseException] = None
        for (_, connection), _block in zip(active, blocks):
            try:
                rows = connection.recv()
            except (EOFError, OSError) as error:
                # A dead worker poisons the whole pool: tear it down so the
                # next reuse=True call builds a fresh one.
                self.shutdown()
                raise RuntimeError(
                    "persistent-pool worker died mid-map; the pool has "
                    "been discarded"
                ) from error
            for index, status, value in rows:
                if status == "err":
                    first_error = first_error or value
                else:
                    results[index] = value
        if first_error is not None:
            raise first_error
        return results  # type: ignore[return-value]

    def shutdown(self) -> None:
        """Stop and join every worker (idempotent)."""
        for _, connection in self._workers:
            try:
                connection.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for process, connection in self._workers:
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=5)
            connection.close()
        self._workers = []


#: Lazily created persistent pools, keyed by worker count.
_persistent_pools: Dict[int, PersistentPool] = {}


def _persistent_pool(workers: int) -> PersistentPool:
    pool = _persistent_pools.get(workers)
    if pool is not None and not pool.alive():
        pool.shutdown()
        pool = None
    if pool is None:
        pool = PersistentPool(workers)
        _persistent_pools[workers] = pool
    return pool


@atexit.register
def shutdown_persistent_pools() -> None:
    """Tear down every cached :class:`PersistentPool` (atexit + tests)."""
    for pool in list(_persistent_pools.values()):
        pool.shutdown()
    _persistent_pools.clear()


def parallel_map(
    function: Callable[[_T], _R],
    items: Iterable[_T],
    jobs: Optional[int] = None,
    *,
    initializer: Optional[Callable[..., None]] = None,
    initargs: Tuple = (),
    chunksize: int = 1,
    reuse: bool = False,
) -> List[_R]:
    """Map ``function`` over ``items`` across worker processes, in order.

    Args:
        function: top-level (picklable) function applied to every item.
        items: the inputs; consumed eagerly.
        jobs: worker-process count.  ``None`` or ``1`` runs in-process;
            ``0`` means one worker per CPU core.
        initializer: optional per-worker setup (receives ``initargs``); also
            invoked once, in-process, on the serial fallback so the function
            finds the same state either way.
        initargs: arguments for ``initializer``.
        chunksize: items handed to a worker per dispatch.
        reuse: route through the cached :class:`PersistentPool` for this
            worker count, amortizing process startup across calls.  The
            initializer is re-broadcast on every call, so results are
            identical to a fresh pool.

    Returns:
        ``[function(item) for item in items]``, in item order.
    """
    items = list(items)
    if jobs == 0:
        jobs = default_jobs()
    if jobs is None or jobs <= 1 or len(items) <= 1:
        if initializer is not None:
            initializer(*initargs)
        return [function(item) for item in items]
    workers = min(jobs, len(items))
    if reuse:
        pool = _persistent_pool(workers)
        return pool.map(function, items,
                        initializer=initializer, initargs=initargs)
    with ProcessPoolExecutor(
        max_workers=workers,
        mp_context=_pool_context(),
        initializer=initializer,
        initargs=initargs,
    ) as pool:
        return list(pool.map(function, items, chunksize=chunksize))
