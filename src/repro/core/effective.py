"""The relaxed R-REVMAX objective (Definition 4 of the paper).

R-REVMAX drops the hard per-item capacity constraint and instead multiplies
every triple's dynamic adoption probability by the *capacity factor*

``B_S(i, t) = Pr[at most q_i - 1 of the users item i was recommended to
(other than the target user) up to time t adopt it]``,

yielding the *effective dynamic adoption probability* ``E_S(u, i, t)``.  The
resulting objective is still non-negative, non-monotone and submodular, and
the only remaining hard constraint (the display limit) is a partition matroid
-- which is what enables the 1/(4+eps) local-search approximation of §4.2.

The capacity factor couples different users of the same item, so the revenue
no longer decomposes over (user, class) groups; :class:`EffectiveRevenueModel`
therefore overrides the whole-strategy evaluation rather than the group-level
one.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.entities import Triple
from repro.core.problem import RevMaxInstance
from repro.core.revenue import RevenueModel, group_dynamic_probability
from repro.core.strategy import Strategy
from repro.simulation.capacity_oracle import PoissonBinomialCapacityOracle

__all__ = ["EffectiveRevenueModel"]


class EffectiveRevenueModel(RevenueModel):
    """Revenue evaluator using the effective adoption probability of R-REVMAX.

    Args:
        instance: the underlying REVMAX instance (its capacities become soft).
        capacity_oracle: object with an ``at_most(probabilities, threshold)``
            method estimating ``Pr[at most threshold adopters]``.  Defaults to
            the exact Poisson-binomial oracle.
        backend: revenue-kernel backend forwarded to :class:`RevenueModel`
            (the inherited group-level helpers use it; the effective
            probabilities themselves couple users and are evaluated directly).
    """

    def __init__(self, instance: RevMaxInstance, capacity_oracle=None,
                 backend: Optional[str] = None) -> None:
        super().__init__(instance, backend=backend)
        self._oracle = capacity_oracle or PoissonBinomialCapacityOracle()

    # ------------------------------------------------------------------
    # effective probability
    # ------------------------------------------------------------------
    def capacity_factor(self, strategy: Strategy, triple: Triple) -> float:
        """Return ``B_S(i, t)`` for the given triple.

        The competing recommendations ``S_{i,t}`` are all strategy triples of
        the same item targeting *other* users at a time no later than ``t``.
        The probability that a competing user adopts the item by time ``t`` is
        the sum of the dynamic adoption probabilities of that user's triples
        of the item up to ``t`` (the adoption events at different times are
        mutually exclusive under Definition 1).
        """
        triple = Triple(*triple)
        instance = self.instance
        item = triple.item
        capacity = instance.capacity(item)
        # Probability that each competing user adopts `item` no later than t.
        per_user_probability: Dict[int, float] = {}
        for other in strategy:
            if other.item != item or other.user == triple.user or other.t > triple.t:
                continue
            group = strategy.group_of_triple(other)
            probability = group_dynamic_probability(instance, group, other)
            per_user_probability[other.user] = (
                per_user_probability.get(other.user, 0.0) + probability
            )
        competitors = [min(1.0, p) for p in per_user_probability.values()]
        if len(competitors) < capacity:
            return 1.0
        return self._oracle.at_most(competitors, capacity - 1)

    def effective_probability(self, strategy: Strategy, triple: Triple) -> float:
        """Return ``E_S(u, i, t)`` (Definition 4); zero if the triple is absent."""
        triple = Triple(*triple)
        if triple not in strategy:
            return 0.0
        group = strategy.group_of_triple(triple)
        dynamic = group_dynamic_probability(self.instance, group, triple)
        if dynamic <= 0.0:
            return 0.0
        return dynamic * self.capacity_factor(strategy, triple)

    # ------------------------------------------------------------------
    # strategy-level quantities (override RevenueModel)
    # ------------------------------------------------------------------
    def revenue(self, strategy: Strategy) -> float:
        """Expected total revenue under the effective probabilities."""
        total = 0.0
        for triple in strategy:
            probability = self.effective_probability(strategy, triple)
            total += self.instance.price(triple.item, triple.t) * probability
        return total

    def marginal_revenue(self, strategy: Strategy, triple: Triple) -> float:
        """Return ``Rev(S + z) - Rev(S)`` under the effective probabilities.

        Unlike the exact-capacity model, adding a triple can affect triples of
        *other* users (through the capacity factor of the shared item), so the
        difference is evaluated on the whole strategy.
        """
        triple = Triple(*triple)
        if triple in strategy:
            return 0.0
        before = self.revenue(strategy)
        extended = strategy.copy()
        extended.add(triple)
        after = self.revenue(extended)
        return after - before
