"""REVMAX problem instances.

A :class:`RevMaxInstance` bundles everything Problem 1 of the paper takes as
input:

* the user set ``U`` and item set ``I`` (dense integer ids),
* the horizon length ``T`` and display limit ``k``,
* per-item capacity ``q_i``, saturation factor ``beta_i`` and class ``C(i)``,
* the exact price matrix ``p(i, t)``,
* the sparse primitive adoption probabilities ``q(u, i, t)`` (only user-item
  pairs a recommender would ever consider carry non-zero probabilities).

Instances are immutable once constructed (arrays should not be mutated by
callers) and are consumed by every algorithm in :mod:`repro.algorithms`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.entities import ItemCatalog, Triple

__all__ = ["RevMaxInstance", "AdoptionTable"]


class AdoptionTable:
    """Sparse storage of primitive adoption probabilities ``q(u, i, t)``.

    Probabilities are stored per (user, item) pair as a dense length-``T``
    vector, because the paper's pipeline always produces a full time series
    for every candidate pair (a candidate pair is one of the per-user top-N
    items by predicted rating).  Pairs never considered are simply absent and
    have probability zero at all times.
    """

    def __init__(self, horizon: int) -> None:
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        self._horizon = int(horizon)
        self._table: Dict[Tuple[int, int], np.ndarray] = {}
        self._user_items: Dict[int, List[int]] = {}
        #: Mutation counter; lets cached compiled views detect staleness.
        self._version = 0

    @property
    def horizon(self) -> int:
        """Length of the planning horizon ``T``."""
        return self._horizon

    def __len__(self) -> int:
        """Number of (user, item) pairs with a stored probability vector."""
        return len(self._table)

    def __contains__(self, pair: Tuple[int, int]) -> bool:
        return tuple(pair) in self._table

    def set(self, user: int, item: int, probabilities: Sequence[float]) -> None:
        """Store the length-``T`` probability vector for ``(user, item)``.

        Raises:
            ValueError: if the vector has the wrong length, contains NaN, or
                leaves [0, 1]; the error names the offending (user, item) pair.
        """
        key = (int(user), int(item))
        vector = np.asarray(probabilities, dtype=float)
        if vector.shape != (self._horizon,):
            raise ValueError(
                f"adoption vector for (user={key[0]}, item={key[1]}) must have "
                f"length {self._horizon}, got shape {vector.shape}"
            )
        if np.isnan(vector).any():
            raise ValueError(
                f"adoption probabilities for (user={key[0]}, item={key[1]}) "
                f"contain NaN"
            )
        if np.any(vector < 0.0) or np.any(vector > 1.0):
            bad = vector[(vector < 0.0) | (vector > 1.0)][0]
            raise ValueError(
                f"adoption probabilities must lie in [0, 1]; got {bad!r} for "
                f"(user={key[0]}, item={key[1]})"
            )
        if key not in self._table:
            self._user_items.setdefault(key[0], []).append(key[1])
        self._table[key] = vector
        self._version += 1

    def get(self, user: int, item: int) -> Optional[np.ndarray]:
        """Return the probability vector for ``(user, item)`` or ``None``."""
        return self._table.get((user, item))

    def probability(self, user: int, item: int, t: int) -> float:
        """Return ``q(user, item, t)`` (zero if the pair is not stored)."""
        vector = self._table.get((user, item))
        if vector is None:
            return 0.0
        return float(vector[t])

    def items_for_user(self, user: int) -> List[int]:
        """Return the items with a stored probability vector for ``user``."""
        return list(self._user_items.get(user, []))

    def users(self) -> List[int]:
        """Return all users that have at least one candidate item."""
        return list(self._user_items.keys())

    def pairs(self) -> Iterator[Tuple[int, int]]:
        """Iterate over stored (user, item) pairs."""
        return iter(self._table.keys())

    def positive_triples(self) -> Iterator[Triple]:
        """Yield every triple with a strictly positive primitive probability.

        This is the candidate ground set the greedy algorithms operate on;
        its cardinality is the "#Triples with positive q" statistic of
        Table 1 in the paper.  Iteration follows the canonical candidate
        order -- pairs sorted by (user, item), times ascending -- the same
        order the columnar layout stores, so heap tie-breaking is identical
        whichever path seeds the frontier.
        """
        for (user, item) in self._sorted_pairs():
            vector = self._table[(user, item)]
            for t in range(self._horizon):
                if vector[t] > 0.0:
                    yield Triple(user, item, t)

    def _sorted_pairs(self) -> List[Tuple[int, int]]:
        """Pairs in canonical (user, item) order, cached per table version."""
        cached = getattr(self, "_sorted_pairs_cache", None)
        if cached is None or cached[0] != self._version:
            cached = (self._version, sorted(self._table.keys()))
            self._sorted_pairs_cache = cached
        return cached[1]

    def num_positive_triples(self) -> int:
        """Count triples with positive primitive adoption probability."""
        return sum(int(np.count_nonzero(v > 0.0)) for v in self._table.values())


@dataclass
class RevMaxInstance:
    """A complete REVMAX input (Problem 1 of the paper).

    Attributes:
        num_users: number of users ``|U|``.
        catalog: item catalog providing the class function ``C(i)``.
        horizon: number of time steps ``T``.
        display_limit: maximum items recommended to a user per time step (k).
        prices: array of shape ``(num_items, horizon)``; ``prices[i, t]`` is
            ``p(i, t)``.
        capacities: array of shape ``(num_items,)``; ``capacities[i]`` is
            ``q_i``, the maximum number of distinct users item ``i`` may be
            recommended to over the whole horizon.
        betas: array of shape ``(num_items,)`` of saturation factors in [0,1].
        adoption: sparse table of primitive adoption probabilities.
        name: optional label (dataset / experiment name).
    """

    num_users: int
    catalog: ItemCatalog
    horizon: int
    display_limit: int
    prices: np.ndarray
    capacities: np.ndarray
    betas: np.ndarray
    adoption: AdoptionTable
    name: str = "revmax-instance"

    def __post_init__(self) -> None:
        self.prices = np.asarray(self.prices, dtype=float)
        self.capacities = np.asarray(self.capacities, dtype=int)
        self.betas = np.asarray(self.betas, dtype=float)
        self._validate()

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        n_items = self.catalog.num_items
        if self.num_users <= 0:
            raise ValueError("num_users must be positive")
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")
        if self.display_limit <= 0:
            raise ValueError("display_limit must be positive")
        if self.prices.shape != (n_items, self.horizon):
            raise ValueError(
                f"prices must have shape ({n_items}, {self.horizon}), "
                f"got {self.prices.shape}"
            )
        if self.capacities.shape != (n_items,):
            raise ValueError("capacities must have one entry per item")
        if self.betas.shape != (n_items,):
            raise ValueError("betas must have one entry per item")
        if np.any(self.prices < 0.0):
            raise ValueError("prices must be non-negative")
        if np.any(self.capacities < 0):
            raise ValueError("capacities must be non-negative")
        if np.any((self.betas < 0.0) | (self.betas > 1.0)):
            raise ValueError("saturation factors must lie in [0, 1]")
        if self.adoption.horizon != self.horizon:
            raise ValueError("adoption table horizon does not match instance horizon")

    # ------------------------------------------------------------------
    # convenience accessors
    # ------------------------------------------------------------------
    @property
    def num_items(self) -> int:
        """Number of items ``|I|``."""
        return self.catalog.num_items

    def price(self, item: int, t: int) -> float:
        """Return ``p(item, t)``."""
        return float(self.prices[item, t])

    def capacity(self, item: int) -> int:
        """Return the capacity ``q_item``."""
        return int(self.capacities[item])

    def beta(self, item: int) -> float:
        """Return the saturation factor ``beta_item``."""
        return float(self.betas[item])

    def class_of(self, item: int) -> int:
        """Return the competition class ``C(item)``."""
        return self.catalog.class_of(item)

    def probability(self, user: int, item: int, t: int) -> float:
        """Return the primitive adoption probability ``q(user, item, t)``."""
        return self.adoption.probability(user, item, t)

    def candidate_triples(self) -> Iterator[Triple]:
        """Yield the ground set: triples with positive primitive probability."""
        return self.adoption.positive_triples()

    def num_candidate_triples(self) -> int:
        """Size of the ground set (bold statistic of Table 1)."""
        return self.adoption.num_positive_triples()

    def users(self) -> List[int]:
        """Users having at least one candidate item."""
        return self.adoption.users()

    def candidate_items(self, user: int) -> List[int]:
        """Candidate items for ``user`` (non-zero adoption at some time)."""
        return self.adoption.items_for_user(user)

    # ------------------------------------------------------------------
    # columnar compilation
    # ------------------------------------------------------------------
    def compiled(self) -> "CompiledInstance":
        """Return the columnar compilation of this instance (lazy, cached).

        The first call walks the adoption table once and lays every input out
        as contiguous ID-indexed tensors (see
        :class:`repro.core.compiled.CompiledInstance`); subsequent calls
        return the cached compilation.  Instances whose adoption table is
        already columnar (built by the columnar generators or loaded from
        ``.npz``) compile for free.  The cache is invalidated when the
        adoption table is mutated after compilation.
        """
        from repro.core.compiled import CompiledInstance

        cached = getattr(self, "_compiled", None)
        version = getattr(self.adoption, "_version", 0)
        if cached is None or cached.source_version != version:
            cached = CompiledInstance.from_instance(self)
            self._compiled = cached
        return cached

    def compiled_or_none(self) -> Optional["CompiledInstance"]:
        """Return the cached compilation if one was already built, else None."""
        return getattr(self, "_compiled", None)

    def _transplant_compiled(self, derived: "RevMaxInstance", **swaps) -> None:
        """Carry a cached compilation over to a derived instance.

        The CSR candidate table only depends on the (shared) adoption table,
        so ``with_betas``-style copies swap the per-item tensors instead of
        re-walking the table.  Skipped when no fresh compilation is cached.
        """
        donor = self.compiled_or_none()
        if donor is None:
            return
        if donor.source_version != getattr(self.adoption, "_version", 0):
            return
        derived._compiled = donor.replace(name=derived.name, **swaps)

    def expected_isolated_revenue(self, triple: Triple) -> float:
        """Return ``p(i, t) * q(u, i, t)``, the revenue of the triple alone.

        This is the quantity the TopRE baseline ranks by and the initial
        priority G-Greedy seeds its heaps with (line 8 of Algorithm 1).
        """
        return self.price(triple.item, triple.t) * self.probability(
            triple.user, triple.item, triple.t
        )

    # ------------------------------------------------------------------
    # derived / modified instances
    # ------------------------------------------------------------------
    def with_singleton_classes(self) -> "RevMaxInstance":
        """Return a copy of the instance where every item is its own class."""
        catalog = ItemCatalog.singleton(self.num_items)
        derived = RevMaxInstance(
            num_users=self.num_users,
            catalog=catalog,
            horizon=self.horizon,
            display_limit=self.display_limit,
            prices=self.prices,
            capacities=self.capacities,
            betas=self.betas,
            adoption=self.adoption,
            name=f"{self.name}-singleton-classes",
        )
        self._transplant_compiled(
            derived, item_class=np.asarray(catalog.item_class, dtype=np.int64)
        )
        return derived

    def with_betas(self, betas) -> "RevMaxInstance":
        """Return a copy with different saturation factors.

        Args:
            betas: either a scalar (applied to every item) or a length
                ``num_items`` sequence.
        """
        if np.isscalar(betas):
            beta_array = np.full(self.num_items, float(betas))
        else:
            beta_array = np.asarray(betas, dtype=float)
        derived = RevMaxInstance(
            num_users=self.num_users,
            catalog=self.catalog,
            horizon=self.horizon,
            display_limit=self.display_limit,
            prices=self.prices,
            capacities=self.capacities,
            betas=beta_array,
            adoption=self.adoption,
            name=self.name,
        )
        self._transplant_compiled(derived, betas=beta_array)
        return derived

    def with_capacities(self, capacities) -> "RevMaxInstance":
        """Return a copy with different per-item capacities."""
        if np.isscalar(capacities):
            capacity_array = np.full(self.num_items, int(capacities), dtype=int)
        else:
            capacity_array = np.asarray(capacities, dtype=int)
        derived = RevMaxInstance(
            num_users=self.num_users,
            catalog=self.catalog,
            horizon=self.horizon,
            display_limit=self.display_limit,
            prices=self.prices,
            capacities=capacity_array,
            betas=self.betas,
            adoption=self.adoption,
            name=self.name,
        )
        self._transplant_compiled(derived, capacities=capacity_array)
        return derived

    def restricted_to_horizon(self, time_steps: Sequence[int]) -> "RevMaxInstance":
        """Return an instance whose horizon is a contiguous slice of this one.

        Used by the gradually-available-prices experiments (§6.3): each
        sub-horizon is solved as its own (smaller) instance while the strategy
        state built so far is carried over.

        Args:
            time_steps: contiguous, increasing 0-based time steps to keep.
        """
        steps = list(time_steps)
        if not steps:
            raise ValueError("time_steps must be non-empty")
        if steps != list(range(steps[0], steps[0] + len(steps))):
            raise ValueError("time_steps must be contiguous and increasing")
        sub_adoption = AdoptionTable(len(steps))
        for (user, item) in self.adoption.pairs():
            vector = self.adoption.get(user, item)
            sub_adoption.set(user, item, vector[steps[0]:steps[0] + len(steps)])
        return RevMaxInstance(
            num_users=self.num_users,
            catalog=self.catalog,
            horizon=len(steps),
            display_limit=self.display_limit,
            prices=self.prices[:, steps[0]:steps[0] + len(steps)],
            capacities=self.capacities,
            betas=self.betas,
            adoption=sub_adoption,
            name=f"{self.name}-t{steps[0]}-{steps[-1]}",
        )

    # ------------------------------------------------------------------
    # builders
    # ------------------------------------------------------------------
    @classmethod
    def from_dense_adoption(
        cls,
        prices: np.ndarray,
        adoption: Mapping[Tuple[int, int], Sequence[float]],
        item_class: Sequence[int],
        capacities,
        betas,
        display_limit: int,
        num_users: Optional[int] = None,
        name: str = "revmax-instance",
    ) -> "RevMaxInstance":
        """Construct an instance from plain Python mappings (handy in tests).

        Args:
            prices: ``(num_items, T)`` price matrix.
            adoption: mapping ``(user, item) -> length-T probability vector``.
            item_class: item -> class assignment.
            capacities: scalar or per-item capacities.
            betas: scalar or per-item saturation factors.
            display_limit: the ``k`` of the display constraint.
            num_users: optionally override the inferred number of users.
            name: label for the instance.
        """
        prices = np.asarray(prices, dtype=float)
        num_items, horizon = prices.shape
        table = AdoptionTable(horizon)
        max_user = -1
        for (user, item), vector in adoption.items():
            table.set(user, item, vector)
            max_user = max(max_user, user)
        inferred_users = max_user + 1 if max_user >= 0 else 1
        if np.isscalar(capacities):
            capacities = np.full(num_items, int(capacities), dtype=int)
        if np.isscalar(betas):
            betas = np.full(num_items, float(betas))
        return cls(
            num_users=num_users if num_users is not None else inferred_users,
            catalog=ItemCatalog.from_assignment(item_class),
            horizon=horizon,
            display_limit=display_limit,
            prices=prices,
            capacities=np.asarray(capacities, dtype=int),
            betas=np.asarray(betas, dtype=float),
            adoption=table,
            name=name,
        )
