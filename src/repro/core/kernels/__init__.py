"""The kernel tier: optional numba-JIT execution of the G-Greedy hot loop.

The columnar engine (PR 3) made compilation and heap seeding vectorized,
but the admit/refresh loop itself still executes as Python bytecode.  This
package compiles that loop -- and the batched revenue kernel behind
``RevenueModel.marginal_revenue_batch`` -- to native code with numba,
operating directly on :class:`~repro.core.compiled.CompiledInstance`'s CSR
tensors.  The kernels are bit-identical replicas of the reference paths
(see :mod:`repro.core.kernels.impl` for the floating-point contract), so
switching tiers never changes a single admitted triple or growth-curve
float; the differential suite asserts this under both settings.

Tier selection mirrors the revenue-backend registry in
:mod:`repro.core.vectorized`:

* an explicit :func:`set_default_kernel` call wins;
* otherwise the ``REPRO_KERNEL`` environment variable (``numba`` or
  ``numpy``);
* otherwise ``numba`` when importable, ``numpy`` when not.

Requesting ``numba`` on a machine without it degrades to ``numpy`` with a
single warning -- install with ``pip install "repro-revmax[kernels]"`` to
enable the native tier.  ``repro info`` reports which tier is active.
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.kernels import impl
from repro.core.vectorized import vectorized_extended_group_revenues

__all__ = [
    "KERNELS",
    "KERNEL_ENV_VAR",
    "NUMBA_AVAILABLE",
    "active_kernel",
    "batched_extended_revenues",
    "forced_kernel",
    "get_default_kernel",
    "kernel_info",
    "native_enabled",
    "native_select",
    "numba_version",
    "resolve_kernel",
    "set_default_kernel",
]

#: Recognised kernel tiers.
KERNELS: Tuple[str, ...] = ("numba", "numpy")

#: Environment variable overriding the default tier for a whole process.
KERNEL_ENV_VAR = "REPRO_KERNEL"

# Import-time numba detection.  The JIT module is loaded lazily (first
# native call) so that merely importing repro never pays compilation cost.
try:  # pragma: no cover - exercised only where numba is installed
    import numba as _numba_module

    NUMBA_AVAILABLE = True
    _NUMBA_VERSION: Optional[str] = getattr(_numba_module, "__version__", "unknown")
except ImportError:  # pragma: no cover - the common CI/local case
    NUMBA_AVAILABLE = False
    _NUMBA_VERSION = None

_default_kernel: Optional[str] = None
_jit_module = None
_warned_fallback = False


def numba_version() -> Optional[str]:
    """Installed numba version, or ``None`` when numba is unavailable."""
    return _NUMBA_VERSION


def _fallback(requested: str, source: str) -> str:
    """Degrade a ``numba`` request to ``numpy``, warning once per process."""
    global _warned_fallback
    if not _warned_fallback:
        warnings.warn(
            f"{source} requested the '{requested}' kernel tier but numba is "
            "not installed; falling back to the pure-NumPy tier "
            "(pip install 'repro-revmax[kernels]' to enable it)",
            RuntimeWarning,
            stacklevel=3,
        )
        _warned_fallback = True
    return "numpy"


def get_default_kernel() -> str:
    """Return the kernel tier used when no explicit choice is made.

    Resolution order: :func:`set_default_kernel` override, then the
    ``REPRO_KERNEL`` environment variable, then ``numba`` when importable
    and ``numpy`` otherwise.
    """
    if _default_kernel is not None:
        return _default_kernel
    env = os.environ.get(KERNEL_ENV_VAR)
    if env:
        if env not in KERNELS:
            raise ValueError(
                f"{KERNEL_ENV_VAR}={env!r} is not a known kernel tier; "
                f"expected one of {KERNELS}"
            )
        if env == "numba" and not NUMBA_AVAILABLE:
            return _fallback(env, KERNEL_ENV_VAR)
        return env
    return "numba" if NUMBA_AVAILABLE else "numpy"


def set_default_kernel(kernel: Optional[str]) -> None:
    """Set the process-wide kernel tier (``None`` restores env/default)."""
    global _default_kernel
    if kernel is not None and kernel not in KERNELS:
        raise ValueError(f"unknown kernel tier {kernel!r}; expected one of {KERNELS}")
    if kernel == "numba" and not NUMBA_AVAILABLE:
        kernel = _fallback(kernel, "set_default_kernel")
    _default_kernel = kernel


def resolve_kernel(kernel: Optional[str]) -> str:
    """Validate an explicit tier choice or fall back to the default."""
    if kernel is None:
        return get_default_kernel()
    if kernel not in KERNELS:
        raise ValueError(f"unknown kernel tier {kernel!r}; expected one of {KERNELS}")
    if kernel == "numba" and not NUMBA_AVAILABLE:
        return _fallback(kernel, "kernel argument")
    return kernel


def active_kernel() -> str:
    """The tier in effect right now (``numba`` or ``numpy``)."""
    return get_default_kernel()


def native_enabled() -> bool:
    """True when native (JIT-compiled) kernels will actually execute.

    Resolves the tier first (not ``NUMBA_AVAILABLE`` first) so that a
    ``REPRO_KERNEL=numba`` request on a machine without numba emits its
    fallback warning -- and an invalid value raises -- even on the solve
    path, not just under ``repro info``.  The registry only ever resolves
    to ``"numba"`` when numba is importable, so the tier check suffices.
    """
    return active_kernel() == "numba"


@contextmanager
def forced_kernel(kernel: Optional[str]):
    """Temporarily force a kernel tier (benchmarks and differential tests)."""
    previous = _default_kernel
    set_default_kernel(kernel)
    try:
        yield
    finally:
        set_default_kernel(previous)


def kernel_info() -> Dict[str, object]:
    """Diagnostics for ``repro info`` and the benchmark writers."""
    return {
        "kernel": active_kernel(),
        "numba_available": NUMBA_AVAILABLE,
        "numba_version": _NUMBA_VERSION,
        "env": os.environ.get(KERNEL_ENV_VAR),
    }


def jit_module():
    """The njit-compiled twin of :mod:`.impl` (loads numba on first use)."""
    global _jit_module
    if _jit_module is None:
        from repro.core.kernels import _numba

        _jit_module = _numba.load()
    return _jit_module


def _active_module():
    return jit_module() if native_enabled() else impl


# ----------------------------------------------------------------------
# dispatch wrappers (the call sites in revenue.py / selection.py)
# ----------------------------------------------------------------------
def batched_extended_revenues(instance, group, candidates, compiled=None):
    """Tier-dispatched ``vectorized_extended_group_revenues``.

    The numpy tier delegates to the reference NumPy broadcast kernel; the
    numba tier gathers the same :class:`~repro.core.vectorized.GroupArrays`
    and runs the njit replica.  Same floats either way.
    """
    if not native_enabled():
        return vectorized_extended_group_revenues(
            instance, group, candidates, compiled
        )
    from repro.core.vectorized import GroupArrays

    cand = GroupArrays.from_group(instance, candidates, compiled)
    if not group:
        return cand.prices * cand.primitives
    base = GroupArrays.from_group(instance, group, compiled)
    return jit_module().extended_group_revenues(
        base.times.astype(np.int64), base.items.astype(np.int64),
        base.primitives, base.prices, base.betas,
        cand.times.astype(np.int64), cand.items.astype(np.int64),
        cand.primitives, cand.prices, cand.betas,
    )


def native_select(compiled, *, allowed_times=None, max_selections=None,
                  module=None):
    """Run the native admit loop over a compiled instance's tensors.

    Returns ``(rows, ts, gains, counters)`` where ``counters`` carries the
    model-counter totals (``evaluations`` / ``cache_hits`` / ``lookups``)
    the reference serial path would have accumulated.  ``module`` defaults
    to the JIT twin; tests pass :mod:`.impl` to execute the identical
    source interpreted on machines without numba.
    """
    if module is None:
        module = jit_module()
    isolated = compiled.isolated_revenues()
    seeded = isolated > 0.0
    if allowed_times is not None:
        allowed = np.zeros(compiled.horizon, dtype=bool)
        for t in allowed_times:
            if 0 <= t < compiled.horizon:
                allowed[t] = True
        seeded &= allowed[None, :]
    cap = np.iinfo(np.int64).max // 2 if max_selections is None else int(max_selections)
    rows, ts, gains, admitted, evaluations, cache_hits, lookups = module.admit_loop(
        compiled.pair_user,
        compiled.pair_item,
        compiled.pair_group,
        compiled.pair_probs,
        compiled.prices,
        np.ascontiguousarray(compiled.capacities, dtype=np.int64),
        compiled.betas,
        isolated,
        seeded,
        compiled.num_users,
        compiled.num_groups,
        compiled.display_limit,
        cap,
    )
    counters = {
        "evaluations": int(evaluations),
        "cache_hits": int(cache_hits),
        "lookups": int(lookups),
    }
    return rows[:admitted], ts[:admitted], gains[:admitted], counters
