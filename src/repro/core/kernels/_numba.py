"""numba loader: compile :mod:`repro.core.kernels.impl` to native code.

The impl module is written in the nopython subset but imports nothing from
numba, so the same source runs interpreted (tests, machines without numba)
and compiled.  This loader executes a *second, private* copy of the module
and rebinds every name in ``impl.KERNEL_ORDER`` to its ``@njit``
dispatcher, in dependency order: compilation is lazy (first call), and by
then every cross-function global already resolves to a dispatcher, so the
whole call tree compiles nopython.  The pristine ``impl`` module is left
untouched for interpreted use.
"""

from __future__ import annotations

import importlib.util

from numba import njit

from repro.core.kernels import impl

_module = None


def load():
    """Return the njit-compiled twin of :mod:`repro.core.kernels.impl`."""
    global _module
    if _module is not None:
        return _module
    spec = importlib.util.spec_from_file_location(
        "repro.core.kernels._impl_jit", impl.__file__
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    for name in impl.KERNEL_ORDER:
        setattr(module, name, njit(cache=True)(getattr(module, name)))
    _module = module
    return _module
