"""Kernel-tier source: njit-able replicas of the G-Greedy hot loop.

Every function in this module is written in the numba ``nopython`` subset
(arrays, scalars, tuples, loops -- no dicts, classes or Python objects) but
imports nothing from numba, so the identical source runs two ways:

* **interpreted** -- imported as plain Python, used by the test suite to
  assert bit-identity against the reference engine on machines without
  numba (and as the executable specification of the kernel arithmetic);
* **JIT-compiled** -- :mod:`repro.core.kernels._numba` loads a second copy
  of this module and rebinds every name in :data:`KERNEL_ORDER` to its
  ``@njit`` dispatcher, in dependency order, so the cross-function calls
  resolve to compiled code.

Bit-identity contract
---------------------
The kernels replicate the *exact* floating-point evaluation order of the
reference paths they replace:

* sums follow NumPy's pairwise summation (``npy_pairwise_sum``: sequential
  below 8 terms, an 8-accumulator unrolled block up to 128, recursive
  halving above) -- :func:`pairwise_sum`;
* products are sequential left-to-right, matching ``np.multiply.reduce``;
* the scalar kernels iterate groups in admission order, matching
  :func:`repro.core.revenue.group_revenue`;
* revenue dots replicate ``np.add.reduce(prices * probabilities)`` -- the
  reason :mod:`repro.core.vectorized` routes its reductions through
  ``_ordered_dot`` instead of BLAS ``@``, whose accumulation order is not
  replicable;
* the admit loop replicates the lazy-refresh engine of
  :class:`repro.core.selection.LazyGreedySelector` including tie-breaking
  ((-priority, CSR row) at the upper level, earliest time at the lower
  level), the display-block/capacity-block discard split, the
  non-submodular upward refresh gates, and the group-cache history
  (an admitted candidate's scored "after" value becomes the next
  refresh's "before" value bit for bit).

The dispatch constants are duplicated from :mod:`repro.core.revenue`
(importing it here would both create an import cycle and break numba
compilation); ``tests/test_kernels.py`` asserts they stay in sync.
"""

from __future__ import annotations

import numpy as np

#: Mirror of :data:`repro.core.revenue.VECTORIZE_MIN_GROUP`.
VECTORIZE_MIN_GROUP = 10
#: Mirror of the batched-kernel work threshold in
#: :meth:`repro.core.revenue.RevenueModel._extended_group_revenues`
#: (``VECTORIZE_MIN_GROUP ** 2`` pairwise terms).
BATCH_MIN_WORK = 100

_NEG_INF = float("-inf")

#: Names :mod:`._numba` rebinds to njit dispatchers, in dependency order.
KERNEL_ORDER = (
    "pairwise_sum",
    "scalar_group_revenue",
    "vectorized_group_revenue",
    "_extended_batched",
    "extended_group_revenues",
    "frontier_best",
    "frontier_best_pri_t",
    "heap_push",
    "heap_pop",
    "_refresh_row",
    "admit_loop",
)


def pairwise_sum(values, lo, n):
    """Sum ``values[lo:lo+n]`` in NumPy's pairwise-summation order.

    Replicates ``npy_pairwise_sum`` exactly: plain left-to-right below 8
    elements, the 8-accumulator unrolled block up to 128, and recursive
    halving (left half rounded down to a multiple of 8) above.  The
    recursion is effectively dead code for REVMAX groups (bounded by
    ``display_limit * horizon``) but kept so the replica is total.
    """
    if n < 8:
        total = 0.0
        for i in range(n):
            total += values[lo + i]
        return total
    if n <= 128:
        r0 = values[lo]
        r1 = values[lo + 1]
        r2 = values[lo + 2]
        r3 = values[lo + 3]
        r4 = values[lo + 4]
        r5 = values[lo + 5]
        r6 = values[lo + 6]
        r7 = values[lo + 7]
        i = 8
        while i < n - (n % 8):
            r0 += values[lo + i]
            r1 += values[lo + i + 1]
            r2 += values[lo + i + 2]
            r3 += values[lo + i + 3]
            r4 += values[lo + i + 4]
            r5 += values[lo + i + 5]
            r6 += values[lo + i + 6]
            r7 += values[lo + i + 7]
            i += 8
        total = ((r0 + r1) + (r2 + r3)) + ((r4 + r5) + (r6 + r7))
        while i < n:
            total += values[lo + i]
            i += 1
        return total
    half = n // 2
    half -= half % 8
    return pairwise_sum(values, lo, half) + pairwise_sum(values, lo + half, n - half)


def scalar_group_revenue(times, items, prims, prices, betas):
    """Replica of :func:`repro.core.revenue.group_revenue` over group arrays.

    The arrays list the group's triples **in admission order** (the order
    of the ``Strategy`` group list); the candidate, when present, is the
    last entry -- exactly the ``group + [candidate]`` list the scalar
    backend kernel evaluates.
    """
    n = times.shape[0]
    total = 0.0
    for j in range(n):
        primitive = prims[j]
        if primitive <= 0.0:
            continue
        t = times[j]
        memory = 0.0
        for k in range(n):
            if times[k] < t:
                memory += 1.0 / (t - times[k])
        if memory > 0.0:
            saturation = betas[j] ** memory
        else:
            saturation = 1.0
        survival = 1.0
        for k in range(n):
            if k == j:
                continue
            if times[k] < t or (times[k] == t and items[k] != items[j]):
                survival *= 1.0 - prims[k]
        total += prices[j] * ((primitive * saturation) * survival)
    return total


def vectorized_group_revenue(times, items, prims, prices, betas):
    """Replica of :func:`repro.core.vectorized.vectorized_group_revenue`.

    Memory terms are pairwise sums over the *full* masked delta row (the
    zero entries participate in the summation tree, as in
    ``np.divide(..., where=earlier).sum(axis=1)``); survival products are
    sequential (multiplying the masked 1.0 entries is exact, so they are
    skipped); the final revenue dot replicates
    ``np.add.reduce(prices * probabilities)``.
    """
    n = times.shape[0]
    if n == 0:
        return 0.0
    row = np.empty(n, dtype=np.float64)
    products = np.empty(n, dtype=np.float64)
    for j in range(n):
        t = times[j]
        for k in range(n):
            delta = float(t - times[k])
            if delta > 0.0:
                row[k] = 1.0 / delta
            else:
                row[k] = 0.0
        memory = pairwise_sum(row, 0, n)
        saturation = betas[j] ** memory
        survival = 1.0
        for k in range(n):
            delta = times[j] - times[k]
            if delta > 0 or (delta == 0 and items[j] != items[k]):
                survival *= 1.0 - prims[k]
        probability = (prims[j] * saturation) * survival
        if not prims[j] > 0.0:
            probability = 0.0
        products[j] = prices[j] * probability
    return pairwise_sum(products, 0, n)


def extended_group_revenues(
    base_times, base_items, base_prims, base_prices, base_betas,
    cand_times, cand_items, cand_prims, cand_prices, cand_betas,
):
    """Revenues of ``group + [c]`` per candidate, replicating the model path.

    Mirrors :meth:`repro.core.revenue.RevenueModel._extended_group_revenues`
    for an all-miss pending set: the batched broadcast kernel when the
    bucket clears ``BATCH_MIN_WORK`` pairwise terms, otherwise the adaptive
    per-candidate dispatch (scalar loops below ``VECTORIZE_MIN_GROUP``
    triples, the vectorized kernel at or above it).
    """
    n = base_times.shape[0]
    m = cand_times.shape[0]
    afters = np.empty(m, dtype=np.float64)
    if m == 0:
        return afters
    if n == 0:
        # Singleton groups: no memory, no competition.  Identical bits on
        # both branches (0.0 + p*q == p*q), so no dispatch needed.
        for j in range(m):
            afters[j] = cand_prices[j] * cand_prims[j]
        return afters
    if m * (n + 1) ** 2 >= BATCH_MIN_WORK:
        return _extended_batched(
            base_times, base_items, base_prims, base_prices, base_betas,
            cand_times, cand_items, cand_prims, cand_prices, cand_betas,
        )
    ext_times = np.empty(n + 1, dtype=np.int64)
    ext_items = np.empty(n + 1, dtype=np.int64)
    ext_prims = np.empty(n + 1, dtype=np.float64)
    ext_prices = np.empty(n + 1, dtype=np.float64)
    ext_betas = np.empty(n + 1, dtype=np.float64)
    for k in range(n):
        ext_times[k] = base_times[k]
        ext_items[k] = base_items[k]
        ext_prims[k] = base_prims[k]
        ext_prices[k] = base_prices[k]
        ext_betas[k] = base_betas[k]
    for j in range(m):
        ext_times[n] = cand_times[j]
        ext_items[n] = cand_items[j]
        ext_prims[n] = cand_prims[j]
        ext_prices[n] = cand_prices[j]
        ext_betas[n] = cand_betas[j]
        if n + 1 < VECTORIZE_MIN_GROUP:
            afters[j] = scalar_group_revenue(
                ext_times, ext_items, ext_prims, ext_prices, ext_betas
            )
        else:
            afters[j] = vectorized_group_revenue(
                ext_times, ext_items, ext_prims, ext_prices, ext_betas
            )
    return afters


def _extended_batched(
    base_times, base_items, base_prims, base_prices, base_betas,
    cand_times, cand_items, cand_prims, cand_prices, cand_betas,
):
    """Replica of :func:`repro.core.vectorized.vectorized_extended_group_revenues`."""
    n = base_times.shape[0]
    m = cand_times.shape[0]
    afters = np.empty(m, dtype=np.float64)

    # Base-group memory terms and survival products (candidate-independent).
    base_memory = np.empty(n, dtype=np.float64)
    base_survival = np.empty(n, dtype=np.float64)
    row = np.empty(n, dtype=np.float64)
    for k in range(n):
        t = base_times[k]
        for w in range(n):
            delta = float(t - base_times[w])
            if delta > 0.0:
                row[w] = 1.0 / delta
            else:
                row[w] = 0.0
        base_memory[k] = pairwise_sum(row, 0, n)
        survival = 1.0
        for w in range(n):
            delta = base_times[k] - base_times[w]
            if delta > 0 or (delta == 0 and base_items[k] != base_items[w]):
                survival *= 1.0 - base_prims[w]
        base_survival[k] = survival

    products = np.empty(n, dtype=np.float64)
    for j in range(m):
        tc = cand_times[j]
        # Contribution of the base triples under the extended group: each
        # base triple k gains memory 1/(t_k - t_c) when the candidate is
        # strictly earlier and a survival factor (1 - q_c) when the
        # candidate competes with it.
        for k in range(n):
            delta = float(tc - base_times[k])
            if delta < 0.0:
                extra_memory = -1.0 / delta
            else:
                extra_memory = 0.0
            saturation = base_betas[k] ** (base_memory[k] + extra_memory)
            if delta < 0.0 or (delta == 0.0 and cand_items[j] != base_items[k]):
                extra_survival = 1.0 - cand_prims[j]
            else:
                extra_survival = 1.0
            probability = (
                (base_prims[k] * saturation) * base_survival[k]
            ) * extra_survival
            if not base_prims[k] > 0.0:
                probability = 0.0
            products[k] = probability * base_prices[k]
        base_contribution = pairwise_sum(products, 0, n)

        # Contribution of the candidate itself.
        for k in range(n):
            delta = float(tc - base_times[k])
            if delta > 0.0:
                row[k] = 1.0 / delta
            else:
                row[k] = 0.0
        cand_memory = pairwise_sum(row, 0, n)
        survival = 1.0
        for k in range(n):
            delta = tc - base_times[k]
            if delta > 0 or (delta == 0 and cand_items[j] != base_items[k]):
                survival *= 1.0 - base_prims[k]
        probability = (cand_prims[j] * (cand_betas[j] ** cand_memory)) * survival
        if not cand_prims[j] > 0.0:
            probability = 0.0
        afters[j] = base_contribution + cand_prices[j] * probability
    return afters


def frontier_best(priorities, seeded, row, horizon):
    """Best live priority of a frontier row, and its earliest time.

    Returns ``(best, t)`` where ``best`` is ``-inf`` for a dead row.  The
    earliest-time tie-break replicates the lower ``AddressableMaxHeap``:
    entries are inserted in ascending time order, and its ``beats`` rule
    prefers the earlier insertion on priority ties.
    """
    best = _NEG_INF
    best_t = -1
    for t in range(horizon):
        if seeded[row, t] and priorities[row, t] > best:
            best = priorities[row, t]
            best_t = t
    return best, best_t


def heap_push(heap_pri, heap_row, size, priority, row):
    """Push onto the (-priority, row) min-heap; grows the arrays on demand.

    The comparator -- higher priority wins, ties to the smaller CSR row --
    matches the ``heapq`` tuples of ``ColumnarFrontier``.  Any correct
    binary heap yields the same peek sequence: entries are totally ordered
    except for duplicate pushes of the same row, which are observationally
    identical.
    """
    if size == heap_pri.shape[0]:
        grown_pri = np.empty(2 * size + 8, dtype=np.float64)
        grown_row = np.empty(2 * size + 8, dtype=np.int64)
        for i in range(size):
            grown_pri[i] = heap_pri[i]
            grown_row[i] = heap_row[i]
        heap_pri = grown_pri
        heap_row = grown_row
    index = size
    heap_pri[index] = priority
    heap_row[index] = row
    while index > 0:
        parent = (index - 1) // 2
        if heap_pri[index] > heap_pri[parent] or (
            heap_pri[index] == heap_pri[parent]
            and heap_row[index] < heap_row[parent]
        ):
            heap_pri[index], heap_pri[parent] = heap_pri[parent], heap_pri[index]
            heap_row[index], heap_row[parent] = heap_row[parent], heap_row[index]
            index = parent
        else:
            break
    return heap_pri, heap_row, size + 1


def heap_pop(heap_pri, heap_row, size):
    """Remove the heap root; returns the new size."""
    size -= 1
    heap_pri[0] = heap_pri[size]
    heap_row[0] = heap_row[size]
    index = 0
    while True:
        left = 2 * index + 1
        if left >= size:
            break
        right = left + 1
        child = left
        if right < size and (
            heap_pri[right] > heap_pri[left]
            or (heap_pri[right] == heap_pri[left]
                and heap_row[right] < heap_row[left])
        ):
            child = right
        if heap_pri[child] > heap_pri[index] or (
            heap_pri[child] == heap_pri[index]
            and heap_row[child] < heap_row[index]
        ):
            heap_pri[index], heap_pri[child] = heap_pri[child], heap_pri[index]
            heap_row[index], heap_row[child] = heap_row[child], heap_row[index]
            index = child
        else:
            break
    return size


def admit_loop(
    pair_user,
    pair_item,
    pair_group,
    pair_probs,
    prices,
    capacities,
    betas,
    isolated,
    seeded,
    num_users,
    num_groups,
    display_limit,
    max_selections,
):
    """The native lazy-refresh/admit loop of G-Greedy over CSR tensors.

    Replicates :meth:`repro.core.selection.LazyGreedySelector.select` on the
    serial columnar path (empty initial strategy, reference semantics,
    group cache enabled) bit for bit: same admissions in the same order
    with the same gains, same model counter totals.

    Args:
        pair_user/pair_item/pair_group: int64 ``(n_pairs,)`` CSR row
            metadata (owning user, item, (user, class) group id).
        pair_probs: float64 ``(n_pairs, horizon)`` primitive probabilities.
        prices: float64 ``(n_items, horizon)``.
        capacities: int64 ``(n_items,)`` distinct-user capacities.
        betas: float64 ``(n_items,)`` saturation factors.
        isolated: float64 ``(n_pairs, horizon)`` seed priorities
            (isolated revenues); read-only.
        seeded: bool ``(n_pairs, horizon)`` live-candidate mask; mutated.
        max_selections: admission cap (pass a huge value for "no cap").

    Returns:
        ``(rows, ts, gains, admitted, evaluations, cache_hits, lookups)``
        where the first three arrays are sized to capacity and only the
        first ``admitted`` entries are meaningful.
    """
    n_pairs = pair_probs.shape[0]
    horizon = pair_probs.shape[1]

    # Upper frontier level: per-row best priority + lazy-deletion heap.
    best = np.empty(n_pairs, dtype=np.float64)
    live_rows = 0
    for r in range(n_pairs):
        row_best = _NEG_INF
        for t in range(horizon):
            if seeded[r, t] and isolated[r, t] > row_best:
                row_best = isolated[r, t]
        best[r] = row_best
        if row_best > _NEG_INF:
            live_rows += 1
    heap_pri = np.empty(max(live_rows * 2, 16), dtype=np.float64)
    heap_row = np.empty(max(live_rows * 2, 16), dtype=np.int64)
    heap_size = 0
    for r in range(n_pairs):
        if best[r] > _NEG_INF:
            heap_pri[heap_size] = best[r]
            heap_row[heap_size] = r
            heap_size += 1
    # Floyd heapify (pop order is comparator-determined, so any valid heap
    # reproduces the reference peek sequence).
    for start in range(heap_size // 2 - 1, -1, -1):
        index = start
        while True:
            left = 2 * index + 1
            if left >= heap_size:
                break
            right = left + 1
            child = left
            if right < heap_size and (
                heap_pri[right] > heap_pri[left]
                or (heap_pri[right] == heap_pri[left]
                    and heap_row[right] < heap_row[left])
            ):
                child = right
            if heap_pri[child] > heap_pri[index] or (
                heap_pri[child] == heap_pri[index]
                and heap_row[child] < heap_row[index]
            ):
                heap_pri[index], heap_pri[child] = heap_pri[child], heap_pri[index]
                heap_row[index], heap_row[child] = heap_row[child], heap_row[index]
                index = child
            else:
                break

    # Strategy bookkeeping (display counts, item audiences, group chains).
    display_count = np.zeros(num_users * horizon, dtype=np.int32)
    audience = np.zeros(capacities.shape[0], dtype=np.int64)
    row_admitted = np.zeros(n_pairs, dtype=np.int32)
    flag_row = np.zeros(n_pairs, dtype=np.int32)
    group_size = np.zeros(num_groups, dtype=np.int32)
    group_rev = np.zeros(num_groups, dtype=np.float64)
    group_head = np.full(num_groups, -1, dtype=np.int64)
    group_tail = np.full(num_groups, -1, dtype=np.int64)
    # Whether the group's "before" revenue is memoised (the reference cache
    # misses once per group, on the first refresh after its seed admission).
    group_cached = np.zeros(num_groups, dtype=np.bool_)

    # Admission log doubling as the strategy's group membership store.
    adm_capacity = 64
    adm_row = np.empty(adm_capacity, dtype=np.int64)
    adm_t = np.empty(adm_capacity, dtype=np.int64)
    adm_gain = np.empty(adm_capacity, dtype=np.float64)
    adm_next = np.empty(adm_capacity, dtype=np.int64)

    # Sparse per-row rescore store: the last scored "after" revenue and the
    # resulting priority of each live candidate.  Rows never rescored read
    # their priority straight from the isolated tensor.
    row_slot = np.full(n_pairs, -1, dtype=np.int64)
    slot_capacity = 64
    slot_after = np.empty((slot_capacity, horizon), dtype=np.float64)
    slot_pri = np.empty((slot_capacity, horizon), dtype=np.float64)
    slot_count = 0

    # Scratch buffers for rescores (group size is <= display_limit * horizon).
    max_group = display_limit * horizon + 1
    base_times = np.empty(max_group, dtype=np.int64)
    base_items = np.empty(max_group, dtype=np.int64)
    base_prims = np.empty(max_group, dtype=np.float64)
    base_prices = np.empty(max_group, dtype=np.float64)
    base_betas = np.empty(max_group, dtype=np.float64)
    cand_times = np.empty(horizon, dtype=np.int64)
    cand_items = np.empty(horizon, dtype=np.int64)
    cand_prims = np.empty(horizon, dtype=np.float64)
    cand_prices = np.empty(horizon, dtype=np.float64)
    cand_betas = np.empty(horizon, dtype=np.float64)

    admitted = 0
    evaluations = 0
    cache_hits = 0
    lookups = 0

    while live_rows > 0 and admitted < max_selections:
        # Lazy-deletion peek: pop stale upper entries until the top is live.
        row = -1
        while heap_size > 0:
            if best[heap_row[0]] == heap_pri[0]:
                row = heap_row[0]
                break
            heap_size = heap_pop(heap_pri, heap_row, heap_size)
        if row < 0:
            break
        priority, t = frontier_best_pri_t(
            isolated, slot_pri, row_slot, seeded, row, horizon
        )
        user = pair_user[row]
        item = pair_item[row]

        # Constraint gate, display first (the blocked-discard split of
        # ``_discard_blocked``: display exhaustion kills one triple,
        # capacity exhaustion kills the whole row).
        if display_count[user * horizon + t] >= display_limit:
            seeded[row, t] = False
            live_rows, heap_pri, heap_row, heap_size = _refresh_row(
                isolated, slot_pri, row_slot, seeded, best, row, horizon,
                live_rows, heap_pri, heap_row, heap_size,
            )
            continue
        if row_admitted[row] == 0 and audience[item] >= capacities[item]:
            for w in range(horizon):
                seeded[row, w] = False
            best[row] = _NEG_INF
            live_rows -= 1
            continue

        group = pair_group[row]
        freshness = group_size[group]
        if flag_row[row] != freshness:
            # Lazy refresh: rescore every live candidate of the row against
            # the group's current prefix, replicating
            # ``marginal_revenue_batch`` (one bucket) and its counters.
            m = 0
            for w in range(horizon):
                if seeded[row, w]:
                    cand_times[m] = w
                    cand_items[m] = item
                    cand_prims[m] = pair_probs[row, w]
                    cand_prices[m] = prices[item, w]
                    cand_betas[m] = betas[item]
                    m += 1
            n = group_size[group]
            before = group_rev[group]
            if n > 0:
                if group_cached[group]:
                    cache_hits += 1
                else:
                    evaluations += 1
                    group_cached[group] = True
            member = group_head[group]
            position = 0
            while member >= 0:
                member_row = adm_row[member]
                member_item = pair_item[member_row]
                member_t = adm_t[member]
                base_times[position] = member_t
                base_items[position] = member_item
                base_prims[position] = pair_probs[member_row, member_t]
                base_prices[position] = prices[member_item, member_t]
                base_betas[position] = betas[member_item]
                position += 1
                member = adm_next[member]
            afters = extended_group_revenues(
                base_times[:n], base_items[:n], base_prims[:n],
                base_prices[:n], base_betas[:n],
                cand_times[:m], cand_items[:m], cand_prims[:m],
                cand_prices[:m], cand_betas[:m],
            )
            evaluations += m
            lookups += m
            slot = row_slot[row]
            if slot < 0:
                if slot_count == slot_capacity:
                    grown_after = np.empty(
                        (2 * slot_capacity, horizon), dtype=np.float64
                    )
                    grown_pri = np.empty(
                        (2 * slot_capacity, horizon), dtype=np.float64
                    )
                    grown_after[:slot_capacity, :] = slot_after
                    grown_pri[:slot_capacity, :] = slot_pri
                    slot_after = grown_after
                    slot_pri = grown_pri
                    slot_capacity *= 2
                slot = slot_count
                slot_count += 1
                row_slot[row] = slot
            for j in range(m):
                slot_after[slot, cand_times[j]] = afters[j]
                slot_pri[slot, cand_times[j]] = afters[j] - before
            flag_row[row] = freshness
            live_rows, heap_pri, heap_row, heap_size = _refresh_row(
                isolated, slot_pri, row_slot, seeded, best, row, horizon,
                live_rows, heap_pri, heap_row, heap_size,
            )
            continue

        if priority <= 0.0:
            break

        # Admit.  The group's new memoised revenue is the candidate's last
        # scored "after" value (the seed priority itself for a group's
        # first admission, which the reference scores against the empty
        # prefix: after - 0.0 == after).
        if freshness == 0:
            after = priority
        else:
            after = slot_after[row_slot[row], t]
        if admitted == adm_capacity:
            grown_row = np.empty(2 * adm_capacity, dtype=np.int64)
            grown_t = np.empty(2 * adm_capacity, dtype=np.int64)
            grown_gain = np.empty(2 * adm_capacity, dtype=np.float64)
            grown_next = np.empty(2 * adm_capacity, dtype=np.int64)
            for i in range(adm_capacity):
                grown_row[i] = adm_row[i]
                grown_t[i] = adm_t[i]
                grown_gain[i] = adm_gain[i]
                grown_next[i] = adm_next[i]
            adm_row = grown_row
            adm_t = grown_t
            adm_gain = grown_gain
            adm_next = grown_next
            adm_capacity *= 2
        adm_row[admitted] = row
        adm_t[admitted] = t
        adm_gain[admitted] = priority
        adm_next[admitted] = -1
        if group_head[group] < 0:
            group_head[group] = admitted
        else:
            adm_next[group_tail[group]] = admitted
        group_tail[group] = admitted
        group_size[group] += 1
        group_rev[group] = after
        group_cached[group] = freshness > 0
        display_count[user * horizon + t] += 1
        if row_admitted[row] == 0:
            audience[item] += 1
        row_admitted[row] += 1
        admitted += 1
        seeded[row, t] = False
        live_rows, heap_pri, heap_row, heap_size = _refresh_row(
            isolated, slot_pri, row_slot, seeded, best, row, horizon,
            live_rows, heap_pri, heap_row, heap_size,
        )

    return (
        adm_row[:admitted].copy(),
        adm_t[:admitted].copy(),
        adm_gain[:admitted].copy(),
        admitted,
        evaluations,
        cache_hits,
        lookups,
    )


def frontier_best_pri_t(isolated, slot_pri, row_slot, seeded, row, horizon):
    """Best live (priority, earliest time) of a row under the rescore store."""
    slot = row_slot[row]
    best_priority = _NEG_INF
    best_t = -1
    for t in range(horizon):
        if not seeded[row, t]:
            continue
        if slot >= 0:
            priority = slot_pri[slot, t]
        else:
            priority = isolated[row, t]
        if priority > best_priority:
            best_priority = priority
            best_t = t
    return best_priority, best_t


def _refresh_row(
    isolated, slot_pri, row_slot, seeded, best, row, horizon,
    live_rows, heap_pri, heap_row, heap_size,
):
    """Recompute a row's best and maintain the upper heap / live count.

    Replicates ``ColumnarFrontier._refresh`` / ``_kill``: a changed best
    pushes a fresh upper entry (the stale one is lazily deleted); an
    emptied row dies without a push.
    """
    new_best, _ = frontier_best_pri_t(
        isolated, slot_pri, row_slot, seeded, row, horizon
    )
    if new_best == _NEG_INF:
        if best[row] != _NEG_INF:
            best[row] = _NEG_INF
            live_rows -= 1
        return live_rows, heap_pri, heap_row, heap_size
    if new_best != best[row]:
        best[row] = new_best
        heap_pri, heap_row, heap_size = heap_push(
            heap_pri, heap_row, heap_size, new_best, row
        )
    return live_rows, heap_pri, heap_row, heap_size
