"""Columnar compilation of REVMAX instances: contiguous ID-indexed tensors.

:class:`~repro.core.problem.RevMaxInstance` is object-shaped: the adoption
table keeps one tiny per-(user, item) probability vector in a Python dict,
and every hot path that touches it (heap seeding, group gathers, candidate
enumeration) pays a dict lookup per triple.  This module compiles an
instance, once, into the struct-of-arrays layout the access patterns
actually want:

* a **CSR candidate table** -- pairs sorted by ``(user, item)`` with
  ``user_ptr[u] : user_ptr[u + 1]`` delimiting user ``u``'s rows,
  ``pair_item[p]`` the item of pair ``p``, and ``pair_probs[p, t]`` the
  primitive adoption probability ``q(u, i, t)`` of that pair (a contiguous
  ``(n_pairs, T)`` float64 matrix);
* the dense per-item tensors the instance already holds -- the
  ``(n_items, T)`` price matrix and per-item class / capacity / beta
  vectors -- referenced, not copied;
* a **dense (user, class) group index** mapping each pair to the
  (user, item-class) group it interacts with in Definition 1 (built lazily:
  only diagnostics and future group-parallel kernels need it).

Compilation is value-preserving by construction: every tensor entry is the
exact float stored in the object layer, so arithmetic performed on compiled
tensors is bit-identical to the object path (asserted by
``tests/test_compiled.py``).

Entry points
------------
``instance.compiled()``
    lazy one-shot compilation, cached on the instance.
``CompiledInstance.as_instance()``
    wrap a compilation as a ready-to-solve ``RevMaxInstance`` whose adoption
    table is a read-only columnar view (:class:`ColumnarAdoptionTable`) --
    the object the columnar generators and the ``.npz`` loader return; no
    pair dict is ever materialized.
``CompiledInstance.to_instance()``
    materialize a plain dict-backed instance (the pre-compilation layout),
    used by equivalence tests and benchmarks that need the object path.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.entities import ItemCatalog, Triple

__all__ = ["CompiledInstance", "ColumnarAdoptionTable"]


class CompiledInstance:
    """A REVMAX instance compiled into contiguous ID-indexed tensors.

    Attributes:
        num_users: number of users ``|U|`` (CSR row count).
        horizon: number of time steps ``T``.
        display_limit: the display constraint ``k``.
        user_ptr: shape ``(num_users + 1,)`` int64; pair rows of user ``u``
            are ``user_ptr[u] : user_ptr[u + 1]``.
        pair_user: shape ``(n_pairs,)`` int64 user id per pair (CSR order).
        pair_item: shape ``(n_pairs,)`` int64 item id per pair.
        pair_probs: shape ``(n_pairs, horizon)`` float64 primitive adoption
            probabilities ``q(u, i, t)``.
        prices: shape ``(n_items, horizon)`` float64 price matrix (shared
            with the source instance, never copied).
        capacities: shape ``(n_items,)`` int per-item capacities.
        betas: shape ``(n_items,)`` float64 saturation factors.
        item_class: shape ``(n_items,)`` int64 class ids ``C(i)``.
        name: label of the source instance.
        source_version: adoption-table mutation counter at compile time
            (lets ``RevMaxInstance.compiled()`` detect staleness).
    """

    def __init__(self, num_users: int, horizon: int, display_limit: int,
                 user_ptr: np.ndarray, pair_item: np.ndarray,
                 pair_probs: np.ndarray, prices: np.ndarray,
                 capacities: np.ndarray, betas: np.ndarray,
                 item_class: np.ndarray, name: str = "revmax-instance",
                 source_version: int = 0, validate: bool = True) -> None:
        self.num_users = int(num_users)
        self.horizon = int(horizon)
        self.display_limit = int(display_limit)
        self.user_ptr = np.asarray(user_ptr, dtype=np.int64)
        self.pair_item = np.asarray(pair_item, dtype=np.int64)
        self.pair_probs = np.asarray(pair_probs, dtype=np.float64)
        self.prices = np.asarray(prices, dtype=np.float64)
        self.capacities = np.asarray(capacities, dtype=int)
        self.betas = np.asarray(betas, dtype=np.float64)
        self.item_class = np.asarray(item_class, dtype=np.int64)
        self.name = str(name)
        self.source_version = int(source_version)
        self._validate_shapes()
        self._key_stride = max(1, self.num_items)
        # pair_user and the sorted lookup keys are derivable from the CSR;
        # they materialize lazily so that attaching to a full instance just
        # to slice out one shard (the sharded solver's worker startup) never
        # pays two O(n_pairs) passes over rows it is about to drop.
        self._pair_user: Optional[np.ndarray] = None
        self._keys: Optional[np.ndarray] = None
        if validate:
            self._validate()
        self._isolated: Optional[np.ndarray] = None
        self._groups: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        # item -> pair rows index (CSC-style), built lazily by the delta
        # layer to patch the isolated-revenue matrix after price updates.
        self._item_rows: Optional[Tuple[np.ndarray, np.ndarray]] = None
        #: True on views produced by :meth:`shard`: their row tensors alias
        #: another compilation's, so in-place mutation is rejected.
        self._shard_view = False
        #: Path of the ``.npz`` archive this compilation was loaded from, if
        #: any.  Lets the sharded solver attach workers by path + shard range
        #: instead of copying the tensors into shared memory.
        self.source_path: Optional[str] = None
        #: Global CSR row of this compilation's local row 0 -- non-zero only
        #: on views produced by :meth:`shard`, where it lets consumers map
        #: local rows back to the full instance's row space.
        self.shard_row_offset: int = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_instance(cls, instance) -> "CompiledInstance":
        """Compile a :class:`~repro.core.problem.RevMaxInstance` (one shot).

        Instances whose adoption table is already a
        :class:`ColumnarAdoptionTable` reuse its tensors without copying.
        """
        adoption = instance.adoption
        version = getattr(adoption, "_version", 0)
        item_class = np.asarray(instance.catalog.item_class, dtype=np.int64)
        if isinstance(adoption, ColumnarAdoptionTable):
            source = adoption.compiled
            return cls(
                num_users=instance.num_users,
                horizon=instance.horizon,
                display_limit=instance.display_limit,
                user_ptr=source.user_ptr,
                pair_item=source.pair_item,
                pair_probs=source.pair_probs,
                prices=instance.prices,
                capacities=instance.capacities,
                betas=instance.betas,
                item_class=item_class,
                name=instance.name,
                source_version=version,
            )
        pairs = list(adoption.pairs())
        n = len(pairs)
        users = np.fromiter((p[0] for p in pairs), dtype=np.int64, count=n)
        items = np.fromiter((p[1] for p in pairs), dtype=np.int64, count=n)
        if n and (users.min() < 0 or users.max() >= instance.num_users):
            bad = int(users.max() if users.max() >= instance.num_users
                      else users.min())
            raise ValueError(
                f"cannot compile instance {instance.name!r}: adoption table "
                f"contains user id {bad}, outside 0..{instance.num_users - 1}"
            )
        probs = np.empty((n, instance.horizon), dtype=np.float64)
        for row, (user, item) in enumerate(pairs):
            probs[row] = adoption.get(user, item)
        order = np.lexsort((items, users))
        users = users[order]
        user_ptr = np.zeros(instance.num_users + 1, dtype=np.int64)
        np.cumsum(np.bincount(users, minlength=instance.num_users),
                  out=user_ptr[1:])
        return cls(
            num_users=instance.num_users,
            horizon=instance.horizon,
            display_limit=instance.display_limit,
            user_ptr=user_ptr,
            pair_item=items[order],
            pair_probs=probs[order],
            prices=instance.prices,
            capacities=instance.capacities,
            betas=instance.betas,
            item_class=item_class,
            name=instance.name,
            source_version=version,
        )

    def _validate_shapes(self) -> None:
        """Cheap structural checks (safe for lazily memory-mapped tensors)."""
        n_items = self.item_class.shape[0]
        n_pairs = self.pair_item.shape[0]
        if self.user_ptr.shape != (self.num_users + 1,):
            raise ValueError("user_ptr must have num_users + 1 entries")
        if self.user_ptr[0] != 0 or self.user_ptr[-1] != n_pairs:
            raise ValueError("user_ptr must start at 0 and end at n_pairs")
        if np.any(np.diff(self.user_ptr) < 0):
            raise ValueError("user_ptr must be non-decreasing")
        if self.pair_probs.shape != (n_pairs, self.horizon):
            raise ValueError(
                f"pair_probs must have shape ({n_pairs}, {self.horizon}), "
                f"got {self.pair_probs.shape}"
            )
        if self.prices.shape != (n_items, self.horizon):
            raise ValueError("prices must have shape (n_items, horizon)")
        if self.capacities.shape != (n_items,):
            raise ValueError("capacities must have one entry per item")
        if self.betas.shape != (n_items,):
            raise ValueError("betas must have one entry per item")

    def _validate(self) -> None:
        n_items = self.item_class.shape[0]
        n_pairs = self.pair_item.shape[0]
        if n_pairs and (self.pair_item.min() < 0
                        or self.pair_item.max() >= n_items):
            raise ValueError("pair_item entries must be valid item ids")
        # The searchsorted lookups require strictly increasing keys, i.e.
        # pairs sorted by (user, item) with no duplicates.
        if np.any(np.diff(self._pair_keys) <= 0):
            raise ValueError(
                "pairs must be sorted by (user, item) and unique; "
                "items must be strictly increasing within each user"
            )
        if np.isnan(self.pair_probs).any():
            raise ValueError("pair_probs must not contain NaN")
        if np.any((self.pair_probs < 0.0) | (self.pair_probs > 1.0)):
            raise ValueError("pair_probs must lie in [0, 1]")

    # ------------------------------------------------------------------
    # sizes and diagnostics
    # ------------------------------------------------------------------
    @property
    def pair_user(self) -> np.ndarray:
        """User id of every pair row, shape ``(n_pairs,)`` (lazy)."""
        if self._pair_user is None:
            counts = np.diff(self.user_ptr)
            self._pair_user = np.repeat(
                np.arange(self.num_users, dtype=np.int64), counts
            )
        return self._pair_user

    @property
    def _pair_keys(self) -> np.ndarray:
        """Sorted (user, item) keys for vectorized row lookups (lazy)."""
        if self._keys is None:
            self._keys = self.pair_user * self._key_stride + self.pair_item
        return self._keys

    @property
    def num_items(self) -> int:
        """Number of items ``|I|``."""
        return int(self.item_class.shape[0])

    @property
    def num_pairs(self) -> int:
        """Number of candidate (user, item) pairs (CSR rows)."""
        return int(self.pair_item.shape[0])

    @property
    def num_classes(self) -> int:
        """Number of distinct item classes."""
        return int(np.unique(self.item_class).shape[0])

    def num_candidate_triples(self) -> int:
        """Count (pair, t) entries with positive primitive probability."""
        return int(np.count_nonzero(self.pair_probs > 0.0))

    def memory_footprint(self) -> Dict[str, int]:
        """Per-tensor byte sizes plus a ``"total"`` entry.

        Derived tensors (``pair_user``, the lookup keys, the cached
        isolated-revenue matrix and the group index) are included once they
        have materialized -- the footprint reflects what the compilation
        actually holds resident, not just the inputs.
        """
        tensors = {
            "user_ptr": self.user_ptr,
            "pair_item": self.pair_item,
            "pair_probs": self.pair_probs,
            "prices": self.prices,
            "capacities": self.capacities,
            "betas": self.betas,
            "item_class": self.item_class,
        }
        if self._pair_user is not None:
            tensors["pair_user"] = self._pair_user
        if self._keys is not None:
            tensors["pair_keys"] = self._keys
        if self._isolated is not None:
            tensors["isolated_revenues"] = self._isolated
        if self._groups is not None:
            pair_group, group_user, group_class = self._groups
            tensors["pair_group"] = pair_group
            tensors["group_user"] = group_user
            tensors["group_class"] = group_class
        footprint = {key: int(array.nbytes) for key, array in tensors.items()}
        footprint["total"] = sum(footprint.values())
        return footprint

    def replace(self, prices: Optional[np.ndarray] = None,
                capacities: Optional[np.ndarray] = None,
                betas: Optional[np.ndarray] = None,
                item_class: Optional[np.ndarray] = None,
                name: Optional[str] = None) -> "CompiledInstance":
        """A compilation with some per-item tensors swapped, CSR shared.

        The candidate table is independent of prices, capacities, betas and
        the class assignment, so derived instances (``with_betas``,
        ``with_capacities``, ``with_singleton_classes``) transplant their
        donor's CSR arrays instead of re-walking the adoption table.  The
        cached isolated-revenue matrix carries over too whenever the prices
        are unchanged (it only depends on prices and probabilities).
        """
        derived = CompiledInstance(
            num_users=self.num_users,
            horizon=self.horizon,
            display_limit=self.display_limit,
            user_ptr=self.user_ptr,
            pair_item=self.pair_item,
            pair_probs=self.pair_probs,
            prices=self.prices if prices is None else prices,
            capacities=self.capacities if capacities is None else capacities,
            betas=self.betas if betas is None else betas,
            item_class=self.item_class if item_class is None else item_class,
            name=self.name if name is None else name,
            source_version=self.source_version,
            # The shared CSR tensors were validated when first compiled.
            validate=False,
        )
        if prices is None:
            derived._isolated = self._isolated
        # The row-derived tensors depend only on the shared CSR (the item
        # count is fixed by the shape checks), so any materialized caches
        # carry over -- as does the row space / provenance bookkeeping.
        derived._pair_user = self._pair_user
        derived._keys = self._keys
        derived._item_rows = self._item_rows
        derived._shard_view = self._shard_view
        derived.source_path = self.source_path
        derived.shard_row_offset = self.shard_row_offset
        return derived

    def shard(self, user_start: int, user_stop: int) -> "CompiledInstance":
        """A view of this compilation restricted to one contiguous user range.

        The shard keeps the *global* user-id space (``num_users`` is
        unchanged) so strategies, display counts and (user, class) groups use
        the same ids as the full instance; users outside
        ``[user_start, user_stop)`` simply have no candidate pairs.  The pair
        tensors are row slices ``user_ptr[user_start] : user_ptr[user_stop]``
        of the originals -- zero-copy views into whatever backs them (heap
        arrays, shared memory, or a memory-mapped ``.npz``) -- and the
        per-item tensors are shared.  Local pair row ``r`` of the shard is
        global row ``user_ptr[user_start] + r`` (recorded as the view's
        ``shard_row_offset``), which is how the sharded solver reproduces
        the serial frontier's tie-breaking.
        """
        if not 0 <= user_start <= user_stop <= self.num_users:
            raise ValueError(
                f"invalid shard range [{user_start}, {user_stop}) for "
                f"{self.num_users} users"
            )
        row_start = int(self.user_ptr[user_start])
        row_stop = int(self.user_ptr[user_stop])
        user_ptr = np.clip(self.user_ptr, row_start, row_stop) - row_start
        shard = CompiledInstance(
            num_users=self.num_users,
            horizon=self.horizon,
            display_limit=self.display_limit,
            user_ptr=user_ptr,
            pair_item=self.pair_item[row_start:row_stop],
            pair_probs=self.pair_probs[row_start:row_stop],
            prices=self.prices,
            capacities=self.capacities,
            betas=self.betas,
            item_class=self.item_class,
            name=f"{self.name}-users{user_start}-{user_stop}",
            source_version=self.source_version,
            # Row slices of tensors validated at compile / save time.
            validate=False,
        )
        if self._isolated is not None:
            shard._isolated = self._isolated[row_start:row_stop]
        # Accumulate across nested shards so local row r always maps to the
        # ORIGINAL instance's row space, whatever view it was sliced from.
        shard.shard_row_offset = self.shard_row_offset + row_start
        shard._shard_view = True
        return shard

    # ------------------------------------------------------------------
    # in-place deltas (the dynamic re-solve layer)
    # ------------------------------------------------------------------
    def _item_rows_index(self) -> Tuple[np.ndarray, np.ndarray]:
        """CSC-style index grouping pair rows by item (lazy).

        Returns ``(order, ptr)`` with ``order[ptr[i] : ptr[i + 1]]`` the pair
        rows of item ``i``.  Used by :meth:`apply_delta` to invalidate only
        the isolated-revenue cells a price update can touch; invalidated when
        a delta appends new CSR rows.
        """
        if self._item_rows is None:
            order = np.argsort(self.pair_item, kind="stable")
            ptr = np.zeros(self.num_items + 1, dtype=np.int64)
            np.cumsum(
                np.bincount(self.pair_item, minlength=self.num_items),
                out=ptr[1:],
            )
            self._item_rows = (order.astype(np.int64, copy=False), ptr)
        return self._item_rows

    def rows_of_item(self, item: int) -> np.ndarray:
        """Pair rows whose item is ``item`` (ascending row order).

        The stable argsort in :meth:`_item_rows_index` preserves the
        original row order within each item bucket, so the slice is
        already ascending.
        """
        if not 0 <= item < self.num_items:
            raise ValueError(
                f"item {item} outside 0..{self.num_items - 1}"
            )
        order, ptr = self._item_rows_index()
        return order[ptr[item]:ptr[item + 1]]

    def _writable(self, name: str) -> np.ndarray:
        """A writable view of tensor ``name``, copying once if needed.

        Tensors memory-mapped from an ``.npz`` archive (or attached through
        read-only shared memory) cannot be patched in place; the first delta
        that touches such a tensor replaces it with an owned, writable copy.
        Consumers holding the *compilation* see the swap transparently;
        anything that grabbed the old array object keeps the pre-delta
        values (which is why :func:`repro.dynamic.apply_delta` re-syncs the
        wrapping instance's references).
        """
        array = getattr(self, name)
        if not array.flags.writeable:
            array = np.array(array)
            setattr(self, name, array)
        return array

    def apply_delta(self, delta) -> None:
        """Patch the compiled tensors in place per an ``InstanceDelta``.

        Everything the delta does not name is untouched: no recompilation,
        no CSR re-sort, and the cached isolated-revenue matrix is repaired
        only in the rows/cells the delta can reach (probability updates
        rewrite their pair rows, price updates their item's ``(row, t)``
        cells, new users append freshly computed tail rows).  The whole
        delta is validated before the first write, so a rejected delta
        leaves the compilation unchanged.

        The mutation bumps :attr:`source_version`.  Callers holding this
        compilation inside a :class:`~repro.core.problem.RevMaxInstance`
        should go through :func:`repro.dynamic.apply_delta`, which keeps the
        instance's adoption-table version and tensor references in sync (and
        handles dict-backed tables); callers holding live
        :class:`~repro.core.revenue.RevenueModel` caches must invalidate the
        dirty entries (see
        :class:`repro.dynamic.incremental.IncrementalSolver`).

        Args:
            delta: an :class:`repro.dynamic.delta.InstanceDelta`.

        Raises:
            ValueError: on out-of-range ids/times, probability updates for
                pairs absent from the candidate table, malformed vectors, or
                non-contiguous new-user ids; nothing is applied.
        """
        if self._shard_view:
            raise ValueError(
                "cannot apply a delta to a shard view: its tensors alias "
                "another compilation; apply the delta to the full instance"
            )
        if delta.is_empty():
            return

        # -- validate everything up front (atomicity) -------------------
        delta.validate_ranges(self.num_items, self.horizon, self.num_users)
        prob_rows = None
        if delta.probability_updates:
            pairs = sorted(delta.probability_updates)
            users = np.fromiter((p[0] for p in pairs), dtype=np.int64,
                                count=len(pairs))
            items = np.fromiter((p[1] for p in pairs), dtype=np.int64,
                                count=len(pairs))
            rows = self.pair_rows(users, items)
            missing = np.flatnonzero(rows < 0)
            if missing.size:
                user, item = pairs[int(missing[0])]
                raise ValueError(
                    f"probability update for (user={user}, item={item}) "
                    f"names a pair absent from the candidate table; new "
                    f"pairs can only arrive with new users"
                )
            matrix = np.empty((len(pairs), self.horizon), dtype=np.float64)
            for index, pair in enumerate(pairs):
                matrix[index] = delta.probability_updates[pair]
            prob_rows = (rows, matrix)
        tail = None
        if delta.new_users:
            tail = self._flatten_new_users(delta)

        # -- apply ------------------------------------------------------
        if delta.price_updates:
            prices = self._writable("prices")
            for (item, t), price in delta.price_updates.items():
                prices[item, t] = price
        if delta.capacity_updates:
            capacities = self._writable("capacities")
            for item, capacity in delta.capacity_updates.items():
                capacities[item] = capacity
        if prob_rows is not None:
            rows, matrix = prob_rows
            self._writable("pair_probs")[rows] = matrix
            if self._isolated is not None:
                self._isolated[rows] = (
                    self.prices[self.pair_item[rows]] * matrix
                )
        if delta.price_updates and self._isolated is not None:
            # Probability rows above were recomputed against the *new*
            # prices already; here only the remaining rows of each
            # price-touched (item, t) cell need repair.
            for (item, t), price in delta.price_updates.items():
                rows = self.rows_of_item(item)
                self._isolated[rows, t] = price * self.pair_probs[rows, t]
        if tail is not None:
            self._append_users(*tail)
        self.source_version += 1

    def _flatten_new_users(self, delta):
        """Flatten the (already validated) new users' pairs to a CSR tail."""
        counts: List[int] = []
        tail_items: List[int] = []
        tail_vectors: List[np.ndarray] = []
        for user in sorted(delta.new_users):
            pairs = delta.new_users[user]
            for item in sorted(pairs):
                tail_items.append(item)
                tail_vectors.append(pairs[item])
            counts.append(len(pairs))
        return counts, tail_items, tail_vectors

    def _append_users(self, counts: List[int], tail_items: List[int],
                      tail_vectors: List[np.ndarray]) -> None:
        """Grow the CSR by a validated tail of new users' pairs."""
        n_new_users = len(counts)
        n_tail = len(tail_items)
        new_ptr = self.user_ptr[-1] + np.cumsum(
            np.asarray(counts, dtype=np.int64)
        )
        self.user_ptr = np.concatenate([np.asarray(self.user_ptr), new_ptr])
        items = np.asarray(tail_items, dtype=np.int64)
        probs = (
            np.asarray(tail_vectors, dtype=np.float64).reshape(
                n_tail, self.horizon
            )
        )
        self.pair_item = np.concatenate([np.asarray(self.pair_item), items])
        self.pair_probs = np.concatenate(
            [np.asarray(self.pair_probs), probs], axis=0
        )
        if self._isolated is not None:
            self._isolated = np.concatenate(
                [self._isolated, self.prices[items] * probs], axis=0
            )
        if self._pair_user is not None:
            tail_users = np.repeat(
                np.arange(self.num_users, self.num_users + n_new_users,
                          dtype=np.int64),
                counts,
            )
            self._pair_user = np.concatenate([self._pair_user, tail_users])
            if self._keys is not None:
                self._keys = np.concatenate([
                    self._keys, tail_users * self._key_stride + items
                ])
        else:
            self._keys = None
        self.num_users += n_new_users
        # Group index and item->rows index cover rows that did not exist.
        self._groups = None
        self._item_rows = None

    # ------------------------------------------------------------------
    # row lookups
    # ------------------------------------------------------------------
    def pair_rows(self, users: np.ndarray, items: np.ndarray) -> np.ndarray:
        """Vectorized (user, item) -> pair-row lookup (-1 where absent)."""
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        if self.num_pairs == 0:
            return np.full(users.shape, -1, dtype=np.int64)
        # Out-of-range ids would alias other pairs' keys; rule them out.
        valid = ((users >= 0) & (users < self.num_users)
                 & (items >= 0) & (items < self._key_stride))
        keys = users * self._key_stride + items
        position = np.searchsorted(self._pair_keys, keys)
        position = np.minimum(position, self.num_pairs - 1)
        found = valid & (self._pair_keys[position] == keys)
        return np.where(found, position, -1)

    def pair_row(self, user: int, item: int) -> int:
        """Scalar (user, item) -> pair-row lookup (-1 when absent)."""
        if (self.num_pairs == 0 or user < 0 or user >= self.num_users
                or item < 0 or item >= self._key_stride):
            return -1
        key = user * self._key_stride + item
        position = int(np.searchsorted(self._pair_keys, key))
        if position < self.num_pairs and self._pair_keys[position] == key:
            return position
        return -1

    # ------------------------------------------------------------------
    # candidate ground set
    # ------------------------------------------------------------------
    def isolated_revenues(self) -> np.ndarray:
        """The ``(n_pairs, T)`` matrix ``p(i, t) * q(u, i, t)`` (cached).

        Entry ``[p, t]`` is the isolated expected revenue of the candidate
        triple ``(pair_user[p], pair_item[p], t)`` -- the quantity heap
        seeding and the TopRE baseline rank by.  The multiplication matches
        :meth:`RevMaxInstance.expected_isolated_revenue` bit for bit.
        """
        if self._isolated is None:
            self._isolated = self.prices[self.pair_item] * self.pair_probs
        return self._isolated

    #: Pair rows converted per block by :meth:`candidate_triples`, bounding
    #: the transient Python lists while keeping the conversion vectorized.
    _TRIPLE_CHUNK = 65_536

    def candidate_triples(self) -> Iterator[Triple]:
        """Yield candidate triples (positive primitive q) in CSR order."""
        for start in range(0, self.num_pairs, self._TRIPLE_CHUNK):
            stop = min(start + self._TRIPLE_CHUNK, self.num_pairs)
            rows, times = np.nonzero(self.pair_probs[start:stop] > 0.0)
            users = self.pair_user[start:stop][rows].tolist()
            items = self.pair_item[start:stop][rows].tolist()
            for user, item, t in zip(users, items, times.tolist()):
                yield Triple(user, item, t)

    # ------------------------------------------------------------------
    # dense (user, class) group index (lazy)
    # ------------------------------------------------------------------
    def _ensure_groups(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        if self._groups is None:
            stride = int(self.item_class.max()) + 1 if self.num_items else 1
            pair_class = self.item_class[self.pair_item]
            keys = self.pair_user * stride + pair_class
            unique, inverse = np.unique(keys, return_inverse=True)
            self._groups = (inverse.astype(np.int64), unique // stride,
                            unique % stride)
        return self._groups

    @property
    def pair_group(self) -> np.ndarray:
        """Dense (user, class) group id of every pair, shape ``(n_pairs,)``."""
        return self._ensure_groups()[0]

    @property
    def group_user(self) -> np.ndarray:
        """User id of every dense group, shape ``(num_groups,)``."""
        return self._ensure_groups()[1]

    @property
    def group_class(self) -> np.ndarray:
        """Class id of every dense group, shape ``(num_groups,)``."""
        return self._ensure_groups()[2]

    @property
    def num_groups(self) -> int:
        """Number of non-empty (user, class) candidate groups."""
        return int(self._ensure_groups()[1].shape[0])

    # ------------------------------------------------------------------
    # group gathers (the RevenueModel hot path)
    # ------------------------------------------------------------------
    def group_arrays(self, group) -> "GroupArrays":
        """Flatten a (user, class) group of triples against the tensors.

        Drop-in replacement for ``GroupArrays.from_group``: probabilities are
        gathered from ``pair_probs`` instead of per-triple dict lookups.
        Triples whose pair is absent from the candidate table contribute the
        primitive probability 0.0, matching the object path.
        """
        from repro.core.vectorized import GroupArrays

        n = len(group)
        users = np.fromiter((z[0] for z in group), dtype=np.int64, count=n)
        items = np.fromiter((z[1] for z in group), dtype=np.int64, count=n)
        times = np.fromiter((z[2] for z in group), dtype=np.intp, count=n)
        if self.num_pairs == 0:
            # Matches the object path: absent pairs have probability zero.
            primitives = np.zeros(n)
        else:
            rows = self.pair_rows(users, items)
            found = rows >= 0
            primitives = np.where(
                found,
                self.pair_probs[np.where(found, rows, 0), times],
                0.0,
            )
        items = items.astype(np.intp, copy=False)
        return GroupArrays(
            times=times,
            items=items,
            prices=self.prices[items, times],
            primitives=primitives,
            betas=self.betas[items],
        )

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def as_instance(self, catalog: Optional[ItemCatalog] = None,
                    name: Optional[str] = None):
        """Wrap the compilation as a columnar-backed ``RevMaxInstance``.

        The returned instance's adoption table is a read-only
        :class:`ColumnarAdoptionTable` view over ``pair_probs`` -- no pair
        dict exists -- and its ``compiled()`` returns this object for free.
        """
        from repro.core.problem import RevMaxInstance

        instance = RevMaxInstance(
            num_users=self.num_users,
            catalog=catalog if catalog is not None
            else ItemCatalog.from_assignment(self.item_class.tolist()),
            horizon=self.horizon,
            display_limit=self.display_limit,
            prices=self.prices,
            capacities=self.capacities,
            betas=self.betas,
            adoption=ColumnarAdoptionTable(self),
            name=name if name is not None else self.name,
        )
        instance._compiled = self
        return instance

    def to_instance(self, catalog: Optional[ItemCatalog] = None,
                    name: Optional[str] = None):
        """Materialize a plain dict-backed ``RevMaxInstance`` (object path)."""
        from repro.core.problem import AdoptionTable, RevMaxInstance

        table = AdoptionTable(self.horizon)
        users = self.pair_user.tolist()
        items = self.pair_item.tolist()
        for row, (user, item) in enumerate(zip(users, items)):
            table.set(user, item, self.pair_probs[row].copy())
        return RevMaxInstance(
            num_users=self.num_users,
            catalog=catalog if catalog is not None
            else ItemCatalog.from_assignment(self.item_class.tolist()),
            horizon=self.horizon,
            display_limit=self.display_limit,
            prices=self.prices,
            capacities=self.capacities,
            betas=self.betas,
            adoption=table,
            name=name if name is not None else self.name,
        )


# Import placed after CompiledInstance so the AdoptionTable base class (which
# problem.py defines without importing this module) is available; compiled.py
# is imported lazily from problem.py, never the other way at module load.
from repro.core.problem import AdoptionTable  # noqa: E402


class ColumnarAdoptionTable(AdoptionTable):
    """Read-only ``AdoptionTable`` view over a compiled candidate table.

    Implements the full query interface of the dict-backed table against the
    CSR tensors, so columnar instances flow through every existing algorithm
    unchanged -- without ever materializing a per-pair dict.  Iteration
    orders follow the CSR layout (users ascending, items ascending within a
    user) rather than dict-insertion order.  Mutation is rejected.
    """

    def __init__(self, compiled: CompiledInstance) -> None:
        super().__init__(compiled.horizon)
        self.compiled = compiled

    def set(self, user: int, item: int, probabilities) -> None:
        raise TypeError(
            "ColumnarAdoptionTable is read-only; materialize a mutable copy "
            "with CompiledInstance.to_instance() first"
        )

    def __len__(self) -> int:
        return self.compiled.num_pairs

    def __contains__(self, pair: Tuple[int, int]) -> bool:
        user, item = pair
        return self.compiled.pair_row(int(user), int(item)) >= 0

    def get(self, user: int, item: int) -> Optional[np.ndarray]:
        row = self.compiled.pair_row(int(user), int(item))
        if row < 0:
            return None
        return self.compiled.pair_probs[row]

    def probability(self, user: int, item: int, t: int) -> float:
        row = self.compiled.pair_row(int(user), int(item))
        if row < 0:
            return 0.0
        return float(self.compiled.pair_probs[row, t])

    def items_for_user(self, user: int) -> List[int]:
        compiled = self.compiled
        if user < 0 or user >= compiled.num_users:
            return []
        start, stop = compiled.user_ptr[user], compiled.user_ptr[user + 1]
        return compiled.pair_item[start:stop].tolist()

    def users(self) -> List[int]:
        return np.flatnonzero(np.diff(self.compiled.user_ptr)).tolist()

    def pairs(self) -> Iterator[Tuple[int, int]]:
        return iter(zip(self.compiled.pair_user.tolist(),
                        self.compiled.pair_item.tolist()))

    def positive_triples(self) -> Iterator[Triple]:
        return self.compiled.candidate_triples()

    def num_positive_triples(self) -> int:
        return self.compiled.num_candidate_triples()
