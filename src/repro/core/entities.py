"""Basic entities of the REVMAX model.

The paper works with three kinds of objects:

* *users* and *items*, identified here by dense integer ids ``0..n-1``;
* *item classes* grouping items that compete with one another (smartphones,
  tablets, ...); items in the same class are mutually exclusive within the
  horizon;
* *recommendation triples* ``(user, item, time)`` -- the atoms a strategy is
  built from.  A strategy is a set of triples.

Only light-weight containers live in this module; all behaviour (revenue,
constraints, algorithms) is layered on top of them elsewhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, NamedTuple, Optional, Sequence

__all__ = ["Triple", "ItemMeta", "UserMeta", "ItemCatalog"]


class Triple(NamedTuple):
    """A single recommendation: item ``item`` shown to ``user`` at time ``t``.

    Time steps are 0-based internally (``0 .. T-1``); the paper uses 1-based
    ``[T] = {1, .., T}``.  All public APIs of this package use 0-based times.
    """

    user: int
    item: int
    t: int

    def __str__(self) -> str:
        return f"(u{self.user}, i{self.item}, t{self.t})"


@dataclass(frozen=True)
class ItemMeta:
    """Descriptive metadata for an item.

    Attributes:
        item_id: dense integer id of the item.
        name: optional human-readable label.
        item_class: integer id of the competition class the item belongs to.
        base_price: reference (undiscounted) price used by dataset generators.
    """

    item_id: int
    item_class: int
    name: str = ""
    base_price: float = 0.0


@dataclass(frozen=True)
class UserMeta:
    """Descriptive metadata for a user."""

    user_id: int
    name: str = ""


@dataclass
class ItemCatalog:
    """A catalog mapping items to competition classes.

    The catalog is the authoritative source of the ``C(i)`` function used in
    Definition 1 of the paper.  It also supports the "singleton classes"
    experimental setting (class size = 1) by :meth:`singleton`.

    Attributes:
        item_class: ``item_class[i]`` is the class id of item ``i``.
    """

    item_class: List[int]
    class_names: Dict[int, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if any(c < 0 for c in self.item_class):
            raise ValueError("class ids must be non-negative")

    @property
    def num_items(self) -> int:
        """Number of items in the catalog."""
        return len(self.item_class)

    @property
    def num_classes(self) -> int:
        """Number of distinct classes."""
        return len(set(self.item_class))

    def class_of(self, item: int) -> int:
        """Return ``C(item)``, the competition class of ``item``."""
        return self.item_class[item]

    def members(self, class_id: int) -> List[int]:
        """Return all items belonging to ``class_id``."""
        return [i for i, c in enumerate(self.item_class) if c == class_id]

    def class_sizes(self) -> Dict[int, int]:
        """Return a mapping ``class_id -> number of member items``."""
        sizes: Dict[int, int] = {}
        for c in self.item_class:
            sizes[c] = sizes.get(c, 0) + 1
        return sizes

    def same_class(self, item_a: int, item_b: int) -> bool:
        """Return True if the two items compete (belong to the same class)."""
        return self.item_class[item_a] == self.item_class[item_b]

    @classmethod
    def singleton(cls, num_items: int) -> "ItemCatalog":
        """Build a catalog where every item is its own class.

        This is the "class size = 1" setting of Figures 1(c,d) and 3.
        """
        return cls(item_class=list(range(num_items)))

    @classmethod
    def from_assignment(cls, assignment: Sequence[int],
                        class_names: Optional[Dict[int, str]] = None) -> "ItemCatalog":
        """Build a catalog from an explicit item -> class assignment."""
        return cls(item_class=list(assignment), class_names=dict(class_names or {}))


def as_triples(raw: Iterable) -> List[Triple]:
    """Coerce an iterable of 3-sequences into :class:`Triple` objects."""
    return [Triple(int(u), int(i), int(t)) for (u, i, t) in raw]
