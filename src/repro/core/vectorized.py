"""NumPy-backed revenue kernels: the vectorized engine behind ``RevenueModel``.

The paper's algorithms owe their practicality to cheap marginal-revenue
evaluations (two-level heaps + lazy forward, §5); the evaluation itself is
the complementary lever.  This module re-implements the group-level revenue
quantities of Definitions 1-3 on NumPy arrays:

* a (user, class) group of ``n`` triples is flattened into columnar arrays
  (:class:`GroupArrays`): times, items, prices ``p(i_j, t_j)``, primitive
  probabilities ``q(u, i_j, t_j)`` and saturation factors ``beta_{i_j}``;
* the pairwise time-difference matrix ``delta[j, k] = t_j - t_k`` drives both
  the memory terms (Equation 1) -- a masked sum of ``1 / delta`` rows -- and
  the competition mask of Definition 1, whose survival products are a masked
  row-wise product of ``1 - q_k``;
* the group revenue is the dot product of prices and dynamic probabilities.

The kernels are exact re-implementations, not approximations: they perform
the same arithmetic as the pure-Python reference in
:mod:`repro.core.revenue`, so the two backends agree to floating-point
round-off (enforced by ``tests/test_vectorized.py``).

Backend selection
-----------------
``RevenueModel`` picks its kernel through :func:`resolve_backend`:

* an explicit ``backend="numpy"`` / ``backend="python"`` argument wins;
* otherwise the process-wide default applies -- settable with
  :func:`set_default_backend` or the ``REPRO_REVENUE_BACKEND`` environment
  variable, and ``"numpy"`` out of the box.

The pure-Python backend is kept both as the executable specification the
vectorized kernels are tested against and as a fallback for debugging
(pure-Python stack traces point at the exact term that misbehaves).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.entities import Triple
from repro.core.problem import RevMaxInstance

__all__ = [
    "BACKENDS",
    "BACKEND_ENV_VAR",
    "GroupArrays",
    "get_default_backend",
    "set_default_backend",
    "resolve_backend",
    "vectorized_memory_terms",
    "vectorized_group_probabilities",
    "vectorized_group_revenue",
    "vectorized_extended_group_revenues",
]

#: Recognised revenue-engine backends.
BACKENDS: Tuple[str, ...] = ("numpy", "python")

#: Environment variable overriding the default backend for a whole process.
BACKEND_ENV_VAR = "REPRO_REVENUE_BACKEND"

_default_backend: Optional[str] = None


def get_default_backend() -> str:
    """Return the backend used when ``RevenueModel`` is given ``backend=None``.

    Resolution order: :func:`set_default_backend` override, then the
    ``REPRO_REVENUE_BACKEND`` environment variable, then ``"numpy"``.
    """
    if _default_backend is not None:
        return _default_backend
    env = os.environ.get(BACKEND_ENV_VAR)
    if env:
        if env not in BACKENDS:
            raise ValueError(
                f"{BACKEND_ENV_VAR}={env!r} is not a known backend; "
                f"expected one of {BACKENDS}"
            )
        return env
    return "numpy"


def set_default_backend(backend: Optional[str]) -> None:
    """Set the process-wide default backend (``None`` restores env/default)."""
    global _default_backend
    if backend is not None and backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
    _default_backend = backend


def resolve_backend(backend: Optional[str]) -> str:
    """Validate an explicit backend choice or fall back to the default."""
    if backend is None:
        return get_default_backend()
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
    return backend


@dataclass(frozen=True)
class GroupArrays:
    """Columnar (NumPy) view of one (user, class) group of triples.

    Attributes:
        times: shape ``(n,)`` integer time steps ``t_j``.
        items: shape ``(n,)`` integer item ids ``i_j``.
        prices: shape ``(n,)`` prices ``p(i_j, t_j)``.
        primitives: shape ``(n,)`` primitive probabilities ``q(u, i_j, t_j)``.
        betas: shape ``(n,)`` saturation factors ``beta_{i_j}``.
    """

    times: np.ndarray
    items: np.ndarray
    prices: np.ndarray
    primitives: np.ndarray
    betas: np.ndarray

    @property
    def size(self) -> int:
        """Number of triples in the group."""
        return int(self.times.shape[0])

    @classmethod
    def from_group(cls, instance: RevMaxInstance,
                   group: Sequence[Triple],
                   compiled=None) -> "GroupArrays":
        """Flatten a group of triples into arrays against an instance.

        The triples must share one user and one item class (as produced by
        :meth:`repro.core.strategy.Strategy.group_of_triple`); this is not
        re-checked here because the hot path cannot afford it.

        When a :class:`~repro.core.compiled.CompiledInstance` is supplied,
        the probabilities are gathered from its contiguous ``pair_probs``
        tensor instead of per-triple adoption-table lookups; the gathered
        values are the identical floats, so results are bit-identical.
        """
        if compiled is not None:
            return compiled.group_arrays(group)
        n = len(group)
        # Positional access (z[0] = user, z[1] = item, z[2] = t) works for both
        # Triple named tuples and plain tuples and is faster than attributes.
        items = np.fromiter((z[1] for z in group), dtype=np.intp, count=n)
        times = np.fromiter((z[2] for z in group), dtype=np.intp, count=n)
        adoption = instance.adoption
        primitives = np.fromiter(
            (adoption.probability(z[0], z[1], z[2]) for z in group),
            dtype=np.float64,
            count=n,
        )
        return cls(
            times=times,
            items=items,
            prices=instance.prices[items, times],
            primitives=primitives,
            betas=instance.betas[items],
        )


def _memory_from_deltas(delta: np.ndarray, earlier: np.ndarray) -> np.ndarray:
    """Memory terms given the pairwise time differences and their sign mask."""
    inverse = np.divide(1.0, delta, out=np.zeros_like(delta), where=earlier)
    return inverse.sum(axis=1)


def _ordered_dot(prices: np.ndarray, probabilities: np.ndarray) -> np.ndarray:
    """Price-weighted revenue reduction with a replicable accumulation order.

    ``prices @ probabilities`` delegates to BLAS, whose accumulation order is
    implementation-defined and varies with backend and vector length.  The
    kernel tier (:mod:`repro.core.kernels`) must reproduce every reduction bit
    for bit, so revenue dots go through ``np.add.reduce`` over the elementwise
    product instead: that is NumPy's pairwise summation, a deterministic tree
    the native kernels replicate exactly.
    """
    return np.add.reduce(prices * probabilities, axis=-1)


def vectorized_memory_terms(times: np.ndarray) -> np.ndarray:
    """Memory terms ``M_S(u, i, t_j)`` for every triple of a group (Eq. 1).

    Args:
        times: shape ``(n,)`` times of the group's triples.

    Returns:
        Shape ``(n,)`` array whose ``j``-th entry is
        ``sum over k with t_k < t_j of 1 / (t_j - t_k)``.
    """
    if times.shape[0] == 0:
        return np.zeros(0)
    delta = (times[:, None] - times[None, :]).astype(np.float64)
    return _memory_from_deltas(delta, delta > 0.0)


def vectorized_group_probabilities(arrays: GroupArrays) -> np.ndarray:
    """Dynamic adoption probabilities ``q_S`` of every triple (Definition 1).

    Vectorizes, for all ``n`` triples of the group at once,

    ``q_S(u, i_j, t_j) = q(u, i_j, t_j) * beta_{i_j} ** M_j * prod_k (1 - q_k)``

    where ``k`` ranges over the *competing* triples of the group: those at a
    strictly earlier time, plus same-time triples of a different item.
    """
    n = arrays.size
    if n == 0:
        return np.zeros(0)
    delta = (arrays.times[:, None] - arrays.times[None, :]).astype(np.float64)
    earlier = delta > 0.0
    memory = _memory_from_deltas(delta, earlier)
    # beta ** 0 == 1 exactly (also for beta == 0), matching the scalar kernel.
    saturation = np.power(arrays.betas, memory)
    competes = earlier | (
        (delta == 0.0) & (arrays.items[:, None] != arrays.items[None, :])
    )
    survival = np.where(competes, 1.0 - arrays.primitives[None, :], 1.0).prod(axis=1)
    probabilities = arrays.primitives * saturation * survival
    # Definition 1 short-circuits zero primitives; keep exact zeros.
    return np.where(arrays.primitives > 0.0, probabilities, 0.0)


def vectorized_group_revenue(instance: RevMaxInstance,
                             group: Sequence[Triple],
                             compiled=None) -> float:
    """Expected revenue of one (user, class) group (NumPy kernel).

    Drop-in equivalent of :func:`repro.core.revenue.group_revenue`.  Pass
    the instance's :class:`~repro.core.compiled.CompiledInstance` to gather
    group arrays from the columnar tensors.
    """
    if not group:
        return 0.0
    arrays = GroupArrays.from_group(instance, group, compiled)
    probabilities = vectorized_group_probabilities(arrays)
    return float(_ordered_dot(arrays.prices, probabilities))


def vectorized_extended_group_revenues(
    instance: RevMaxInstance,
    group: Sequence[Triple],
    candidates: Sequence[Triple],
    compiled=None,
) -> np.ndarray:
    """Revenues of ``group + [c]`` for every candidate ``c``, in one pass.

    This is the batched-scoring kernel behind
    :meth:`repro.core.revenue.RevenueModel.marginal_revenue_batch`: all
    candidates must share the base group's user and item class (each candidate
    extends the *same* group independently; candidates do not interact with
    each other).  Instead of launching one O(n^2) pairwise kernel per
    candidate, a single (m, n) cross matrix of time differences yields, for
    every candidate at once,

    * the extra memory ``1 / (t_k - t_c)`` the candidate adds to each base
      triple scheduled after it, and the candidate's own memory term;
    * the extra competition factor ``1 - q_c`` the candidate applies to base
      triples it competes with, and the candidate's own survival product.

    Returns:
        Shape ``(m,)`` array; entry ``j`` equals
        ``group_revenue(instance, list(group) + [candidates[j]])``.
    """
    m = len(candidates)
    if m == 0:
        return np.zeros(0)
    cand = GroupArrays.from_group(instance, candidates, compiled)
    if not group:
        # Singleton groups: no memory, no competition.
        return cand.prices * cand.primitives

    base = GroupArrays.from_group(instance, group, compiled)
    base_memory = vectorized_memory_terms(base.times)
    delta_bb = (base.times[:, None] - base.times[None, :]).astype(np.float64)
    competes_bb = (delta_bb > 0.0) | (
        (delta_bb == 0.0) & (base.items[:, None] != base.items[None, :])
    )
    base_survival = np.where(
        competes_bb, 1.0 - base.primitives[None, :], 1.0
    ).prod(axis=1)

    # Cross matrix: delta[j, k] = t_cand_j - t_base_k.
    delta = (cand.times[:, None] - base.times[None, :]).astype(np.float64)
    same_time = delta == 0.0
    different_item = cand.items[:, None] != base.items[None, :]

    # --- contribution of the base triples under the extended group --------
    # A base triple k gains memory 1/(t_k - t_c_j) when the candidate is
    # strictly earlier, and a survival factor (1 - q_c_j) when the candidate
    # competes with it (earlier, or same time with a different item).
    extra_memory = np.divide(
        -1.0, delta, out=np.zeros_like(delta), where=delta < 0.0
    )
    saturation = np.power(base.betas[None, :], base_memory[None, :] + extra_memory)
    cand_competes = (delta < 0.0) | (same_time & different_item)
    extra_survival = np.where(cand_competes, 1.0 - cand.primitives[:, None], 1.0)
    base_probabilities = (
        base.primitives[None, :] * saturation
        * base_survival[None, :] * extra_survival
    )
    base_probabilities = np.where(
        base.primitives[None, :] > 0.0, base_probabilities, 0.0
    )
    base_contribution = _ordered_dot(base_probabilities, base.prices[None, :])

    # --- contribution of the candidate itself ----------------------------
    cand_memory = _memory_from_deltas(delta, delta > 0.0)
    base_competes = (delta > 0.0) | (same_time & different_item)
    cand_survival = np.where(
        base_competes, 1.0 - base.primitives[None, :], 1.0
    ).prod(axis=1)
    cand_probabilities = (
        cand.primitives * np.power(cand.betas, cand_memory) * cand_survival
    )
    cand_probabilities = np.where(cand.primitives > 0.0, cand_probabilities, 0.0)

    return base_contribution + cand.prices * cand_probabilities
