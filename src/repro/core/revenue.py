"""The dynamic revenue model of the paper (Definitions 1-3).

This module implements, for the *exact price* model:

* the memory term ``M_S(u, i, t)`` (Equation 1),
* the dynamic adoption probability ``q_S(u, i, t)`` (Definition 1),
* the expected revenue ``Rev(S)`` of a strategy (Definition 2),
* the marginal revenue ``Rev_S(z) = Rev(S + z) - Rev(S)`` of adding a triple
  (Definition 3).

Because saturation and competition only couple triples that share the same
*user* and the same *item class*, every quantity decomposes over
(user, class) groups.  All functions below therefore work on a single group
at a time; :class:`RevenueModel` stitches the groups together and is the
object every algorithm talks to.

Times are 0-based (``0 .. T-1``).  Memory at a time step only counts strictly
earlier recommendations, which reproduces the paper's convention that
``X_S(u, i, 1) = 0`` at the first step.

The module-level functions are the pure-Python *reference* kernels.
:class:`RevenueModel` dispatches between them and the NumPy-vectorized
kernels of :mod:`repro.core.vectorized` via its ``backend`` argument, and
layers an incremental per-group cache on top; see the class docstring for
the exact contract.
"""

from __future__ import annotations

from functools import partial
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.core.entities import Triple
from repro.core.problem import RevMaxInstance
from repro.core.strategy import Strategy
from repro.core.vectorized import (
    resolve_backend,
    vectorized_group_revenue,
)

__all__ = [
    "memory_term",
    "group_dynamic_probability",
    "group_revenue",
    "adaptive_group_revenue",
    "kernel_for_backend",
    "VECTORIZE_MIN_GROUP",
    "RevenueModel",
]


def memory_term(group: Sequence[Triple], t: int) -> float:
    """Compute ``M_S(u, i, t)`` for a (user, class) group (Equation 1).

    Args:
        group: the triples of the same user and item class that are in the
            strategy (the target triple itself may or may not be included --
            it never contributes because only strictly earlier times count).
        t: the time step of the target triple.

    Returns:
        The memory ``sum over (u, j, tau) in group, tau < t of 1 / (t - tau)``.
    """
    total = 0.0
    for other in group:
        if other.t < t:
            total += 1.0 / (t - other.t)
    return total


def group_dynamic_probability(
    instance: RevMaxInstance,
    group: Sequence[Triple],
    target: Triple,
) -> float:
    """Compute ``q_S(u, i, t)`` for ``target`` given its (user, class) group.

    ``group`` must contain every strategy triple sharing the target's user and
    item class, *including the target itself* (Definition 1 sets the dynamic
    probability of absent triples to zero; callers that want that behaviour
    should check membership before calling).

    The formula (Definition 1) multiplies the primitive probability by

    * the saturation discount ``beta_i ** M_S(u, i, t)``,
    * ``(1 - q(u, j, t))`` for every *other* same-class item recommended at
      the same time, and
    * ``(1 - q(u, j, tau))`` for every same-class recommendation made at an
      earlier time (including earlier recommendations of the target item).
    """
    user, item, t = target
    primitive = instance.probability(user, item, t)
    if primitive <= 0.0:
        return 0.0
    beta = instance.beta(item)
    memory = memory_term(group, t)
    saturation = beta ** memory if memory > 0.0 else 1.0
    survival = 1.0
    for other in group:
        if other == target:
            continue
        if other.t < t or (other.t == t and other.item != item):
            survival *= 1.0 - instance.probability(other.user, other.item, other.t)
    return primitive * saturation * survival


def group_revenue(instance: RevMaxInstance, group: Sequence[Triple]) -> float:
    """Expected revenue contributed by one (user, class) group of triples."""
    total = 0.0
    for triple in group:
        probability = group_dynamic_probability(instance, group, triple)
        total += instance.price(triple.item, triple.t) * probability
    return total


#: Group size from which the vectorized kernel beats the scalar loops; below
#: it, array construction overhead dominates the O(n^2) arithmetic (measured
#: crossover is ~9 triples on CPython 3.11 / NumPy 2.x).
VECTORIZE_MIN_GROUP = 10


def adaptive_group_revenue(instance: RevMaxInstance,
                           group: Sequence[Triple],
                           compiled=None) -> float:
    """The "numpy" backend kernel: vectorize dense groups, loop over tiny ones.

    Both branches implement the identical arithmetic of Definitions 1-2, so
    the dispatch is invisible apart from sub-1e-12 round-off differences.
    The optional compiled instance feeds the vectorized branch its group
    gathers from contiguous tensors (same floats, bit-identical results).
    """
    if len(group) < VECTORIZE_MIN_GROUP:
        return group_revenue(instance, group)
    return vectorized_group_revenue(instance, group, compiled)


def kernel_for_backend(backend: Optional[str]):
    """Map a backend name (or ``None`` for the default) to its revenue kernel.

    The single place the backend-to-kernel mapping is encoded; used by
    :class:`RevenueModel` and by callers that evaluate groups without a model
    (e.g. the per-group enumeration in :mod:`repro.algorithms.group_dp`).
    """
    return (
        adaptive_group_revenue
        if resolve_backend(backend) == "numpy"
        else group_revenue
    )


class RevenueModel:
    """Evaluator of ``Rev(S)`` and marginal revenues for a fixed instance.

    All REVMAX algorithms in :mod:`repro.algorithms` are written against this
    class, so alternative revenue semantics (the R-REVMAX effective
    probability of Definition 4, or the random-price Taylor approximation of
    §7) can be swapped in by subclassing and overriding
    :meth:`group_revenue`.

    Two engine knobs sit behind the unchanged interface:

    * ``backend`` selects the group-revenue kernel -- ``"numpy"`` (the
      vectorized kernels of :mod:`repro.core.vectorized`, the default) or
      ``"python"`` (the reference scalar loops of this module).  ``None``
      picks the process-wide default (``REPRO_REVENUE_BACKEND`` /
      :func:`repro.core.vectorized.set_default_backend`).  The numpy backend
      dispatches adaptively: groups smaller than
      :data:`VECTORIZE_MIN_GROUP` run the scalar loops (array-construction
      overhead would dominate), larger groups run the broadcasting kernel.
    * ``cache`` enables the *incremental group cache*: group revenues are
      memoised keyed on the group's membership (a frozenset of triples), so
      a marginal-revenue call recomputes only the extended "after" group and
      reuses the unchanged "before" value -- and once the triple is actually
      added, the "after" value becomes the next call's "before" hit.

    Cache-invalidation contract: there is none to perform.  Keys are the
    group membership itself and the instance is immutable, so an entry can
    never go stale -- mutating a :class:`Strategy` simply makes subsequent
    lookups use different keys.  :meth:`clear_cache` exists purely to bound
    memory; when the cache exceeds ``max_cache_entries`` it is cleared
    wholesale (entries are cheap to recompute and a wholesale clear keeps
    the bookkeeping O(1)).

    Args:
        instance: the REVMAX instance to evaluate (treated as immutable).
        backend: ``"numpy"``, ``"python"`` or ``None`` (process default).
        cache: enable the incremental group cache (default ``True``).
            ``RevenueModel(instance, backend="python", cache=False)``
            reproduces the original pure-Python engine exactly.
        max_cache_entries: memory bound on the number of memoised groups.
        compiled: feed the numpy kernels their group gathers from the
            instance's columnar compilation (:mod:`repro.core.compiled`).
            ``None``/``True`` compile lazily (cached on the instance) when
            the backend is numpy; ``False`` keeps the object path (the
            pre-compilation engine, for benchmarks and debugging).  The
            python backend never compiles -- it stays the executable
            specification of the object layout.
    """

    def __init__(self, instance: RevMaxInstance, backend: Optional[str] = None,
                 cache: bool = True, max_cache_entries: int = 1_000_000,
                 compiled: Optional[bool] = None) -> None:
        self._instance = instance
        self._backend = resolve_backend(backend)
        self._compiled = (
            instance.compiled()
            if self._backend == "numpy" and compiled is not False
            else None
        )
        if self._compiled is not None:
            self._kernel = partial(adaptive_group_revenue,
                                   compiled=self._compiled)
        else:
            self._kernel = kernel_for_backend(self._backend)
        self._cache: Optional[Dict[FrozenSet[Triple], float]] = {} if cache else None
        self._max_cache_entries = int(max_cache_entries)
        self._evaluations = 0
        self._cache_hits = 0
        self._lookups = 0
        # The grouped batch path assumes the reference revenue decomposition;
        # subclasses that override the group or marginal semantics (e.g. the
        # R-REVMAX effective model) fall back to per-triple scalar calls.
        cls = type(self)
        self._reference_semantics = (
            cls.group_revenue is RevenueModel.group_revenue
            and cls.marginal_revenue is RevenueModel.marginal_revenue
        )

    @property
    def instance(self) -> RevMaxInstance:
        """The REVMAX instance being evaluated."""
        return self._instance

    @property
    def backend(self) -> str:
        """The group-revenue kernel in use (``"numpy"`` or ``"python"``)."""
        return self._backend

    @property
    def evaluations(self) -> int:
        """Number of group revenues actually *computed* (profiling aid).

        The counter measures work done by the revenue kernel: it increments
        once per :meth:`group_revenue` call that reaches the kernel and **not**
        on cache hits.  This keeps the lazy-forward / two-level-heap ablation
        benchmarks meaningful -- they compare how many evaluations each
        algorithm *needs*, which must not be inflated by lookups the cache
        answered for free.  With ``cache=False`` every call reaches the kernel
        and the counter equals the number of ``group_revenue`` calls (the
        historical semantics).  Cache hits are reported separately by
        :attr:`cache_hits`.
        """
        return self._evaluations

    @property
    def cache_hits(self) -> int:
        """Number of :meth:`group_revenue` calls answered from the cache."""
        return self._cache_hits

    @property
    def lookups(self) -> int:
        """Number of group-revenue values the *caller requested*.

        This is the quantity an algorithmic device such as lazy forward
        reduces, whereas :attr:`evaluations` is the number the engine actually
        had to compute.  The ablation benchmarks compare lookups so that their
        verdict on the algorithms is independent of the engine's cache.

        Counting rules: every :meth:`group_revenue` call is one lookup (so a
        scalar :meth:`marginal_revenue` costs two -- before and after), and a
        :meth:`marginal_revenue_batch` over ``k`` not-yet-selected candidates
        costs exactly ``k`` lookups -- one per candidate scored, regardless of
        how the engine buckets the batch internally.  Because the batch path
        shares each bucket's "before" value instead of requesting it per
        candidate, ``lookups`` is **not** in general equal to
        ``evaluations + cache_hits`` once batched scoring is in play.
        """
        return self._lookups

    def cache_info(self) -> Dict[str, int]:
        """Return cache statistics: size, hits and kernel evaluations."""
        return {
            "size": len(self._cache) if self._cache is not None else 0,
            "hits": self._cache_hits,
            "evaluations": self._evaluations,
        }

    def clear_cache(self) -> None:
        """Drop every memoised group revenue (frees memory; never required)."""
        if self._cache is not None:
            self._cache.clear()

    def reset_counters(self) -> None:
        """Reset the evaluation, cache-hit and lookup counters."""
        self._evaluations = 0
        self._cache_hits = 0
        self._lookups = 0

    def native_compatible(self) -> bool:
        """True when the native admit loop can stand in for this model.

        The kernel-tier selection loop (:mod:`repro.core.kernels`) replays
        the *reference* scoring semantics against compiled tensors,
        including the cache-history-dependent counter accounting.  That
        replica is faithful only for an unsubclassed reference model on the
        numpy backend with a live compilation and the group cache enabled;
        anything else falls back to the Python loop.
        """
        self._refresh_compiled()
        return (
            self._reference_semantics
            and self._backend == "numpy"
            and self._compiled is not None
            and self._cache is not None
        )

    def absorb_counts(self, evaluations: int = 0, cache_hits: int = 0,
                      lookups: int = 0) -> None:
        """Fold counters of work done on this model's behalf elsewhere.

        The sharded solver (:mod:`repro.shard`) scores candidates in worker
        processes, each with its own shard-local model; the coordinator folds
        their counters back here so ``evaluations`` / ``lookups`` keep
        meaning "work this solve performed" whether or not it was sharded.
        """
        self._evaluations += int(evaluations)
        self._cache_hits += int(cache_hits)
        self._lookups += int(lookups)

    # ------------------------------------------------------------------
    # group-level primitives (override points)
    # ------------------------------------------------------------------
    def group_revenue(self, group: Sequence[Triple]) -> float:
        """Expected revenue of one (user, class) group (memoised)."""
        self._lookups += 1
        return self._group_revenue_internal(group)

    def _refresh_compiled(self) -> None:
        """Stop using compiled tensors once the adoption table is mutated.

        The compiled view is version-checked against the adoption table
        (one attribute read and an integer compare per evaluation).  On the
        first staleness hit the model permanently falls back to the object
        path -- reading the live table like the pre-compilation engine --
        rather than recompiling, which would cost O(n_pairs) per mutation
        round and turn interleaved mutate/evaluate workloads quadratic.
        Models built after the mutations compile fresh tensors again.  (The
        group *cache* intentionally keeps its no-invalidation contract: it
        assumes the instance is treated as immutable; disable it when
        mutating tables mid-flight.)
        """
        compiled = self._compiled
        if compiled is None:
            return
        version = getattr(self._instance.adoption, "_version", 0)
        if compiled.source_version != version:
            self._compiled = None
            self._kernel = kernel_for_backend(self._backend)

    def _group_revenue_internal(self, group: Sequence[Triple]) -> float:
        """Memoised group revenue without touching the lookup counter.

        The batch path uses this for the shared per-bucket "before" value,
        which is engine bookkeeping rather than a caller-requested score.
        """
        self._refresh_compiled()
        if self._cache is None:
            self._evaluations += 1
            return self._kernel(self._instance, group)
        key = frozenset(group)
        cached = self._cache.get(key)
        if cached is not None:
            self._cache_hits += 1
            return cached
        self._evaluations += 1
        value = self._kernel(self._instance, group)
        self._cache_store(key, value)
        return value

    def _cache_store(self, key: FrozenSet[Triple], value: float) -> None:
        """Insert into the cache, clearing wholesale at the memory bound."""
        if len(self._cache) >= self._max_cache_entries:
            self._cache.clear()
        self._cache[key] = value

    # ------------------------------------------------------------------
    # strategy-level quantities
    # ------------------------------------------------------------------
    def dynamic_probability(self, strategy: Strategy, triple: Triple) -> float:
        """Return ``q_S(u, i, t)`` (zero if the triple is not in the strategy)."""
        triple = Triple(*triple)
        if triple not in strategy:
            return 0.0
        group = strategy.group_of_triple(triple)
        return group_dynamic_probability(self._instance, group, triple)

    def revenue(self, strategy: Strategy) -> float:
        """Return ``Rev(S)`` (Definition 2)."""
        total = 0.0
        for _, group in strategy.groups():
            total += self.group_revenue(group)
        return total

    def revenue_of_triples(self, triples: Iterable[Triple]) -> float:
        """Return ``Rev(S)`` for a plain iterable of triples."""
        strategy = Strategy(self._instance.catalog, triples)
        return self.revenue(strategy)

    def marginal_revenue(self, strategy: Strategy, triple: Triple) -> float:
        """Return ``Rev_S(z) = Rev(S + z) - Rev(S)`` (Definition 3).

        Only the (user, class) group of ``z`` changes when ``z`` is added, so
        the difference is evaluated locally on that group.  With the group
        cache enabled the "before" value is almost always a hit (the group
        was evaluated by an earlier call against the same strategy), so a
        marginal-revenue call typically costs one kernel evaluation, not two.
        """
        triple = Triple(*triple)
        if triple in strategy:
            return 0.0
        group = strategy.group_of_triple(triple)
        before = self.group_revenue(group) if group else 0.0
        after = self.group_revenue(group + [triple])
        return after - before

    def marginal_revenue_batch(
        self, strategy: Strategy, triples: Sequence[Triple]
    ) -> List[float]:
        """Marginal revenues of many candidates against one strategy.

        Semantically identical to calling :meth:`marginal_revenue` per triple
        (triples already in the strategy score 0.0), but executed per
        (user, class) *bucket*: the shared "before" group revenue is fetched
        once per bucket, and the "after" revenues of all of a bucket's
        candidates are evaluated by
        :func:`repro.core.vectorized.vectorized_extended_group_revenues` in a
        single broadcasted pass (numpy backend, when the bucket is large
        enough to amortize the launch).  This is the path the heap seeding
        and lazy-refresh steps of
        :class:`repro.core.selection.LazyGreedySelector` run on.

        Counters: a batch over ``k`` not-yet-selected candidates adds exactly
        ``k`` to :attr:`lookups`; :attr:`evaluations` grows only by the kernel
        rows actually computed (cache-answered rows count as cache hits).

        Subclasses that override :meth:`group_revenue` or
        :meth:`marginal_revenue` automatically fall back to the scalar
        per-triple path, so alternative revenue semantics stay correct.
        """
        triples = [Triple(*z) for z in triples]
        if not self._reference_semantics:
            return [self.marginal_revenue(strategy, z) for z in triples]
        results = [0.0] * len(triples)
        buckets: Dict[Tuple[int, int], List[int]] = {}
        for index, triple in enumerate(triples):
            if triple in strategy:
                continue
            key = (triple.user, self._instance.class_of(triple.item))
            buckets.setdefault(key, []).append(index)
        for (user, class_id), indices in buckets.items():
            group = strategy.group(user, class_id)
            before = self._group_revenue_internal(group) if group else 0.0
            afters = self._extended_group_revenues(
                group, [triples[index] for index in indices]
            )
            for index, after in zip(indices, afters):
                results[index] = after - before
            self._lookups += len(indices)
        return results

    def _extended_group_revenues(
        self, group: List[Triple], candidates: List[Triple]
    ) -> List[float]:
        """Cache-aware ``group_revenue(group + [c])`` for each candidate.

        Cached extensions are answered from the memoised groups; the misses
        go to the broadcasted kernel in one launch when the bucket carries
        enough arithmetic (the same ``VECTORIZE_MIN_GROUP`` work threshold as
        the adaptive scalar dispatch, scaled by the batch size), otherwise to
        the backend's scalar kernel per candidate.
        """
        self._refresh_compiled()
        values = [0.0] * len(candidates)
        base_key = frozenset(group) if self._cache is not None else None
        if self._cache is None:
            pending = list(candidates)
            pending_slots = list(range(len(candidates)))
        else:
            pending, pending_slots = [], []
            for slot, candidate in enumerate(candidates):
                cached = self._cache.get(base_key | {candidate})
                if cached is not None:
                    self._cache_hits += 1
                    values[slot] = cached
                else:
                    pending.append(candidate)
                    pending_slots.append(slot)
        if not pending:
            return values
        # One broadcasted launch replaces ``m`` scalar evaluations of
        # O((n+1)^2) pairwise work each; it pays off once that total work
        # clears the same crossover as the adaptive per-group dispatch
        # (whose measured break-even is VECTORIZE_MIN_GROUP triples, i.e.
        # VECTORIZE_MIN_GROUP^2 pairwise terms).  Below it, the scalar
        # kernel avoids the array-construction overhead.
        use_batched_kernel = (
            self._backend == "numpy"
            and len(pending) * (len(group) + 1) ** 2
            >= VECTORIZE_MIN_GROUP ** 2
        )
        if use_batched_kernel:
            # Tier-dispatched: the numpy tier is the reference broadcast
            # kernel, the numba tier its bit-identical njit replica.
            from repro.core.kernels import batched_extended_revenues

            computed = batched_extended_revenues(
                self._instance, group, pending, self._compiled
            )
        else:
            computed = [
                self._kernel(self._instance, group + [candidate])
                for candidate in pending
            ]
        self._evaluations += len(pending)
        for slot, candidate, value in zip(pending_slots, pending, computed):
            value = float(value)
            values[slot] = value
            if self._cache is not None:
                self._cache_store(base_key | {candidate}, value)
        return values

    def marginal_revenue_components(
        self, strategy: Strategy, triple: Triple
    ) -> Tuple[float, float]:
        """Return the (gain, loss) decomposition of Definition 3.

        The *gain* is ``p(i, t) * q_{S+z}(z)``; the *loss* is the (non-positive)
        total change in revenue of the same-class triples scheduled later than
        ``z`` for the same user.  ``gain + loss == marginal_revenue``.
        """
        triple = Triple(*triple)
        group = strategy.group_of_triple(triple)
        extended = group + [triple]
        gain = self._instance.price(triple.item, triple.t) * group_dynamic_probability(
            self._instance, extended, triple
        )
        loss = 0.0
        for other in group:
            before = group_dynamic_probability(self._instance, group, other)
            after = group_dynamic_probability(self._instance, extended, other)
            loss += self._instance.price(other.item, other.t) * (after - before)
        return gain, loss
