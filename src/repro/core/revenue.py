"""The dynamic revenue model of the paper (Definitions 1-3).

This module implements, for the *exact price* model:

* the memory term ``M_S(u, i, t)`` (Equation 1),
* the dynamic adoption probability ``q_S(u, i, t)`` (Definition 1),
* the expected revenue ``Rev(S)`` of a strategy (Definition 2),
* the marginal revenue ``Rev_S(z) = Rev(S + z) - Rev(S)`` of adding a triple
  (Definition 3).

Because saturation and competition only couple triples that share the same
*user* and the same *item class*, every quantity decomposes over
(user, class) groups.  All functions below therefore work on a single group
at a time; :class:`RevenueModel` stitches the groups together and is the
object every algorithm talks to.

Times are 0-based (``0 .. T-1``).  Memory at a time step only counts strictly
earlier recommendations, which reproduces the paper's convention that
``X_S(u, i, 1) = 0`` at the first step.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.entities import Triple
from repro.core.problem import RevMaxInstance
from repro.core.strategy import Strategy

__all__ = [
    "memory_term",
    "group_dynamic_probability",
    "group_revenue",
    "RevenueModel",
]


def memory_term(group: Sequence[Triple], t: int) -> float:
    """Compute ``M_S(u, i, t)`` for a (user, class) group (Equation 1).

    Args:
        group: the triples of the same user and item class that are in the
            strategy (the target triple itself may or may not be included --
            it never contributes because only strictly earlier times count).
        t: the time step of the target triple.

    Returns:
        The memory ``sum over (u, j, tau) in group, tau < t of 1 / (t - tau)``.
    """
    total = 0.0
    for other in group:
        if other.t < t:
            total += 1.0 / (t - other.t)
    return total


def group_dynamic_probability(
    instance: RevMaxInstance,
    group: Sequence[Triple],
    target: Triple,
) -> float:
    """Compute ``q_S(u, i, t)`` for ``target`` given its (user, class) group.

    ``group`` must contain every strategy triple sharing the target's user and
    item class, *including the target itself* (Definition 1 sets the dynamic
    probability of absent triples to zero; callers that want that behaviour
    should check membership before calling).

    The formula (Definition 1) multiplies the primitive probability by

    * the saturation discount ``beta_i ** M_S(u, i, t)``,
    * ``(1 - q(u, j, t))`` for every *other* same-class item recommended at
      the same time, and
    * ``(1 - q(u, j, tau))`` for every same-class recommendation made at an
      earlier time (including earlier recommendations of the target item).
    """
    user, item, t = target
    primitive = instance.probability(user, item, t)
    if primitive <= 0.0:
        return 0.0
    beta = instance.beta(item)
    memory = memory_term(group, t)
    saturation = beta ** memory if memory > 0.0 else 1.0
    survival = 1.0
    for other in group:
        if other == target:
            continue
        if other.t < t or (other.t == t and other.item != item):
            survival *= 1.0 - instance.probability(other.user, other.item, other.t)
    return primitive * saturation * survival


def group_revenue(instance: RevMaxInstance, group: Sequence[Triple]) -> float:
    """Expected revenue contributed by one (user, class) group of triples."""
    total = 0.0
    for triple in group:
        probability = group_dynamic_probability(instance, group, triple)
        total += instance.price(triple.item, triple.t) * probability
    return total


class RevenueModel:
    """Evaluator of ``Rev(S)`` and marginal revenues for a fixed instance.

    All REVMAX algorithms in :mod:`repro.algorithms` are written against this
    class, so alternative revenue semantics (the R-REVMAX effective
    probability of Definition 4, or the random-price Taylor approximation of
    §7) can be swapped in by subclassing and overriding
    :meth:`group_revenue`.
    """

    def __init__(self, instance: RevMaxInstance) -> None:
        self._instance = instance
        self._evaluations = 0

    @property
    def instance(self) -> RevMaxInstance:
        """The REVMAX instance being evaluated."""
        return self._instance

    @property
    def evaluations(self) -> int:
        """Number of group-revenue evaluations performed (profiling aid)."""
        return self._evaluations

    def reset_counters(self) -> None:
        """Reset the evaluation counter."""
        self._evaluations = 0

    # ------------------------------------------------------------------
    # group-level primitives (override points)
    # ------------------------------------------------------------------
    def group_revenue(self, group: Sequence[Triple]) -> float:
        """Expected revenue of one (user, class) group."""
        self._evaluations += 1
        return group_revenue(self._instance, group)

    # ------------------------------------------------------------------
    # strategy-level quantities
    # ------------------------------------------------------------------
    def dynamic_probability(self, strategy: Strategy, triple: Triple) -> float:
        """Return ``q_S(u, i, t)`` (zero if the triple is not in the strategy)."""
        triple = Triple(*triple)
        if triple not in strategy:
            return 0.0
        group = strategy.group_of_triple(triple)
        return group_dynamic_probability(self._instance, group, triple)

    def revenue(self, strategy: Strategy) -> float:
        """Return ``Rev(S)`` (Definition 2)."""
        total = 0.0
        for _, group in strategy.groups():
            total += self.group_revenue(group)
        return total

    def revenue_of_triples(self, triples: Iterable[Triple]) -> float:
        """Return ``Rev(S)`` for a plain iterable of triples."""
        strategy = Strategy(self._instance.catalog, triples)
        return self.revenue(strategy)

    def marginal_revenue(self, strategy: Strategy, triple: Triple) -> float:
        """Return ``Rev_S(z) = Rev(S + z) - Rev(S)`` (Definition 3).

        Only the (user, class) group of ``z`` changes when ``z`` is added, so
        the difference is evaluated locally on that group.
        """
        triple = Triple(*triple)
        if triple in strategy:
            return 0.0
        group = strategy.group_of_triple(triple)
        before = self.group_revenue(group) if group else 0.0
        after = self.group_revenue(group + [triple])
        return after - before

    def marginal_revenue_components(
        self, strategy: Strategy, triple: Triple
    ) -> Tuple[float, float]:
        """Return the (gain, loss) decomposition of Definition 3.

        The *gain* is ``p(i, t) * q_{S+z}(z)``; the *loss* is the (non-positive)
        total change in revenue of the same-class triples scheduled later than
        ``z`` for the same user.  ``gain + loss == marginal_revenue``.
        """
        triple = Triple(*triple)
        group = strategy.group_of_triple(triple)
        extended = group + [triple]
        gain = self._instance.price(triple.item, triple.t) * group_dynamic_probability(
            self._instance, extended, triple
        )
        loss = 0.0
        for other in group:
            before = group_dynamic_probability(self._instance, group, other)
            after = group_dynamic_probability(self._instance, extended, other)
            loss += self._instance.price(other.item, other.t) * (after - before)
        return gain, loss
