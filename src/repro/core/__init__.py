"""Core REVMAX model: entities, instances, strategies, revenue semantics.

This package implements the paper's primary contribution -- the dynamic
revenue model (Definitions 1-4) and its random-price extension (§7) -- on top
of which every algorithm in :mod:`repro.algorithms` is built.
"""

from repro.core.entities import ItemCatalog, ItemMeta, Triple, UserMeta
from repro.core.problem import AdoptionTable, RevMaxInstance
from repro.core.compiled import ColumnarAdoptionTable, CompiledInstance
from repro.core.strategy import Strategy
from repro.core.revenue import RevenueModel, group_dynamic_probability, memory_term
from repro.core.constraints import (
    CapacityConstraint,
    ConstraintChecker,
    ConstraintViolation,
    DisplayConstraint,
)
from repro.core.effective import EffectiveRevenueModel
from repro.core.random_prices import PriceDistribution, TaylorRevenueModel
from repro.core.selection import LazyGreedySelector
from repro.core.vectorized import (
    GroupArrays,
    get_default_backend,
    set_default_backend,
    vectorized_extended_group_revenues,
    vectorized_group_probabilities,
    vectorized_group_revenue,
    vectorized_memory_terms,
)

__all__ = [
    "AdoptionTable",
    "CapacityConstraint",
    "ColumnarAdoptionTable",
    "CompiledInstance",
    "ConstraintChecker",
    "ConstraintViolation",
    "DisplayConstraint",
    "EffectiveRevenueModel",
    "ItemCatalog",
    "ItemMeta",
    "LazyGreedySelector",
    "PriceDistribution",
    "RevMaxInstance",
    "RevenueModel",
    "Strategy",
    "TaylorRevenueModel",
    "Triple",
    "UserMeta",
    "GroupArrays",
    "get_default_backend",
    "group_dynamic_probability",
    "memory_term",
    "set_default_backend",
    "vectorized_extended_group_revenues",
    "vectorized_group_probabilities",
    "vectorized_group_revenue",
    "vectorized_memory_terms",
]
