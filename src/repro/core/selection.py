"""The shared lazy-greedy selection engine of Algorithms 1 and 2.

Every greedy REVMAX solver in the paper -- G-Greedy/GlobalNo (Algorithm 1),
the per-time-step loop of SL-/RL-Greedy (Algorithm 2), and the greedy warm
start of the local-search approximation -- is the *same* submodular
lazy-forward skeleton:

1. **seed** a max-heap frontier with an optimistic priority per candidate
   (the isolated expected revenue ``p(i,t) * q(u,i,t)`` for Algorithm 1,
   the exact marginal revenue for Algorithm 2);
2. **pop** the best candidate; drop it (or its whole (user, item) heap) if a
   constraint rules it out;
3. **refresh** its stored priority lazily when the freshness flag shows the
   candidate's (user, class) group changed since the value was computed --
   valid because stale values upper-bound current marginal revenues under
   submodularity (Minoux's accelerated greedy);
4. **admit** while the marginal revenue stays positive.

:class:`LazyGreedySelector` owns this loop once, parameterised by

* the *frontier*: the two-level heap of §5.1 (one lower heap per
  (user, item) pair) or a single flat addressable heap (ablation);
* the *refresh policy*: lazy forward (default) or eager re-scoring of every
  affected candidate after each admission (ablation);
* the *seeding rule*: :data:`SEED_ISOLATED` or :data:`SEED_MARGINAL`;
* a *selection model* distinct from the *true model* (the GlobalNo baseline
  selects as if ``beta = 1`` but reports true gains);
* optional growth-curve recording and an ``on_admit`` hook.

Candidate scoring is batched: heap seeding and per-group refreshes go
through :meth:`repro.core.revenue.RevenueModel.marginal_revenue_batch`, so a
refresh of one (user, item) group is a single broadcasted kernel pass
sharing the cached "before" group revenue instead of one kernel launch per
candidate time step.

Columnar seeding
----------------
When the caller passes ``candidates=None`` (the whole ground set) and the
configuration is the paper default (isolated seeds, lazy forward, two-level
frontier), seeding skips the per-triple path entirely: the instance is
compiled into contiguous tensors (:mod:`repro.core.compiled`), seed
priorities are the ``(n_pairs, T)`` matrix ``p(i, t) * q(u, i, t)`` computed
in one vectorized pass, and the frontier is a
:class:`repro.heaps.columnar.ColumnarFrontier` bulk-built from those arrays
with lazily materialized lower heaps.  Ablation configurations and explicit
candidate pools fall back to the per-triple seeding loop; both paths select
identical triples (the columnar frontier reproduces the incremental heap's
tie-breaking for the full-ground-set candidate order).

The algorithms in :mod:`repro.algorithms` reduce to paper-logic-only
orchestration on top of this class; the selection mechanics live here.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple, Union

import numpy as np

from repro.core.constraints import ConstraintChecker
from repro.core.entities import Triple
from repro.core.problem import RevMaxInstance
from repro.core.revenue import RevenueModel
from repro.core.strategy import Strategy
from repro.heaps.binary_heap import AddressableMaxHeap
from repro.heaps.columnar import ColumnarFrontier
from repro.heaps.two_level import TwoLevelHeap

__all__ = ["LazyGreedySelector", "SelectionTrace", "SEED_ISOLATED",
           "SEED_MARGINAL", "build_columnar_frontier"]


class SelectionTrace:
    """Record of one greedy selection run, consumed by the dynamic layer.

    The incremental re-solver (:mod:`repro.dynamic.incremental`) replays a
    previous run instead of re-popping the frontier.  What it needs is the
    run's *pop sequence*, split per user:

    * ``events`` -- for each user, the ordered selector-level pops of that
      user's candidates as ``(priority, item, t, admitted)`` rows.  A pop
      the selector answered with a lazy refresh or a display discard is a
      *gate* (``admitted=False``): it admits nothing, but its priority is
      what the rest of the frontier had to beat for the pop to happen, so
      replaying gates reproduces the global interleaving exactly -- even
      when a refresh *raises* a priority (the revenue function is close to
      but not exactly submodular, so that genuinely happens);
    * ``admissions`` -- the ``(triple, gain)`` admissions in global
      admission order (for the supported configuration the gain *is* the
      fresh priority at admission time);
    * ``truncated`` -- the run ended at the non-positive break with
      candidates still in the frontier.  The per-user sequences were cut at
      a *global* condition (entries below the break value might still
      resurrect through a non-submodular refresh), so they cannot be
      replayed user by user; the re-solver falls back to a cold replay.
      Runs that drain their frontier (every candidate admitted or
      discarded -- the common case once display slots fill) record
      complete sequences;
    * ``capped`` -- the run exited at its ``max_selections`` cap with
      candidates still in the frontier.  Generally as unreplayable as a
      break, *except* when the cap is the display-theoretic bound
      ``k * T * |users|``: reaching it means every user's slots are full,
      the unrecorded suffix of every sequence is pure display discards,
      and omitting it changes nothing (the incremental solver relies on
      exactly that);
    * ``capacity_blocked`` -- a capacity constraint fired, coupling users;
      per-user replay is then unsound and the re-solver falls back.
    """

    def __init__(self) -> None:
        self.events: Dict[int, List[Tuple[float, int, int, bool]]] = {}
        self.admissions: List[Tuple[Triple, float]] = []
        self.truncated = False
        self.capped = False
        self.capacity_blocked = False

    def record_admit(self, triple: Triple, gain: float) -> None:
        self.admissions.append((triple, gain))
        self.events.setdefault(triple.user, []).append(
            (gain, triple.item, triple.t, True)
        )

    def record_gate(self, triple: Triple, priority: float) -> None:
        self.events.setdefault(triple.user, []).append(
            (priority, triple.item, triple.t, False)
        )

    def complete(self) -> bool:
        """True when the per-user sequences are replayable in isolation.

        ``capped`` runs are excluded here; a caller whose cap provably
        implies display saturation (see above) may accept them explicitly.
        """
        return not (self.truncated or self.capped or self.capacity_blocked)


def build_columnar_frontier(compiled, strategy: Strategy,
                            allowed_times: Optional[Iterable[int]]
                            ) -> ColumnarFrontier:
    """Bulk-build the isolated-seeded G-Greedy frontier over a compilation.

    One vectorized pass: seed priorities are the compiled
    ``(n_pairs, T)`` isolated-revenue matrix, masked to positive entries
    (submodularity: non-positive seeds can never be admitted), to the
    ``allowed_times`` whitelist (out-of-range times match no candidate,
    exactly like the per-triple path's membership filter), and away from
    triples already in ``strategy``.  Shared by the serial columnar seeding
    and the sharded solver's per-shard workers -- the single definition of
    the seeding rule, so the two paths cannot drift.
    """
    priorities = compiled.isolated_revenues()
    seeded = priorities > 0.0
    if allowed_times is not None:
        mask = np.zeros(compiled.horizon, dtype=bool)
        mask[[t for t in allowed_times if 0 <= t < compiled.horizon]] = True
        seeded &= mask[None, :]
    for triple in strategy:
        row = compiled.pair_row(triple.user, triple.item)
        if row >= 0 and 0 <= triple.t < compiled.horizon:
            seeded[row, triple.t] = False
    return ColumnarFrontier(
        compiled.pair_user, compiled.pair_item, priorities, seeded,
        row_lookup=compiled.pair_row,
    )


class _ZeroFlags(dict):
    """Freshness flags defaulting to 0 (maximally stale isolated seeds)."""

    def __missing__(self, key) -> int:
        return 0


class _FrontierGroupKeys:
    """(user, item) -> live-candidates view backed by a ColumnarFrontier.

    Mirrors the ``Dict[Tuple[int, int], Set[Triple]]`` bookkeeping the
    per-triple seeding path maintains, but reads group membership straight
    from the frontier, so nothing is materialized per candidate.
    """

    def __init__(self, frontier: ColumnarFrontier) -> None:
        self._frontier = frontier

    def get(self, group, default=()):
        members = self._frontier.group_members(group)
        return members if members else set(default)

    def pop(self, group, default=None):
        self._frontier.drop_group(group)
        return default

#: Seed the frontier with isolated expected revenues ``p(i,t) * q(u,i,t)``
#: (line 8 of Algorithm 1).  Cheap (no revenue-model calls) and a valid
#: optimistic bound, so seeded entries start maximally stale (flag 0).
SEED_ISOLATED = "isolated"

#: Seed the frontier with exact marginal revenues against the current
#: strategy (lines 5-8 of Algorithm 2), computed in one batched pass.
#: Seeded entries start fresh.
SEED_MARGINAL = "marginal"


class LazyGreedySelector:
    """Heap-seeding / lazy-refresh / admit loop shared by the greedy solvers.

    One selector instance holds the loop *configuration*; :meth:`select` can
    be called repeatedly against the same models (SL-Greedy calls it once per
    time step, accumulating into one strategy and growth curve).

    Args:
        instance: the REVMAX instance (provides constraints metadata, item
            classes and isolated revenues).
        model: revenue model scoring the selection decisions.
        checker: constraint checker gating admissions (pass one built with
            ``enforce_capacity=False`` for R-REVMAX-style display-only runs).
        true_model: optional model whose marginal revenue is the *reported*
            gain of an admission.  ``None`` (or the selection model itself)
            means the selection priority is the gain -- the normal case;
            GlobalNo passes the true-saturation model here while selecting
            with a saturation-blind one.
        use_lazy_forward: refresh stale priorities only when they surface at
            the top (default) instead of eagerly re-scoring every affected
            candidate after each admission.
        use_two_level_heap: use the two-level frontier of §5.1 (default) or a
            single flat addressable heap.
        seed_priorities: :data:`SEED_ISOLATED` or :data:`SEED_MARGINAL`.
        max_selections: absolute cap on the strategy size (``None``: admit
            until the frontier is exhausted or goes non-positive).
        on_admit: optional ``(triple, gain)`` callback fired after every
            admission (growth-curve hooks beyond the built-in recording).
        use_compiled: allow the columnar fast path when ``select`` is called
            with ``candidates=None`` (default).  ``False`` forces the
            per-triple seeding loop -- the pre-compilation engine, kept for
            ablations and the scalability benchmarks.
        shards: partition users into this many contiguous CSR shards and run
            the selection across worker processes (:mod:`repro.shard`);
            ``0`` means one shard per CPU core and ``"auto"`` lets the
            measured cost model (:mod:`repro.autotune`) choose between
            per-core sharding and the serial path.  Only the paper-default
            columnar configuration is sharded (isolated seeds, lazy forward,
            two-level frontier, numpy backend, whole ground set); anything
            else, and ``None``/``1``, runs the serial loop.  Sharded and
            serial selection admit bit-identical triples.
        jobs: worker processes for the sharded path (default and
            ``"auto"``: one per shard, capped at the core count; ``1``: all
            shards in-process).
        trace: optional :class:`SelectionTrace` receiving the run's
            per-user pop sequences (the dynamic re-solve layer's warm
            state).  A trace forces the serial loop: the sharded
            coordinator does not record one.
    """

    def __init__(self, instance: RevMaxInstance, model: RevenueModel,
                 checker: ConstraintChecker, *,
                 true_model: Optional[RevenueModel] = None,
                 use_lazy_forward: bool = True,
                 use_two_level_heap: bool = True,
                 seed_priorities: str = SEED_MARGINAL,
                 max_selections: Optional[int] = None,
                 on_admit: Optional[Callable[[Triple, float], None]] = None,
                 use_compiled: Optional[bool] = None,
                 shards: Union[int, str, None] = None,
                 jobs: Union[int, str, None] = None,
                 trace: Optional[SelectionTrace] = None,
                 ) -> None:
        if seed_priorities not in (SEED_ISOLATED, SEED_MARGINAL):
            raise ValueError(
                f"unknown seeding rule {seed_priorities!r}; expected "
                f"{SEED_ISOLATED!r} or {SEED_MARGINAL!r}"
            )
        self._instance = instance
        self._model = model
        self._checker = checker
        self._true_model = true_model if true_model is not model else None
        self._use_lazy_forward = use_lazy_forward
        self._use_two_level_heap = use_two_level_heap
        self._seed_priorities = seed_priorities
        self._max_selections = max_selections
        self._on_admit = on_admit
        self._use_compiled = use_compiled if use_compiled is not None else True
        self._shards = shards
        self._jobs = jobs
        self._trace = trace
        #: Cost-model decision of the last ``"auto"`` resolution (``None``
        #: until one happens); experiment extras surface it in records.
        self.last_parallel_decision = None

    # ------------------------------------------------------------------
    # public entry point
    # ------------------------------------------------------------------
    def select(self, strategy: Strategy,
               candidates: Optional[Iterable[Triple]] = None, *,
               allowed_times: Optional[Iterable[int]] = None,
               growth_curve: Optional[List[Tuple[int, float]]] = None,
               initial_revenue: Optional[float] = None) -> int:
        """Greedily admit candidates into ``strategy`` (in place).

        Args:
            strategy: the strategy built so far; modified in place.
            candidates: candidate triples to consider (triples already in the
                strategy are skipped).  Iteration order fixes heap
                tie-breaking, so callers should pass a deterministic order.
                ``None`` means the instance's whole candidate ground set and
                enables the columnar seeding fast path when the
                configuration allows it.
            allowed_times: optional whitelist of time steps; candidates at
                other times are excluded from the frontier (the sub-horizon
                setting of §6.3).
            growth_curve: optional list receiving cumulative
                ``(size, revenue)`` checkpoints, appended across calls.
            initial_revenue: revenue of ``strategy`` before this call; when
                ``None``, continues from the last growth-curve entry (0.0 on
                a fresh curve).

        Returns:
            The number of triples admitted.
        """
        if candidates is None:
            shards = self._resolve_shards()
            if self._sharded_eligible(shards):
                return self._select_sharded(shards, strategy, allowed_times,
                                            growth_curve, initial_revenue)
            if self._kernel_eligible(strategy):
                return self._select_native(strategy, allowed_times,
                                           growth_curve, initial_revenue)
        heap, flags, group_keys = self._seed(strategy, candidates,
                                             allowed_times)
        if initial_revenue is None:
            initial_revenue = (
                growth_curve[-1][1] if growth_curve else 0.0
            )
        revenue = initial_revenue
        admitted = 0

        while heap and (
            self._max_selections is None
            or len(strategy) < self._max_selections
        ):
            key, priority = heap.peek()
            triple = Triple(*key)
            if not self._checker.can_add(strategy, triple):
                self._discard_blocked(heap, group_keys, strategy, triple,
                                      priority)
                continue
            freshness = strategy.group_size(
                triple.user, self._instance.class_of(triple.item)
            )
            if self._use_lazy_forward and flags[triple] != freshness:
                if self._trace is not None:
                    self._trace.record_gate(triple, priority)
                self._refresh_group(heap, flags, group_keys, strategy,
                                    triple, freshness)
                continue
            if priority <= 0.0:
                if self._trace is not None and heap:
                    self._trace.truncated = True
                break
            gain = (
                priority if self._true_model is None
                else self._true_model.marginal_revenue(strategy, triple)
            )
            strategy.add(triple)
            heap.discard(triple)
            self._note_removed(group_keys, (triple.user, triple.item), triple)
            admitted += 1
            revenue += gain
            if growth_curve is not None:
                growth_curve.append((len(strategy), revenue))
            if self._trace is not None:
                self._trace.record_admit(triple, gain)
            if self._on_admit is not None:
                self._on_admit(triple, gain)
            if not self._use_lazy_forward:
                self._eager_refresh(heap, flags, group_keys, strategy, triple)
        if self._trace is not None and heap and not self._trace.truncated:
            # The max_selections cap left live candidates unpopped.
            self._trace.capped = True
        return admitted

    # ------------------------------------------------------------------
    # frontier construction
    # ------------------------------------------------------------------
    def _columnar_eligible(self) -> bool:
        """The columnar fast path covers the paper-default configuration.

        The python backend is excluded on purpose: it is documented as the
        executable specification of the object layout and must never
        trigger compilation or columnar tensor allocations.
        """
        return (
            self._use_compiled
            and self._seed_priorities == SEED_ISOLATED
            and self._use_lazy_forward
            and self._use_two_level_heap
            and self._model.backend == "numpy"
        )

    def _resolve_shards(self) -> Optional[int]:
        """Resolve the shards request; ``"auto"`` consults the cost model.

        Auto resolution happens only for configurations that could shard at
        all -- everywhere else it degrades straight to ``None`` (serial)
        without probing the machine.  The decision (prediction, effective
        value, calibration numbers) is kept on
        :attr:`last_parallel_decision` for experiment records.
        """
        shards = self._shards
        if shards != "auto":
            return shards
        if not self._columnar_eligible() or self._trace is not None:
            return None
        from repro import autotune

        decision = autotune.decide_shards(
            self._instance.compiled().pair_user.shape[0], autotune.AUTO
        )
        self.last_parallel_decision = decision
        return decision.effective

    def _sharded_eligible(self, shards: Optional[int]) -> bool:
        """Sharding covers the columnar configuration with a compatible gain.

        The sharded workers rebuild the selection (and, for GlobalNo, the
        true) model from shard tensors plus a beta vector; the shared
        :func:`repro.shard.sharding_compatible` predicate decides whether
        that reconstruction is faithful -- anything more exotic falls back
        to the serial loop.
        """
        if shards is None or shards == 1 or not self._columnar_eligible():
            return False
        if self._trace is not None:
            # Traces are recorded by the serial admit loop; the sharded
            # coordinator does not thread them through its workers.
            return False
        # Imported lazily, like _select_sharded: the serial path must not
        # depend on the multiprocessing machinery.
        from repro.shard import sharding_compatible

        return sharding_compatible(self._instance, self._model,
                                   self._true_model)

    def _select_sharded(self, shards: int, strategy: Strategy,
                        allowed_times: Optional[Iterable[int]],
                        growth_curve: Optional[List[Tuple[int, float]]],
                        initial_revenue: Optional[float]) -> int:
        """Run the admit loop across shard workers (:mod:`repro.shard`)."""
        # Imported lazily: the serial path must not pay for (or depend on)
        # the multiprocessing machinery.
        from repro.shard import ShardedGreedySolver

        jobs = None if self._jobs == "auto" else self._jobs
        solver = ShardedGreedySolver(
            self._instance, self._model, self._checker,
            shards=shards, jobs=jobs,
            true_model=self._true_model,
            max_selections=self._max_selections,
            on_admit=self._on_admit,
        )
        return solver.select(strategy, allowed_times,
                             growth_curve=growth_curve,
                             initial_revenue=initial_revenue)

    def _kernel_eligible(self, strategy: Strategy) -> bool:
        """The native (JIT) admit loop covers cold paper-default solves.

        Beyond columnar eligibility it needs: the numba tier active, a
        reference model with a live compilation (the kernel replays its
        scoring *and counter* semantics bit-for-bit), the stock
        display-then-capacity constraint checker, an empty starting
        strategy (the kernel seeds from isolated revenues alone), no trace
        recording and no separate true model.  Anything else runs the
        Python loop over the columnar frontier.
        """
        if not self._columnar_eligible():
            return False
        if self._trace is not None or self._true_model is not None:
            return False
        if len(strategy) != 0:
            return False
        if type(self._checker) is not ConstraintChecker:
            return False
        if not self._checker.enforces_capacity:
            return False
        from repro.core import kernels

        return kernels.native_enabled() and self._model.native_compatible()

    def _select_native(self, strategy: Strategy,
                       allowed_times: Optional[Iterable[int]],
                       growth_curve: Optional[List[Tuple[int, float]]],
                       initial_revenue: Optional[float]) -> int:
        """Run the JIT-compiled admit loop and replay its admissions.

        The kernel returns the admitted ``(row, t, gain)`` sequence in
        admission order plus the counter totals the reference loop would
        have accumulated; this wrapper replays them through the exact side
        effects of the serial loop (strategy adds, growth-curve points,
        ``on_admit`` callbacks, model counters), so callers cannot tell the
        tiers apart except by wall clock.
        """
        from repro.core import kernels

        compiled = self._instance.compiled()
        rows, ts, gains, counters = kernels.native_select(
            compiled, allowed_times=allowed_times,
            max_selections=self._max_selections,
        )
        if initial_revenue is None:
            initial_revenue = growth_curve[-1][1] if growth_curve else 0.0
        revenue = initial_revenue
        pair_user = compiled.pair_user
        pair_item = compiled.pair_item
        for row, t, gain in zip(rows.tolist(), ts.tolist(), gains.tolist()):
            triple = Triple(int(pair_user[row]), int(pair_item[row]), int(t))
            strategy.add(triple)
            revenue += gain
            if growth_curve is not None:
                growth_curve.append((len(strategy), revenue))
            if self._on_admit is not None:
                self._on_admit(triple, gain)
        self._model.absorb_counts(**counters)
        return int(rows.shape[0])

    def _seed(self, strategy: Strategy,
              candidates: Optional[Iterable[Triple]],
              allowed_times: Optional[Iterable[int]]):
        """Build the frontier, freshness flags and (user, item) key index."""
        if candidates is None:
            if self._columnar_eligible():
                return self._seed_columnar(strategy, allowed_times)
            candidates = self._instance.candidate_triples()
        if allowed_times is not None:
            allowed = set(allowed_times)
            candidates = (z for z in candidates if z.t in allowed)
        heap = (
            TwoLevelHeap() if self._use_two_level_heap else AddressableMaxHeap()
        )
        flags: Dict[Triple, int] = {}
        group_keys: Dict[Tuple[int, int], Set[Triple]] = {}
        pool = [
            triple for triple in candidates if triple not in strategy
        ]
        if self._seed_priorities == SEED_ISOLATED:
            priorities = [
                self._instance.expected_isolated_revenue(triple)
                for triple in pool
            ]
            freshness = [0] * len(pool)
        else:
            priorities = self._model.marginal_revenue_batch(strategy, pool)
            freshness = [
                strategy.group_size(
                    triple.user, self._instance.class_of(triple.item)
                )
                for triple in pool
            ]
        for triple, priority, flag in zip(pool, priorities, freshness):
            if priority <= 0.0:
                # Submodularity: marginal revenues only shrink as the
                # strategy grows, so non-positive seeds can never be admitted.
                continue
            group = (triple.user, triple.item)
            if self._use_two_level_heap:
                heap.insert(group, triple, priority)
            else:
                heap.insert(triple, priority)
            flags[triple] = flag
            group_keys.setdefault(group, set()).add(triple)
        return heap, flags, group_keys

    def _seed_columnar(self, strategy: Strategy,
                       allowed_times: Optional[Iterable[int]]):
        """Seed the frontier in one vectorized pass over the compiled table.

        Isolated seed priorities are read straight off the compiled
        instance's ``(n_pairs, T)`` isolated-revenue matrix; the two-level
        frontier is bulk-built from the same arrays by
        :func:`build_columnar_frontier`.  No per-candidate Python object
        exists until a candidate's group is actually touched by the
        selection loop.
        """
        frontier = build_columnar_frontier(
            self._instance.compiled(), strategy, allowed_times
        )
        return frontier, _ZeroFlags(), _FrontierGroupKeys(frontier)

    # ------------------------------------------------------------------
    # frontier maintenance
    # ------------------------------------------------------------------
    @staticmethod
    def _note_removed(group_keys, group, triple: Triple) -> None:
        """Drop a removed candidate from the dict bookkeeping.

        The columnar frontier *is* the bookkeeping -- ``heap.discard``
        already removed the entry -- so the shim case is a no-op rather
        than materializing a throwaway membership set per admission.
        """
        if isinstance(group_keys, _FrontierGroupKeys):
            return
        group_keys.get(group, set()).discard(triple)

    def _discard_blocked(self, heap, group_keys, strategy: Strategy,
                         triple: Triple, priority: float = 0.0) -> None:
        """Drop candidates that can never become feasible again.

        A display violation concerns only the popped triple's (user, time)
        slot, so only that candidate is dropped.  A capacity violation means
        the item's distinct audience is full and the user is not part of it;
        since the audience never shrinks, every remaining candidate of the
        (user, item) pair is dead and the whole lower heap is removed (line
        26 of Algorithm 1).
        """
        display_blocked = (
            strategy.display_count(triple.user, triple.t)
            >= self._instance.display_limit
        )
        group = (triple.user, triple.item)
        if display_blocked:
            if self._trace is not None:
                self._trace.record_gate(triple, priority)
            heap.discard(triple)
            self._note_removed(group_keys, group, triple)
            return
        if self._trace is not None:
            self._trace.capacity_blocked = True
        if isinstance(heap, ColumnarFrontier):
            # Kills the whole row in one step -- no need to materialize the
            # dying group's lower heap just to discard entry by entry.
            heap.drop_group(group)
            return
        for candidate in list(group_keys.get(group, ())):
            heap.discard(candidate)
        group_keys.pop(group, None)

    def _rescore(self, heap, flags, strategy: Strategy,
                 candidates: List[Triple], freshness: int) -> None:
        """Batch-score ``candidates`` and write priorities + flags back."""
        values = self._model.marginal_revenue_batch(strategy, candidates)
        for candidate, value in zip(candidates, values):
            flags[candidate] = freshness
            heap.update(candidate, value)

    def _refresh_group(self, heap, flags, group_keys, strategy: Strategy,
                       triple: Triple, freshness: int) -> None:
        """Recompute every candidate of the popped triple's (user, item) heap.

        One batched scoring pass refreshes the whole lower-level heap: all
        its candidates share the (user, class) group whose change staled
        them, so they share the "before" revenue the batch evaluates once.
        """
        group = (triple.user, triple.item)
        stale = [
            candidate for candidate in group_keys.get(group, ())
            if candidate in heap
        ]
        self._rescore(heap, flags, strategy, stale, freshness)

    def _eager_refresh(self, heap, flags, group_keys, strategy: Strategy,
                       added: Triple) -> None:
        """Without lazy forward, re-score every candidate ``added`` affects.

        Affected candidates are those of the same user whose item belongs to
        the same class as the added item -- batched into one scoring pass.
        """
        target_class = self._instance.class_of(added.item)
        freshness = strategy.group_size(added.user, target_class)
        affected: List[Triple] = []
        for (user, item), keys in group_keys.items():
            if user != added.user:
                continue
            if self._instance.class_of(item) != target_class:
                continue
            affected.extend(
                candidate for candidate in keys if candidate in heap
            )
        self._rescore(heap, flags, strategy, affected, freshness)
