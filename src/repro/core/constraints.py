"""Validity constraints of REVMAX (display limit and item capacity).

A strategy ``S`` is *valid* (Problem 1) when

* **display constraint** -- no user receives more than ``k`` recommendations
  at any single time step: ``|{i : (u, i, t) in S}| <= k`` for all ``u, t``;
* **capacity constraint** -- no item is recommended to more than ``q_i``
  *distinct* users over the whole horizon:
  ``|{u : exists t, (u, i, t) in S}| <= q_i`` for all ``i``.

The module offers both whole-strategy validation (used by tests and by the
experiment harness to audit algorithm outputs) and incremental ``can_add``
checks (used inside the greedy loops, where triples are admitted one by one).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.entities import Triple
from repro.core.problem import RevMaxInstance
from repro.core.strategy import Strategy

__all__ = [
    "ConstraintViolation",
    "DisplayConstraint",
    "CapacityConstraint",
    "ConstraintChecker",
]


@dataclass(frozen=True)
class ConstraintViolation:
    """A single violated constraint, for diagnostics.

    Attributes:
        kind: ``"display"`` or ``"capacity"``.
        subject: the (user, time) pair or the item the violation concerns.
        observed: observed count.
        limit: permitted maximum.
    """

    kind: str
    subject: tuple
    observed: int
    limit: int

    def __str__(self) -> str:
        return (
            f"{self.kind} constraint violated at {self.subject}: "
            f"{self.observed} > {self.limit}"
        )


class DisplayConstraint:
    """Per-user, per-time-step display limit ``k``."""

    def __init__(self, instance: RevMaxInstance) -> None:
        self._instance = instance

    def can_add(self, strategy: Strategy, triple: Triple) -> bool:
        """True if adding ``triple`` keeps the user's slot under the limit."""
        return (
            strategy.display_count(triple.user, triple.t)
            < self._instance.display_limit
        )

    def violations(self, strategy: Strategy) -> List[ConstraintViolation]:
        """Return every (user, time) slot exceeding the display limit."""
        limit = self._instance.display_limit
        counts = {}
        for triple in strategy:
            slot = (triple.user, triple.t)
            counts[slot] = counts.get(slot, 0) + 1
        return [
            ConstraintViolation("display", slot, count, limit)
            for slot, count in sorted(counts.items())
            if count > limit
        ]


class CapacityConstraint:
    """Per-item distinct-audience capacity ``q_i``."""

    def __init__(self, instance: RevMaxInstance) -> None:
        self._instance = instance

    def can_add(self, strategy: Strategy, triple: Triple) -> bool:
        """True if adding ``triple`` keeps the item's audience within capacity.

        Repeating an item to a user it already targets never consumes extra
        capacity (the constraint counts *distinct* users).
        """
        if strategy.user_has_item(triple.user, triple.item):
            return True
        return (
            strategy.item_audience_size(triple.item)
            < self._instance.capacity(triple.item)
        )

    def violations(self, strategy: Strategy) -> List[ConstraintViolation]:
        """Return every item whose distinct audience exceeds its capacity."""
        audiences = {}
        for triple in strategy:
            audiences.setdefault(triple.item, set()).add(triple.user)
        result = []
        for item, users in sorted(audiences.items()):
            limit = self._instance.capacity(item)
            if len(users) > limit:
                result.append(
                    ConstraintViolation("capacity", (item,), len(users), limit)
                )
        return result


class ConstraintChecker:
    """Bundles the display and capacity constraints of an instance.

    The greedy algorithms call :meth:`can_add` on every candidate; the
    experiment harness calls :meth:`check` on final outputs to assert they are
    valid strategies in the sense of Problem 1.
    """

    def __init__(self, instance: RevMaxInstance,
                 enforce_capacity: bool = True) -> None:
        """Create a checker.

        Args:
            instance: the REVMAX instance providing ``k`` and ``q_i``.
            enforce_capacity: set to False for R-REVMAX, whose only hard
                constraint is the display limit (capacity is pushed into the
                objective, Definition 4).
        """
        self._display = DisplayConstraint(instance)
        self._capacity = CapacityConstraint(instance) if enforce_capacity else None

    @property
    def enforces_capacity(self) -> bool:
        """True when the capacity constraint gates admissions (REVMAX mode).

        The native kernel tier hard-codes the display-then-capacity gate of
        the reference :meth:`can_add`; it keys off this flag to stand in
        only for checkers with exactly those semantics.
        """
        return self._capacity is not None

    def can_add(self, strategy: Strategy, triple: Triple) -> bool:
        """True if ``strategy + {triple}`` satisfies every hard constraint."""
        if not self._display.can_add(strategy, triple):
            return False
        if self._capacity is not None and not self._capacity.can_add(strategy, triple):
            return False
        return True

    def violations(self, strategy: Strategy) -> List[ConstraintViolation]:
        """Return every violation present in ``strategy``."""
        result = self._display.violations(strategy)
        if self._capacity is not None:
            result.extend(self._capacity.violations(strategy))
        return result

    def is_valid(self, strategy: Strategy) -> bool:
        """True if the strategy satisfies all hard constraints."""
        return not self.violations(strategy)

    def check(self, strategy: Strategy) -> None:
        """Raise ``ValueError`` listing every violation, if any."""
        violations = self.violations(strategy)
        if violations:
            summary = "; ".join(str(v) for v in violations[:10])
            raise ValueError(f"invalid strategy ({len(violations)} violations): {summary}")
