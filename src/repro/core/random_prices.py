"""Random-price extension of the revenue model (§7 of the paper).

When exact future prices are unknown, the paper models ``p(i, t)`` as random
variables and approximates the expected revenue of a strategy by a
second-order Taylor expansion of the revenue around the mean price vector:

``E[g(z)] ~= g(z_bar) + 1/2 * sum_ab  d^2 g / dz_a dz_b (z_bar) * Cov(z_a, z_b)``

(the first-order term vanishes because ``E[z - z_bar] = 0``).  The revenue of
the whole strategy is the sum of the per-triple contributions; equivalently we
can expand the *total* revenue ``Rev(S; p)`` as a function of every price that
appears in the strategy -- which is what this module does, using central
finite differences for the Hessian entries.

Three estimators are provided for comparison (the §7 benchmark):

* :meth:`TaylorRevenueModel.expected_price_revenue` -- the naive heuristic
  that plugs in mean prices (zeroth order);
* :meth:`TaylorRevenueModel.taylor_revenue` -- the second-order correction;
* :meth:`TaylorRevenueModel.monte_carlo_revenue` -- a sampling ground truth.

Adoption probabilities themselves depend on prices (through user valuations),
so the model is parameterised by an ``adoption_given_price`` callable instead
of a fixed adoption table.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.core.entities import ItemCatalog, Triple
from repro.core.problem import AdoptionTable, RevMaxInstance
from repro.core.revenue import RevenueModel

__all__ = ["PriceDistribution", "TaylorRevenueModel"]

AdoptionGivenPrice = Callable[[int, int, int, float], float]
"""Signature: ``adoption_given_price(user, item, t, price) -> probability``."""


class PriceDistribution:
    """Mean / covariance description of the random price matrix.

    Prices of different items are assumed independent; prices of the same item
    at different time steps may be correlated through a per-item ``T x T``
    covariance matrix (the diagonal holds the per-time variances).

    Args:
        means: array of shape ``(num_items, T)`` of price means.
        variances: array of the same shape with per-price variances; ignored
            for items that have an entry in ``item_covariances``.
        item_covariances: optional mapping ``item -> (T, T)`` covariance
            matrix for items whose prices are correlated over time.
    """

    def __init__(
        self,
        means: np.ndarray,
        variances: np.ndarray,
        item_covariances: Optional[Dict[int, np.ndarray]] = None,
    ) -> None:
        self.means = np.asarray(means, dtype=float)
        self.variances = np.asarray(variances, dtype=float)
        if self.means.shape != self.variances.shape:
            raise ValueError("means and variances must have the same shape")
        if np.any(self.variances < 0.0):
            raise ValueError("variances must be non-negative")
        self.item_covariances: Dict[int, np.ndarray] = {}
        for item, matrix in (item_covariances or {}).items():
            matrix = np.asarray(matrix, dtype=float)
            horizon = self.means.shape[1]
            if matrix.shape != (horizon, horizon):
                raise ValueError("item covariance matrices must be (T, T)")
            self.item_covariances[int(item)] = matrix

    @property
    def num_items(self) -> int:
        """Number of items covered by the distribution."""
        return self.means.shape[0]

    @property
    def horizon(self) -> int:
        """Number of time steps covered by the distribution."""
        return self.means.shape[1]

    def covariance(self, item_a: int, t_a: int, item_b: int, t_b: int) -> float:
        """Return ``Cov(p(item_a, t_a), p(item_b, t_b))``."""
        if item_a != item_b:
            return 0.0
        matrix = self.item_covariances.get(item_a)
        if matrix is not None:
            return float(matrix[t_a, t_b])
        if t_a != t_b:
            return 0.0
        return float(self.variances[item_a, t_a])

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        """Draw one Gaussian realisation of the full price matrix.

        Negative draws are clipped at zero (prices are non-negative).
        """
        sample = np.array(self.means, copy=True)
        for item in range(self.num_items):
            matrix = self.item_covariances.get(item)
            if matrix is not None:
                sample[item, :] = rng.multivariate_normal(self.means[item], matrix)
            else:
                std = np.sqrt(self.variances[item])
                sample[item, :] = self.means[item] + rng.standard_normal(self.horizon) * std
        return np.clip(sample, 0.0, None)


class TaylorRevenueModel:
    """Expected revenue estimators under random prices.

    Args:
        num_users: number of users.
        catalog: item catalog (class function).
        display_limit: the display constraint ``k``.
        capacities: per-item capacities (scalar or array).
        betas: per-item saturation factors (scalar or array).
        price_distribution: mean / covariance of the random prices.
        adoption_given_price: callable returning ``q(u, i, t)`` for a given
            realised price.
        candidate_pairs: the (user, item) pairs a recommender would consider;
            only these receive adoption probabilities.
        backend: revenue-kernel backend used for the per-realisation exact
            evaluations (forwarded to :class:`RevenueModel`).
    """

    def __init__(
        self,
        num_users: int,
        catalog: ItemCatalog,
        display_limit: int,
        capacities,
        betas,
        price_distribution: PriceDistribution,
        adoption_given_price: AdoptionGivenPrice,
        candidate_pairs: Iterable[Tuple[int, int]],
        backend: Optional[str] = None,
    ) -> None:
        self._num_users = num_users
        self._catalog = catalog
        self._display_limit = display_limit
        self._capacities = capacities
        self._betas = betas
        self._distribution = price_distribution
        self._adoption_given_price = adoption_given_price
        self._candidate_pairs = [(int(u), int(i)) for (u, i) in candidate_pairs]
        self._backend = backend

    # ------------------------------------------------------------------
    # instance construction for a realised price matrix
    # ------------------------------------------------------------------
    def instance_for_prices(self, prices: np.ndarray,
                            name: str = "random-price-realisation") -> RevMaxInstance:
        """Build the exact-price REVMAX instance induced by a price matrix."""
        prices = np.asarray(prices, dtype=float)
        horizon = self._distribution.horizon
        table = AdoptionTable(horizon)
        for user, item in self._candidate_pairs:
            vector = [
                self._adoption_given_price(user, item, t, float(prices[item, t]))
                for t in range(horizon)
            ]
            table.set(user, item, np.clip(vector, 0.0, 1.0))
        return RevMaxInstance(
            num_users=self._num_users,
            catalog=self._catalog,
            horizon=horizon,
            display_limit=self._display_limit,
            prices=prices,
            capacities=(
                self._capacities
                if not np.isscalar(self._capacities)
                else np.full(self._catalog.num_items, int(self._capacities))
            ),
            betas=(
                self._betas
                if not np.isscalar(self._betas)
                else np.full(self._catalog.num_items, float(self._betas))
            ),
            adoption=table,
            name=name,
        )

    def mean_price_instance(self) -> RevMaxInstance:
        """Return the instance built from mean prices (used to *plan*)."""
        return self.instance_for_prices(self._distribution.means, "mean-price-instance")

    # ------------------------------------------------------------------
    # revenue estimators
    # ------------------------------------------------------------------
    def revenue_at_prices(self, triples: Iterable[Triple], prices: np.ndarray) -> float:
        """Exact expected revenue of the strategy for a realised price matrix."""
        instance = self.instance_for_prices(prices)
        model = RevenueModel(instance, backend=self._backend)
        return model.revenue_of_triples(triples)

    def expected_price_revenue(self, triples: Iterable[Triple]) -> float:
        """Zeroth-order estimate: plug in the mean price matrix."""
        return self.revenue_at_prices(triples, self._distribution.means)

    def taylor_revenue(self, triples: Iterable[Triple],
                       step_scale: float = 1e-3) -> float:
        """Second-order Taylor estimate of the expected revenue (Equation 8).

        The Hessian of ``Rev(S; p)`` with respect to the prices appearing in
        the strategy is computed by central finite differences around the mean
        price matrix; only price pairs with non-zero covariance contribute.

        Args:
            triples: the strategy whose expected revenue is estimated.
            step_scale: relative finite-difference step (``h = step_scale *
                max(1, |mean price|)``).
        """
        triples = [Triple(*z) for z in triples]
        means = self._distribution.means
        base = self.revenue_at_prices(triples, means)
        # Prices the revenue actually depends on: the (item, t) pairs of the
        # strategy's triples.
        price_keys = sorted({(z.item, z.t) for z in triples})
        correction = 0.0
        for a_index, (item_a, t_a) in enumerate(price_keys):
            for item_b, t_b in price_keys[a_index:]:
                covariance = self._distribution.covariance(item_a, t_a, item_b, t_b)
                if covariance == 0.0:
                    continue
                second = self._second_partial(
                    triples, means, (item_a, t_a), (item_b, t_b), step_scale
                )
                if (item_a, t_a) == (item_b, t_b):
                    correction += 0.5 * second * covariance
                else:
                    correction += second * covariance
        return base + correction

    def monte_carlo_revenue(self, triples: Iterable[Triple], num_samples: int = 200,
                            seed: Optional[int] = 0) -> float:
        """Sampling estimate of the expected revenue over random prices."""
        if num_samples <= 0:
            raise ValueError("num_samples must be positive")
        triples = [Triple(*z) for z in triples]
        rng = np.random.default_rng(seed)
        total = 0.0
        for _ in range(num_samples):
            prices = self._distribution.sample(rng)
            total += self.revenue_at_prices(triples, prices)
        return total / num_samples

    # ------------------------------------------------------------------
    # internal helpers
    # ------------------------------------------------------------------
    def _second_partial(
        self,
        triples: Sequence[Triple],
        means: np.ndarray,
        key_a: Tuple[int, int],
        key_b: Tuple[int, int],
        step_scale: float,
    ) -> float:
        """Central finite-difference second partial of the revenue."""
        step_a = step_scale * max(1.0, abs(float(means[key_a])))
        step_b = step_scale * max(1.0, abs(float(means[key_b])))

        def revenue_with(offsets: Dict[Tuple[int, int], float]) -> float:
            prices = np.array(means, copy=True)
            for key, offset in offsets.items():
                prices[key] = max(0.0, prices[key] + offset)
            return self.revenue_at_prices(triples, prices)

        if key_a == key_b:
            plus = revenue_with({key_a: step_a})
            minus = revenue_with({key_a: -step_a})
            center = revenue_with({})
            return (plus - 2.0 * center + minus) / (step_a ** 2)
        plus_plus = revenue_with({key_a: step_a, key_b: step_b})
        plus_minus = revenue_with({key_a: step_a, key_b: -step_b})
        minus_plus = revenue_with({key_a: -step_a, key_b: step_b})
        minus_minus = revenue_with({key_a: -step_a, key_b: -step_b})
        return (plus_plus - plus_minus - minus_plus + minus_minus) / (
            4.0 * step_a * step_b
        )
