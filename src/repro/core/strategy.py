"""Recommendation strategies (sets of user-item-time triples).

A :class:`Strategy` is the object the REVMAX algorithms build.  Besides the
bare set of triples it maintains the indices the revenue model and the
constraint checks need:

* the triples of each (user, class) group -- the only triples that interact
  in Definition 1 (competition + saturation are scoped to one user and one
  item class);
* the number of items recommended to each user at each time step (display
  constraint);
* the set of distinct users each item has been recommended to (capacity
  constraint).

The class is deliberately independent of the revenue function so it can be
reused by R-REVMAX, the simulators and the experiment harness.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.core.entities import ItemCatalog, Triple

__all__ = ["Strategy"]


class Strategy:
    """A mutable set of recommendation triples with constraint bookkeeping.

    Args:
        catalog: the item catalog providing the class function ``C(i)``; the
            strategy groups its triples by (user, class).
        triples: optional initial triples.
    """

    def __init__(self, catalog: ItemCatalog,
                 triples: Optional[Iterable[Triple]] = None) -> None:
        self._catalog = catalog
        self._triples: Set[Triple] = set()
        self._by_user_class: Dict[Tuple[int, int], List[Triple]] = {}
        self._display_count: Dict[Tuple[int, int], int] = {}
        self._item_users: Dict[int, Set[int]] = {}
        if triples is not None:
            for triple in triples:
                self.add(triple)

    # ------------------------------------------------------------------
    # set protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._triples)

    def __contains__(self, triple: Triple) -> bool:
        return Triple(*triple) in self._triples

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._triples)

    @property
    def catalog(self) -> ItemCatalog:
        """The item catalog the strategy is grouped by."""
        return self._catalog

    def triples(self) -> Set[Triple]:
        """Return a copy of the underlying set of triples."""
        return set(self._triples)

    def sorted_triples(self) -> List[Triple]:
        """Return triples sorted by (time, user, item) -- presentation order.

        The paper notes that regardless of the order in which a greedy
        algorithm builds ``S``, recommendations are ultimately presented
        chronologically; this accessor realises that ordering.
        """
        return sorted(self._triples, key=lambda z: (z.t, z.user, z.item))

    def copy(self) -> "Strategy":
        """Return a deep copy of the strategy."""
        return Strategy(self._catalog, self._triples)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, triple: Triple) -> None:
        """Add ``triple`` to the strategy.

        Raises:
            ValueError: if the triple is already present.
        """
        triple = Triple(*triple)
        if triple in self._triples:
            raise ValueError(f"triple already in strategy: {triple}")
        self._triples.add(triple)
        group = (triple.user, self._catalog.class_of(triple.item))
        self._by_user_class.setdefault(group, []).append(triple)
        slot = (triple.user, triple.t)
        self._display_count[slot] = self._display_count.get(slot, 0) + 1
        self._item_users.setdefault(triple.item, set()).add(triple.user)

    def remove(self, triple: Triple) -> None:
        """Remove ``triple`` from the strategy.

        Raises:
            KeyError: if the triple is not present.
        """
        triple = Triple(*triple)
        if triple not in self._triples:
            raise KeyError(f"triple not in strategy: {triple}")
        self._triples.remove(triple)
        group = (triple.user, self._catalog.class_of(triple.item))
        self._by_user_class[group].remove(triple)
        if not self._by_user_class[group]:
            del self._by_user_class[group]
        slot = (triple.user, triple.t)
        self._display_count[slot] -= 1
        if self._display_count[slot] == 0:
            del self._display_count[slot]
        # Only drop the user from the item's audience when no other triple of
        # this strategy recommends the same item to the same user.
        still_recommended = any(
            z.item == triple.item and z.user == triple.user for z in self._triples
        )
        if not still_recommended:
            self._item_users[triple.item].discard(triple.user)
            if not self._item_users[triple.item]:
                del self._item_users[triple.item]

    def clear(self) -> None:
        """Remove every triple."""
        self._triples.clear()
        self._by_user_class.clear()
        self._display_count.clear()
        self._item_users.clear()

    # ------------------------------------------------------------------
    # queries used by the revenue model
    # ------------------------------------------------------------------
    def group(self, user: int, class_id: int) -> List[Triple]:
        """Return the triples of (user, class), unordered."""
        return list(self._by_user_class.get((user, class_id), []))

    def group_of_triple(self, triple: Triple) -> List[Triple]:
        """Return the (user, class) group the given triple interacts with."""
        return self.group(triple.user, self._catalog.class_of(triple.item))

    def group_size(self, user: int, class_id: int) -> int:
        """Return ``|set(u, c)|`` -- the lazy-forward freshness counter."""
        return len(self._by_user_class.get((user, class_id), []))

    def groups(self) -> Iterator[Tuple[Tuple[int, int], List[Triple]]]:
        """Iterate over ((user, class), triples) pairs."""
        for key, value in self._by_user_class.items():
            yield key, list(value)

    # ------------------------------------------------------------------
    # queries used by the constraints
    # ------------------------------------------------------------------
    def display_count(self, user: int, t: int) -> int:
        """Number of items recommended to ``user`` at time ``t``."""
        return self._display_count.get((user, t), 0)

    def item_audience(self, item: int) -> Set[int]:
        """Distinct users that ``item`` has been recommended to."""
        return set(self._item_users.get(item, set()))

    def item_audience_size(self, item: int) -> int:
        """Number of distinct users ``item`` has been recommended to."""
        return len(self._item_users.get(item, ()))

    def user_has_item(self, user: int, item: int) -> bool:
        """True if ``item`` is already recommended to ``user`` at some time."""
        return user in self._item_users.get(item, ())

    # ------------------------------------------------------------------
    # statistics used by the experiments
    # ------------------------------------------------------------------
    def repeat_counts(self) -> Dict[Tuple[int, int], int]:
        """Return how many times each (user, item) pair appears in the strategy.

        This is the quantity the Figure 5 histograms are computed from.
        """
        counts: Dict[Tuple[int, int], int] = {}
        for triple in self._triples:
            pair = (triple.user, triple.item)
            counts[pair] = counts.get(pair, 0) + 1
        return counts

    def per_time_counts(self) -> Dict[int, int]:
        """Return the number of triples scheduled at each time step."""
        counts: Dict[int, int] = {}
        for triple in self._triples:
            counts[triple.t] = counts.get(triple.t, 0) + 1
        return counts

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Strategy(size={len(self._triples)})"
