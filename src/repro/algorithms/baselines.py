"""Baseline recommenders: TopRA (top rating) and TopRE (top expected revenue).

§6.1 compares the greedy REVMAX algorithms against the two obvious strategies
a conventional recommender would produce:

* **TopRA** recommends to every user the ``k`` items with the highest
  *predicted rating* -- the classical customer-centric recommendation;
* **TopRE** recommends the ``k`` items with the highest *isolated expected
  revenue* ``price x primitive adoption probability`` -- the static
  revenue-aware heuristic of earlier work.

Both baselines are inherently static, so (as in the paper) their per-user item
sets are repeated at every time step of the horizon.  Repetition does not
consume extra capacity (the constraint counts distinct users), but the display
and capacity constraints are still enforced so the outputs remain valid
REVMAX strategies.

TopRA needs predicted ratings, which a bare :class:`RevMaxInstance` does not
carry; callers coming through the dataset pipeline pass the candidates'
predicted ratings, and otherwise the baseline falls back to ranking by the
average primitive adoption probability (a monotone proxy for the rating).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.constraints import ConstraintChecker
from repro.core.entities import Triple
from repro.core.problem import RevMaxInstance
from repro.core.strategy import Strategy
from repro.algorithms.base import RevMaxAlgorithm

__all__ = ["TopRatingBaseline", "TopRevenueBaseline"]


def _fill_static_recommendations(
    instance: RevMaxInstance,
    scores: Mapping[int, Sequence[Tuple[int, float]]],
) -> Strategy:
    """Turn per-user ranked item lists into a repeated, valid strategy.

    For every user the best-scoring items are taken in order until ``k`` items
    are selected (items whose capacity is exhausted are skipped); each selected
    item is then recommended at every time step of the horizon.
    """
    checker = ConstraintChecker(instance)
    strategy = Strategy(instance.catalog)
    for user, ranked in scores.items():
        selected = 0
        for item, _score in ranked:
            if selected >= instance.display_limit:
                break
            # Skip items whose distinct audience is already full (the user is
            # not part of it, so recommending would violate capacity).
            if (not strategy.user_has_item(user, item)
                    and strategy.item_audience_size(item) >= instance.capacity(item)):
                continue
            added_any = False
            for t in range(instance.horizon):
                triple = Triple(user, item, t)
                if triple in strategy:
                    continue
                if checker.can_add(strategy, triple):
                    strategy.add(triple)
                    added_any = True
            if added_any:
                selected += 1
    return strategy


class TopRatingBaseline(RevMaxAlgorithm):
    """TopRA: recommend each user's highest predicted-rating items, repeated.

    Args:
        predicted_ratings: optional mapping ``(user, item) -> predicted
            rating`` (from the dataset pipeline's candidates).  Without it the
            ranking falls back to the mean primitive adoption probability.
    """

    name = "TopRA"

    def __init__(self, predicted_ratings: Optional[Mapping[Tuple[int, int], float]]
                 = None) -> None:
        self._predicted_ratings = dict(predicted_ratings or {})
        self.last_extras: Dict[str, object] = {}

    def _score(self, instance: RevMaxInstance, user: int, item: int) -> float:
        if (user, item) in self._predicted_ratings:
            return float(self._predicted_ratings[(user, item)])
        vector = instance.adoption.get(user, item)
        return float(np.mean(vector)) if vector is not None else 0.0

    def build_strategy(self, instance: RevMaxInstance) -> Strategy:
        scores: Dict[int, List[Tuple[int, float]]] = {}
        for user in instance.users():
            ranked = [
                (item, self._score(instance, user, item))
                for item in instance.candidate_items(user)
            ]
            ranked.sort(key=lambda pair: (-pair[1], pair[0]))
            scores[user] = ranked
        self.last_extras = {"uses_predicted_ratings": bool(self._predicted_ratings)}
        return _fill_static_recommendations(instance, scores)


class TopRevenueBaseline(RevMaxAlgorithm):
    """TopRE: recommend the items with the highest isolated expected revenue.

    The per-item score of a user is ``max over t of p(i, t) * q(u, i, t)`` --
    the best single-shot expected revenue the pair could achieve; the chosen
    items are then repeated over the whole horizon, as in the paper.
    """

    name = "TopRE"

    def __init__(self) -> None:
        self.last_extras: Dict[str, object] = {}

    def build_strategy(self, instance: RevMaxInstance) -> Strategy:
        scores: Dict[int, List[Tuple[int, float]]] = {}
        for user in instance.users():
            ranked = []
            for item in instance.candidate_items(user):
                best = max(
                    instance.price(item, t) * instance.probability(user, item, t)
                    for t in range(instance.horizon)
                )
                ranked.append((item, best))
            ranked.sort(key=lambda pair: (-pair[1], pair[0]))
            scores[user] = ranked
        return _fill_static_recommendations(instance, scores)
