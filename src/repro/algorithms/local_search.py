"""The 1/(4+eps) local-search approximation for R-REVMAX (§4.2).

The relaxed problem R-REVMAX keeps only the display constraint as a hard
constraint -- a partition matroid by Lemma 2 -- and pushes the capacity
constraint into the objective through the effective dynamic adoption
probability of Definition 4.  The resulting objective is non-negative,
non-monotone and submodular, so the Lee-et-al. local search (implemented
generically in :mod:`repro.matroid.local_search`) yields a
``1/(4 + eps)``-approximate solution.

The paper stresses that the algorithm's ``O(|X|^4 log |X| / eps)`` complexity
makes it impractical at scale; it is included here for completeness and used
only on small instances (the theory benchmarks), exactly as the paper uses it
as a yard-stick rather than a production algorithm.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.core.constraints import ConstraintChecker
from repro.core.effective import EffectiveRevenueModel
from repro.core.entities import Triple
from repro.core.problem import RevMaxInstance
from repro.core.selection import SEED_MARGINAL, LazyGreedySelector
from repro.core.strategy import Strategy
from repro.matroid.local_search import non_monotone_local_search
from repro.matroid.partition import display_constraint_matroid
from repro.algorithms.base import RevMaxAlgorithm

__all__ = ["LocalSearchApproximation"]


class LocalSearchApproximation(RevMaxAlgorithm):
    """Local-search approximation algorithm for R-REVMAX.

    Args:
        epsilon: slack of the approximate-improvement threshold (the paper's
            ``eps``); smaller values give better solutions but more moves.
        capacity_oracle: optional oracle for the capacity factor
            ``B_S(i, t)``; defaults to the exact Poisson-binomial oracle.
        max_iterations: safety cap on the number of improving moves.
        backend: revenue-engine backend forwarded to the effective revenue
            model; ``None`` uses the process default.
        warm_start: start the first local-search phase from a greedy
            solution built by the shared selection engine (display-only
            constraints, effective-revenue marginals) instead of Lee et
            al.'s best single element.  Off by default: the warm start can
            only change which approximate local optimum the first phase
            lands on, and the textbook start keeps the reproduction aligned
            with the paper's analysis.
    """

    name = "LocalSearch-1/(4+eps)"

    def __init__(self, epsilon: float = 0.25, capacity_oracle=None,
                 max_iterations: int = 5000,
                 backend: Optional[str] = None,
                 warm_start: bool = False) -> None:
        self._epsilon = epsilon
        self._capacity_oracle = capacity_oracle
        self._max_iterations = max_iterations
        self._warm_start = warm_start
        self.backend = backend
        self.last_extras: Dict[str, object] = {}
        self.last_evaluations: int = 0

    def _greedy_warm_start(self, instance: RevMaxInstance,
                           model: EffectiveRevenueModel) -> Strategy:
        """Greedy initial solution under the display matroid.

        The selection engine runs with capacity enforcement disabled (the
        capacity constraint is inside the effective objective, Definition 4)
        and *eager* refreshes: the capacity factor couples triples across
        (user, class) groups, so the lazy-forward staleness flag -- which
        only tracks the candidate's own group -- is not a reliable refresh
        trigger here.  Eager refreshes cover the dominant same-group
        interactions; remaining cross-user staleness only affects the
        quality of the starting point, never the validity of the final
        solution (the local search owns correctness).
        """
        strategy = Strategy(instance.catalog)
        selector = LazyGreedySelector(
            instance, model,
            ConstraintChecker(instance, enforce_capacity=False),
            use_lazy_forward=False,
            use_two_level_heap=False,
            seed_priorities=SEED_MARGINAL,
        )
        selector.select(strategy, instance.candidate_triples())
        return strategy

    def build_strategy(self, instance: RevMaxInstance) -> Strategy:
        model = EffectiveRevenueModel(
            instance, self._capacity_oracle, backend=self.backend
        )
        matroid = display_constraint_matroid(instance)

        def objective(subset: Iterable[Triple]) -> float:
            strategy = Strategy(instance.catalog, subset)
            return model.revenue(strategy)

        initial_solution = None
        if self._warm_start:
            initial_solution = self._greedy_warm_start(instance, model).triples()

        result = non_monotone_local_search(
            objective,
            matroid,
            epsilon=self._epsilon,
            max_iterations=self._max_iterations,
            initial_solution=initial_solution,
        )
        self.last_extras = {
            "moves": result.moves,
            "objective_value": result.value,
            "epsilon": self._epsilon,
            "warm_start": self._warm_start,
        }
        self.last_evaluations = result.evaluations
        return Strategy(instance.catalog, result.solution)

    def run(self, instance: RevMaxInstance, validate: bool = False):
        """Solve the instance; validation is off by default because R-REVMAX
        strategies may intentionally exceed item capacities."""
        return super().run(instance, validate=validate)
