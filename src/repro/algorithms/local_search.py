"""The 1/(4+eps) local-search approximation for R-REVMAX (§4.2).

The relaxed problem R-REVMAX keeps only the display constraint as a hard
constraint -- a partition matroid by Lemma 2 -- and pushes the capacity
constraint into the objective through the effective dynamic adoption
probability of Definition 4.  The resulting objective is non-negative,
non-monotone and submodular, so the Lee-et-al. local search (implemented
generically in :mod:`repro.matroid.local_search`) yields a
``1/(4 + eps)``-approximate solution.

The paper stresses that the algorithm's ``O(|X|^4 log |X| / eps)`` complexity
makes it impractical at scale; it is included here for completeness and used
only on small instances (the theory benchmarks), exactly as the paper uses it
as a yard-stick rather than a production algorithm.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.core.effective import EffectiveRevenueModel
from repro.core.entities import Triple
from repro.core.problem import RevMaxInstance
from repro.core.strategy import Strategy
from repro.matroid.local_search import non_monotone_local_search
from repro.matroid.partition import display_constraint_matroid
from repro.algorithms.base import RevMaxAlgorithm

__all__ = ["LocalSearchApproximation"]


class LocalSearchApproximation(RevMaxAlgorithm):
    """Local-search approximation algorithm for R-REVMAX.

    Args:
        epsilon: slack of the approximate-improvement threshold (the paper's
            ``eps``); smaller values give better solutions but more moves.
        capacity_oracle: optional oracle for the capacity factor
            ``B_S(i, t)``; defaults to the exact Poisson-binomial oracle.
        max_iterations: safety cap on the number of improving moves.
        backend: revenue-engine backend forwarded to the effective revenue
            model; ``None`` uses the process default.
    """

    name = "LocalSearch-1/(4+eps)"

    def __init__(self, epsilon: float = 0.25, capacity_oracle=None,
                 max_iterations: int = 5000,
                 backend: Optional[str] = None) -> None:
        self._epsilon = epsilon
        self._capacity_oracle = capacity_oracle
        self._max_iterations = max_iterations
        self.backend = backend
        self.last_extras: Dict[str, object] = {}
        self.last_evaluations: int = 0

    def build_strategy(self, instance: RevMaxInstance) -> Strategy:
        model = EffectiveRevenueModel(
            instance, self._capacity_oracle, backend=self.backend
        )
        matroid = display_constraint_matroid(instance)

        def objective(subset: Iterable[Triple]) -> float:
            strategy = Strategy(instance.catalog, subset)
            return model.revenue(strategy)

        result = non_monotone_local_search(
            objective,
            matroid,
            epsilon=self._epsilon,
            max_iterations=self._max_iterations,
        )
        self.last_extras = {
            "moves": result.moves,
            "objective_value": result.value,
            "epsilon": self._epsilon,
        }
        self.last_evaluations = result.evaluations
        return Strategy(instance.catalog, result.solution)

    def run(self, instance: RevMaxInstance, validate: bool = False):
        """Solve the instance; validation is off by default because R-REVMAX
        strategies may intentionally exceed item capacities."""
        return super().run(instance, validate=validate)
