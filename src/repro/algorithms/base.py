"""Common interface of all REVMAX algorithms.

Every algorithm (exact, approximate, greedy or baseline) consumes a
:class:`~repro.core.problem.RevMaxInstance` and produces an
:class:`AlgorithmResult` holding the chosen strategy, its expected revenue
under the *true* revenue model, wall-clock running time and algorithm-specific
diagnostics (e.g. the revenue-growth curve of Figure 4 or the number of
objective evaluations).

Keeping the result shape uniform lets the experiment harness and the
benchmarks treat all algorithms interchangeably, exactly as the paper's
figures compare them side by side.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.constraints import ConstraintChecker
from repro.core.problem import RevMaxInstance
from repro.core.revenue import RevenueModel
from repro.core.strategy import Strategy

__all__ = ["AlgorithmResult", "RevMaxAlgorithm"]


@dataclass
class AlgorithmResult:
    """Outcome of running a REVMAX algorithm on an instance.

    Attributes:
        algorithm: name of the algorithm ("G-Greedy", "TopRE", ...).
        instance_name: name of the instance that was solved.
        strategy: the recommendation strategy produced.
        revenue: expected revenue of the strategy under the true model.
        runtime_seconds: wall-clock running time of the solve.
        growth_curve: optional list of ``(strategy size, revenue)`` checkpoints
            recorded while the strategy was being built (Figure 4).
        evaluations: number of group-revenue kernel evaluations the solve
            actually computed (the revenue engine's cache hits are excluded;
            see :attr:`repro.core.revenue.RevenueModel.evaluations`).
        extras: free-form algorithm-specific diagnostics.
    """

    algorithm: str
    instance_name: str
    strategy: Strategy
    revenue: float
    runtime_seconds: float
    growth_curve: List[Tuple[int, float]] = field(default_factory=list)
    evaluations: int = 0
    extras: Dict[str, object] = field(default_factory=dict)

    @property
    def strategy_size(self) -> int:
        """Number of triples in the produced strategy."""
        return len(self.strategy)

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.algorithm}: revenue={self.revenue:,.2f} "
            f"size={self.strategy_size} time={self.runtime_seconds:.3f}s"
        )


class RevMaxAlgorithm(ABC):
    """Base class for all REVMAX solvers."""

    #: Human-readable algorithm name, overridden by subclasses.
    name: str = "abstract"

    #: Revenue-engine backend ("numpy" / "python" / None for the process
    #: default); solvers that accept a ``backend`` argument store it here so
    #: :meth:`run` scores the final strategy with the same engine.
    backend: Optional[str] = None

    #: Harness bookkeeping merged into every result's extras on top of the
    #: solve's own ``last_extras`` (e.g. a degraded parallel-request
    #: decision recorded by ``standard_algorithms``).  Set as an *instance*
    #: attribute; the class default stays empty and shared.
    pinned_extras: Dict[str, object] = {}

    @abstractmethod
    def build_strategy(self, instance: RevMaxInstance) -> Strategy:
        """Construct a strategy for the instance (algorithm-specific)."""

    def run(self, instance: RevMaxInstance,
            validate: bool = True) -> AlgorithmResult:
        """Solve the instance and package the result.

        Args:
            instance: the REVMAX instance to solve.
            validate: assert that the produced strategy satisfies the display
                and capacity constraints (disabled for R-REVMAX solvers whose
                output intentionally relaxes capacity).

        Returns:
            An :class:`AlgorithmResult` with revenue computed by the exact
            revenue model of Definition 2.
        """
        start = time.perf_counter()
        strategy = self.build_strategy(instance)
        elapsed = time.perf_counter() - start
        if validate:
            ConstraintChecker(instance).check(strategy)
        model = RevenueModel(instance, backend=self.backend)
        revenue = model.revenue(strategy)
        result = AlgorithmResult(
            algorithm=self.name,
            instance_name=instance.name,
            strategy=strategy,
            revenue=revenue,
            runtime_seconds=elapsed,
            evaluations=getattr(self, "last_evaluations", 0),
            growth_curve=list(getattr(self, "last_growth_curve", [])),
            extras={**getattr(self, "last_extras", {}), **self.pinned_extras},
        )
        return result
