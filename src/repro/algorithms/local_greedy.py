"""Local greedy algorithms: SL-Greedy and RL-Greedy (Algorithm 2 of the paper).

Both algorithms finalise the recommendations of one *time step* at a time
(unlike G-Greedy, which mixes time steps freely):

* **Sequential Local Greedy (SL-Greedy)** processes the time steps in natural
  chronological order ``0, 1, ..., T-1``;
* **Randomized Local Greedy (RL-Greedy)** samples ``N`` random permutations of
  the time steps, runs the per-step greedy under each permutation, and keeps
  the permutation whose strategy earns the most revenue (Example 4 of the
  paper shows why chronological order can be suboptimal).

Within a single time step the selection is the same lazy-forward greedy used
globally -- :class:`repro.core.selection.LazyGreedySelector` restricted to
that step's candidates, seeded with batched marginal revenues against the
*full* strategy built so far, so recommendations fixed at other
(earlier-processed) time steps are correctly accounted for.

RL-Greedy's permutations are embarrassingly parallel: pass ``jobs=N`` to fan
the per-permutation runs out across worker processes (the permutations are
sampled up front in the parent, so results are identical for any job count).
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.constraints import ConstraintChecker
from repro.core.entities import Triple
from repro.core.problem import RevMaxInstance
from repro.core.revenue import RevenueModel
from repro.core.selection import SEED_MARGINAL, LazyGreedySelector
from repro.core.strategy import Strategy
from repro.parallel import default_jobs
from repro.algorithms.base import RevMaxAlgorithm

__all__ = ["SequentialLocalGreedy", "RandomizedLocalGreedy", "greedy_single_step"]


def greedy_single_step(
    instance: RevMaxInstance,
    model: RevenueModel,
    checker: ConstraintChecker,
    strategy: Strategy,
    time_step: int,
    growth_curve: Optional[List[Tuple[int, float]]] = None,
    true_model: Optional[RevenueModel] = None,
) -> None:
    """Greedily add this time step's triples to ``strategy`` (in place).

    Implements lines 5-15 of Algorithm 2 through the shared selection engine:
    a flat max-heap over the step's candidate triples is seeded with their
    (batch-scored) marginal revenue given the current strategy, and
    candidates are admitted best-first (with lazy re-evaluation) while their
    marginal revenue stays positive and no constraint is violated.

    Args:
        instance: the REVMAX instance.
        model: revenue model used for selection decisions.
        checker: constraint checker enforcing validity.
        strategy: the strategy built so far; modified in place.
        time_step: the time step whose recommendations are being finalised.
        growth_curve: optional list receiving ``(size, revenue)`` checkpoints.
        true_model: model used for the growth-curve revenue (defaults to
            ``model``).
    """
    selector = LazyGreedySelector(
        instance, model, checker,
        true_model=true_model,
        use_two_level_heap=False,
        seed_priorities=SEED_MARGINAL,
    )
    candidates = (
        triple for triple in instance.candidate_triples()
        if triple.t == time_step
    )
    selector.select(strategy, candidates, growth_curve=growth_curve)


class SequentialLocalGreedy(RevMaxAlgorithm):
    """SL-Greedy: per-time-step greedy in chronological order.

    Args:
        backend: revenue-engine backend ("numpy" / "python"); ``None`` uses
            the process default.
    """

    name = "SL-Greedy"

    def __init__(self, backend: Optional[str] = None) -> None:
        self.backend = backend
        self.last_growth_curve: List[Tuple[int, float]] = []
        self.last_evaluations: int = 0
        self.last_lookups: int = 0
        self.last_extras: Dict[str, object] = {}

    def build_strategy(self, instance: RevMaxInstance,
                       time_order: Optional[Sequence[int]] = None) -> Strategy:
        """Build a strategy processing time steps in the given order.

        Args:
            instance: the REVMAX instance.
            time_order: explicit processing order of the time steps; defaults
                to chronological order (which is what SL-Greedy does).
        """
        model = RevenueModel(instance, backend=self.backend)
        checker = ConstraintChecker(instance)
        strategy = Strategy(instance.catalog)
        growth_curve: List[Tuple[int, float]] = []
        order = list(time_order) if time_order is not None else list(
            range(instance.horizon)
        )
        for time_step in order:
            greedy_single_step(
                instance, model, checker, strategy, time_step, growth_curve
            )
        self.last_growth_curve = growth_curve
        self.last_evaluations = model.evaluations
        self.last_lookups = model.lookups
        self.last_extras = {"time_order": order}
        return strategy


class RandomizedLocalGreedy(RevMaxAlgorithm):
    """RL-Greedy: per-time-step greedy over ``N`` random time permutations.

    Args:
        num_permutations: number of distinct permutations to sample (the
            paper uses ``N = 20``).
        seed: random seed controlling the sampled permutations.
        backend: revenue-engine backend ("numpy" / "python"); ``None`` uses
            the process default.
        jobs: number of worker processes evaluating permutations (``None`` or
            1: run serially in-process; ``0``: one per core; ``"auto"``:
            the cost model of :mod:`repro.autotune` decides, degrading to
            the serial loop on machines where fan-out loses).  Permutations
            are sampled up front, so the selected strategy is identical for
            every job count.
    """

    name = "RL-Greedy"

    def __init__(self, num_permutations: int = 20, seed: Optional[int] = 0,
                 backend: Optional[str] = None,
                 jobs: Union[int, str, None] = None) -> None:
        if num_permutations <= 0:
            raise ValueError("num_permutations must be positive")
        self._num_permutations = num_permutations
        self._seed = seed
        self.backend = backend
        self.jobs = jobs
        self.last_growth_curve: List[Tuple[int, float]] = []
        self.last_evaluations: int = 0
        self.last_lookups: int = 0
        self.last_extras: Dict[str, object] = {}

    def _sample_permutations(self, horizon: int) -> List[Tuple[int, ...]]:
        """Sample up to ``N`` *distinct* permutations of the time steps."""
        total = math.factorial(horizon)
        if total <= self._num_permutations:
            return [tuple(p) for p in itertools.permutations(range(horizon))]
        rng = np.random.default_rng(self._seed)
        permutations = set()
        # Always include chronological order so RL-Greedy never does worse
        # than SL-Greedy by more than sampling noise on the other orders.
        permutations.add(tuple(range(horizon)))
        while len(permutations) < self._num_permutations:
            permutations.add(tuple(rng.permutation(horizon).tolist()))
        return sorted(permutations)

    def build_strategy(self, instance: RevMaxInstance) -> Strategy:
        orders = self._sample_permutations(instance.horizon)
        # Same jobs convention as repro.parallel: None/1 serial, 0 per-core;
        # "auto" asks the measured cost model and records its decision.
        jobs = self.jobs
        decision = None
        if jobs == "auto":
            from repro import autotune

            decision = autotune.decide_jobs(len(orders), autotune.AUTO)
            jobs = decision.effective
        if jobs is not None and jobs != 1:
            outcomes, evaluations, lookups = self._run_parallel(
                instance, orders, jobs
            )
        else:
            outcomes, evaluations, lookups = self._run_serial(instance, orders)

        best: Optional[Tuple[float, Strategy, List[Tuple[int, float]], Tuple[int, ...]]] = None
        for order, strategy, revenue, curve in outcomes:
            if best is None or revenue > best[0]:
                best = (revenue, strategy, curve, tuple(order))

        self.last_evaluations = evaluations
        self.last_lookups = lookups
        self.last_extras = {
            "num_permutations": self._num_permutations,
            "best_order": best[3] if best is not None else (),
            "jobs": default_jobs() if jobs == 0 else (jobs or 1),
        }
        if decision is not None:
            self.last_extras["parallel"] = decision.as_dict()
        if best is None:
            self.last_growth_curve = []
            return Strategy(instance.catalog)
        self.last_growth_curve = list(best[2])
        return best[1]

    def _run_serial(self, instance: RevMaxInstance,
                    orders: Sequence[Tuple[int, ...]]):
        """Evaluate every permutation in-process (shared scoring cache)."""
        model = RevenueModel(instance, backend=self.backend)
        runner = SequentialLocalGreedy(backend=self.backend)
        outcomes = []
        for order in orders:
            strategy = runner.build_strategy(instance, time_order=order)
            revenue = model.revenue(strategy)
            outcomes.append(
                (order, strategy, revenue, list(runner.last_growth_curve))
            )
        return outcomes, model.evaluations, model.lookups

    def _run_parallel(self, instance: RevMaxInstance,
                      orders: Sequence[Tuple[int, ...]], jobs: int):
        """Fan the permutations out across worker processes.

        Imported lazily: the parallel runner lives in the experiments layer
        (it is experiment infrastructure, not algorithm logic), and the
        experiments layer imports this module at load time.
        """
        from repro.experiments.parallel import run_permutations_parallel

        runs = run_permutations_parallel(
            instance, orders, backend=self.backend, jobs=jobs
        )
        outcomes = []
        evaluations = 0
        lookups = 0
        for order, run in zip(orders, runs):
            strategy = Strategy(
                instance.catalog, (Triple(*z) for z in run.triples)
            )
            outcomes.append((order, strategy, run.revenue, run.growth_curve))
            evaluations += run.evaluations
            lookups += run.lookups
        return outcomes, evaluations, lookups
