"""Local greedy algorithms: SL-Greedy and RL-Greedy (Algorithm 2 of the paper).

Both algorithms finalise the recommendations of one *time step* at a time
(unlike G-Greedy, which mixes time steps freely):

* **Sequential Local Greedy (SL-Greedy)** processes the time steps in natural
  chronological order ``0, 1, ..., T-1``;
* **Randomized Local Greedy (RL-Greedy)** samples ``N`` random permutations of
  the time steps, runs the per-step greedy under each permutation, and keeps
  the permutation whose strategy earns the most revenue (Example 4 of the
  paper shows why chronological order can be suboptimal).

Within a single time step the selection is the same lazy-forward greedy used
globally, restricted to that step's candidate triples; marginal revenues are
always computed against the *full* strategy built so far, so recommendations
fixed at other (earlier-processed) time steps are correctly accounted for.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.constraints import ConstraintChecker
from repro.core.entities import Triple
from repro.core.problem import RevMaxInstance
from repro.core.revenue import RevenueModel
from repro.core.strategy import Strategy
from repro.heaps.binary_heap import AddressableMaxHeap
from repro.algorithms.base import RevMaxAlgorithm

__all__ = ["SequentialLocalGreedy", "RandomizedLocalGreedy", "greedy_single_step"]


def greedy_single_step(
    instance: RevMaxInstance,
    model: RevenueModel,
    checker: ConstraintChecker,
    strategy: Strategy,
    time_step: int,
    growth_curve: Optional[List[Tuple[int, float]]] = None,
    true_model: Optional[RevenueModel] = None,
) -> None:
    """Greedily add this time step's triples to ``strategy`` (in place).

    Implements lines 5-15 of Algorithm 2: a max-heap over the step's candidate
    triples is seeded with their marginal revenue given the current strategy,
    and candidates are admitted best-first (with lazy re-evaluation) while
    their marginal revenue stays positive and no constraint is violated.

    Args:
        instance: the REVMAX instance.
        model: revenue model used for selection decisions.
        checker: constraint checker enforcing validity.
        strategy: the strategy built so far; modified in place.
        time_step: the time step whose recommendations are being finalised.
        growth_curve: optional list receiving ``(size, revenue)`` checkpoints.
        true_model: model used for the growth-curve revenue (defaults to
            ``model``).
    """
    true_model = true_model or model
    heap = AddressableMaxHeap()
    flags: Dict[Triple, int] = {}
    for triple in instance.candidate_triples():
        if triple.t != time_step or triple in strategy:
            continue
        value = model.marginal_revenue(strategy, triple)
        if value <= 0.0:
            # Marginal revenues only shrink as the strategy grows
            # (submodularity), so a non-positive candidate can be skipped.
            continue
        heap.insert(triple, value)
        flags[triple] = strategy.group_size(
            triple.user, instance.class_of(triple.item)
        )

    while heap:
        triple, priority = heap.peek()
        triple = Triple(*triple)
        if priority <= 0.0:
            break
        if not checker.can_add(strategy, triple):
            heap.discard(triple)
            continue
        freshness = strategy.group_size(triple.user, instance.class_of(triple.item))
        if flags[triple] != freshness:
            value = model.marginal_revenue(strategy, triple)
            flags[triple] = freshness
            heap.update(triple, value)
            continue
        gain = (
            priority if model is true_model
            else true_model.marginal_revenue(strategy, triple)
        )
        strategy.add(triple)
        heap.discard(triple)
        if growth_curve is not None:
            previous = growth_curve[-1][1] if growth_curve else 0.0
            growth_curve.append((len(strategy), previous + gain))


class SequentialLocalGreedy(RevMaxAlgorithm):
    """SL-Greedy: per-time-step greedy in chronological order.

    Args:
        backend: revenue-engine backend ("numpy" / "python"); ``None`` uses
            the process default.
    """

    name = "SL-Greedy"

    def __init__(self, backend: Optional[str] = None) -> None:
        self.backend = backend
        self.last_growth_curve: List[Tuple[int, float]] = []
        self.last_evaluations: int = 0
        self.last_lookups: int = 0
        self.last_extras: Dict[str, object] = {}

    def build_strategy(self, instance: RevMaxInstance,
                       time_order: Optional[Sequence[int]] = None) -> Strategy:
        """Build a strategy processing time steps in the given order.

        Args:
            instance: the REVMAX instance.
            time_order: explicit processing order of the time steps; defaults
                to chronological order (which is what SL-Greedy does).
        """
        model = RevenueModel(instance, backend=self.backend)
        checker = ConstraintChecker(instance)
        strategy = Strategy(instance.catalog)
        growth_curve: List[Tuple[int, float]] = []
        order = list(time_order) if time_order is not None else list(
            range(instance.horizon)
        )
        for time_step in order:
            greedy_single_step(
                instance, model, checker, strategy, time_step, growth_curve
            )
        self.last_growth_curve = growth_curve
        self.last_evaluations = model.evaluations
        self.last_lookups = model.lookups
        self.last_extras = {"time_order": order}
        return strategy


class RandomizedLocalGreedy(RevMaxAlgorithm):
    """RL-Greedy: per-time-step greedy over ``N`` random time permutations.

    Args:
        num_permutations: number of distinct permutations to sample (the
            paper uses ``N = 20``).
        seed: random seed controlling the sampled permutations.
        backend: revenue-engine backend ("numpy" / "python"); ``None`` uses
            the process default.
    """

    name = "RL-Greedy"

    def __init__(self, num_permutations: int = 20, seed: Optional[int] = 0,
                 backend: Optional[str] = None) -> None:
        if num_permutations <= 0:
            raise ValueError("num_permutations must be positive")
        self._num_permutations = num_permutations
        self._seed = seed
        self.backend = backend
        self.last_growth_curve: List[Tuple[int, float]] = []
        self.last_evaluations: int = 0
        self.last_lookups: int = 0
        self.last_extras: Dict[str, object] = {}

    def _sample_permutations(self, horizon: int) -> List[Tuple[int, ...]]:
        """Sample up to ``N`` *distinct* permutations of the time steps."""
        total = math.factorial(horizon)
        if total <= self._num_permutations:
            return [tuple(p) for p in itertools.permutations(range(horizon))]
        rng = np.random.default_rng(self._seed)
        permutations = set()
        # Always include chronological order so RL-Greedy never does worse
        # than SL-Greedy by more than sampling noise on the other orders.
        permutations.add(tuple(range(horizon)))
        while len(permutations) < self._num_permutations:
            permutations.add(tuple(rng.permutation(horizon).tolist()))
        return sorted(permutations)

    def build_strategy(self, instance: RevMaxInstance) -> Strategy:
        model = RevenueModel(instance, backend=self.backend)
        best_strategy: Optional[Strategy] = None
        best_revenue = -float("inf")
        best_curve: List[Tuple[int, float]] = []
        best_order: Tuple[int, ...] = ()
        runner = SequentialLocalGreedy(backend=self.backend)
        for order in self._sample_permutations(instance.horizon):
            strategy = runner.build_strategy(instance, time_order=order)
            revenue = model.revenue(strategy)
            if revenue > best_revenue:
                best_revenue = revenue
                best_strategy = strategy
                best_curve = list(runner.last_growth_curve)
                best_order = tuple(order)
        self.last_growth_curve = best_curve
        self.last_evaluations = model.evaluations
        self.last_lookups = model.lookups
        self.last_extras = {
            "num_permutations": self._num_permutations,
            "best_order": best_order,
        }
        return best_strategy if best_strategy is not None else Strategy(instance.catalog)
