"""Exact per-group optimization and an upper bound on the REVMAX optimum.

Competition and saturation only couple triples that share a (user, item-class)
pair, so the revenue of a strategy decomposes into independent *group*
contributions.  Two hard constraints couple the groups: the display limit (a
user's classes share the ``k`` slots of each time step) and the item capacity
(an item's audience is shared across users).  Relaxing exactly those two
couplings yields a decomposable problem that can be solved *optimally*, one
group at a time, by exhaustive search over each group's candidate triples —
which gives:

* :func:`optimal_group_plan` — the revenue-maximal subset of one group's
  candidate triples (subject to the within-group display limit), used in tests
  as ground truth for small groups; and
* :class:`GroupDecompositionBound` — the sum of per-group optima, a true upper
  bound on the revenue of *any* valid strategy.  The bound certifies how close
  the greedy heuristics get without knowing the intractable true optimum
  (``bound >= OPT >= greedy``), and is reported alongside the algorithms in
  the theory benchmarks.

The enumeration is exponential in the number of candidate triples of a group
(at most ``|class| * T`` of them), so group sizes are guarded by
``max_candidates_per_group``; the bound falls back to a cheap single-triple
relaxation for oversized groups, which keeps it a valid upper bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.entities import Triple
from repro.core.problem import RevMaxInstance
from repro.core.revenue import kernel_for_backend

__all__ = ["optimal_group_plan", "GroupDecompositionBound", "GroupBoundResult"]


def _group_candidates(instance: RevMaxInstance, user: int, class_id: int) -> List[Triple]:
    """All positive-probability triples of one (user, class) group."""
    candidates = []
    for item in instance.candidate_items(user):
        if instance.class_of(item) != class_id:
            continue
        for t in range(instance.horizon):
            if instance.probability(user, item, t) > 0.0:
                candidates.append(Triple(user, item, t))
    return candidates


def _respects_group_display_limit(subset: Sequence[Triple], limit: int) -> bool:
    counts: Dict[int, int] = {}
    for triple in subset:
        counts[triple.t] = counts.get(triple.t, 0) + 1
        if counts[triple.t] > limit:
            return False
    return True


def optimal_group_plan(
    instance: RevMaxInstance,
    user: int,
    class_id: int,
    max_candidates: int = 16,
    backend: Optional[str] = None,
) -> Tuple[List[Triple], float]:
    """Return the revenue-optimal subset of one (user, class) group.

    The search enumerates every subset of the group's candidate triples that
    keeps at most ``k`` same-class triples per time step (a necessary condition
    for validity) and evaluates the exact group revenue of Definition 2.

    Args:
        instance: the REVMAX instance.
        user: the user of the group.
        class_id: the item class of the group.
        max_candidates: guard against exponential blow-up; exceeding it raises.
        backend: revenue-engine backend ("numpy" / "python"); ``None`` uses
            the process default.

    Returns:
        ``(best_subset, best_revenue)``; the empty subset with revenue 0.0 when
        the group has no candidates.

    Raises:
        ValueError: if the group has more than ``max_candidates`` candidates.
    """
    candidates = _group_candidates(instance, user, class_id)
    if len(candidates) > max_candidates:
        raise ValueError(
            f"group ({user}, {class_id}) has {len(candidates)} candidates; "
            f"raise max_candidates (= {max_candidates}) to enumerate it"
        )
    best_subset: List[Triple] = []
    best_revenue = 0.0
    limit = instance.display_limit
    kernel = kernel_for_backend(backend)
    for size in range(1, len(candidates) + 1):
        for subset in combinations(candidates, size):
            if not _respects_group_display_limit(subset, limit):
                continue
            revenue = kernel(instance, list(subset))
            if revenue > best_revenue:
                best_revenue = revenue
                best_subset = list(subset)
    return best_subset, best_revenue


@dataclass
class GroupBoundResult:
    """Outcome of the group-decomposition upper bound.

    Attributes:
        upper_bound: sum of per-group optima (>= revenue of any valid strategy).
        per_group: mapping ``(user, class) -> group optimum``.
        enumerated_groups: groups solved exactly.
        relaxed_groups: oversized groups bounded by the cheap relaxation.
    """

    upper_bound: float
    per_group: Dict[Tuple[int, int], float]
    enumerated_groups: int
    relaxed_groups: int

    def gap(self, achieved_revenue: float) -> float:
        """Relative gap ``1 - achieved / bound`` (0 when the bound is met)."""
        if self.upper_bound <= 0.0:
            return 0.0
        return max(0.0, 1.0 - achieved_revenue / self.upper_bound)


class GroupDecompositionBound:
    """Upper bound on the optimal REVMAX revenue via group decomposition.

    Args:
        max_candidates_per_group: groups with more candidates than this are
            bounded by ``sum of each time step's best k isolated revenues``
            instead of exact enumeration (still an upper bound, just looser).
        backend: revenue-engine backend used by the per-group enumeration;
            ``None`` uses the process default.
    """

    def __init__(self, max_candidates_per_group: int = 14,
                 backend: Optional[str] = None) -> None:
        self._max_candidates = max_candidates_per_group
        self._backend = backend

    def _relaxed_group_bound(self, instance: RevMaxInstance,
                             candidates: Sequence[Triple]) -> float:
        """Loose bound for oversized groups: per time step, take the ``k`` best
        isolated revenues (dynamic probabilities never exceed primitive ones)."""
        per_time: Dict[int, List[float]] = {}
        for triple in candidates:
            value = instance.expected_isolated_revenue(triple)
            per_time.setdefault(triple.t, []).append(value)
        bound = 0.0
        for values in per_time.values():
            values.sort(reverse=True)
            bound += sum(values[: instance.display_limit])
        return bound

    def compute(self, instance: RevMaxInstance) -> GroupBoundResult:
        """Compute the bound for an instance."""
        per_group: Dict[Tuple[int, int], float] = {}
        enumerated = 0
        relaxed = 0
        for user in instance.users():
            classes = {
                instance.class_of(item) for item in instance.candidate_items(user)
            }
            for class_id in classes:
                candidates = _group_candidates(instance, user, class_id)
                if not candidates:
                    continue
                if len(candidates) <= self._max_candidates:
                    _, value = optimal_group_plan(
                        instance, user, class_id, self._max_candidates,
                        backend=self._backend,
                    )
                    enumerated += 1
                else:
                    value = self._relaxed_group_bound(instance, candidates)
                    relaxed += 1
                per_group[(user, class_id)] = value
        return GroupBoundResult(
            upper_bound=sum(per_group.values()),
            per_group=per_group,
            enumerated_groups=enumerated,
            relaxed_groups=relaxed,
        )
