"""Exact PTIME solver for the single-time-step special case (§3.2).

When ``T = 1`` neither saturation nor competition across time can play a
role, so REVMAX reduces to a maximum-weight degree-constrained subgraph
problem on the bipartite user-item graph:

* one node per user with degree bound ``k`` (the display limit),
* one node per item with degree bound ``q_i`` (the capacity),
* an edge per candidate pair weighted ``p(i, 1) * q(u, i, 1)``.

The optimal subgraph corresponds one-to-one to the optimal strategy.  The
solver delegates to :func:`repro.graph.dcs.max_weight_degree_constrained_subgraph`
(min-cost-flow based) and is mainly used as an *exact reference* in tests and
in the small-instance theory benchmarks: greedy algorithms can be compared
against the true optimum whenever ``T = 1``.

For competition-free instances (every item in its own class, ``beta`` ignored
because no repetition is allowed per time step), the per-time-step application
of this solver also yields an exact solution of the multi-step problem when
capacities are not binding across steps; that variant is exposed as
:class:`PerStepExactSolver` and used as a strong reference point in ablations.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.entities import Triple
from repro.core.problem import RevMaxInstance
from repro.core.strategy import Strategy
from repro.graph.dcs import max_weight_degree_constrained_subgraph
from repro.algorithms.base import RevMaxAlgorithm

__all__ = ["SingleStepExactSolver", "solve_single_step"]


def solve_single_step(instance: RevMaxInstance, time_step: int = 0) -> Strategy:
    """Solve the restriction of the instance to one time step exactly.

    Args:
        instance: the REVMAX instance (its other time steps are ignored).
        time_step: the time step to solve for.

    Returns:
        The optimal strategy containing only triples at ``time_step``.
    """
    if not (0 <= time_step < instance.horizon):
        raise ValueError(f"time_step {time_step} outside horizon 0..{instance.horizon - 1}")
    edges: Dict[Tuple[int, int], float] = {}
    left_degrees: Dict[int, int] = {}
    right_degrees: Dict[int, int] = {}
    for user in instance.users():
        left_degrees[user] = instance.display_limit
        for item in instance.candidate_items(user):
            probability = instance.probability(user, item, time_step)
            if probability <= 0.0:
                continue
            weight = instance.price(item, time_step) * probability
            if weight <= 0.0:
                continue
            edges[(user, item)] = weight
            right_degrees[item] = instance.capacity(item)
    result = max_weight_degree_constrained_subgraph(edges, left_degrees, right_degrees)
    strategy = Strategy(instance.catalog)
    for user, item in result.edges:
        strategy.add(Triple(user, item, time_step))
    return strategy


class SingleStepExactSolver(RevMaxAlgorithm):
    """Exact solver for instances with ``T = 1`` (Max-DCS reduction).

    Raises:
        ValueError: at :meth:`build_strategy` time if the instance has more
            than one time step.
    """

    name = "Exact-T1"

    def build_strategy(self, instance: RevMaxInstance) -> Strategy:
        if instance.horizon != 1:
            raise ValueError(
                "SingleStepExactSolver only handles instances with horizon 1; "
                f"got horizon {instance.horizon}"
            )
        return solve_single_step(instance, time_step=0)
