"""REVMAX algorithms: greedy heuristics, baselines, exact and approximate solvers."""

from repro.algorithms.base import AlgorithmResult, RevMaxAlgorithm
from repro.algorithms.global_greedy import GlobalGreedy, GlobalGreedyNoSaturation
from repro.algorithms.local_greedy import (
    RandomizedLocalGreedy,
    SequentialLocalGreedy,
    greedy_single_step,
)
from repro.algorithms.baselines import TopRatingBaseline, TopRevenueBaseline
from repro.algorithms.exact_single_step import SingleStepExactSolver, solve_single_step
from repro.algorithms.group_dp import (
    GroupBoundResult,
    GroupDecompositionBound,
    optimal_group_plan,
)
from repro.algorithms.local_search import LocalSearchApproximation
from repro.algorithms.incomplete_prices import SubHorizonWrapper, split_horizon

__all__ = [
    "AlgorithmResult",
    "GlobalGreedy",
    "GlobalGreedyNoSaturation",
    "GroupBoundResult",
    "GroupDecompositionBound",
    "optimal_group_plan",
    "LocalSearchApproximation",
    "RandomizedLocalGreedy",
    "RevMaxAlgorithm",
    "SequentialLocalGreedy",
    "SingleStepExactSolver",
    "SubHorizonWrapper",
    "TopRatingBaseline",
    "TopRevenueBaseline",
    "greedy_single_step",
    "solve_single_step",
    "split_horizon",
]
