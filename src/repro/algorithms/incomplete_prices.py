"""Gradually-available prices: solving the horizon one sub-horizon at a time.

§6.3 of the paper studies the realistic setting where prices are not all known
up front: the horizon ``[T]`` is split into sub-horizons
``[T1], [T2], ..., [Tr]`` and the prices of a sub-horizon only become known
when it starts.  A holistic algorithm such as G-Greedy or RL-Greedy must then
commit to the recommendations of ``[T1]`` before seeing later prices, carry
those commitments forward, and repeat on ``[T2]`` -- which costs revenue
compared to planning the whole horizon at once (SL-Greedy is unaffected since
it already proceeds chronologically).

:class:`SubHorizonWrapper` reproduces that protocol around any base algorithm
that accepts ``allowed_times`` and ``initial_strategy`` (G-Greedy) or around a
per-time-step algorithm run on the restricted steps (SL-/RL-Greedy).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.constraints import ConstraintChecker
from repro.core.problem import RevMaxInstance
from repro.core.revenue import RevenueModel
from repro.core.strategy import Strategy
from repro.algorithms.base import RevMaxAlgorithm
from repro.algorithms.global_greedy import GlobalGreedy
from repro.algorithms.local_greedy import (
    RandomizedLocalGreedy,
    greedy_single_step,
)

__all__ = ["split_horizon", "SubHorizonWrapper"]


def split_horizon(horizon: int, cutoffs: Sequence[int]) -> List[List[int]]:
    """Split ``0..horizon-1`` into sub-horizons at the given cut-off steps.

    A cut-off of ``c`` (1-based, as in the paper: "cut-off time at 2, 4, 5")
    means the first sub-horizon contains time steps ``0 .. c-1``.

    Args:
        horizon: the total number of time steps.
        cutoffs: increasing cut-off positions strictly inside the horizon.

    Returns:
        The list of sub-horizons, each a list of 0-based time steps.
    """
    cuts = sorted(set(int(c) for c in cutoffs))
    if any(c <= 0 or c >= horizon for c in cuts):
        raise ValueError("cut-offs must lie strictly inside the horizon")
    boundaries = [0] + cuts + [horizon]
    return [
        list(range(boundaries[index], boundaries[index + 1]))
        for index in range(len(boundaries) - 1)
    ]


class SubHorizonWrapper(RevMaxAlgorithm):
    """Run a base algorithm sub-horizon by sub-horizon (§6.3 protocol).

    Args:
        base: the algorithm to wrap -- an instance of
            :class:`~repro.algorithms.global_greedy.GlobalGreedy`,
            :class:`~repro.algorithms.local_greedy.SequentialLocalGreedy` or
            :class:`~repro.algorithms.local_greedy.RandomizedLocalGreedy`.
        cutoffs: 1-based cut-off time steps splitting the horizon.
    """

    def __init__(self, base: RevMaxAlgorithm, cutoffs: Sequence[int]) -> None:
        self._base = base
        self._cutoffs = list(cutoffs)
        self.name = f"{base.name}@cut{'-'.join(str(c) for c in self._cutoffs)}"
        self.backend = getattr(base, "backend", None)
        self.last_extras: Dict[str, object] = {}

    def build_strategy(self, instance: RevMaxInstance) -> Strategy:
        sub_horizons = split_horizon(instance.horizon, self._cutoffs)
        strategy = Strategy(instance.catalog)
        model = RevenueModel(instance, backend=self.backend)
        checker = ConstraintChecker(instance)

        for steps in sub_horizons:
            if isinstance(self._base, GlobalGreedy):
                strategy = self._base.build_strategy(
                    instance, allowed_times=steps, initial_strategy=strategy
                )
            elif isinstance(self._base, RandomizedLocalGreedy):
                strategy = self._best_permutation_over_steps(
                    instance, model, checker, strategy, steps
                )
            else:
                # Sequential (chronological) processing of the sub-horizon.
                for time_step in steps:
                    greedy_single_step(instance, model, checker, strategy, time_step)

        self.last_extras = {
            "cutoffs": list(self._cutoffs),
            "num_sub_horizons": len(sub_horizons),
        }
        return strategy

    def _best_permutation_over_steps(
        self,
        instance: RevMaxInstance,
        model: RevenueModel,
        checker: ConstraintChecker,
        strategy: Strategy,
        steps: Sequence[int],
    ) -> Strategy:
        """RL-Greedy restricted to a sub-horizon: best permutation of its steps."""
        import itertools
        import math

        import numpy as np

        base: RandomizedLocalGreedy = self._base  # type: ignore[assignment]
        num_permutations = base._num_permutations
        total = math.factorial(len(steps))
        if total <= num_permutations:
            orders = [list(p) for p in itertools.permutations(steps)]
        else:
            rng = np.random.default_rng(base._seed)
            seen = {tuple(steps)}
            while len(seen) < num_permutations:
                seen.add(tuple(rng.permutation(list(steps)).tolist()))
            orders = [list(order) for order in sorted(seen)]

        best_strategy: Optional[Strategy] = None
        best_revenue = -float("inf")
        for order in orders:
            candidate = strategy.copy()
            for time_step in order:
                greedy_single_step(instance, model, checker, candidate, time_step)
            revenue = model.revenue(candidate)
            if revenue > best_revenue:
                best_revenue = revenue
                best_strategy = candidate
        return best_strategy if best_strategy is not None else strategy
