"""Global Greedy (G-Greedy), Algorithm 1 of the paper.

G-Greedy grows the strategy one triple at a time, always adding the candidate
with the largest positive marginal revenue that does not violate the display
or capacity constraint.  Two engineering devices make it fast:

* a **two-level heap**: one lower-level heap per (user, item) pair holding its
  time-step candidates, and an upper-level heap over the lower heaps' roots,
  so the global maximum is found without maintaining one giant heap;
* **lazy forward** (Minoux's accelerated greedy): a candidate's stored
  marginal revenue is only recomputed when the candidate reaches the top and
  its freshness flag shows it is stale -- valid because the revenue function
  is submodular (Theorem 2), so stale values are upper bounds on current
  marginal revenues.

The class also covers variants used by the experiments:

* ``ignore_saturation=True`` is the **GlobalNo** baseline: candidates are
  *selected* as if ``beta_i = 1`` everywhere, but the reported revenue of the
  final strategy uses the true saturation factors;
* ``use_lazy_forward=False`` / ``use_two_level_heap=False`` are ablations that
  must produce the same strategy while doing more work (benchmarked in
  ``benchmarks/test_ablation_*``).

The optional ``allowed_times`` / ``initial_strategy`` arguments support the
gradually-available-prices experiments (§6.3), where the horizon is solved one
sub-horizon at a time.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.constraints import ConstraintChecker
from repro.core.entities import Triple
from repro.core.problem import RevMaxInstance
from repro.core.revenue import RevenueModel
from repro.core.strategy import Strategy
from repro.heaps.binary_heap import AddressableMaxHeap
from repro.heaps.two_level import TwoLevelHeap
from repro.algorithms.base import RevMaxAlgorithm

__all__ = ["GlobalGreedy", "GlobalGreedyNoSaturation"]


class GlobalGreedy(RevMaxAlgorithm):
    """The G-Greedy algorithm (two-level heaps + lazy forward).

    Args:
        use_lazy_forward: recompute stale marginal revenues lazily (default)
            or eagerly after every selection.
        use_two_level_heap: use the two-level heap of §5.1 (default) or a
            single flat addressable heap (ablation).
        ignore_saturation: select triples as if no saturation existed
            (the GlobalNo baseline).
        backend: revenue-engine backend ("numpy" / "python"); ``None`` uses
            the process default.
    """

    name = "G-Greedy"

    def __init__(self, use_lazy_forward: bool = True,
                 use_two_level_heap: bool = True,
                 ignore_saturation: bool = False,
                 backend: Optional[str] = None) -> None:
        self._use_lazy_forward = use_lazy_forward
        self._use_two_level_heap = use_two_level_heap
        self._ignore_saturation = ignore_saturation
        self.backend = backend
        if ignore_saturation:
            self.name = "GlobalNo"
        self.last_growth_curve: List[Tuple[int, float]] = []
        self.last_evaluations: int = 0
        self.last_lookups: int = 0
        self.last_extras: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # public entry point
    # ------------------------------------------------------------------
    def build_strategy(self, instance: RevMaxInstance,
                       allowed_times: Optional[Iterable[int]] = None,
                       initial_strategy: Optional[Strategy] = None) -> Strategy:
        """Run G-Greedy and return the constructed strategy.

        Args:
            instance: the REVMAX instance.
            allowed_times: if given, only triples at these time steps are
                candidates (the sub-horizon setting of §6.3).
            initial_strategy: strategy carried over from earlier sub-horizons;
                its triples count towards constraints and interact with new
                candidates through competition and saturation.
        """
        selection_instance = (
            instance.with_betas(1.0) if self._ignore_saturation else instance
        )
        selection_model = RevenueModel(selection_instance, backend=self.backend)
        true_model = RevenueModel(instance, backend=self.backend)
        checker = ConstraintChecker(instance)
        allowed = set(allowed_times) if allowed_times is not None else None

        strategy = (
            initial_strategy.copy() if initial_strategy is not None
            else Strategy(instance.catalog)
        )
        current_revenue = true_model.revenue(strategy) if len(strategy) else 0.0

        heap, flags, group_keys = self._build_heaps(instance, allowed, strategy)
        growth_curve: List[Tuple[int, float]] = []
        max_selections = self._max_selections(instance, allowed) + len(strategy)

        while len(strategy) < max_selections and len(heap) > 0:
            key, priority = heap.peek()
            triple = Triple(*key)
            if not checker.can_add(strategy, triple):
                self._discard_blocked(instance, heap, group_keys, strategy, triple)
                continue
            freshness = strategy.group_size(
                triple.user, instance.class_of(triple.item)
            )
            if self._use_lazy_forward and flags[triple] != freshness:
                self._refresh_group(
                    heap, flags, group_keys, selection_model, strategy, triple,
                    freshness,
                )
                continue
            if priority <= 0.0:
                break
            true_gain = (
                priority if not self._ignore_saturation
                else true_model.marginal_revenue(strategy, triple)
            )
            strategy.add(triple)
            current_revenue += true_gain
            heap.discard(triple)
            group_keys.get((triple.user, triple.item), set()).discard(triple)
            growth_curve.append((len(strategy), current_revenue))
            if not self._use_lazy_forward:
                self._eager_refresh(
                    heap, flags, group_keys, selection_model, strategy, triple,
                    instance,
                )

        self.last_growth_curve = growth_curve
        self.last_evaluations = selection_model.evaluations
        self.last_lookups = selection_model.lookups
        self.last_extras = {
            "lazy_forward": self._use_lazy_forward,
            "two_level_heap": self._use_two_level_heap,
            "ignore_saturation": self._ignore_saturation,
        }
        return strategy

    # ------------------------------------------------------------------
    # heap construction and maintenance
    # ------------------------------------------------------------------
    def _build_heaps(self, instance: RevMaxInstance,
                     allowed: Optional[Set[int]],
                     strategy: Strategy):
        """Populate the candidate heap with isolated expected revenues."""
        heap = TwoLevelHeap() if self._use_two_level_heap else AddressableMaxHeap()
        flags: Dict[Triple, int] = {}
        group_keys: Dict[Tuple[int, int], Set[Triple]] = {}
        for triple in instance.candidate_triples():
            if allowed is not None and triple.t not in allowed:
                continue
            if triple in strategy:
                continue
            priority = instance.expected_isolated_revenue(triple)
            if priority <= 0.0:
                continue
            group = (triple.user, triple.item)
            if self._use_two_level_heap:
                heap.insert(group, triple, priority)
            else:
                heap.insert(triple, priority)
            flags[triple] = 0
            group_keys.setdefault(group, set()).add(triple)
        return heap, flags, group_keys

    @staticmethod
    def _max_selections(instance: RevMaxInstance,
                        allowed: Optional[Set[int]]) -> int:
        """Upper bound ``k * T * |users with candidates|`` on selections."""
        horizon = len(allowed) if allowed is not None else instance.horizon
        return instance.display_limit * horizon * max(1, len(instance.users()))

    @staticmethod
    def _discard_blocked(instance: RevMaxInstance, heap, group_keys,
                         strategy: Strategy, triple: Triple) -> None:
        """Drop candidates that can never become feasible again.

        A display violation concerns only the popped triple's (user, time)
        slot, so only that candidate is dropped.  A capacity violation means
        the item's distinct audience is full and the user is not part of it;
        since the audience never shrinks, every remaining candidate of the
        (user, item) pair is dead and the whole lower heap is removed (line 26
        of Algorithm 1).
        """
        display_blocked = (
            strategy.display_count(triple.user, triple.t)
            >= instance.display_limit
        )
        group = (triple.user, triple.item)
        if display_blocked:
            heap.discard(triple)
            group_keys.get(group, set()).discard(triple)
            return
        for candidate in list(group_keys.get(group, ())):
            heap.discard(candidate)
        group_keys.pop(group, None)

    def _refresh_group(self, heap, flags, group_keys, model: RevenueModel,
                       strategy: Strategy, triple: Triple, freshness: int) -> None:
        """Recompute the marginal revenue of every candidate in the lower heap."""
        group = (triple.user, triple.item)
        for candidate in list(group_keys.get(group, ())):
            if candidate not in heap:
                continue
            value = model.marginal_revenue(strategy, candidate)
            flags[candidate] = freshness
            heap.update(candidate, value)

    def _eager_refresh(self, heap, flags, group_keys, model: RevenueModel,
                       strategy: Strategy, added: Triple,
                       instance: RevMaxInstance) -> None:
        """Without lazy forward, refresh every candidate affected by ``added``.

        Affected candidates are those of the same user whose item belongs to
        the same class as the added item.
        """
        target_class = instance.class_of(added.item)
        freshness = strategy.group_size(added.user, target_class)
        for (user, item), keys in group_keys.items():
            if user != added.user or instance.class_of(item) != target_class:
                continue
            for candidate in list(keys):
                if candidate not in heap:
                    continue
                value = model.marginal_revenue(strategy, candidate)
                flags[candidate] = freshness
                heap.update(candidate, value)


class GlobalGreedyNoSaturation(GlobalGreedy):
    """The GlobalNo baseline: G-Greedy that pretends saturation does not exist."""

    name = "GlobalNo"

    def __init__(self, backend: Optional[str] = None) -> None:
        super().__init__(ignore_saturation=True, backend=backend)
